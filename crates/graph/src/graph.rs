//! The [`LabeledGraph`] data structure.
//!
//! Design notes (following the project's database-Rust guidelines):
//!
//! * vertices are dense `u32` identifiers, labels are plain `u32` newtypes — both fit
//!   comfortably in caches and avoid hashing overhead in hot loops;
//! * adjacency lists are kept sorted so that `has_edge` is a binary search and
//!   neighbourhood intersections are merge-joins;
//! * vertex identifiers stay **dense** under mutation: [`LabeledGraph::remove_vertex`]
//!   swap-removes, moving the last vertex into the freed slot and reporting the move,
//!   so every other id is stable and no tombstones leak into iteration.  Patterns and
//!   most data graphs are still built append-only; the removal/relabel primitives
//!   exist for the dynamic-graph subsystem (`ffsm-dynamic`), which turns batches of
//!   [`crate::update::GraphUpdate`]s into new epochs.

use crate::{Label, VertexId};
use serde::{Deserialize, Serialize};

/// Errors raised while building or loading graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A referenced vertex does not exist.
    UnknownVertex(VertexId),
    /// Self loops are not allowed (Definition 2.1.1 requires `u != v`).
    SelfLoop(VertexId),
    /// Parse error while reading a graph file.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// I/O error while reading or writing a graph file.
    Io(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            GraphError::SelfLoop(v) => write!(f, "self loop on vertex {v} is not allowed"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Outcome of [`LabeledGraph::remove_vertex`]: what the removal disconnected and
/// which vertex (if any) changed its identifier to keep ids dense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexRemoval {
    /// The removed vertex's former neighbours, in pre-removal identifiers
    /// (one implicitly removed edge each).
    pub neighbors: Vec<VertexId>,
    /// `Some(old_id)` when the last vertex was swapped into the freed slot: the
    /// vertex formerly identified by `old_id` now answers to the removed id.
    /// `None` when the removed vertex was the last one.
    pub moved: Option<VertexId>,
}

/// An undirected, vertex-labeled graph (Definition 2.1.1).
///
/// Used both for data graphs and for query patterns ([`crate::Pattern`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledGraph {
    labels: Vec<Label>,
    adj: Vec<Vec<VertexId>>,
    num_edges: usize,
}

impl Default for LabeledGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl LabeledGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        LabeledGraph { labels: Vec::new(), adj: Vec::new(), num_edges: 0 }
    }

    /// Create an empty graph with capacity for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        LabeledGraph { labels: Vec::with_capacity(n), adj: Vec::with_capacity(n), num_edges: 0 }
    }

    /// Build a graph from a label slice and an edge list.  Convenience constructor
    /// used pervasively in tests and figures.
    ///
    /// # Panics
    /// Panics if an edge references an unknown vertex or is a self loop.
    pub fn from_edges(labels: &[u32], edges: &[(VertexId, VertexId)]) -> Self {
        let mut g = LabeledGraph::with_capacity(labels.len());
        for &l in labels {
            g.add_vertex(Label(l));
        }
        for &(u, v) in edges {
            g.add_edge(u, v).expect("valid edge");
        }
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Add a vertex with the given label and return its identifier.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = self.labels.len() as VertexId;
        self.labels.push(label);
        self.adj.push(Vec::new());
        id
    }

    /// Add an undirected edge.  Returns `Ok(true)` if the edge was inserted,
    /// `Ok(false)` if it already existed.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool, GraphError> {
        let n = self.num_vertices() as VertexId;
        if u >= n {
            return Err(GraphError::UnknownVertex(u));
        }
        if v >= n {
            return Err(GraphError::UnknownVertex(v));
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if self.has_edge(u, v) {
            return Ok(false);
        }
        let pos_u = self.adj[u as usize].partition_point(|&x| x < v);
        self.adj[u as usize].insert(pos_u, v);
        let pos_v = self.adj[v as usize].partition_point(|&x| x < u);
        self.adj[v as usize].insert(pos_v, u);
        self.num_edges += 1;
        Ok(true)
    }

    /// Remove the undirected edge `{u, v}`.  Returns `Ok(true)` if the edge was
    /// removed, `Ok(false)` if it did not exist.  The inverse of
    /// [`LabeledGraph::add_edge`], with the same validation.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool, GraphError> {
        let n = self.num_vertices() as VertexId;
        if u >= n {
            return Err(GraphError::UnknownVertex(u));
        }
        if v >= n {
            return Err(GraphError::UnknownVertex(v));
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let Ok(pos_u) = self.adj[u as usize].binary_search(&v) else {
            return Ok(false);
        };
        self.adj[u as usize].remove(pos_u);
        let pos_v = self.adj[v as usize].binary_search(&u).expect("adjacency is symmetric");
        self.adj[v as usize].remove(pos_v);
        self.num_edges -= 1;
        Ok(true)
    }

    /// Remove vertex `v` and all its incident edges, keeping identifiers dense by
    /// moving the last vertex into the freed slot (swap-remove).  The returned
    /// [`VertexRemoval`] lists the former neighbours (pre-removal ids) and, when a
    /// move happened, the old id of the vertex that now answers to `v`.
    pub fn remove_vertex(&mut self, v: VertexId) -> Result<VertexRemoval, GraphError> {
        let n = self.num_vertices() as VertexId;
        if v >= n {
            return Err(GraphError::UnknownVertex(v));
        }
        // Detach v from its neighbours first, so the moved vertex's adjacency can
        // never still reference it.
        let neighbors = std::mem::take(&mut self.adj[v as usize]);
        for &w in &neighbors {
            let pos = self.adj[w as usize].binary_search(&v).expect("adjacency is symmetric");
            self.adj[w as usize].remove(pos);
        }
        self.num_edges -= neighbors.len();
        let last = n - 1;
        self.labels.swap_remove(v as usize);
        self.adj.swap_remove(v as usize);
        let moved = if v == last {
            None
        } else {
            // The vertex formerly known as `last` now lives in slot `v`: rewrite its
            // id in every neighbour's (sorted) adjacency list.
            let moved_neighbors = std::mem::take(&mut self.adj[v as usize]);
            for &w in &moved_neighbors {
                let list = &mut self.adj[w as usize];
                let pos = list.binary_search(&last).expect("adjacency is symmetric");
                list.remove(pos);
                let ins = list.partition_point(|&x| x < v);
                list.insert(ins, v);
            }
            self.adj[v as usize] = moved_neighbors;
            Some(last)
        };
        Ok(VertexRemoval { neighbors, moved })
    }

    /// Replace the label of vertex `v`, returning the previous label.
    pub fn relabel(&mut self, v: VertexId, label: Label) -> Result<Label, GraphError> {
        if v as usize >= self.num_vertices() {
            return Err(GraphError::UnknownVertex(v));
        }
        Ok(std::mem::replace(&mut self.labels[v as usize], label))
    }

    /// Label of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// Sorted neighbours of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// `true` if the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u as usize >= self.adj.len() || v as usize >= self.adj.len() {
            return false;
        }
        // search the shorter adjacency list
        let (a, b) =
            if self.adj[u as usize].len() <= self.adj[v as usize].len() { (u, v) } else { (v, u) };
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Iterator over all vertex identifiers.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as VertexId).map(|v| v as VertexId)
    }

    /// Iterator over all undirected edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, ns)| {
            let u = u as VertexId;
            ns.iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// All vertices carrying `label`.
    pub fn vertices_with_label(&self, label: Label) -> Vec<VertexId> {
        self.vertices().filter(|&v| self.label(v) == label).collect()
    }

    /// Histogram of labels: `(label, count)` pairs sorted by label.
    pub fn label_histogram(&self) -> Vec<(Label, usize)> {
        let mut counts: std::collections::BTreeMap<Label, usize> =
            std::collections::BTreeMap::new();
        for &l in &self.labels {
            *counts.entry(l).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// The set of distinct labels, sorted.
    pub fn distinct_labels(&self) -> Vec<Label> {
        self.label_histogram().into_iter().map(|(l, _)| l).collect()
    }

    /// `true` if the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as VertexId];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut components = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            let mut stack = vec![start as VertexId];
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
        }
        components
    }

    /// The subgraph induced by `vertices` (Definition 2.1.2 with all available edges).
    ///
    /// Returns the new graph together with the mapping `new id -> old id`.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (LabeledGraph, Vec<VertexId>) {
        let mut map = std::collections::HashMap::with_capacity(vertices.len());
        let mut g = LabeledGraph::with_capacity(vertices.len());
        let mut back = Vec::with_capacity(vertices.len());
        for &v in vertices {
            let new_id = g.add_vertex(self.label(v));
            map.insert(v, new_id);
            back.push(v);
        }
        for &v in vertices {
            for &w in self.neighbors(v) {
                if v < w {
                    if let (Some(&nv), Some(&nw)) = (map.get(&v), map.get(&w)) {
                        g.add_edge(nv, nw).expect("induced edge valid");
                    }
                }
            }
        }
        (g, back)
    }

    /// The subgraph with vertex set `vertices` and only the listed `edges`
    /// (a general, not necessarily induced, subgraph per Definition 2.1.2).
    ///
    /// Edges must connect vertices from `vertices`; unknown endpoints are an error.
    pub fn subgraph_with_edges(
        &self,
        vertices: &[VertexId],
        edges: &[(VertexId, VertexId)],
    ) -> Result<(LabeledGraph, Vec<VertexId>), GraphError> {
        let mut map = std::collections::HashMap::with_capacity(vertices.len());
        let mut g = LabeledGraph::with_capacity(vertices.len());
        let mut back = Vec::with_capacity(vertices.len());
        for &v in vertices {
            if v as usize >= self.num_vertices() {
                return Err(GraphError::UnknownVertex(v));
            }
            let new_id = g.add_vertex(self.label(v));
            map.insert(v, new_id);
            back.push(v);
        }
        for &(u, v) in edges {
            let nu = *map.get(&u).ok_or(GraphError::UnknownVertex(u))?;
            let nv = *map.get(&v).ok_or(GraphError::UnknownVertex(v))?;
            g.add_edge(nu, nv)?;
        }
        Ok((g, back))
    }

    /// Sum of degrees divided by vertex count; 0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_vertices() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> LabeledGraph {
        LabeledGraph::from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn build_and_query() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_edge_ignored() {
        let mut g = triangle();
        assert_eq!(g.add_edge(0, 1), Ok(false));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = triangle();
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn unknown_vertex_rejected() {
        let mut g = triangle();
        assert_eq!(g.add_edge(0, 9), Err(GraphError::UnknownVertex(9)));
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn label_queries() {
        let g = LabeledGraph::from_edges(&[1, 2, 1, 3], &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.vertices_with_label(Label(1)), vec![0, 2]);
        assert_eq!(g.label_histogram(), vec![(Label(1), 2), (Label(2), 1), (Label(3), 1)]);
        assert_eq!(g.distinct_labels(), vec![Label(1), Label(2), Label(3)]);
    }

    #[test]
    fn connectivity() {
        let g = triangle();
        assert!(g.is_connected());
        assert_eq!(g.num_components(), 1);
        let g2 = LabeledGraph::from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        assert!(!g2.is_connected());
        assert_eq!(g2.num_components(), 2);
        let empty = LabeledGraph::new();
        assert!(empty.is_connected());
        assert_eq!(empty.num_components(), 0);
    }

    #[test]
    fn induced_subgraph_keeps_labels_and_edges() {
        let g = LabeledGraph::from_edges(&[5, 6, 7, 8], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let (s, back) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(s.num_vertices(), 3);
        assert_eq!(s.num_edges(), 2); // (1,2) and (2,3)
        assert_eq!(back, vec![1, 2, 3]);
        assert_eq!(s.label(0), Label(6));
    }

    #[test]
    fn subgraph_with_edges_subset() {
        let g = triangle();
        let (s, _) = g.subgraph_with_edges(&[0, 1, 2], &[(0, 1)]).unwrap();
        assert_eq!(s.num_edges(), 1);
        assert_eq!(s.num_vertices(), 3);
        assert!(g.subgraph_with_edges(&[0, 1], &[(0, 2)]).is_err());
    }

    #[test]
    fn remove_edge_is_the_inverse_of_add_edge() {
        let mut g = triangle();
        assert_eq!(g.remove_edge(1, 0), Ok(true));
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.remove_edge(0, 1), Ok(false), "already gone");
        assert_eq!(g.remove_edge(0, 9), Err(GraphError::UnknownVertex(9)));
        assert_eq!(g.remove_edge(2, 2), Err(GraphError::SelfLoop(2)));
        assert_eq!(g.add_edge(0, 1), Ok(true));
        assert_eq!(g, triangle());
    }

    #[test]
    fn remove_last_vertex_needs_no_move() {
        let mut g = LabeledGraph::from_edges(&[5, 6, 7], &[(0, 1), (1, 2)]);
        let removal = g.remove_vertex(2).unwrap();
        assert_eq!(removal.neighbors, vec![1]);
        assert_eq!(removal.moved, None);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn remove_vertex_swaps_last_into_slot() {
        // Path 0-1-2-3 with distinct labels; removing 1 moves 3 into slot 1.
        let mut g = LabeledGraph::from_edges(&[5, 6, 7, 8], &[(0, 1), (1, 2), (2, 3)]);
        let removal = g.remove_vertex(1).unwrap();
        assert_eq!(removal.neighbors, vec![0, 2]);
        assert_eq!(removal.moved, Some(3));
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.label(1), Label(8), "old vertex 3 now lives at id 1");
        assert!(g.has_edge(1, 2), "edge (2,3) became (2,1)");
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.degree(0), 0);
        // Adjacency lists stay sorted after the id rewrite.
        for v in g.vertices() {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted neighbours of {v}");
        }
        assert_eq!(g.remove_vertex(7), Err(GraphError::UnknownVertex(7)));
    }

    #[test]
    fn remove_isolated_and_relabel() {
        let mut g = LabeledGraph::from_edges(&[1, 2, 3], &[(0, 2)]);
        assert_eq!(g.relabel(1, Label(9)), Ok(Label(2)));
        assert_eq!(g.label(1), Label(9));
        assert_eq!(g.relabel(5, Label(0)), Err(GraphError::UnknownVertex(5)));
        let removal = g.remove_vertex(1).unwrap();
        assert!(removal.neighbors.is_empty());
        assert_eq!(removal.moved, Some(2));
        assert!(g.has_edge(0, 1), "edge (0,2) became (0,1)");
        assert_eq!(g.label(1), Label(3));
    }

    #[test]
    fn serialize_trait_is_implemented() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<LabeledGraph>();
    }
}
