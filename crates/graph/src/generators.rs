//! Random labeled-graph generators.
//!
//! These generators stand in for the real-world datasets used in the paper's
//! evaluation (see DESIGN.md §5).  All of them are deterministic given a seed, so
//! every experiment in EXPERIMENTS.md is reproducible bit for bit.

use crate::{Label, LabeledGraph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Assign labels uniformly at random from `0..num_labels`.
fn random_labels(n: usize, num_labels: u32, rng: &mut StdRng) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range(0..num_labels.max(1))).collect()
}

/// G(n, m) Erdős–Rényi-style graph: `n` vertices, `m` distinct random edges, labels
/// drawn uniformly from an alphabet of `num_labels` symbols.
pub fn gnm_random(n: usize, m: usize, num_labels: u32, seed: u64) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = random_labels(n, num_labels, &mut rng);
    let mut g = LabeledGraph::with_capacity(n);
    for &l in &labels {
        g.add_vertex(Label(l));
    }
    if n < 2 {
        return g;
    }
    let max_edges = n * (n - 1) / 2;
    let target = m.min(max_edges);
    let mut added = 0usize;
    // Rejection sampling is fine for the sparse graphs used here.
    let mut guard = 0usize;
    while added < target && guard < 50 * target + 1000 {
        guard += 1;
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        if g.add_edge(u, v).unwrap_or(false) {
            added += 1;
        }
    }
    g
}

/// G(n, p) Erdős–Rényi graph (each possible edge present independently with
/// probability `p`).  Only suitable for moderate `n`.
pub fn gnp_random(n: usize, p: f64, num_labels: u32, seed: u64) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = random_labels(n, num_labels, &mut rng);
    let mut g = LabeledGraph::with_capacity(n);
    for &l in &labels {
        g.add_vertex(Label(l));
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u as VertexId, v as VertexId).expect("edge");
            }
        }
    }
    g
}

/// Barabási–Albert preferential-attachment graph: power-law degree distribution,
/// `edges_per_node` new edges per arriving vertex.  Models social / citation graphs.
pub fn barabasi_albert(
    n: usize,
    edges_per_node: usize,
    num_labels: u32,
    seed: u64,
) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = edges_per_node.max(1);
    let labels = random_labels(n, num_labels, &mut rng);
    let mut g = LabeledGraph::with_capacity(n);
    for &l in &labels {
        g.add_vertex(Label(l));
    }
    if n == 0 {
        return g;
    }
    // Seed clique of size m+1 (or the whole graph if tiny).
    let seed_size = (m + 1).min(n);
    for u in 0..seed_size {
        for v in (u + 1)..seed_size {
            g.add_edge(u as VertexId, v as VertexId).expect("edge");
        }
    }
    // Repeated-endpoint list for preferential attachment.
    let mut endpoints: Vec<VertexId> = Vec::new();
    for (u, v) in g.edges() {
        endpoints.push(u);
        endpoints.push(v);
    }
    for v in seed_size..n {
        // BTreeSet keeps the iteration order deterministic (a HashSet would make the
        // generator output depend on the process hash seed).
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0;
        while targets.len() < m.min(v) && guard < 100 * m + 100 {
            guard += 1;
            let t = if endpoints.is_empty() {
                rng.gen_range(0..v) as VertexId
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if (t as usize) < v {
                targets.insert(t);
            }
        }
        for &t in &targets {
            if g.add_edge(v as VertexId, t).unwrap_or(false) {
                endpoints.push(v as VertexId);
                endpoints.push(t);
            }
        }
    }
    g
}

/// Two-dimensional grid graph of `rows × cols` vertices; labels cycle through the
/// alphabet row-major, giving a highly regular structure with many overlapping
/// pattern occurrences.
pub fn grid(rows: usize, cols: usize, num_labels: u32) -> LabeledGraph {
    let mut g = LabeledGraph::with_capacity(rows * cols);
    for i in 0..rows * cols {
        g.add_vertex(Label((i as u32) % num_labels.max(1)));
    }
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1)).expect("edge");
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c)).expect("edge");
            }
        }
    }
    g
}

/// Planted-partition / community graph: `communities` groups of `community_size`
/// vertices; intra-community edges with probability `p_in`, inter-community edges
/// with probability `p_out`.  Each community draws labels from a community-specific
/// slice of the alphabet, which creates label-correlated structure (as in social or
/// protein-interaction graphs).
pub fn community_graph(
    communities: usize,
    community_size: usize,
    p_in: f64,
    p_out: f64,
    num_labels: u32,
    seed: u64,
) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = communities * community_size;
    let mut g = LabeledGraph::with_capacity(n);
    let num_labels = num_labels.max(1);
    for i in 0..n {
        let comm = (i / community_size.max(1)) as u32;
        // Community biases which labels are common.
        let l = if rng.gen_bool(0.7) {
            (comm * 2 + rng.gen_range(0..2)) % num_labels
        } else {
            rng.gen_range(0..num_labels)
        };
        g.add_vertex(Label(l));
    }
    for u in 0..n {
        for v in (u + 1)..n {
            let same = u / community_size.max(1) == v / community_size.max(1);
            let p = if same { p_in } else { p_out };
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u as VertexId, v as VertexId).expect("edge");
            }
        }
    }
    g
}

/// Overlap-heavy "double star" family generalising the paper's Figure 6: `hubs` hub
/// vertices of label 0 that all connect to `leaves` shared leaf vertices of label 1.
/// The single-edge pattern `L0 — L1` then has `hubs × leaves` occurrences but only
/// `min(hubs, leaves)`-ish independent ones, which is the regime where MNI
/// over-estimates most dramatically.
pub fn star_overlap(hubs: usize, leaves: usize) -> LabeledGraph {
    let mut g = LabeledGraph::with_capacity(hubs + leaves);
    let hub_ids: Vec<VertexId> = (0..hubs).map(|_| g.add_vertex(Label(0))).collect();
    let leaf_ids: Vec<VertexId> = (0..leaves).map(|_| g.add_vertex(Label(1))).collect();
    for &h in &hub_ids {
        for &l in &leaf_ids {
            g.add_edge(h, l).expect("edge");
        }
    }
    g
}

/// A disjoint union of `count` copies of `component`, optionally linked into a chain
/// by single bridge edges (so that the result is connected when `connect` is true).
pub fn replicated(component: &LabeledGraph, count: usize, connect: bool) -> LabeledGraph {
    let n = component.num_vertices();
    let mut g = LabeledGraph::with_capacity(n * count);
    for _ in 0..count {
        let offset = g.num_vertices() as VertexId;
        for v in component.vertices() {
            g.add_vertex(component.label(v));
        }
        for (u, v) in component.edges() {
            g.add_edge(offset + u, offset + v).expect("edge");
        }
    }
    if connect && n > 0 {
        for i in 1..count {
            let prev_last = (i * n - 1) as VertexId;
            let this_first = (i * n) as VertexId;
            g.add_edge(prev_last, this_first).expect("bridge edge");
        }
    }
    g
}

/// Sample a connected pattern of `num_edges` edges from `graph` by a random edge walk.
/// Returns the pattern together with the data-graph vertices it was sampled from, or
/// `None` if the graph has no edges.  Sampled patterns are guaranteed to have at least
/// one occurrence in `graph`, which keeps experiment workloads non-trivial.
pub fn sample_pattern(
    graph: &LabeledGraph,
    num_edges: usize,
    seed: u64,
) -> Option<(LabeledGraph, Vec<VertexId>)> {
    if graph.num_edges() == 0 || num_edges == 0 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let all_edges: Vec<(VertexId, VertexId)> = graph.edges().collect();
    let &(su, sv) = all_edges.choose(&mut rng)?;
    let mut vertices: Vec<VertexId> = vec![su, sv];
    let mut edges: Vec<(VertexId, VertexId)> = vec![(su, sv)];
    let mut guard = 0;
    while edges.len() < num_edges && guard < 100 * num_edges + 100 {
        guard += 1;
        // Pick a random frontier edge incident to the current vertex set.
        let &v = vertices.choose(&mut rng)?;
        let neighbors = graph.neighbors(v);
        if neighbors.is_empty() {
            continue;
        }
        let &w = neighbors.choose(&mut rng)?;
        let e = if v < w { (v, w) } else { (w, v) };
        if edges.contains(&e) {
            continue;
        }
        edges.push(e);
        if !vertices.contains(&w) {
            vertices.push(w);
        }
    }
    vertices.sort_unstable();
    vertices.dedup();
    let mut pattern = LabeledGraph::with_capacity(vertices.len());
    let mut map = std::collections::HashMap::new();
    for &v in &vertices {
        let id = pattern.add_vertex(graph.label(v));
        map.insert(v, id);
    }
    for &(u, v) in &edges {
        pattern.add_edge(map[&u], map[&v]).expect("edge");
    }
    Some((pattern, vertices))
}

/// Uniformly random labelled tree on `n` vertices (each new vertex attaches to a
/// uniformly chosen earlier vertex).  Trees have no overlap-inducing cycles, which
/// makes them the "easy" end of the overlap spectrum in the experiments.
pub fn random_tree(n: usize, num_labels: u32, seed: u64) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = random_labels(n, num_labels, &mut rng);
    let mut g = LabeledGraph::with_capacity(n);
    for &l in &labels {
        g.add_vertex(Label(l));
    }
    for v in 1..n {
        let parent = rng.gen_range(0..v) as VertexId;
        g.add_edge(v as VertexId, parent).expect("tree edge");
    }
    g
}

/// Random bipartite graph: `left × right` vertices, each cross edge present with
/// probability `p`.  Left vertices take labels `0..num_labels/2`, right vertices the
/// remaining labels, so patterns naturally align with the bipartition.
pub fn bipartite_random(
    left: usize,
    right: usize,
    p: f64,
    num_labels: u32,
    seed: u64,
) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_labels = num_labels.max(2);
    let split = (num_labels / 2).max(1);
    let mut g = LabeledGraph::with_capacity(left + right);
    for _ in 0..left {
        g.add_vertex(Label(rng.gen_range(0..split)));
    }
    for _ in 0..right {
        g.add_vertex(Label(split + rng.gen_range(0..num_labels - split)));
    }
    for u in 0..left {
        for v in 0..right {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u as VertexId, (left + v) as VertexId).expect("edge");
            }
        }
    }
    g
}

/// A ring of `count` cliques of size `clique_size`, consecutive cliques joined by one
/// bridge edge (and the last joined back to the first when `count >= 3`).  A dense-
/// local / sparse-global structure with heavy intra-clique occurrence overlap.
pub fn ring_of_cliques(count: usize, clique_size: usize, num_labels: u32) -> LabeledGraph {
    let k = clique_size.max(1);
    let num_labels = num_labels.max(1);
    let mut g = LabeledGraph::with_capacity(count * k);
    for c in 0..count {
        for i in 0..k {
            g.add_vertex(Label(((c + i) as u32) % num_labels));
        }
        let base = (c * k) as VertexId;
        for i in 0..k {
            for j in (i + 1)..k {
                g.add_edge(base + i as VertexId, base + j as VertexId).expect("edge");
            }
        }
    }
    if count >= 2 && k >= 1 {
        for c in 0..count {
            let next = (c + 1) % count;
            if next == 0 && count == 2 {
                break; // avoid a duplicate bridge between two cliques
            }
            let from = (c * k + (k - 1)) as VertexId;
            let to = (next * k) as VertexId;
            let _ = g.add_edge(from, to);
        }
    }
    g
}

/// Holme–Kim-style power-law cluster graph: preferential attachment where each new
/// edge is followed, with probability `triad_p`, by a "triad formation" edge closing a
/// triangle.  Produces the high-clustering, heavy-tailed structure of social graphs —
/// the regime where occurrence overlap (and hence MNI over-estimation) is strongest.
pub fn power_law_cluster(
    n: usize,
    edges_per_node: usize,
    triad_p: f64,
    num_labels: u32,
    seed: u64,
) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = edges_per_node.max(1);
    let labels = random_labels(n, num_labels, &mut rng);
    let mut g = LabeledGraph::with_capacity(n);
    for &l in &labels {
        g.add_vertex(Label(l));
    }
    if n == 0 {
        return g;
    }
    let seed_size = (m + 1).min(n);
    for u in 0..seed_size {
        for v in (u + 1)..seed_size {
            g.add_edge(u as VertexId, v as VertexId).expect("edge");
        }
    }
    let mut endpoints: Vec<VertexId> = Vec::new();
    for (u, v) in g.edges() {
        endpoints.push(u);
        endpoints.push(v);
    }
    for v in seed_size..n {
        let mut added_targets: Vec<VertexId> = Vec::new();
        let mut guard = 0;
        while added_targets.len() < m.min(v) && guard < 100 * m + 100 {
            guard += 1;
            // Triad step: close a triangle through a neighbour of the last target.
            if !added_targets.is_empty() && rng.gen_bool(triad_p.clamp(0.0, 1.0)) {
                let &last = added_targets.last().expect("non-empty");
                let ns = g.neighbors(last);
                if !ns.is_empty() {
                    let w = ns[rng.gen_range(0..ns.len())];
                    if (w as usize) < v
                        && w != v as VertexId
                        && g.add_edge(v as VertexId, w).unwrap_or(false)
                    {
                        endpoints.push(v as VertexId);
                        endpoints.push(w);
                        added_targets.push(w);
                        continue;
                    }
                }
            }
            // Preferential-attachment step.
            let t = if endpoints.is_empty() {
                rng.gen_range(0..v) as VertexId
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if (t as usize) < v && g.add_edge(v as VertexId, t).unwrap_or(false) {
                endpoints.push(v as VertexId);
                endpoints.push(t);
                added_targets.push(t);
            }
        }
    }
    g
}

/// A caterpillar: a spine path of `spine` vertices, each carrying `legs` pendant leaf
/// vertices.  Spine vertices take label 0, leaves label 1 — the many symmetric legs
/// give patterns large automorphism groups (the MI measure's favourable case).
pub fn caterpillar(spine: usize, legs: usize) -> LabeledGraph {
    let mut g = LabeledGraph::with_capacity(spine * (legs + 1));
    let spine_ids: Vec<VertexId> = (0..spine).map(|_| g.add_vertex(Label(0))).collect();
    for w in spine_ids.windows(2) {
        g.add_edge(w[0], w[1]).expect("spine edge");
    }
    for &s in &spine_ids {
        for _ in 0..legs {
            let leaf = g.add_vertex(Label(1));
            g.add_edge(s, leaf).expect("leg edge");
        }
    }
    g
}

/// A molecule-like multi-label graph: `molecules` small components, each a ring or
/// chain of `atoms_per_molecule` atoms with occasional pendant substituents, atom
/// labels drawn from a skewed (Zipf-ish) distribution over `num_labels` symbols —
/// a handful of "carbon"-like labels dominate, rarer "heteroatom" labels appear on
/// a minority of vertices.  Models chemistry-style datasets: many small components
/// with heavily repeated fragments, the workload where label-aware partitioning
/// has the most signal.
pub fn molecule_like(
    molecules: usize,
    atoms_per_molecule: usize,
    num_labels: u32,
    seed: u64,
) -> LabeledGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let atoms = atoms_per_molecule.max(1);
    let mut g = LabeledGraph::with_capacity(molecules * (atoms + atoms / 3));
    for _ in 0..molecules {
        let backbone: Vec<VertexId> =
            (0..atoms).map(|_| g.add_vertex(Label(zipf_label(num_labels, &mut rng)))).collect();
        for w in backbone.windows(2) {
            g.add_edge(w[0], w[1]).expect("backbone edge");
        }
        // Roughly half the molecules close into a ring (benzene-style).
        if atoms >= 3 && rng.gen_bool(0.5) {
            g.add_edge(backbone[0], backbone[atoms - 1]).expect("ring-closing edge");
        }
        // Pendant substituents on ~1/3 of the backbone atoms.
        for &a in &backbone {
            if rng.gen_bool(1.0 / 3.0) {
                let sub = g.add_vertex(Label(zipf_label(num_labels, &mut rng)));
                g.add_edge(a, sub).expect("substituent edge");
            }
        }
    }
    g
}

/// Barabási–Albert topology with Zipf-skewed labels instead of uniform ones: the
/// power-law degree distribution of [`barabasi_albert`] combined with a label
/// histogram where label 0 is the most common and frequency decays roughly as
/// `1/(rank+1)`.  Skewed labels make label-aware shard assignment meaningfully
/// different from vertex-range assignment, which uniform labels do not.
pub fn barabasi_albert_skewed(
    n: usize,
    edges_per_node: usize,
    num_labels: u32,
    seed: u64,
) -> LabeledGraph {
    // Reuse the BA topology, then relabel deterministically from a second stream
    // (same seed, offset) so topology and labels stay independently reproducible.
    let mut g = barabasi_albert(n, edges_per_node, 1, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e_ed1a_be15_u64);
    for v in 0..g.num_vertices() {
        g.relabel(v as VertexId, Label(zipf_label(num_labels, &mut rng))).expect("relabel");
    }
    g
}

/// Draw a label from `0..num_labels` with probability proportional to
/// `1/(rank+1)` — a harmonic (Zipf s=1) distribution, label 0 most frequent.
fn zipf_label(num_labels: u32, rng: &mut StdRng) -> u32 {
    let k = num_labels.max(1);
    let total: f64 = (0..k).map(|r| 1.0 / (r as f64 + 1.0)).sum();
    let mut x = rng.gen_range(0.0..total);
    for r in 0..k {
        x -= 1.0 / (r as f64 + 1.0);
        if x <= 0.0 {
            return r;
        }
    }
    k - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_respects_parameters() {
        let g = gnm_random(100, 300, 5, 42);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 300);
        assert!(g.distinct_labels().len() <= 5);
        // determinism
        let g2 = gnm_random(100, 300, 5, 42);
        assert_eq!(g, g2);
        let g3 = gnm_random(100, 300, 5, 43);
        assert_ne!(g, g3);
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let g = gnm_random(5, 100, 2, 1);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnp_extremes() {
        let empty = gnp_random(20, 0.0, 3, 7);
        assert_eq!(empty.num_edges(), 0);
        let full = gnp_random(10, 1.0, 3, 7);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn barabasi_albert_is_connected_and_skewed() {
        let g = barabasi_albert(200, 2, 4, 9);
        assert_eq!(g.num_vertices(), 200);
        assert!(g.is_connected());
        // Power-law-ish: the max degree should be well above the average.
        assert!(g.max_degree() as f64 > 2.0 * g.average_degree());
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 5, 3);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 4 * 4 + 5 * 3); // rows*(cols-1) + cols*(rows-1)
        assert!(g.is_connected());
    }

    #[test]
    fn community_graph_denser_inside() {
        let g = community_graph(4, 20, 0.3, 0.01, 8, 3);
        assert_eq!(g.num_vertices(), 80);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if u / 20 == v / 20 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter);
    }

    #[test]
    fn star_overlap_structure() {
        let g = star_overlap(2, 4);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.vertices_with_label(Label(0)).len(), 2);
        assert_eq!(g.vertices_with_label(Label(1)).len(), 4);
    }

    #[test]
    fn replicated_components() {
        let tri = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        let g = replicated(&tri, 5, false);
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.num_components(), 5);
        let linked = replicated(&tri, 5, true);
        assert_eq!(linked.num_components(), 1);
        assert_eq!(linked.num_edges(), 15 + 4);
    }

    #[test]
    fn sampled_pattern_occurs_in_source() {
        let g = barabasi_albert(100, 3, 4, 11);
        let (p, verts) = sample_pattern(&g, 4, 5).expect("pattern");
        assert!(p.is_connected());
        assert!(p.num_edges() >= 1 && p.num_edges() <= 4);
        assert_eq!(p.num_vertices(), verts.len());
        assert!(crate::isomorphism::has_embedding(&p, &g));
    }

    #[test]
    fn random_tree_is_a_tree() {
        let t = random_tree(50, 3, 2);
        assert_eq!(t.num_vertices(), 50);
        assert_eq!(t.num_edges(), 49);
        assert!(t.is_connected());
        assert_eq!(random_tree(50, 3, 2), t); // deterministic
        assert_eq!(random_tree(0, 3, 2).num_vertices(), 0);
        assert_eq!(random_tree(1, 3, 2).num_edges(), 0);
    }

    #[test]
    fn bipartite_random_has_no_odd_cycles() {
        let g = bipartite_random(15, 20, 0.2, 4, 5);
        assert_eq!(g.num_vertices(), 35);
        assert!(crate::algorithms::is_bipartite(&g));
        // Left and right draw from disjoint label ranges.
        let left_labels: std::collections::BTreeSet<_> = (0..15).map(|v| g.label(v)).collect();
        let right_labels: std::collections::BTreeSet<_> = (15..35).map(|v| g.label(v)).collect();
        assert!(left_labels.intersection(&right_labels).next().is_none());
        assert_eq!(bipartite_random(0, 0, 0.5, 4, 5).num_vertices(), 0);
    }

    #[test]
    fn ring_of_cliques_structure() {
        let g = ring_of_cliques(4, 4, 3);
        assert_eq!(g.num_vertices(), 16);
        // 4 cliques of 6 edges each + 4 bridges.
        assert_eq!(g.num_edges(), 4 * 6 + 4);
        assert!(g.is_connected());
        // Two cliques: only one bridge, no duplicate.
        let two = ring_of_cliques(2, 3, 2);
        assert_eq!(two.num_edges(), 2 * 3 + 1);
        assert_eq!(ring_of_cliques(1, 3, 2).num_edges(), 3);
        assert_eq!(ring_of_cliques(0, 3, 2).num_vertices(), 0);
    }

    #[test]
    fn power_law_cluster_is_clustered() {
        let plc = power_law_cluster(200, 2, 0.8, 4, 13);
        let ba = barabasi_albert(200, 2, 4, 13);
        assert_eq!(plc.num_vertices(), 200);
        assert!(plc.is_connected());
        // Triad formation should produce noticeably more triangles than plain BA.
        assert!(crate::algorithms::triangle_count(&plc) > crate::algorithms::triangle_count(&ba));
        assert_eq!(power_law_cluster(200, 2, 0.8, 4, 13), plc); // deterministic
    }

    #[test]
    fn caterpillar_shape() {
        let c = caterpillar(5, 3);
        assert_eq!(c.num_vertices(), 5 + 15);
        assert_eq!(c.num_edges(), 4 + 15);
        assert!(c.is_connected());
        assert_eq!(c.vertices_with_label(Label(1)).len(), 15);
        let bare = caterpillar(3, 0);
        assert_eq!(bare.num_edges(), 2);
        assert_eq!(caterpillar(0, 5).num_vertices(), 0);
    }

    #[test]
    fn molecule_like_has_many_small_skewed_components() {
        let g = molecule_like(40, 6, 8, 21);
        // Backbone atoms plus some substituents; never fewer than the backbones.
        assert!(g.num_vertices() >= 240);
        // Molecules are disjoint: many components, none spanning two molecules.
        assert!(g.num_components() >= 40);
        // Zipf labels: label 0 strictly more common than the rarest label used.
        let hist = g.label_histogram();
        let c0 = hist.iter().find(|(l, _)| *l == Label(0)).map(|&(_, c)| c).unwrap_or(0);
        let min = hist.iter().map(|&(_, c)| c).min().unwrap();
        assert!(c0 > 2 * min, "label 0 count {c0} should dominate rarest {min}");
        assert_eq!(molecule_like(40, 6, 8, 21), g); // deterministic
        assert_ne!(molecule_like(40, 6, 8, 22), g);
        assert_eq!(molecule_like(0, 6, 8, 21).num_vertices(), 0);
        // Single-atom molecules: no backbone or ring edges, only possible pendants.
        let tiny = molecule_like(3, 1, 8, 21);
        assert!(tiny.num_edges() <= tiny.num_vertices());
    }

    #[test]
    fn barabasi_albert_skewed_keeps_topology_and_skews_labels() {
        let skewed = barabasi_albert_skewed(300, 2, 6, 17);
        let plain = barabasi_albert(300, 2, 1, 17);
        assert_eq!(skewed.num_vertices(), plain.num_vertices());
        assert_eq!(skewed.num_edges(), plain.num_edges());
        assert!(skewed.is_connected());
        // Harmonic label distribution: label 0 carries roughly 1/H(6) ≈ 41% of
        // vertices — far above the uniform 1/6 share.
        let hist = skewed.label_histogram();
        let c0 = hist.iter().find(|(l, _)| *l == Label(0)).map(|&(_, c)| c).unwrap_or(0);
        assert!(c0 > 300 / 4, "label 0 count {c0} should exceed the uniform share");
        assert!(hist.len() >= 3, "skew must not collapse the alphabet entirely");
        assert_eq!(barabasi_albert_skewed(300, 2, 6, 17), skewed); // deterministic
    }

    #[test]
    fn sample_pattern_edge_cases() {
        let empty = LabeledGraph::new();
        assert!(sample_pattern(&empty, 3, 1).is_none());
        let one_edge = LabeledGraph::from_edges(&[0, 1], &[(0, 1)]);
        assert!(sample_pattern(&one_edge, 0, 1).is_none());
        let (p, _) = sample_pattern(&one_edge, 3, 1).unwrap();
        assert_eq!(p.num_edges(), 1);
    }
}
