//! # ffsm-match — the candidate-space subgraph-matching engine
//!
//! Filtering-based occurrence enumeration in the style of GraphQL / CFL-Match,
//! replacing the naive backtracker of `ffsm_graph::isomorphism` on the hot path
//! while keeping it as the differential-test oracle.  Three layers:
//!
//! 1. [`GraphIndex`] — built **once per data graph** (label inverted index, degree
//!    buckets, neighbour-label bitset fingerprints) and shared across all patterns
//!    of a mining session;
//! 2. [`CandidateSpace`] — per-pattern candidate sets, filtered by label / degree /
//!    fingerprint and refined to neighbourhood consistency (CFL-style) before any
//!    search happens;
//! 3. [`Matcher`] — an iterative, non-recursive enumerator that streams embeddings
//!    to an [`EmbeddingVisitor`](ffsm_graph::isomorphism::EmbeddingVisitor)
//!    (early termination for existence checks and budgets, counting without
//!    materialisation) in both induced and non-induced semantics, with
//!    deterministic root-partitioned parallelism.
//!
//! ## Determinism contract
//!
//! For a fixed `(pattern, graph, IsoConfig)` the embedding sequence is fully
//! deterministic: every candidate pool is ascending by vertex id, the matching
//! order depends only on the candidate space, failing-set backjumping skips only
//! subtrees that provably contain no embedding, and the parallel enumerator
//! partitions the root candidates into contiguous chunks whose buffered results
//! are concatenated in chunk order — so `threads` **never changes the output**,
//! exactly like the mining engine's level partition and the overlap builder of
//! `ffsm-core`.
//!
//! Across *backends* the contract is weaker, by design: the emission **multiset**
//! is identical everywhere, the emission *order* is fixed per backend but not
//! shared between them.  The naive oracle picks its matching order from label
//! frequencies, not candidate sets, and `Auto` follows whichever engine it
//! resolves to; differential tests therefore compare sorted multisets (all four
//! support measures are order-independent, so they are bit-for-bit stable across
//! backends).
//!
//! ## Backend dispatch
//!
//! [`enumerate`] dispatches on
//! [`IsoConfig::backend`](ffsm_graph::isomorphism::IsoConfig): `Naive` runs the
//! oracle, `CandidateSpace` runs this engine (building a throwaway [`GraphIndex`]
//! when the caller has none), and `Auto` resolves per pattern via
//! [`auto_backend`] from index statistics.  `ffsm-core`'s
//! `OccurrenceSet::enumerate` and the mining engine go through this function;
//! sessions build the index once and pass it to every per-pattern call, and hot
//! call sites thread a reusable [`SearchArena`] through [`enumerate_with`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod candidates;
mod enumerate;
mod index;
mod parallel;

pub use candidates::CandidateSpace;
pub use enumerate::SearchArena;
pub use index::GraphIndex;

use enumerate::MatchingOrder;
use ffsm_graph::isomorphism::{
    CollectVisitor, CountVisitor, EmbeddingVisitor, EnumerationResult, EnumeratorBackend,
    ExistsVisitor, IsoConfig,
};
use ffsm_graph::{LabeledGraph, Pattern};

/// A pattern prepared for matching against one indexed data graph: the refined
/// [`CandidateSpace`] plus the cost-aware matching order derived from it.
///
/// Build once per `(pattern, graph)` pair and query repeatedly; the expensive
/// per-graph work lives in the [`GraphIndex`], the per-pattern work here.
pub struct Matcher<'a> {
    pattern: &'a Pattern,
    graph: &'a LabeledGraph,
    index: &'a GraphIndex,
    space: CandidateSpace,
    order: MatchingOrder,
}

impl<'a> Matcher<'a> {
    /// Prepare `pattern` against `graph` using `index` (built from the same graph).
    /// The index is retained: the search loop consults its hub adjacency bitsets.
    pub fn new(pattern: &'a Pattern, graph: &'a LabeledGraph, index: &'a GraphIndex) -> Self {
        let space = CandidateSpace::build(pattern, graph, index);
        let order = MatchingOrder::build(pattern, &space);
        Matcher { pattern, graph, index, space, order }
    }

    /// The refined candidate space (for diagnostics: sizes, refinement rounds).
    pub fn space(&self) -> &CandidateSpace {
        &self.space
    }

    /// The matching order as a pattern-vertex sequence.
    pub fn matching_order(&self) -> &[ffsm_graph::VertexId] {
        &self.order.order
    }

    /// `true` if the candidate space already proves there is no embedding.
    fn trivially_empty(&self) -> bool {
        self.pattern.num_vertices() > self.graph.num_vertices() || self.space.has_empty_set()
    }

    /// Stream every embedding to `visitor` in the deterministic order; returns
    /// `false` if the visitor stopped the search early or `config.cancel` fired.
    ///
    /// Sequential (`config.threads` is ignored here): streaming is the O(1)-memory
    /// path.  The budget `config.max_embeddings` is *not* applied — wrap the
    /// visitor if a budget is wanted (as [`Matcher::enumerate`] does).
    pub fn stream<V: EmbeddingVisitor>(&self, config: IsoConfig, visitor: &mut V) -> bool {
        self.stream_with(config, &mut SearchArena::new(), visitor)
    }

    /// [`Matcher::stream`] reusing the caller's [`SearchArena`] — the hot-loop
    /// variant for call sites that evaluate many patterns (one arena per worker).
    pub fn stream_with<V: EmbeddingVisitor>(
        &self,
        config: IsoConfig,
        arena: &mut SearchArena,
        visitor: &mut V,
    ) -> bool {
        if self.pattern.num_vertices() == 0 {
            return visitor.visit(&[]) == ffsm_graph::isomorphism::VisitFlow::Continue;
        }
        if self.trivially_empty() {
            return true;
        }
        enumerate::run_search(
            self.graph,
            self.index,
            &self.space,
            &self.order,
            config.induced,
            None,
            &config.cancel,
            arena,
            visitor,
        )
    }

    /// Materialise all embeddings (up to `config.max_embeddings`), in parallel when
    /// `config.threads != 1`.  The result is identical for every thread count.
    pub fn enumerate(&self, config: IsoConfig) -> EnumerationResult {
        self.enumerate_with(config, &mut SearchArena::new())
    }

    /// [`Matcher::enumerate`] reusing the caller's [`SearchArena`].  Parallel runs
    /// (`config.threads != 1`) give each chunk worker its own arena instead.
    pub fn enumerate_with(&self, config: IsoConfig, arena: &mut SearchArena) -> EnumerationResult {
        if self.pattern.num_vertices() == 0 {
            return EnumerationResult { embeddings: vec![Vec::new()], complete: true };
        }
        if self.trivially_empty() {
            return EnumerationResult { embeddings: Vec::new(), complete: true };
        }
        let threads = parallel::resolve_threads(config.threads);
        if threads > 1 {
            let (embeddings, complete) = parallel::enumerate_parallel(
                self.graph,
                self.index,
                &self.space,
                &self.order,
                config.induced,
                config.max_embeddings,
                threads,
                &config.cancel,
            );
            return EnumerationResult { embeddings, complete };
        }
        let mut collect = CollectVisitor::with_limit(config.max_embeddings);
        let complete = self.stream_with(config, arena, &mut collect);
        EnumerationResult { embeddings: collect.embeddings, complete }
    }

    /// Count embeddings without materialising them (clamped to
    /// `config.max_embeddings`); `complete` is `false` when the budget was hit.
    pub fn count(&self, config: IsoConfig) -> (usize, bool) {
        if self.pattern.num_vertices() == 0 {
            return (1, true);
        }
        if self.trivially_empty() {
            return (0, true);
        }
        let threads = parallel::resolve_threads(config.threads);
        if threads > 1 {
            return parallel::count_parallel(
                self.graph,
                self.index,
                &self.space,
                &self.order,
                config.induced,
                config.max_embeddings,
                threads,
                &config.cancel,
            );
        }
        let mut counter = CountVisitor::with_limit(config.max_embeddings);
        let complete = self.stream(config, &mut counter);
        (counter.count, complete)
    }

    /// `true` if at least one embedding exists.  Stops at the first one.
    pub fn exists(&self, config: IsoConfig) -> bool {
        if self.pattern.num_vertices() == 0 {
            return true;
        }
        if self.trivially_empty() {
            return false;
        }
        let mut exists = ExistsVisitor::default();
        self.stream(config, &mut exists);
        exists.found
    }
}

/// Resolve [`EnumeratorBackend::Auto`] for one pattern against one indexed graph:
/// the backend the adaptive heuristic would run.
///
/// Inputs (all from [`GraphIndex`] statistics — no enumeration happens here):
///
/// * **pattern size** — patterns with at most one edge go naive: a candidate
///   space cannot prune below what a label/degree scan already achieves, so its
///   build cost is pure overhead;
/// * **estimated candidate reduction** — the mean over pattern vertices of
///   `|label/degree bucket| / V`.  Near 1.0 the initial filter keeps almost the
///   whole graph per pattern vertex;
/// * **label entropy** — low entropy (≤ ~1 bit: effectively ≤ 2 labels) means
///   refinement has little signal to propagate.
///
/// A *small* pattern (≤ 3 vertices) on a dense, label-poor graph (reduction
/// ≥ 0.5, entropy ≤ 1.05 bits) goes naive — the candidate space degenerates to
/// near-whole label classes and the search trees coincide, so building the space
/// is wasted work.  Larger patterns stay on the candidate-space engine even on
/// dense graphs: its failing-set backjumping and intersected pools win the search
/// itself.  The decision is deterministic for a `(pattern, index)` pair, and both
/// backends emit identical embedding multisets, so `Auto` never changes a support
/// value — only which engine computes it (the emission *order* may follow the
/// naive enumerator's instead of this crate's).
pub fn auto_backend(pattern: &Pattern, index: &GraphIndex) -> EnumeratorBackend {
    let n_data = index.num_vertices();
    let n_pat = pattern.num_vertices();
    if n_data == 0 || n_pat == 0 {
        return EnumeratorBackend::CandidateSpace;
    }
    if pattern.num_edges() <= 1 {
        return EnumeratorBackend::Naive;
    }
    let reduction = pattern
        .vertices()
        .map(|u| {
            index.vertices_with_min_degree(pattern.label(u), pattern.degree(u)).len() as f64
                / n_data as f64
        })
        .sum::<f64>()
        / n_pat as f64;
    if n_pat <= 3 && reduction >= 0.5 && index.label_entropy() <= 1.05 {
        return EnumeratorBackend::Naive;
    }
    EnumeratorBackend::CandidateSpace
}

/// Enumerate the occurrences of `pattern` in `graph`, dispatching on
/// `config.backend`.
///
/// * [`EnumeratorBackend::Naive`] — the recursive oracle of
///   `ffsm_graph::isomorphism` (always sequential);
/// * [`EnumeratorBackend::CandidateSpace`] — this crate's engine, reusing `index`
///   when given and building a throwaway [`GraphIndex`] otherwise;
/// * [`EnumeratorBackend::Auto`] — resolves to one of the two per pattern via
///   [`auto_backend`].
///
/// This is the single entry point `ffsm-core` and the mining engine call; a mining
/// session builds one index up front and passes it to every per-pattern call so the
/// per-graph work is never repeated.
pub fn enumerate(
    pattern: &Pattern,
    graph: &LabeledGraph,
    index: Option<&GraphIndex>,
    config: IsoConfig,
) -> EnumerationResult {
    enumerate_with(pattern, graph, index, config, &mut SearchArena::new())
}

/// [`enumerate`] reusing the caller's [`SearchArena`] — the mining engine's level
/// workers call this with one long-lived arena each.  (The naive backend has no
/// arena to reuse; the parameter is simply unused there.)
pub fn enumerate_with(
    pattern: &Pattern,
    graph: &LabeledGraph,
    index: Option<&GraphIndex>,
    config: IsoConfig,
    arena: &mut SearchArena,
) -> EnumerationResult {
    let run_space = |index: &GraphIndex, arena: &mut SearchArena| {
        // Fine-grained spans are sampled only when the arena's owner opted in;
        // refinement-round counting is always on (one add per pattern).
        let space_start = arena.timing_enabled().then(std::time::Instant::now);
        let matcher = Matcher::new(pattern, graph, index);
        if let Some(t0) = space_start {
            arena.record_phase(ffsm_obs::Phase::CandidateSpace, t0.elapsed());
        }
        arena.add_refine_rounds(matcher.space().refinement_rounds() as u64);
        let search_start = arena.timing_enabled().then(std::time::Instant::now);
        let result = matcher.enumerate_with(config.clone(), arena);
        if let Some(t0) = search_start {
            arena.record_phase(ffsm_obs::Phase::Search, t0.elapsed());
        }
        result
    };
    match config.backend {
        EnumeratorBackend::Naive => {
            ffsm_graph::isomorphism::enumerate_embeddings(pattern, graph, config)
        }
        EnumeratorBackend::CandidateSpace => match index {
            Some(index) => run_space(index, arena),
            None => run_space(&GraphIndex::build(graph), arena),
        },
        EnumeratorBackend::Auto => {
            let owned;
            let index = match index {
                Some(index) => index,
                None => {
                    owned = GraphIndex::build(graph);
                    &owned
                }
            };
            match auto_backend(pattern, index) {
                EnumeratorBackend::Naive => {
                    ffsm_graph::isomorphism::enumerate_embeddings(pattern, graph, config)
                }
                _ => run_space(index, arena),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::isomorphism::{enumerate_embeddings, Embedding, VisitFlow};
    use ffsm_graph::{generators, patterns, Label};

    fn sorted(mut embeddings: Vec<Embedding>) -> Vec<Embedding> {
        embeddings.sort();
        embeddings
    }

    /// The engine and the oracle agree (as multisets) on a mixed bag of patterns
    /// over a random labelled graph, in both semantics.
    #[test]
    fn engine_matches_oracle_on_standard_shapes() {
        let graph = generators::gnm_random(40, 90, 3, 7);
        let index = GraphIndex::build(&graph);
        let shapes = [
            patterns::single_edge(Label(0), Label(1)),
            patterns::uniform_path(3, Label(0)),
            patterns::path(&[Label(0), Label(1), Label(2)]),
            patterns::uniform_clique(3, Label(1)),
            patterns::uniform_star(3, Label(2), Label(0)),
        ];
        for pattern in &shapes {
            for induced in [false, true] {
                let config = IsoConfig { induced, ..IsoConfig::default() };
                let naive = enumerate_embeddings(pattern, &graph, config.clone());
                let matcher = Matcher::new(pattern, &graph, &index);
                let indexed = matcher.enumerate(config);
                assert!(naive.complete && indexed.complete);
                assert_eq!(
                    sorted(indexed.embeddings),
                    sorted(naive.embeddings),
                    "induced={induced}"
                );
            }
        }
    }

    #[test]
    fn parallel_enumeration_preserves_sequential_order() {
        let graph = generators::star_overlap(6, 8);
        let pattern = patterns::single_edge(Label(0), Label(1));
        let index = GraphIndex::build(&graph);
        let matcher = Matcher::new(&pattern, &graph, &index);
        let sequential = matcher.enumerate(IsoConfig::default());
        for threads in [2usize, 3, 8, 0] {
            let config = IsoConfig { threads, ..IsoConfig::default() };
            let parallel = matcher.enumerate(config);
            // Exact order, not just multiset: the contract of the root partition.
            assert_eq!(parallel.embeddings, sequential.embeddings, "threads={threads}");
            assert_eq!(parallel.complete, sequential.complete);
        }
    }

    #[test]
    fn budget_truncates_identically_across_thread_counts() {
        let graph = generators::star_overlap(5, 5);
        let pattern = patterns::single_edge(Label(0), Label(1));
        let index = GraphIndex::build(&graph);
        let matcher = Matcher::new(&pattern, &graph, &index);
        let limit = 7;
        let sequential = matcher.enumerate(IsoConfig::with_limit(limit));
        assert_eq!(sequential.embeddings.len(), limit);
        assert!(!sequential.complete);
        for threads in [2usize, 4] {
            let config = IsoConfig { threads, ..IsoConfig::with_limit(limit) };
            let parallel = matcher.enumerate(config);
            assert_eq!(parallel.embeddings, sequential.embeddings, "threads={threads}");
            assert!(!parallel.complete);
        }
    }

    #[test]
    fn zero_and_exact_budgets_are_thread_invariant() {
        let graph = generators::star_overlap(4, 4);
        let pattern = patterns::single_edge(Label(0), Label(1));
        let index = GraphIndex::build(&graph);
        let matcher = Matcher::new(&pattern, &graph, &index);
        let total = matcher.enumerate(IsoConfig::default()).len();
        assert!(total > 1);
        // A zero budget yields nothing; a budget of exactly the embedding count is
        // a *complete* enumeration; one less truncates — identically on every
        // thread count (the determinism contract at the budget edges).
        for (limit, expect_len, expect_complete) in
            [(0, 0, false), (total - 1, total - 1, false), (total, total, true)]
        {
            for threads in [1usize, 2, 3] {
                let config = IsoConfig { threads, ..IsoConfig::with_limit(limit) };
                let result = matcher.enumerate(config.clone());
                assert_eq!(result.len(), expect_len, "limit={limit}, threads={threads}");
                assert_eq!(result.complete, expect_complete, "limit={limit}, threads={threads}");
                assert_eq!(
                    matcher.count(config),
                    (expect_len, expect_complete),
                    "count at limit={limit}, threads={threads}"
                );
            }
        }
    }

    #[test]
    fn count_and_exists_take_the_streaming_path() {
        let graph = generators::replicated(
            &ffsm_graph::LabeledGraph::from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]),
            4,
            false,
        );
        let triangle = patterns::uniform_clique(3, Label(0));
        let index = GraphIndex::build(&graph);
        let matcher = Matcher::new(&triangle, &graph, &index);
        let (count, complete) = matcher.count(IsoConfig::default());
        assert_eq!(count, 4 * 6);
        assert!(complete);
        for threads in [2usize, 5] {
            let config = IsoConfig { threads, ..IsoConfig::default() };
            assert_eq!(matcher.count(config), (count, true), "threads={threads}");
        }
        // Budgeted count clamps and reports incompleteness, on every thread count.
        for threads in [1usize, 3] {
            let config = IsoConfig { threads, ..IsoConfig::with_limit(5) };
            assert_eq!(matcher.count(config), (5, false));
        }
        assert!(matcher.exists(IsoConfig::default()));
        let missing = patterns::uniform_clique(4, Label(0));
        let matcher = Matcher::new(&missing, &graph, &index);
        assert!(!matcher.exists(IsoConfig::default()));
    }

    #[test]
    fn streaming_early_termination() {
        let graph = generators::star_overlap(4, 4);
        let pattern = patterns::single_edge(Label(0), Label(1));
        let index = GraphIndex::build(&graph);
        let matcher = Matcher::new(&pattern, &graph, &index);
        let mut seen = 0usize;
        let complete = matcher.stream(IsoConfig::default(), &mut |_: &[u32]| {
            seen += 1;
            if seen == 3 {
                VisitFlow::Stop
            } else {
                VisitFlow::Continue
            }
        });
        assert!(!complete);
        assert_eq!(seen, 3);
    }

    #[test]
    fn dispatch_honours_the_backend_tag() {
        let graph = generators::gnm_random(20, 40, 2, 3);
        let pattern = patterns::single_edge(Label(0), Label(1));
        let naive = enumerate(
            &pattern,
            &graph,
            None,
            IsoConfig::default().with_backend(EnumeratorBackend::Naive),
        );
        let indexed = enumerate(&pattern, &graph, None, IsoConfig::default());
        let index = GraphIndex::build(&graph);
        let shared = enumerate(&pattern, &graph, Some(&index), IsoConfig::default());
        assert_eq!(sorted(indexed.embeddings.clone()), sorted(naive.embeddings));
        assert_eq!(indexed.embeddings, shared.embeddings);
    }

    #[test]
    fn auto_heuristic_is_deterministic_and_sound() {
        // Dense, label-poor graph: tiny patterns resolve to naive, larger ones to
        // the candidate-space engine.
        let dense = generators::community_graph(2, 12, 0.8, 0.3, 2, 11);
        let dense_ix = GraphIndex::build(&dense);
        let edge = patterns::single_edge(Label(0), Label(1));
        assert_eq!(auto_backend(&edge, &dense_ix), EnumeratorBackend::Naive);
        let square = patterns::cycle(&[Label(0), Label(1), Label(0), Label(1)]);
        assert_eq!(auto_backend(&square, &dense_ix), EnumeratorBackend::CandidateSpace);
        // Label-rich graph: multi-edge patterns stay on the candidate space.
        let sparse = generators::gnm_random(60, 90, 5, 3);
        let sparse_ix = GraphIndex::build(&sparse);
        let path = patterns::path(&[Label(0), Label(1), Label(2)]);
        assert_eq!(auto_backend(&path, &sparse_ix), EnumeratorBackend::CandidateSpace);
        // Auto dispatch returns the same multiset as both fixed backends.
        for (graph, index) in [(&dense, &dense_ix), (&sparse, &sparse_ix)] {
            for pattern in [&edge, &square, &path] {
                let auto = enumerate(
                    pattern,
                    graph,
                    Some(index),
                    IsoConfig::default().with_backend(EnumeratorBackend::Auto),
                );
                let naive = enumerate(
                    pattern,
                    graph,
                    Some(index),
                    IsoConfig::default().with_backend(EnumeratorBackend::Naive),
                );
                assert!(auto.complete && naive.complete);
                assert_eq!(sorted(auto.embeddings), sorted(naive.embeddings));
            }
        }
    }

    #[test]
    fn arena_reuse_through_the_dispatch_entry_point() {
        let graph = generators::gnm_random(30, 70, 2, 5);
        let index = GraphIndex::build(&graph);
        let mut arena = SearchArena::new();
        let shapes = [
            patterns::single_edge(Label(0), Label(1)),
            patterns::uniform_clique(3, Label(1)),
            patterns::uniform_path(3, Label(0)),
        ];
        for backend in
            [EnumeratorBackend::CandidateSpace, EnumeratorBackend::Auto, EnumeratorBackend::Naive]
        {
            for pattern in &shapes {
                let config = IsoConfig::default().with_backend(backend);
                let reused =
                    enumerate_with(pattern, &graph, Some(&index), config.clone(), &mut arena);
                let fresh = enumerate(pattern, &graph, Some(&index), config);
                assert_eq!(reused.embeddings, fresh.embeddings, "backend={backend}");
                assert_eq!(reused.complete, fresh.complete);
            }
        }
    }

    #[test]
    fn empty_and_oversized_patterns() {
        let graph = ffsm_graph::LabeledGraph::from_edges(&[0, 0], &[(0, 1)]);
        let index = GraphIndex::build(&graph);
        let empty = ffsm_graph::LabeledGraph::new();
        let matcher = Matcher::new(&empty, &graph, &index);
        let result = matcher.enumerate(IsoConfig::default());
        assert_eq!(result.embeddings, vec![Vec::<u32>::new()]);
        assert!(matcher.exists(IsoConfig::default()));
        assert_eq!(matcher.count(IsoConfig::default()), (1, true));
        let big = patterns::uniform_path(3, Label(0));
        let matcher = Matcher::new(&big, &graph, &index);
        assert!(matcher.enumerate(IsoConfig::default()).is_empty());
        assert!(!matcher.exists(IsoConfig::default()));
    }
}
