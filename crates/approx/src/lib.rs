//! # ffsm-approx — certified approximate mining
//!
//! This crate turns the paper's bounding theory into a fast path.  The
//! containment chain of Section 4.4 (`σMIS = σMIES ≤ νMIES = νMVC ≤ σMVC ≤
//! σMI ≤ σMNI`), the cardinality statistics of the matching index and the LP
//! relaxations of Section 4.3 each yield a cheap, *sound* bound on a pattern's
//! support.  The [`BoundsEvaluator`] combines them into a certified
//! [`SupportInterval`] `[lo, hi]` and decides frequent/infrequent immediately
//! when the interval clears the threshold — occurrences are enumerated, and
//! the NP-hard exact solvers run, only inside the uncertain band.
//!
//! Every interval carries a [`Certificate`] naming the argument that produced
//! it, so downstream consumers (stream frames, the serve protocol, anytime
//! sessions interrupted by a deadline) can report not just *what* is known
//! about a pattern's support but *why* it is known.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evaluator;
mod interval;

pub use evaluator::{BoundsEvaluator, BoundsOutcome};
pub use interval::{Certificate, SupportInterval};
