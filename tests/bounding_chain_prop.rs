//! Property-based integration tests for the bounding chain (Theorem 4.5/4.6 and the
//! summary formula at the end of Section 4.4):
//!
//! σMIS = σMIES ≤ νMIES = νMVC ≤ σMVC ≤ σMI ≤ σMNI
//!
//! The properties are exercised on randomly generated data graphs and randomly
//! sampled connected patterns, across generator families and MI strategies.

use ffsm::core::measures::{MeasureConfig, MiStrategy, SupportMeasures};
use ffsm::core::occurrences::{HypergraphBasis, OccurrenceSet};
use ffsm::core::verify_bounding_chain;
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::graph::{generators, LabeledGraph};
use proptest::prelude::*;

/// Build a random data graph from a compact parameter tuple.
fn build_graph(family: u8, n: usize, m: usize, labels: u32, seed: u64) -> LabeledGraph {
    match family % 3 {
        0 => generators::gnm_random(n, m, labels, seed),
        1 => generators::barabasi_albert(n, 2 + (seed % 3) as usize, labels, seed),
        _ => generators::community_graph(3, n / 3 + 1, 0.25, 0.02, labels, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn chain_holds_on_random_workloads(
        family in 0u8..3,
        n in 16usize..50,
        density in 1usize..4,
        labels in 1u32..4,
        seed in 0u64..10_000,
        pattern_edges in 1usize..4,
    ) {
        let graph = build_graph(family, n, n * density, labels, seed);
        prop_assume!(graph.num_edges() > 0);
        let Some((pattern, _)) = generators::sample_pattern(&graph, pattern_edges, seed ^ 0xabcd) else {
            return Ok(());
        };
        // The chain relations hold for whatever (possibly truncated) occurrence set is
        // enumerated; the cap only bounds the cost of the exact MIS/MVC searches
        // (quadratic overlap graph + branch-and-bound) at property-test scale.
        let config = MeasureConfig {
            iso_config: IsoConfig::with_limit(300),
            search_budget: ffsm::hypergraph::SearchBudget(30_000),
            ..MeasureConfig::default()
        };
        let report = verify_bounding_chain(&pattern, &graph, &config);
        prop_assert!(
            report.holds(),
            "chain violated (family {family}, seed {seed}): {:?} | {}",
            report.violations(),
            report.summary()
        );
    }

    #[test]
    fn mi_is_sandwiched_for_every_strategy(
        n in 16usize..50,
        labels in 1u32..4,
        seed in 0u64..10_000,
        pattern_edges in 1usize..4,
    ) {
        let graph = generators::gnm_random(n, n * 2, labels, seed);
        prop_assume!(graph.num_edges() > 0);
        let Some((pattern, _)) = generators::sample_pattern(&graph, pattern_edges, seed ^ 0x77) else {
            return Ok(());
        };
        // MVC's exact search is the expensive part; cap the occurrence count so the
        // property stays cheap (the theorems hold for any occurrence set).
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::with_limit(400));
        prop_assume!(occ.num_occurrences() > 0);
        let m = SupportMeasures::new(occ, MeasureConfig::default());
        let mvc = m.mvc().value;
        let mni = m.mni();
        for strategy in [MiStrategy::Singletons, MiStrategy::AutomorphismOrbits, MiStrategy::LabelClasses] {
            let mi = m.mi_with(strategy);
            // Theorem 3.4 and Theorem 3.6: σMVC ≤ σMI ≤ σMNI for every strategy.
            prop_assert!(mi <= mni, "MI ({strategy:?}) = {mi} > MNI = {mni}");
            prop_assert!(mvc <= mi, "MVC = {mvc} > MI ({strategy:?}) = {mi}");
        }
    }

    #[test]
    fn mis_equals_mies_on_both_bases(
        n in 15usize..60,
        labels in 1u32..4,
        seed in 0u64..10_000,
    ) {
        let graph = generators::gnm_random(n, n * 2, labels, seed);
        prop_assume!(graph.num_edges() > 0);
        let Some((pattern, _)) = generators::sample_pattern(&graph, 2, seed ^ 0x3333) else {
            return Ok(());
        };
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::with_limit(2_000));
        prop_assume!(occ.num_occurrences() > 0 && occ.num_occurrences() < 400);
        for basis in [HypergraphBasis::Occurrence, HypergraphBasis::Instance] {
            let config = MeasureConfig { basis, ..MeasureConfig::default() };
            let m = SupportMeasures::new(occ.clone(), config);
            let mis = m.mis();
            let mies = m.mies();
            if mis.optimal && mies.optimal {
                // Theorem 4.1.
                prop_assert_eq!(mis.value, mies.value, "basis {:?}", basis);
            }
        }
    }

    #[test]
    fn lp_duality_holds(
        n in 15usize..60,
        labels in 1u32..3,
        seed in 0u64..10_000,
    ) {
        let graph = generators::gnm_random(n, n * 2, labels, seed);
        prop_assume!(graph.num_edges() > 0);
        let Some((pattern, _)) = generators::sample_pattern(&graph, 2, seed ^ 0x9999) else {
            return Ok(());
        };
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::with_limit(500));
        prop_assume!(occ.num_occurrences() > 0);
        let m = SupportMeasures::new(occ, MeasureConfig::default());
        let cover = m.relaxed_mvc();
        let pack = m.relaxed_mies();
        // Theorem 4.6 (LP duality).
        prop_assert!((cover - pack).abs() < 1e-5, "duality gap: {cover} vs {pack}");
    }
}
