//! Graph transformations.
//!
//! These are the building blocks behind several experiments:
//!
//! * [`shuffle_vertices`] — randomly permutes vertex identifiers; every support
//!   measure must be invariant under this (isomorphism-invariance property tests);
//! * [`forget_labels`] / [`coarsen_labels`] — collapse the label alphabet, moving a
//!   dataset along the "label selectivity" axis of the evaluation (fewer labels →
//!   more occurrences → more overlap);
//! * [`disjoint_union`] — composes data graphs; MVC/MIS/MIES are additive under it
//!   (the "additiveness" extension of the paper's Section 6), MNI/MI are not;
//! * [`quotient_by`] — contracts vertex groups (e.g. automorphism orbits of a
//!   pattern) into single vertices, the construction behind the MI measure's
//!   "coarse-grained" view of a pattern (Figure 7);
//! * [`line_graph`] — the classic edge-to-vertex transform, used to re-express
//!   edge-overlap questions as vertex-overlap questions.

use crate::{GraphError, Label, LabeledGraph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Apply a relabeling function to every vertex label.
pub fn map_labels(graph: &LabeledGraph, f: impl Fn(Label) -> Label) -> LabeledGraph {
    let mut g = LabeledGraph::with_capacity(graph.num_vertices());
    for v in graph.vertices() {
        g.add_vertex(f(graph.label(v)));
    }
    for (u, v) in graph.edges() {
        g.add_edge(u, v).expect("copied edge is valid");
    }
    g
}

/// Replace every label with `Label(0)`, erasing all label information.  The number of
/// occurrences of any pattern can only grow under this transform.
pub fn forget_labels(graph: &LabeledGraph) -> LabeledGraph {
    map_labels(graph, |_| Label(0))
}

/// Reduce the label alphabet to `num_labels` symbols by taking labels modulo
/// `num_labels` (at least 1).
pub fn coarsen_labels(graph: &LabeledGraph, num_labels: u32) -> LabeledGraph {
    let k = num_labels.max(1);
    map_labels(graph, |l| Label(l.0 % k))
}

/// Rename vertices by the permutation `perm` (`perm[old] = new`); labels and edges
/// follow their vertex.  Returns an error if `perm` is not a permutation of
/// `0..num_vertices`.
pub fn permute_vertices(
    graph: &LabeledGraph,
    perm: &[VertexId],
) -> Result<LabeledGraph, GraphError> {
    let n = graph.num_vertices();
    if perm.len() != n {
        return Err(GraphError::Io(format!(
            "permutation has length {} but the graph has {} vertices",
            perm.len(),
            n
        )));
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if (p as usize) >= n || seen[p as usize] {
            return Err(GraphError::Io(format!("invalid permutation entry {p}")));
        }
        seen[p as usize] = true;
    }
    let mut labels = vec![Label(0); n];
    for v in graph.vertices() {
        labels[perm[v as usize] as usize] = graph.label(v);
    }
    let mut g = LabeledGraph::with_capacity(n);
    for &l in &labels {
        g.add_vertex(l);
    }
    for (u, v) in graph.edges() {
        g.add_edge(perm[u as usize], perm[v as usize]).expect("permuted edge valid");
    }
    Ok(g)
}

/// Randomly permute the vertex identifiers (seeded, deterministic).  The result is
/// isomorphic to the input; support measures must return identical values on both.
pub fn shuffle_vertices(graph: &LabeledGraph, seed: u64) -> LabeledGraph {
    let n = graph.num_vertices();
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    permute_vertices(graph, &perm).expect("shuffled permutation is valid")
}

/// Disjoint union of two graphs; vertices of `b` are shifted by `a.num_vertices()`.
pub fn disjoint_union(a: &LabeledGraph, b: &LabeledGraph) -> LabeledGraph {
    let mut g = LabeledGraph::with_capacity(a.num_vertices() + b.num_vertices());
    for v in a.vertices() {
        g.add_vertex(a.label(v));
    }
    let offset = a.num_vertices() as VertexId;
    for v in b.vertices() {
        g.add_vertex(b.label(v));
    }
    for (u, v) in a.edges() {
        g.add_edge(u, v).expect("edge");
    }
    for (u, v) in b.edges() {
        g.add_edge(offset + u, offset + v).expect("edge");
    }
    g
}

/// Disjoint union of many graphs.
pub fn disjoint_union_all(graphs: &[LabeledGraph]) -> LabeledGraph {
    graphs.iter().fold(LabeledGraph::new(), |acc, g| disjoint_union(&acc, g))
}

/// Contract each group of `groups` into a single vertex.  Vertices not listed in any
/// group keep their own (singleton) vertex.  Edges between groups become single edges;
/// edges inside a group disappear.  The contracted vertex takes the label of the
/// group's smallest original vertex.
///
/// Returns the quotient graph and the map `original vertex -> quotient vertex`.
///
/// # Errors
/// Returns an error if a vertex appears in more than one group or is out of range.
pub fn quotient_by(
    graph: &LabeledGraph,
    groups: &[Vec<VertexId>],
) -> Result<(LabeledGraph, Vec<VertexId>), GraphError> {
    let n = graph.num_vertices();
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    for (gi, group) in groups.iter().enumerate() {
        for &v in group {
            if (v as usize) >= n {
                return Err(GraphError::UnknownVertex(v));
            }
            if assignment[v as usize].is_some() {
                return Err(GraphError::Io(format!("vertex {v} appears in two groups")));
            }
            assignment[v as usize] = Some(gi);
        }
    }
    // Build quotient vertices: one per non-empty group (in order), then one per
    // unassigned vertex (in id order).
    let mut quotient = LabeledGraph::new();
    let mut group_vertex: Vec<Option<VertexId>> = vec![None; groups.len()];
    let mut mapping = vec![0 as VertexId; n];
    for (gi, group) in groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        let representative = *group.iter().min().expect("non-empty group");
        let q = quotient.add_vertex(graph.label(representative));
        group_vertex[gi] = Some(q);
    }
    for v in 0..n {
        match assignment[v] {
            Some(gi) => mapping[v] = group_vertex[gi].expect("group has a vertex"),
            None => {
                let q = quotient.add_vertex(graph.label(v as VertexId));
                mapping[v] = q;
            }
        }
    }
    for (u, v) in graph.edges() {
        let qu = mapping[u as usize];
        let qv = mapping[v as usize];
        if qu != qv {
            quotient.add_edge(qu, qv).expect("quotient edge valid");
        }
    }
    Ok((quotient, mapping))
}

/// The line graph `L(G)`: one vertex per edge of `G`, two line-graph vertices adjacent
/// when the corresponding edges of `G` share an endpoint.  Line-graph vertex `i`
/// corresponds to the `i`-th edge of `graph.edges()` and is labelled by the smaller of
/// the two endpoint labels (a symmetric choice).
///
/// Returns the line graph and the list of original edges in vertex order.
pub fn line_graph(graph: &LabeledGraph) -> (LabeledGraph, Vec<(VertexId, VertexId)>) {
    let edges: Vec<(VertexId, VertexId)> = graph.edges().collect();
    let mut lg = LabeledGraph::with_capacity(edges.len());
    for &(u, v) in &edges {
        let la = graph.label(u);
        let lb = graph.label(v);
        lg.add_vertex(if la <= lb { la } else { lb });
    }
    // Bucket edges by endpoint so adjacency is built in O(sum deg^2) over vertices.
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); graph.num_vertices()];
    for (i, &(u, v)) in edges.iter().enumerate() {
        incident[u as usize].push(i);
        incident[v as usize].push(i);
    }
    for bucket in &incident {
        for (a, &i) in bucket.iter().enumerate() {
            for &j in &bucket[a + 1..] {
                lg.add_edge(i as VertexId, j as VertexId).expect("line-graph edge valid");
            }
        }
    }
    (lg, edges)
}

/// Complement graph (same labels, edge present iff absent in the input).  Quadratic in
/// the number of vertices — only intended for patterns and other small graphs.
pub fn complement(graph: &LabeledGraph) -> LabeledGraph {
    let n = graph.num_vertices();
    let mut g = LabeledGraph::with_capacity(n);
    for v in graph.vertices() {
        g.add_vertex(graph.label(v));
    }
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if !graph.has_edge(u, v) {
                g.add_edge(u, v).expect("complement edge valid");
            }
        }
    }
    g
}

/// Subdivide every edge once: each edge `u—v` becomes `u—x—v` with a fresh vertex `x`
/// labelled `subdivision_label`.  Useful to build sparse, automorphism-rich workloads.
pub fn subdivide_edges(graph: &LabeledGraph, subdivision_label: Label) -> LabeledGraph {
    let mut g = LabeledGraph::with_capacity(graph.num_vertices() + graph.num_edges());
    for v in graph.vertices() {
        g.add_vertex(graph.label(v));
    }
    for (u, v) in graph.edges() {
        let x = g.add_vertex(subdivision_label);
        g.add_edge(u, x).expect("edge");
        g.add_edge(x, v).expect("edge");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isomorphism::are_isomorphic;
    use crate::{generators, patterns};

    fn labelled_path() -> LabeledGraph {
        LabeledGraph::from_edges(&[0, 1, 2, 1], &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn map_and_forget_labels() {
        let g = labelled_path();
        let f = forget_labels(&g);
        assert_eq!(f.num_edges(), g.num_edges());
        assert!(f.vertices().all(|v| f.label(v) == Label(0)));
        let mapped = map_labels(&g, |l| Label(l.0 + 10));
        assert_eq!(mapped.label(2), Label(12));
        let coarse = coarsen_labels(&g, 2);
        assert_eq!(coarse.label(2), Label(0));
        assert_eq!(coarse.label(1), Label(1));
        let degenerate = coarsen_labels(&g, 0); // clamps to 1 label
        assert!(degenerate.vertices().all(|v| degenerate.label(v) == Label(0)));
    }

    #[test]
    fn permutation_preserves_structure() {
        let g = labelled_path();
        let p = permute_vertices(&g, &[3, 2, 1, 0]).unwrap();
        assert_eq!(p.num_edges(), 3);
        assert!(p.has_edge(3, 2));
        assert_eq!(p.label(3), Label(0));
        assert!(are_isomorphic(&g, &p));
    }

    #[test]
    fn invalid_permutations_rejected() {
        let g = labelled_path();
        assert!(permute_vertices(&g, &[0, 1]).is_err());
        assert!(permute_vertices(&g, &[0, 0, 1, 2]).is_err());
        assert!(permute_vertices(&g, &[0, 1, 2, 9]).is_err());
    }

    #[test]
    fn shuffle_is_isomorphic_and_deterministic() {
        let g = generators::gnm_random(40, 80, 3, 7);
        let s1 = shuffle_vertices(&g, 11);
        let s2 = shuffle_vertices(&g, 11);
        assert_eq!(s1, s2);
        assert_eq!(s1.num_edges(), g.num_edges());
        assert_eq!(s1.label_histogram(), g.label_histogram());
        let small = labelled_path();
        assert!(are_isomorphic(&small, &shuffle_vertices(&small, 3)));
    }

    #[test]
    fn union_counts_add_up() {
        let a = patterns::uniform_clique(3, Label(0));
        let b = labelled_path();
        let u = disjoint_union(&a, &b);
        assert_eq!(u.num_vertices(), 7);
        assert_eq!(u.num_edges(), 6);
        assert_eq!(u.num_components(), 2);
        assert!(u.has_edge(3, 4)); // b's (0,1) shifted by 3
        let all = disjoint_union_all(&[a.clone(), a.clone(), a]);
        assert_eq!(all.num_components(), 3);
        assert_eq!(disjoint_union_all(&[]).num_vertices(), 0);
    }

    #[test]
    fn quotient_contracts_groups() {
        // Path 0-1-2-3; contract {1,2}: result is a path of 3 vertices.
        let g = labelled_path();
        let (q, map) = quotient_by(&g, &[vec![1, 2]]).unwrap();
        assert_eq!(q.num_vertices(), 3);
        assert_eq!(q.num_edges(), 2);
        assert_eq!(map[1], map[2]);
        assert_ne!(map[0], map[3]);
        // Group label comes from the smallest member (vertex 1, Label(1)).
        assert_eq!(q.label(map[1]), Label(1));
    }

    #[test]
    fn quotient_rejects_bad_groups() {
        let g = labelled_path();
        assert!(quotient_by(&g, &[vec![1], vec![1]]).is_err());
        assert!(quotient_by(&g, &[vec![99]]).is_err());
        // Empty groups are allowed and ignored.
        let (q, _) = quotient_by(&g, &[vec![], vec![0, 1]]).unwrap();
        assert_eq!(q.num_vertices(), 3);
    }

    #[test]
    fn line_graph_of_path_and_triangle() {
        // Line graph of a path with 3 edges is a path with 2 edges.
        let (lg, edges) = line_graph(&labelled_path());
        assert_eq!(lg.num_vertices(), 3);
        assert_eq!(lg.num_edges(), 2);
        assert_eq!(edges.len(), 3);
        // Line graph of a triangle is a triangle.
        let t = patterns::uniform_clique(3, Label(4));
        let (lt, _) = line_graph(&t);
        assert_eq!(lt.num_vertices(), 3);
        assert_eq!(lt.num_edges(), 3);
        // Empty graph.
        let (le, e) = line_graph(&LabeledGraph::new());
        assert!(le.is_empty());
        assert!(e.is_empty());
    }

    #[test]
    fn complement_roundtrip() {
        let g = patterns::uniform_path(4, Label(0));
        let c = complement(&g);
        assert_eq!(g.num_edges() + c.num_edges(), 4 * 3 / 2);
        let cc = complement(&c);
        assert_eq!(cc, g);
        assert_eq!(complement(&LabeledGraph::new()).num_vertices(), 0);
    }

    #[test]
    fn subdivision_doubles_edges() {
        let t = patterns::uniform_clique(3, Label(0));
        let s = subdivide_edges(&t, Label(9));
        assert_eq!(s.num_vertices(), 3 + 3);
        assert_eq!(s.num_edges(), 6);
        assert!(crate::algorithms::is_bipartite(&s));
        assert_eq!(s.vertices_with_label(Label(9)).len(), 3);
    }
}
