//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn name(arg in lo..hi, ...) { ... } }`
//!   with integer range strategies (`Range` / `RangeInclusive`);
//! * [`ProptestConfig`] with a `cases` count (`with_cases`, struct-update syntax);
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!` and early `return Ok(())`.
//!
//! Cases are sampled from a generator seeded deterministically per test name, so
//! failures are reproducible run to run.  There is no shrinking: a failing case
//! panics with the sampled arguments printed.

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` and is not counted.
    Reject(String),
    /// A `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Build a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections across the whole test.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 4096 }
    }
}

/// Deterministic per-test generator (SplitMix64 over an FNV-1a hash of the name).
#[derive(Debug, Clone)]
pub struct ShimRng {
    state: u64,
}

impl ShimRng {
    /// Seed from a test name.
    pub fn seed_for(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        ShimRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Value-generation strategies.
pub mod strategy {
    /// A source of arbitrary values for one test argument.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Sample one value.
        fn pick(&self, rng: &mut super::ShimRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut super::ShimRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut super::ShimRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// The common imports of the real crate's prelude that this workspace uses.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, TestCaseError,
        TestCaseResult,
    };
}

/// Define property tests.  See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::ShimRng::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_add(config.max_global_rejects);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest shim: {} rejected too many cases ({} attempts for {} target cases)",
                    stringify!($name), attempts, config.cases
                );
                $( let $arg = $crate::strategy::Strategy::pick(&($strat), &mut rng); )*
                let outcome: $crate::TestCaseResult = (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => panic!(
                        "proptest case failed: {}\n  inputs: {}",
                        message,
                        [$( format!(concat!(stringify!($arg), " = {:?}"), $arg) ),*].join(", ")
                    ),
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Veto the current case (it is re-drawn, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 0usize..10, b in 1u32..4, c in 0u64..=6) {
            prop_assert!(a < 10);
            prop_assert!((1..4).contains(&b));
            prop_assert!(c <= 6, "c out of bounds: {c}");
        }

        #[test]
        fn assume_redraws(n in 0i32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn early_ok_return_is_accepted(n in 0u8..3) {
            if n == 0 {
                return Ok(());
            }
            prop_assert!(n > 0);
        }
    }

    #[test]
    fn config_forms() {
        assert_eq!(ProptestConfig::with_cases(12).cases, 12);
        let c = ProptestConfig { cases: 9, ..ProptestConfig::default() };
        assert_eq!(c.cases, 9);
    }
}
