//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates registry, so this shim keeps the workspace's
//! `#[derive(Serialize, Deserialize)]` annotations and `serde::Serialize` bounds
//! compiling: the traits are empty markers and the derives emit empty impls.  No
//! actual serialisation happens; swapping the path dependency for the real `serde`
//! (the annotations are already in the real crate's shape) lights it up.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker counterpart of the `serde::de` module.
pub mod de {
    /// Marker counterpart of `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}
