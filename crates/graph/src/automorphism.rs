//! Automorphisms, vertex orbits and transitive node subsets.
//!
//! The MI support measure (Section 3.2 of the paper) relies on *transitive node
//! subsets*: sets of pattern vertices every pair of which is mapped onto each other by
//! an automorphism of some subgraph of the pattern (Definitions 3.2.2 / 3.2.3).  The
//! same machinery underlies the *structural overlap* notion of Section 4.5.
//!
//! The functions here enumerate:
//!
//! * all automorphisms of a pattern ([`automorphisms`]),
//! * the orbit partition of its vertex set ([`orbits`]),
//! * orbits of all connected subgraphs ([`connected_subgraph_orbits`]), which
//!   is the default source of transitive node subsets for MI, and
//! * the symmetric "transitive pair" relation over subgraphs
//!   ([`transitive_pair_matrix`]), used by structural overlap.
//!
//! Patterns are small (a handful of vertices), so exhaustive enumeration over vertex
//! subsets is perfectly affordable; a size guard keeps the worst case bounded.

use crate::isomorphism::{enumerate_embeddings, Embedding, IsoConfig};
use crate::{Pattern, VertexId};

/// Enumerate all automorphisms of `pattern` (Definition 2.1.6).
///
/// Each automorphism is returned as a permutation vector `perm` with
/// `perm[v] = image of v`.  The identity is always included (for non-empty patterns).
pub fn automorphisms(pattern: &Pattern) -> Vec<Embedding> {
    // A label- and edge-preserving injection of P into itself over the full vertex set
    // is automatically edge-reflecting (both graphs have the same finite edge count),
    // hence an automorphism.
    enumerate_embeddings(pattern, pattern, IsoConfig::default()).embeddings
}

/// Number of automorphisms of `pattern`.
pub fn automorphism_count(pattern: &Pattern) -> usize {
    automorphisms(pattern).len()
}

/// Union-find over vertex ids.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// The orbit partition of the pattern's vertices under its automorphism group.
///
/// Two vertices are in the same orbit iff some automorphism of the *whole* pattern
/// maps one to the other (this is the transitive relation of Definition 3.2.2 applied
/// to the pattern itself; Theorem 3.1 shows it is indeed transitive).
pub fn orbits(pattern: &Pattern) -> Vec<Vec<VertexId>> {
    let n = pattern.num_vertices();
    let mut uf = UnionFind::new(n);
    for auto in automorphisms(pattern) {
        for (v, &img) in auto.iter().enumerate() {
            uf.union(v, img as usize);
        }
    }
    group_by_root(&mut uf, n)
}

fn group_by_root(uf: &mut UnionFind, n: usize) -> Vec<Vec<VertexId>> {
    let mut groups: std::collections::BTreeMap<usize, Vec<VertexId>> =
        std::collections::BTreeMap::new();
    for v in 0..n {
        let root = uf.find(v);
        groups.entry(root).or_default().push(v as VertexId);
    }
    groups.into_values().collect()
}

/// `true` if vertices `u` and `v` lie in a common orbit of the full pattern.
pub fn are_transitive_in_pattern(pattern: &Pattern, u: VertexId, v: VertexId) -> bool {
    if u == v {
        return true;
    }
    orbits(pattern).iter().any(|o| o.contains(&u) && o.contains(&v))
}

/// Maximum number of pattern edges for which exhaustive enumeration of connected
/// edge-subset subgraphs is attempted.  Above this, only the full pattern and single
/// edges are considered (patterns this large never appear in practice).
pub const MAX_EXHAUSTIVE_SUBGRAPH_EDGES: usize = 14;

/// Enumerate the connected subgraphs of `pattern` (every non-empty subset of its
/// edges whose spanned subgraph is connected) and return, for each, the orbit classes
/// of its automorphism group *translated back to original pattern vertex ids*.  Orbit
/// classes of size 1 are dropped and the result is de-duplicated.
///
/// These sets (together with all their subsets and the singletons) are the
/// *transitive node subsets* that the default MI strategy draws from: any pair inside
/// a returned set is transitive in a subgraph of the pattern (Definition 3.2.3).
/// Because every subgraph of a pattern `p` is also a subgraph of any superpattern of
/// `p`, this family is preserved under pattern extension, which is what the
/// anti-monotonicity proof of Theorem 3.2 needs.
pub fn connected_subgraph_orbits(pattern: &Pattern) -> Vec<Vec<VertexId>> {
    let edges: Vec<(VertexId, VertexId)> = pattern.edges().collect();
    let m = edges.len();
    let mut result: std::collections::BTreeSet<Vec<VertexId>> = std::collections::BTreeSet::new();

    let consider = |edge_subset: &[(VertexId, VertexId)],
                    result: &mut std::collections::BTreeSet<Vec<VertexId>>| {
        let mut vertex_set: Vec<VertexId> = edge_subset.iter().flat_map(|&(u, v)| [u, v]).collect();
        vertex_set.sort_unstable();
        vertex_set.dedup();
        let (sub, back) =
            pattern.subgraph_with_edges(&vertex_set, edge_subset).expect("pattern edges are valid");
        if !sub.is_connected() {
            return;
        }
        for orbit in orbits(&sub) {
            if orbit.len() >= 2 {
                let mut orig: Vec<VertexId> = orbit.iter().map(|&v| back[v as usize]).collect();
                orig.sort_unstable();
                result.insert(orig);
            }
        }
    };

    if m <= MAX_EXHAUSTIVE_SUBGRAPH_EDGES {
        // Enumerate all non-empty edge subsets.
        for mask in 1u32..(1u32 << m) {
            let subset: Vec<(VertexId, VertexId)> =
                (0..m).filter(|&e| mask & (1 << e) != 0).map(|e| edges[e]).collect();
            consider(&subset, &mut result);
        }
    } else {
        // Fallback for very large patterns: full pattern + every edge.
        consider(&edges, &mut result);
        for &e in &edges {
            consider(&[e], &mut result);
        }
    }
    result.into_iter().collect()
}

/// A symmetric boolean matrix over pattern vertices, packed into 64-bit words (one
/// row of `ceil(n / 64)` words per vertex).  This replaces the old `Vec<Vec<bool>>`
/// output of [`transitive_pair_matrix`]: the structural-overlap hot loop probes it
/// once per (pattern node, pattern node) pair for every candidate occurrence pair, so
/// the packed layout keeps the whole relation of any realistic pattern in one or two
/// cache lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairMatrix {
    n: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl PairMatrix {
    /// An all-false matrix over `n` vertices.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        PairMatrix { n, words_per_row, words: vec![0; n * words_per_row] }
    }

    /// Matrix dimension (number of pattern vertices).
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix has zero vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The bit at `(u, v)`.
    pub fn get(&self, u: usize, v: usize) -> bool {
        self.words[u * self.words_per_row + v / 64] & (1u64 << (v % 64)) != 0
    }

    /// Set `(u, v)` and `(v, u)` (the relation is symmetric).
    pub fn set_symmetric(&mut self, u: usize, v: usize) {
        self.words[u * self.words_per_row + v / 64] |= 1u64 << (v % 64);
        self.words[v * self.words_per_row + u / 64] |= 1u64 << (u % 64);
    }

    /// Number of `true` entries (counting both orientations of each pair).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// `matrix.get(u, v) == true` iff `u` and `v` are a transitive pair in *some*
/// connected subgraph of the pattern (the relation used by structural overlap,
/// Definition 4.5.2).  The diagonal is always `true`.
pub fn transitive_pair_matrix(pattern: &Pattern) -> PairMatrix {
    let n = pattern.num_vertices();
    let mut m = PairMatrix::new(n);
    for v in 0..n {
        m.set_symmetric(v, v);
    }
    for orbit in connected_subgraph_orbits(pattern) {
        for &u in &orbit {
            for &v in &orbit {
                m.set_symmetric(u as usize, v as usize);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use crate::Label;

    #[test]
    fn triangle_has_six_automorphisms() {
        let t = patterns::uniform_clique(3, Label(0));
        assert_eq!(automorphism_count(&t), 6);
        assert_eq!(orbits(&t), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn labeled_triangle_has_fewer_automorphisms() {
        let t = patterns::triangle(Label(1), Label(0), Label(0));
        // Only the identity and the swap of the two Label(0) vertices.
        assert_eq!(automorphism_count(&t), 2);
        let o = orbits(&t);
        assert!(o.contains(&vec![0]));
        assert!(o.contains(&vec![1, 2]));
    }

    #[test]
    fn path_orbits() {
        // Uniform path of 3 vertices: end vertices form an orbit, middle is fixed.
        let p = patterns::uniform_path(3, Label(0));
        assert_eq!(automorphism_count(&p), 2);
        let o = orbits(&p);
        assert!(o.contains(&vec![0, 2]));
        assert!(o.contains(&vec![1]));
        assert!(are_transitive_in_pattern(&p, 0, 2));
        assert!(!are_transitive_in_pattern(&p, 0, 1));
        assert!(are_transitive_in_pattern(&p, 1, 1));
    }

    #[test]
    fn star_orbits() {
        let s = patterns::uniform_star(4, Label(1), Label(0));
        assert_eq!(automorphism_count(&s), 24); // 4! leaf permutations
        let o = orbits(&s);
        assert!(o.contains(&vec![0]));
        assert!(o.contains(&vec![1, 2, 3, 4]));
    }

    #[test]
    fn subgraph_orbits_capture_figure4_symmetry() {
        // Figure 4 pattern: path v1 - v2 - v3, all labels equal.  The connected induced
        // subgraph {v2, v3} (a single edge) makes them transitive even though the full
        // path does not map v2 to v3.
        let p = patterns::uniform_path(3, Label(0));
        let sets = connected_subgraph_orbits(&p);
        assert!(sets.contains(&vec![0, 1])); // edge v1-v2
        assert!(sets.contains(&vec![1, 2])); // edge v2-v3
        assert!(sets.contains(&vec![0, 2])); // ends of the full path
        let m = transitive_pair_matrix(&p);
        assert!(m.get(1, 2) && m.get(2, 1));
        assert!(m.get(0, 1)); // via the induced edge subgraph {v1, v2}
    }

    #[test]
    fn different_labels_are_never_transitive() {
        let p = patterns::path(&[Label(0), Label(1), Label(2)]);
        let sets = connected_subgraph_orbits(&p);
        assert!(sets.is_empty());
        let m = transitive_pair_matrix(&p);
        assert_eq!(m.len(), 3);
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(m.get(u, v), u == v);
            }
        }
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn pair_matrix_packing_is_symmetric_across_word_boundaries() {
        let mut m = PairMatrix::new(70);
        assert!(!m.get(3, 67));
        m.set_symmetric(3, 67);
        assert!(m.get(3, 67) && m.get(67, 3));
        assert!(!m.get(3, 66) && !m.get(66, 3));
        assert_eq!(m.count_ones(), 2);
        assert!(!m.is_empty());
        assert!(PairMatrix::new(0).is_empty());
    }

    #[test]
    fn clique_orbit_is_everything() {
        let k4 = patterns::uniform_clique(4, Label(0));
        let sets = connected_subgraph_orbits(&k4);
        assert!(sets.contains(&vec![0, 1, 2, 3]));
        assert_eq!(automorphism_count(&k4), 24);
    }

    #[test]
    fn single_vertex_and_empty() {
        let v = patterns::single_vertex(Label(0));
        assert_eq!(automorphism_count(&v), 1);
        assert_eq!(orbits(&v), vec![vec![0]]);
        assert!(connected_subgraph_orbits(&v).is_empty());
        let e = Pattern::new();
        assert_eq!(orbits(&e), Vec::<Vec<VertexId>>::new());
    }
}
