//! The iterative, streaming embedding enumerator over a [`CandidateSpace`].
//!
//! Unlike the naive recursive oracle (`ffsm_graph::isomorphism`), the search here is
//! an explicit-stack loop — no recursion depth limits, no per-step candidate-list
//! clones.  Three mechanisms keep the dense-graph hot path tight:
//!
//! * **Intersected pools.**  The pool at each depth is the exact intersection of
//!   the depth's refined candidate set with the adjacency of the cheapest
//!   already-matched pivot image, materialised into a reusable arena buffer.  The
//!   builder walks whichever side is smaller (`min(|adj(pivot)|, |C(u)|)`), and
//!   when the pivot image has a hub adjacency bitset in the [`GraphIndex`] the
//!   intersection is computed **word-parallel** — the pivot's adjacency words are
//!   ANDed with the candidate membership words 64 vertices at a time.  When
//!   *every* earlier-matched neighbour's image is a hub, the pool is instead the
//!   word-parallel AND across **all** of them: the pool is then fully
//!   edge-verified, and the per-candidate backward `has_edge` ladder disappears
//!   entirely — the dense-graph hot path runs on `used` probes alone.
//! * **Reusable [`SearchArena`].**  All per-search buffers (assignment, used
//!   flags, per-depth pools, scan positions, failing sets) live in an arena owned
//!   by the call site, so a mining worker evaluating thousands of patterns
//!   allocates them once instead of once per pattern.
//! * **Failing-set backjumping** (CFL-Match / Sun & Luo lineage).  Every depth
//!   tracks a *failing set*: the set of pattern vertices whose assignments the
//!   failure of the subtree below could depend on.  When a subtree is exhausted
//!   without finding any embedding and the parent's own pattern vertex is *not*
//!   in the failing set, re-assigning the parent cannot repair the failure, so
//!   the parent's remaining candidates are skipped wholesale (the failing set
//!   propagates upward unchanged).  Any found embedding poisons the failing set
//!   to "all vertices", so **only provably embedding-free subtrees are ever
//!   jumped over** — the emitted embedding sequence is identical to plain
//!   backtracking, order included.  Patterns with more than 64 vertices disable
//!   the machinery (the sets are `u64` masks) and fall back to plain
//!   backtracking.
//!
//! ## Matching order
//!
//! Pattern vertices are matched in a cost-aware, connectivity-aware order: start at
//! the vertex with the fewest candidates (ties: higher pattern degree, then lower
//! id), then repeatedly pick the unmatched vertex adjacent to the matched prefix
//! with the fewest candidates (ties: more matched neighbours, then lower id).
//! The matched-neighbour counts are maintained incrementally as vertices are
//! placed, so order construction is `O(n·deg + n²)` instead of `O(n²·deg)`.
//! Disconnected patterns fall back to the globally best unmatched vertex when no
//! adjacent one exists.
//!
//! ## Determinism contract
//!
//! For a fixed pattern, graph and config, embeddings are emitted in one fixed
//! order: every pool is ascending by data vertex id (candidate sets are sorted and
//! all three intersection strategies preserve ascending order), the matching order
//! depends only on the candidate space, and backjumping only skips subtrees that
//! contain no embedding.  The parallel enumerator partitions the *root* pool into
//! contiguous chunks and concatenates the per-chunk results, which reproduces this
//! sequential order exactly.

use crate::candidates::CandidateSpace;
use crate::index::GraphIndex;
use ffsm_graph::cancel::{CancelToken, CHECK_STRIDE};
use ffsm_graph::isomorphism::{EmbeddingVisitor, VisitFlow};
use ffsm_graph::{LabeledGraph, Pattern, VertexId};
use ffsm_obs::{Phase, PhaseTimes, SearchCounters};

/// The fixed matching order plus the per-depth backward adjacency it induces.
#[derive(Debug, Clone)]
pub(crate) struct MatchingOrder {
    /// `order[d]` is the pattern vertex matched at depth `d`.
    pub order: Vec<VertexId>,
    /// Per depth, the pattern neighbours matched at earlier depths.
    pub earlier_neighbors: Vec<Vec<VertexId>>,
    /// Per depth, the pattern *non*-neighbours matched at earlier depths (the
    /// induced-semantics check set).
    pub earlier_non_neighbors: Vec<Vec<VertexId>>,
    /// Per depth, the `u64` failing-set mask of `earlier_neighbors` (valid for
    /// patterns of at most 64 vertices — exactly when backjumping is armed).
    pub earlier_mask: Vec<u64>,
}

impl MatchingOrder {
    pub(crate) fn build(pattern: &Pattern, space: &CandidateSpace) -> Self {
        let n = pattern.num_vertices();
        let mut order: Vec<VertexId> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        // Matched-neighbour count per vertex, updated when a vertex is placed —
        // the O(deg) recount per candidate per iteration is gone.
        let mut placed_count = vec![0usize; n];
        // (candidate count, fewer pattern neighbours is worse, id) — smaller is better.
        let global_cost =
            |v: VertexId| (space.candidates(v).len(), std::cmp::Reverse(pattern.degree(v)), v);
        if n == 0 {
            return MatchingOrder {
                order,
                earlier_neighbors: Vec::new(),
                earlier_non_neighbors: Vec::new(),
                earlier_mask: Vec::new(),
            };
        }
        let start = pattern.vertices().min_by_key(|&v| global_cost(v)).expect("non-empty");
        order.push(start);
        placed[start as usize] = true;
        for &w in pattern.neighbors(start) {
            placed_count[w as usize] += 1;
        }
        while order.len() < n {
            let next = pattern
                .vertices()
                .filter(|&v| !placed[v as usize] && placed_count[v as usize] > 0)
                .min_by_key(|&v| {
                    (space.candidates(v).len(), std::cmp::Reverse(placed_count[v as usize]), v)
                })
                .or_else(|| {
                    // Disconnected pattern: open the next component at its best root.
                    pattern
                        .vertices()
                        .filter(|&v| !placed[v as usize])
                        .min_by_key(|&v| global_cost(v))
                })
                .expect("some vertex unplaced");
            order.push(next);
            placed[next as usize] = true;
            for &w in pattern.neighbors(next) {
                placed_count[w as usize] += 1;
            }
        }
        let mut position = vec![usize::MAX; n];
        for (d, &v) in order.iter().enumerate() {
            position[v as usize] = d;
        }
        let earlier_neighbors: Vec<Vec<VertexId>> = order
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                pattern.neighbors(v).iter().copied().filter(|&w| position[w as usize] < d).collect()
            })
            .collect();
        let earlier_non_neighbors = order
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                order[..d].iter().copied().filter(|&w| !pattern.has_edge(v, w)).collect()
            })
            .collect();
        let earlier_mask = earlier_neighbors
            .iter()
            .map(|ns| ns.iter().fold(0u64, |m, &pn| m | 1u64 << (pn & 63)))
            .collect();
        MatchingOrder { order, earlier_neighbors, earlier_non_neighbors, earlier_mask }
    }
}

/// Sentinel for "pattern vertex not yet assigned".
const UNSET: VertexId = VertexId::MAX;

/// Reusable buffers for one embedding search.
///
/// Owned by the enumeration call site and handed to every search, so the
/// per-search allocations (assignment, used flags, per-depth pools, positions,
/// failing sets) happen once per *worker*, not once per *pattern*: a mining level
/// worker keeps one arena across thousands of candidate-pattern evaluations, and
/// each parallel root-chunk worker keeps one across its chunk.
///
/// The arena carries no results and imposes no invariants on callers — any arena
/// (fresh or previously used, regardless of which pattern or graph it last served)
/// yields identical output, because every search re-prepares the buffers it needs.
/// The only interior state that survives a search is capacity.  Not shareable
/// across concurrent searches (each thread needs its own).
#[derive(Debug, Default)]
pub struct SearchArena {
    /// `assignment[pv]` = data image of pattern vertex `pv`, or [`UNSET`].
    assignment: Vec<VertexId>,
    /// Per data vertex: currently used by some assigned pattern vertex.
    used: Vec<bool>,
    /// Per data vertex: which pattern vertex uses it (valid only where `used`).
    owner: Vec<VertexId>,
    /// Per depth: the materialised candidate pool.
    pools: Vec<Vec<VertexId>>,
    /// Per depth: the pattern vertex whose image's adjacency seeded the pool
    /// ([`UNSET`] for full-candidate-set pools).
    pool_pivot: Vec<VertexId>,
    /// Per depth: the pool was intersected with *every* earlier neighbour's
    /// adjacency, so backward edges need no re-checking.
    pool_verified: Vec<bool>,
    /// Word scratch for the all-neighbour bitset intersection.
    scratch: Vec<u64>,
    /// Per depth: scan position within the pool.
    pos: Vec<usize>,
    /// Per depth: the failing set (`u64` mask over pattern vertices).
    fs: Vec<u64>,
    /// Cumulative search counters — plain `u64` adds (the arena is owned by one
    /// worker), scraped by the mining engine after each level.
    counters: SearchCounters,
    /// Cumulative fine-grained span times (candidate-space build, search),
    /// recorded only while [`SearchArena::set_timing`] is on.
    phase: PhaseTimes,
    /// Fine-grained span sampling switch (off by default: an uninstrumented
    /// run pays no clock read in the per-candidate path).
    timing: bool,
}

impl SearchArena {
    /// An empty arena; buffers grow on first use and are reused afterwards.
    pub fn new() -> Self {
        SearchArena::default()
    }

    /// The cumulative [`SearchCounters`] of every search this arena has served.
    pub fn counters(&self) -> SearchCounters {
        self.counters
    }

    /// Cumulative fine-grained phase times (only advancing while timing is on).
    pub fn phase_times(&self) -> PhaseTimes {
        self.phase
    }

    /// Enable/disable fine-grained span timing ([`Phase::CandidateSpace`] /
    /// [`Phase::Search`]).  Counters are unaffected — they are always on.
    pub fn set_timing(&mut self, on: bool) {
        self.timing = on;
    }

    /// `true` when fine-grained span timing is on.
    pub fn timing_enabled(&self) -> bool {
        self.timing
    }

    /// Record a fine-grained span measured by the caller (the dispatch layer
    /// times candidate-space builds and searches around this arena).
    pub fn record_phase(&mut self, phase: Phase, d: std::time::Duration) {
        self.phase.record(phase, d);
    }

    /// Note `n` candidate-space refinement sweeps (always counted).
    pub fn add_refine_rounds(&mut self, n: u64) {
        self.counters.refine_rounds += n;
    }

    /// Current heap footprint of the arena's buffers in bytes — capacities only
    /// ever grow, so this doubles as the arena's high-water mark.
    pub fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        self.assignment.capacity() * size_of::<VertexId>()
            + self.used.capacity() * size_of::<bool>()
            + self.owner.capacity() * size_of::<VertexId>()
            + self.pools.iter().map(|p| p.capacity() * size_of::<VertexId>()).sum::<usize>()
            + self.pool_pivot.capacity() * size_of::<VertexId>()
            + self.pool_verified.capacity() * size_of::<bool>()
            + self.scratch.capacity() * size_of::<u64>()
            + self.pos.capacity() * size_of::<usize>()
            + self.fs.capacity() * size_of::<u64>()
    }

    /// Size the buffers for a pattern of `n` vertices against a graph of
    /// `num_data_vertices`.  `used` must be (and stays) all-false between
    /// searches — searches clear exactly the flags they set on every exit path.
    fn prepare(&mut self, n: usize, num_data_vertices: usize) {
        self.counters.searches += 1;
        self.assignment.clear();
        self.assignment.resize(n, UNSET);
        if self.used.len() < num_data_vertices {
            self.used.resize(num_data_vertices, false);
            self.owner.resize(num_data_vertices, UNSET);
        }
        if self.pools.len() < n {
            self.pools.resize_with(n, Vec::new);
        }
        self.pos.clear();
        self.pos.resize(n, 0);
        self.fs.clear();
        self.fs.resize(n, 0);
        self.pool_pivot.clear();
        self.pool_pivot.resize(n, UNSET);
        self.pool_verified.clear();
        self.pool_verified.resize(n, false);
        debug_assert!(self.used.iter().all(|&u| !u), "arena left dirty by a previous search");
    }
}

/// Fill `pool` with the depth's candidates: `C(u) ∩ adj(pivot image)` where a
/// matched pivot exists, the full candidate set otherwise.  Walks whichever side
/// of the intersection is smaller; uses the pivot's hub adjacency bitset for
/// O(1) membership or a word-parallel AND when available.  When every earlier
/// neighbour's image is a hub, the pool is the word-parallel AND of the
/// candidate membership words with **all** their adjacency words — then the pool
/// is fully edge-verified and the second tuple element is `true`.  Returns the
/// pivot pattern vertex ([`UNSET`] for full-set and fully-verified pools).
/// Every strategy emits the pool ascending by data vertex id.
#[allow(clippy::too_many_arguments)]
fn fill_pool(
    graph: &LabeledGraph,
    index: &GraphIndex,
    space: &CandidateSpace,
    order: &MatchingOrder,
    assignment: &[VertexId],
    depth: usize,
    pool: &mut Vec<VertexId>,
    scratch: &mut Vec<u64>,
) -> (VertexId, bool) {
    pool.clear();
    let u = order.order[depth];
    let earlier = &order.earlier_neighbors[depth];
    let pivot = earlier.iter().copied().min_by_key(|&pn| graph.degree(assignment[pn as usize]));
    let Some(pn) = pivot else {
        // Depth 0 is handled by the caller; this is a new pattern component.
        pool.extend_from_slice(space.candidates(u));
        return (UNSET, false);
    };
    let pi = assignment[pn as usize];
    let cands = space.candidates(u);
    if earlier.len() >= 2 {
        let member = space.member_words(u);
        let all_hubs = member.len() <= cands.len()
            && earlier.iter().all(|&pn| index.adjacency_words(assignment[pn as usize]).is_some());
        if all_hubs {
            scratch.clear();
            scratch.extend_from_slice(member);
            for &pn in earlier {
                let bits = index.adjacency_words(assignment[pn as usize]).expect("checked hub");
                for (s, &b) in scratch.iter_mut().zip(bits) {
                    *s &= b;
                }
            }
            for (wi, &word) in scratch.iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    pool.push((wi * 64 + bit) as VertexId);
                    word &= word - 1;
                }
            }
            return (UNSET, true);
        }
    }
    if cands.len() <= graph.degree(pi) {
        // Candidate side is smaller: test adjacency per candidate.
        if let Some(bits) = index.adjacency_words(pi) {
            pool.extend(
                cands.iter().copied().filter(|&v| bits[v as usize / 64] >> (v % 64) & 1 != 0),
            );
        } else {
            pool.extend(cands.iter().copied().filter(|&v| graph.has_edge(v, pi)));
        }
    } else if let Some(bits) = index.adjacency_words(pi) {
        // Adjacency side is smaller and the pivot is a hub: AND its adjacency
        // words with the candidate membership words, 64 vertices at a time.
        for (wi, (&a, &c)) in bits.iter().zip(space.member_words(u)).enumerate() {
            let mut word = a & c;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                pool.push((wi * 64 + bit) as VertexId);
                word &= word - 1;
            }
        }
    } else {
        // Adjacency side is smaller, no hub bitset: scan the sorted adjacency
        // list with O(1) membership tests.
        pool.extend(graph.neighbors(pi).iter().copied().filter(|&w| space.contains(u, w)));
    }
    (pn, false)
}

/// Clear the assignment and used flags of the first `depth` matched depths (the
/// early-exit path of a search — the exhausted path unwinds them one by one).
fn release_prefix(
    order: &MatchingOrder,
    depth: usize,
    assignment: &mut [VertexId],
    used: &mut [bool],
) {
    for &pv in &order.order[..depth] {
        let gv = assignment[pv as usize];
        assignment[pv as usize] = UNSET;
        used[gv as usize] = false;
    }
}

/// One sequential enumeration run over (a root-restriction of) a candidate space.
///
/// `root_pool` overrides the depth-0 candidate pool — the parallel enumerator passes
/// each worker a contiguous chunk of the root candidates; `None` means the full set.
/// Returns `true` if the search space was exhausted, `false` if the visitor stopped
/// or `cancel` fired (cooperative cancellation, polled every [`CHECK_STRIDE`]
/// scan steps).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_search<V: EmbeddingVisitor>(
    graph: &LabeledGraph,
    index: &GraphIndex,
    space: &CandidateSpace,
    order: &MatchingOrder,
    induced: bool,
    root_pool: Option<&[VertexId]>,
    cancel: &CancelToken,
    arena: &mut SearchArena,
    visitor: &mut V,
) -> bool {
    let n = order.order.len();
    debug_assert!(n > 0, "empty patterns are handled by the caller");
    if space.has_empty_set() {
        return true;
    }
    if cancel.is_cancelled() {
        return false;
    }
    arena.prepare(n, graph.num_vertices());
    let SearchArena {
        assignment,
        used,
        owner,
        pools,
        pool_pivot,
        pool_verified,
        scratch,
        pos,
        fs,
        counters,
        ..
    } = arena;

    // Failing-set machinery is a u64 mask over pattern vertices; wider patterns
    // run plain backtracking (the miner never produces them).
    let bj = n <= 64;
    let bit = |pv: VertexId| 1u64 << (pv & 63);
    const FULL: u64 = !0u64;

    pools[0].clear();
    pools[0].extend_from_slice(root_pool.unwrap_or_else(|| space.candidates(order.order[0])));
    pool_pivot[0] = UNSET;
    pool_verified[0] = false;

    let mut depth = 0usize;
    let mut steps: u32 = 0;
    loop {
        let mut extended = false;
        while pos[depth] < pools[depth].len() {
            steps += 1;
            counters.steps += 1;
            if steps >= CHECK_STRIDE {
                steps = 0;
                counters.cancel_polls += 1;
                if cancel.is_cancelled() {
                    release_prefix(order, depth, assignment, used);
                    return false;
                }
            }
            let gv = pools[depth][pos[depth]];
            pos[depth] += 1;
            let u = order.order[depth];
            // Membership in C(u) and adjacency to the pool pivot are pool
            // invariants; only injectivity and the remaining backward edges are
            // checked here.  Each failure records its conflict pair in the
            // depth's failing set.
            if used[gv as usize] {
                if bj {
                    fs[depth] |= bit(u) | bit(owner[gv as usize]);
                }
                continue;
            }
            let mut ok = true;
            if !pool_verified[depth] {
                for &pn in &order.earlier_neighbors[depth] {
                    if pn == pool_pivot[depth] {
                        continue;
                    }
                    if !graph.has_edge(gv, assignment[pn as usize]) {
                        if bj {
                            fs[depth] |= bit(u) | bit(pn);
                        }
                        ok = false;
                        break;
                    }
                }
            }
            if ok && induced {
                for &pw in &order.earlier_non_neighbors[depth] {
                    if graph.has_edge(gv, assignment[pw as usize]) {
                        if bj {
                            fs[depth] |= bit(u) | bit(pw);
                        }
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            if depth + 1 == n {
                // Complete embedding: report it and keep scanning this depth.
                // An embedding below any ancestor makes its subtree non-barren,
                // so poison the failing set — no ancestor may backjump over it.
                assignment[u as usize] = gv;
                let flow = visitor.visit(assignment);
                assignment[u as usize] = UNSET;
                fs[depth] = FULL;
                if flow == VisitFlow::Stop {
                    release_prefix(order, depth, assignment, used);
                    return false;
                }
            } else {
                assignment[u as usize] = gv;
                used[gv as usize] = true;
                owner[gv as usize] = u;
                depth += 1;
                let (piv, verified) = fill_pool(
                    graph,
                    index,
                    space,
                    order,
                    assignment,
                    depth,
                    &mut pools[depth],
                    scratch,
                );
                pool_pivot[depth] = piv;
                pool_verified[depth] = verified;
                counters.pools_filled += 1;
                if verified {
                    counters.hub_verified_pools += 1;
                }
                pos[depth] = 0;
                // A pool implicitly filtered out candidates not adjacent to the
                // images it was intersected with — the subtree's failure may
                // depend on those choices, so they seed the failing set (the
                // pivot alone, or every earlier neighbour for verified pools).
                fs[depth] = if !bj {
                    0
                } else if verified {
                    bit(order.order[depth]) | order.earlier_mask[depth]
                } else if piv != UNSET {
                    bit(order.order[depth]) | bit(piv)
                } else {
                    0
                };
                extended = true;
                break;
            }
        }
        if extended {
            continue;
        }
        // Pool exhausted: backtrack, propagating the failing set.
        if depth == 0 {
            return true;
        }
        let fail = fs[depth];
        depth -= 1;
        let pv = order.order[depth];
        let gv = assignment[pv as usize];
        assignment[pv as usize] = UNSET;
        used[gv as usize] = false;
        if bj {
            if fail & bit(pv) == 0 {
                // The dead subtree's failure does not involve this depth's
                // assignment: no sibling candidate can repair it.  Skip the
                // remaining pool and hand the failing set to the next ancestor.
                counters.backjumps += 1;
                fs[depth] = fail;
                pos[depth] = pools[depth].len();
            } else {
                fs[depth] |= fail;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::GraphIndex;
    use ffsm_graph::isomorphism::CollectVisitor;
    use ffsm_graph::{patterns, Label};

    fn enumerate_all(pattern: &Pattern, graph: &LabeledGraph) -> Vec<Vec<VertexId>> {
        let index = GraphIndex::build(graph);
        let space = CandidateSpace::build(pattern, graph, &index);
        let order = MatchingOrder::build(pattern, &space);
        let mut arena = SearchArena::new();
        let mut collect = CollectVisitor::with_limit(usize::MAX);
        if pattern.num_vertices() > 0 {
            let complete = run_search(
                graph,
                &index,
                &space,
                &order,
                false,
                None,
                &CancelToken::default(),
                &mut arena,
                &mut collect,
            );
            assert!(complete);
        }
        collect.embeddings
    }

    #[test]
    fn matching_order_visits_every_vertex_once() {
        let g = LabeledGraph::from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let p = patterns::uniform_path(3, Label(0));
        let ix = GraphIndex::build(&g);
        let cs = CandidateSpace::build(&p, &g, &ix);
        let order = MatchingOrder::build(&p, &cs);
        let mut seen = order.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        // Every vertex after the first has an earlier neighbour (connected pattern).
        for d in 1..order.order.len() {
            assert!(!order.earlier_neighbors[d].is_empty());
        }
    }

    #[test]
    fn triangle_occurrences_match_naive_count() {
        let g = LabeledGraph::from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (2, 5)],
        );
        let p = patterns::triangle(Label(0), Label(0), Label(0));
        assert_eq!(enumerate_all(&p, &g).len(), 6);
    }

    #[test]
    fn embeddings_are_indexed_by_pattern_vertex() {
        let g = LabeledGraph::from_edges(&[1, 2, 1], &[(0, 1), (1, 2)]);
        let p = patterns::single_edge(Label(1), Label(2));
        let embeddings = enumerate_all(&p, &g);
        assert_eq!(embeddings.len(), 2);
        for emb in &embeddings {
            assert_eq!(g.label(emb[0]), Label(1), "slot 0 holds pattern vertex 0's image");
            assert_eq!(g.label(emb[1]), Label(2));
        }
    }

    #[test]
    fn disconnected_pattern_is_enumerated() {
        let mut p = LabeledGraph::new();
        let a = p.add_vertex(Label(1));
        let b = p.add_vertex(Label(2));
        let c = p.add_vertex(Label(3));
        let d = p.add_vertex(Label(4));
        p.add_edge(a, b).unwrap();
        p.add_edge(c, d).unwrap();
        let g = LabeledGraph::from_edges(&[1, 2, 3, 4], &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(enumerate_all(&p, &g).len(), 1);
    }

    #[test]
    fn induced_semantics_reject_chords() {
        let g = LabeledGraph::from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let p = patterns::path(&[Label(0), Label(0), Label(0)]);
        let index = GraphIndex::build(&g);
        let space = CandidateSpace::build(&p, &g, &index);
        let order = MatchingOrder::build(&p, &space);
        let mut arena = SearchArena::new();
        let mut open = CollectVisitor::with_limit(usize::MAX);
        run_search(
            &g,
            &index,
            &space,
            &order,
            false,
            None,
            &CancelToken::default(),
            &mut arena,
            &mut open,
        );
        assert_eq!(open.embeddings.len(), 6);
        let mut induced = CollectVisitor::with_limit(usize::MAX);
        run_search(
            &g,
            &index,
            &space,
            &order,
            true,
            None,
            &CancelToken::default(),
            &mut arena,
            &mut induced,
        );
        assert!(induced.embeddings.is_empty());
    }

    #[test]
    fn visitor_stop_aborts_the_search_and_leaves_the_arena_clean() {
        let g = LabeledGraph::from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let p = patterns::single_edge(Label(0), Label(0));
        let index = GraphIndex::build(&g);
        let space = CandidateSpace::build(&p, &g, &index);
        let order = MatchingOrder::build(&p, &space);
        let mut arena = SearchArena::new();
        let mut collect = CollectVisitor::with_limit(2);
        let complete = run_search(
            &g,
            &index,
            &space,
            &order,
            false,
            None,
            &CancelToken::default(),
            &mut arena,
            &mut collect,
        );
        assert!(!complete);
        assert_eq!(collect.embeddings.len(), 2);
        assert!(arena.used.iter().all(|&u| !u), "early exit must release used flags");
        // The same arena serves the next (different) search unchanged.
        let mut all = CollectVisitor::with_limit(usize::MAX);
        let complete = run_search(
            &g,
            &index,
            &space,
            &order,
            false,
            None,
            &CancelToken::default(),
            &mut arena,
            &mut all,
        );
        assert!(complete);
        assert_eq!(all.embeddings.len(), 6);
    }

    #[test]
    fn counters_track_searches_and_steps() {
        let g = LabeledGraph::from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (2, 5)],
        );
        let p = patterns::triangle(Label(0), Label(0), Label(0));
        let index = GraphIndex::build(&g);
        let space = CandidateSpace::build(&p, &g, &index);
        let order = MatchingOrder::build(&p, &space);
        let mut arena = SearchArena::new();
        assert_eq!(arena.counters(), SearchCounters::default());
        for expected_searches in 1..=2u64 {
            let mut collect = CollectVisitor::with_limit(usize::MAX);
            run_search(
                &g,
                &index,
                &space,
                &order,
                false,
                None,
                &CancelToken::default(),
                &mut arena,
                &mut collect,
            );
            let counters = arena.counters();
            assert_eq!(counters.searches, expected_searches);
            assert!(counters.steps >= 6 * expected_searches, "every embedding takes steps");
            assert!(counters.pools_filled > 0);
        }
        assert!(arena.footprint_bytes() > 0);
        // Counters never change search results — verified structurally by the
        // arena-reuse tests; timing stays off unless explicitly enabled.
        assert!(!arena.timing_enabled());
        assert_eq!(arena.phase_times(), PhaseTimes::default());
    }

    #[test]
    fn arena_reuse_across_patterns_changes_nothing() {
        let g = LabeledGraph::from_edges(
            &[0, 0, 0, 1, 1, 1],
            &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (2, 5), (3, 4)],
        );
        let index = GraphIndex::build(&g);
        let shapes = [
            patterns::triangle(Label(0), Label(0), Label(0)),
            patterns::single_edge(Label(0), Label(1)),
            patterns::path(&[Label(1), Label(0), Label(0)]),
            patterns::uniform_path(3, Label(0)),
        ];
        let mut shared = SearchArena::new();
        for pattern in &shapes {
            let space = CandidateSpace::build(pattern, &g, &index);
            let order = MatchingOrder::build(pattern, &space);
            let mut with_shared = CollectVisitor::with_limit(usize::MAX);
            run_search(
                &g,
                &index,
                &space,
                &order,
                false,
                None,
                &CancelToken::default(),
                &mut shared,
                &mut with_shared,
            );
            let mut fresh = SearchArena::new();
            let mut with_fresh = CollectVisitor::with_limit(usize::MAX);
            run_search(
                &g,
                &index,
                &space,
                &order,
                false,
                None,
                &CancelToken::default(),
                &mut fresh,
                &mut with_fresh,
            );
            assert_eq!(with_shared.embeddings, with_fresh.embeddings);
        }
    }
}
