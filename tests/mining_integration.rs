//! End-to-end mining integration tests: the miner, the measures and the substrates
//! working together on structured inputs with known ground truth.

use ffsm::core::measures::MeasureKind;
use ffsm::graph::canonical::canonical_code;
use ffsm::graph::{generators, patterns, Label, LabeledGraph};
use ffsm::miner::MiningSession;
use std::collections::HashSet;

/// `copies` disjoint labelled triangles (labels 0-1-2), optionally chained together.
fn triangle_forest(copies: usize, connected: bool) -> LabeledGraph {
    let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
    generators::replicated(&triangle, copies, connected)
}

#[test]
fn mining_finds_known_frequent_triangle_with_every_measure() {
    let copies = 6;
    let graph = triangle_forest(copies, false);
    // Disjoint copies: every measure counts each copy once, so the triangle's support
    // is exactly `copies` under MNI, MI, MVC, MIS alike.
    for measure in [MeasureKind::Mni, MeasureKind::Mi, MeasureKind::Mvc, MeasureKind::Mis] {
        let result = MiningSession::on(&graph)
            .measure(measure)
            .min_support(copies as f64)
            .max_edges(3)
            .run()
            .expect("valid session");
        let triangle_pattern = patterns::triangle(Label(0), Label(1), Label(2));
        let triangle_code = canonical_code(&triangle_pattern);
        let found = result
            .patterns
            .iter()
            .find(|p| canonical_code(&p.pattern) == triangle_code)
            .unwrap_or_else(|| panic!("triangle not frequent under {}", measure.name()));
        assert_eq!(found.support, copies as f64, "wrong support under {}", measure.name());
        // Nothing with 4+ edges exists in this graph at this threshold.
        assert_eq!(result.max_edges(), 3);
    }
}

#[test]
fn threshold_one_above_copy_count_prunes_everything() {
    let copies = 4;
    let graph = triangle_forest(copies, false);
    let result = MiningSession::on(&graph)
        .measure(MeasureKind::Mis)
        .min_support((copies + 1) as f64)
        .max_edges(3)
        .run()
        .expect("valid session");
    assert!(result.is_empty(), "found {} patterns above an impossible threshold", result.len());
}

#[test]
fn frequent_pattern_sets_are_nested_across_the_chain() {
    // σMIS ≤ σMVC ≤ σMI ≤ σMNI implies the frequent-pattern sets are nested the same
    // way at any common threshold.
    let graph = generators::community_graph(3, 14, 0.35, 0.03, 3, 13);
    let tau = 5.0;
    let mut sets: Vec<HashSet<_>> = Vec::new();
    for measure in [MeasureKind::Mis, MeasureKind::Mvc, MeasureKind::Mi, MeasureKind::Mni] {
        let result = MiningSession::on(&graph)
            .measure(measure)
            .min_support(tau)
            .max_edges(3)
            .run()
            .expect("valid session");
        sets.push(result.patterns.iter().map(|p| canonical_code(&p.pattern)).collect());
    }
    for w in sets.windows(2) {
        assert!(
            w[0].is_subset(&w[1]),
            "conservative measure found a pattern the permissive one missed"
        );
    }
}

#[test]
fn mining_respects_max_pattern_edges() {
    let graph = triangle_forest(5, true);
    let result = MiningSession::on(&graph)
        .measure(MeasureKind::Mni)
        .min_support(2.0)
        .max_edges(2)
        .run()
        .expect("valid session");
    assert!(result.max_edges() <= 2);
    assert!(!result.is_empty());
}

#[test]
fn reported_supports_match_direct_evaluation() {
    let graph = triangle_forest(3, false);
    let session = MiningSession::on(&graph).measure(MeasureKind::Mvc).min_support(2.0).max_edges(3);
    let measure_config = session.config().measure_config.clone();
    let result = session.run().expect("valid session");
    assert!(!result.is_empty());
    for fp in result.patterns.iter().take(5) {
        let direct = ffsm::core::evaluate(&fp.pattern, &graph, MeasureKind::Mvc, &measure_config);
        assert_eq!(fp.support, direct, "miner-reported support disagrees with direct evaluation");
    }
}

#[test]
fn grid_graph_mining_finds_square_cycles() {
    // A 4x4 single-label grid: the 4-cycle (unit square) is a frequent pattern.
    let graph = generators::grid(4, 4, 1);
    let result = MiningSession::on(&graph)
        .measure(MeasureKind::Mni)
        .min_support(4.0)
        .max_edges(4)
        .run()
        .expect("valid session");
    let square = patterns::cycle(&[Label(0); 4]);
    let square_code = canonical_code(&square);
    assert!(
        result.patterns.iter().any(|p| canonical_code(&p.pattern) == square_code),
        "unit square not reported as frequent in the grid"
    );
}
