//! Differential harness for bounds-first mining ([`MiningSession::bounds_first`]),
//! alongside `obs_differential.rs` / `prepared_stream.rs` / `shard_differential.rs`:
//!
//! * **bounds-first == exact, as a set** — turning on certified interval
//!   evaluation changes *how* patterns are decided (short-circuiting on bound
//!   arguments where possible), never *which* patterns are frequent: across
//!   MNI / MI / MVC / MIS / nuMVC / nuMIES and all three enumerator backends,
//!   the bounds-first run reproduces the exact run's canonical-code set
//!   (proptest);
//! * **intervals contain the truth** — every `support_interval` a bounds-first
//!   session attaches to a pattern brackets the exact support the plain run
//!   computed for the same pattern, and the reported support respects the
//!   certified verdict (`lo >= tau` for every accepted pattern);
//! * **interrupted sessions stay sound** — a cancelled bounds-first stream
//!   emits `Undecided` events whose intervals are finite and contain the
//!   pattern's independently recomputed exact support (pre-enumeration
//!   arguments only, never truncated-enumeration data);
//! * **invalid combinations are typed errors** — `bounds_first` with `top_k`,
//!   `run_recorded` or `run_delta` is an [`FfsmError::InvalidConfig`], not a
//!   silent wrong answer.
//!
//! The proptest shim seeds each generator deterministically from the test name,
//! so every run replays the same fixed case sequence.

use ffsm::core::measures::{MeasureConfig, MeasureKind, SupportMeasures};
use ffsm::core::occurrences::OccurrenceSet;
use ffsm::core::{CancelToken, EnumeratorBackend, FfsmError};
use ffsm::graph::canonical::canonical_code;
use ffsm::graph::generators;
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::miner::{MiningEvent, MiningResult, MiningSession, PreparedGraph};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Every measure the evaluator certifies under the default measure config —
/// the four paper columns plus both LP relaxations (satellite coverage for the
/// `nuMVC` / `nuMIES` wire names, end to end through the mining engine).
const MEASURES: [MeasureKind; 6] = [
    MeasureKind::Mni,
    MeasureKind::Mi,
    MeasureKind::Mvc,
    MeasureKind::Mis,
    MeasureKind::RelaxedMvc,
    MeasureKind::RelaxedMies,
];
const BACKENDS: [EnumeratorBackend; 3] =
    [EnumeratorBackend::CandidateSpace, EnumeratorBackend::Naive, EnumeratorBackend::Auto];

/// Exact support of one pattern, recomputed independently of the miner.
fn exact_support(
    pattern: &ffsm::graph::Pattern,
    graph: &ffsm::graph::LabeledGraph,
    measure: MeasureKind,
) -> f64 {
    let occ = OccurrenceSet::enumerate(pattern, graph, IsoConfig::default());
    SupportMeasures::new(occ, MeasureConfig::default()).compute(measure)
}

fn code_set(result: &MiningResult) -> Vec<Vec<u64>> {
    let mut codes: Vec<Vec<u64>> =
        result.patterns.iter().map(|p| canonical_code(&p.pattern).as_slice().to_vec()).collect();
    codes.sort();
    codes
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// Tentpole differential: the bounds-first frequent set equals the exact
    /// frequent set across every certified measure and every backend, and every
    /// attached interval contains the support the exact run computed.
    #[test]
    fn bounds_first_equals_exact_across_measures_and_backends(
        seed in 0u64..10_000,
        tau in 2usize..5,
    ) {
        let graph = generators::community_graph(2, 9, 0.45, 0.08, 3, seed);
        prop_assume!(graph.num_edges() >= 4);
        let prepared = PreparedGraph::new(graph);
        for measure in MEASURES {
            for backend in BACKENDS {
                let context = format!("seed {seed}, tau {tau}, {measure} under {backend:?}");
                let run = |bounds: bool| {
                    MiningSession::over(&prepared)
                        .measure(measure)
                        .min_support(tau as f64)
                        .max_edges(2)
                        .enumerator(backend)
                        .bounds_first(bounds)
                        .run()
                        .expect("valid session")
                };
                let exact = run(false);
                let bounded = run(true);
                prop_assert_eq!(code_set(&bounded), code_set(&exact),
                    "frequent sets diverged, {}", &context);
                prop_assert_eq!(bounded.completion(), exact.completion(), "{}", &context);
                // The exact run's support is the ground truth each interval
                // must bracket; the bounds run's reported support must itself
                // clear the threshold (decided-frequent reports `lo`).
                let truth: BTreeMap<Vec<u64>, f64> = exact
                    .patterns
                    .iter()
                    .map(|p| (canonical_code(&p.pattern).as_slice().to_vec(), p.support))
                    .collect();
                for p in &bounded.patterns {
                    prop_assert!(p.support >= tau as f64 - 1e-9,
                        "accepted support {} below tau, {}", p.support, &context);
                    let code = canonical_code(&p.pattern).as_slice().to_vec();
                    let exact_value = truth[&code];
                    if let Some(interval) = p.support_interval {
                        prop_assert!(
                            interval.lo <= exact_value + 1e-9
                                && exact_value <= interval.hi + 1e-9,
                            "interval [{}, {}] misses exact support {}, {}",
                            interval.lo, interval.hi, exact_value, &context
                        );
                        prop_assert!(p.certificate.is_some(),
                            "interval without a certificate, {}", &context);
                    }
                }
                // A complete bounds-first run decides everything.
                prop_assert!(bounded.undecided.is_empty(), "{}", &context);
            }
        }
    }

    /// A cancelled bounds-first stream reports every still-open candidate as an
    /// `Undecided` event whose certified interval is finite and contains the
    /// pattern's independently recomputed exact support.
    #[test]
    fn interrupted_sessions_emit_only_sound_intervals(
        seed in 0u64..10_000,
        consume in 0usize..8,
    ) {
        let graph = generators::community_graph(2, 8, 0.5, 0.1, 3, seed);
        prop_assume!(graph.num_edges() >= 4);
        let prepared = PreparedGraph::new(graph);
        let token = CancelToken::new();
        let mut stream = MiningSession::over(&prepared)
            .measure(MeasureKind::Mis)
            .min_support(2.0)
            .max_edges(3)
            .bounds_first(true)
            .cancel_token(token.clone())
            .stream()
            .expect("valid session");
        for _ in 0..consume {
            if stream.next().is_none() {
                break;
            }
        }
        token.cancel();
        let mut undecided = Vec::new();
        let mut summary = None;
        for event in &mut stream {
            match event.expect("in-process streams never error") {
                MiningEvent::Undecided(u) => undecided.push(u),
                MiningEvent::Finished(s) => summary = Some(s),
                MiningEvent::Pattern(_) | MiningEvent::LevelCompleted(_) => {}
            }
        }
        let summary = summary.expect("stream ends with Finished");
        prop_assert_eq!(summary.num_undecided, undecided.len(),
            "summary disagrees with the event stream, seed {}", seed);
        for u in &undecided {
            prop_assert!(u.interval.hi.is_finite(),
                "unbounded undecided interval, seed {}", seed);
            prop_assert!(u.interval.lo <= u.interval.hi, "inverted interval, seed {}", seed);
            let exact = exact_support(&u.pattern, prepared.graph(), MeasureKind::Mis);
            prop_assert!(
                u.interval.lo <= exact + 1e-9 && exact <= u.interval.hi + 1e-9,
                "undecided interval [{}, {}] misses exact support {}, seed {}, consumed {}",
                u.interval.lo, u.interval.hi, exact, seed, consume
            );
        }
        // The batch view carries the same undecided set.
        let result = stream.into_result();
        prop_assert_eq!(result.undecided.len(), undecided.len(), "seed {}", seed);
    }
}

/// `nuMVC` / `nuMIES` are first-class wire names: they parse, they mine, and
/// their frequent sets sandwich correctly against the measures they relax
/// (`nuMVC <= MVC` pointwise, so its frequent set can only shrink; `nuMIES >=
/// MIES = MIS` pointwise, so its frequent set can only grow).
#[test]
fn relaxed_measures_parse_and_mine_end_to_end() {
    assert_eq!("nuMVC".parse::<MeasureKind>().unwrap(), MeasureKind::RelaxedMvc);
    assert_eq!("nuMIES".parse::<MeasureKind>().unwrap(), MeasureKind::RelaxedMies);

    let graph = generators::community_graph(2, 10, 0.4, 0.06, 3, 19);
    let prepared = PreparedGraph::new(graph);
    let mine = |measure: MeasureKind| {
        MiningSession::over(&prepared)
            .measure(measure)
            .min_support(3.0)
            .max_edges(2)
            .run()
            .expect("valid session")
    };
    let nu_mvc = code_set(&mine(MeasureKind::RelaxedMvc));
    let mvc = code_set(&mine(MeasureKind::Mvc));
    assert!(
        nu_mvc.iter().all(|code| mvc.contains(code)),
        "nuMVC accepted a pattern MVC rejected (nuMVC <= MVC violated)"
    );
    let nu_mies = code_set(&mine(MeasureKind::RelaxedMies));
    let mis = code_set(&mine(MeasureKind::Mis));
    assert!(
        mis.iter().all(|code| nu_mies.contains(code)),
        "MIS accepted a pattern nuMIES rejected (nuMIES >= MIS violated)"
    );
}

/// The combinations the interval semantics cannot honour are rejected up front
/// with a typed configuration error, on every entry point that reaches them.
#[test]
fn incompatible_configurations_are_typed_errors() {
    let graph = generators::gnm_random(20, 40, 2, 7);
    let prepared = PreparedGraph::new(graph);

    // Top-k's rising threshold would invalidate already-certified floors.
    let err = MiningSession::over(&prepared)
        .min_support(2.0)
        .top_k(3)
        .bounds_first(true)
        .run()
        .expect_err("bounds_first + top_k must be rejected");
    assert!(matches!(err, FfsmError::InvalidConfig(_)), "unexpected error: {err}");

    // The eval cache records exact supports; certified intervals are not that.
    let err = MiningSession::over(&prepared)
        .min_support(2.0)
        .bounds_first(true)
        .run_recorded()
        .expect_err("bounds_first + run_recorded must be rejected");
    assert!(matches!(err, FfsmError::InvalidConfig(_)), "unexpected error: {err}");

    // And the delta leg is rejected for the same reason, before any delta
    // plumbing runs.
    let (_, cache) =
        MiningSession::over(&prepared).min_support(2.0).run_recorded().expect("plain recorded run");
    let delta = ffsm::graph::GraphDelta {
        base_vertices: prepared.graph().num_vertices(),
        base_edges: prepared.graph().num_edges(),
        ..ffsm::graph::GraphDelta::default()
    };
    let err = MiningSession::over(&prepared)
        .min_support(2.0)
        .bounds_first(true)
        .run_delta(cache, &delta)
        .expect_err("bounds_first + run_delta must be rejected");
    assert!(matches!(err, FfsmError::InvalidConfig(_)), "unexpected error: {err}");

    // The valid form still mines: the guards reject combinations, not the flag.
    let result = MiningSession::over(&prepared)
        .min_support(2.0)
        .bounds_first(true)
        .run()
        .expect("bounds_first alone is valid");
    assert_eq!(result.completion(), ffsm::miner::Completion::Complete);
}
