//! The iterative, streaming embedding enumerator over a [`CandidateSpace`].
//!
//! Unlike the naive recursive oracle (`ffsm_graph::isomorphism`), the search here is
//! an explicit-stack loop — no recursion depth limits, no per-step candidate-list
//! clones.  Every candidate pool is a borrowed slice: either a candidate set of the
//! space or the adjacency list of the already-matched pivot image with the smallest
//! degree, filtered through the space's membership bitsets.
//!
//! ## Matching order
//!
//! Pattern vertices are matched in a cost-aware, connectivity-aware order: start at
//! the vertex with the fewest candidates (ties: higher pattern degree, then lower
//! id), then repeatedly pick the unmatched vertex adjacent to the matched prefix
//! with the fewest candidates (ties: more matched neighbours, then lower id).
//! Disconnected patterns fall back to the globally best unmatched vertex when no
//! adjacent one exists.
//!
//! ## Determinism contract
//!
//! For a fixed pattern, graph and config, embeddings are emitted in one fixed
//! order: candidate pools are ascending by data vertex id (candidate sets) or in
//! adjacency-list order (pivot pools), and the matching order depends only on the
//! candidate space.  The parallel enumerator partitions the *root* pool into
//! contiguous chunks and concatenates the per-chunk results, which reproduces this
//! sequential order exactly.

use crate::candidates::CandidateSpace;
use ffsm_graph::cancel::{CancelToken, CHECK_STRIDE};
use ffsm_graph::isomorphism::{EmbeddingVisitor, VisitFlow};
use ffsm_graph::{LabeledGraph, Pattern, VertexId};

/// The fixed matching order plus the per-depth backward adjacency it induces.
#[derive(Debug, Clone)]
pub(crate) struct MatchingOrder {
    /// `order[d]` is the pattern vertex matched at depth `d`.
    pub order: Vec<VertexId>,
    /// Per depth, the pattern neighbours matched at earlier depths.
    pub earlier_neighbors: Vec<Vec<VertexId>>,
    /// Per depth, the pattern *non*-neighbours matched at earlier depths (the
    /// induced-semantics check set).
    pub earlier_non_neighbors: Vec<Vec<VertexId>>,
}

impl MatchingOrder {
    pub(crate) fn build(pattern: &Pattern, space: &CandidateSpace) -> Self {
        let n = pattern.num_vertices();
        let mut order: Vec<VertexId> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        // (candidate count, fewer pattern neighbours is worse, id) — smaller is better.
        let global_cost =
            |v: VertexId| (space.candidates(v).len(), std::cmp::Reverse(pattern.degree(v)), v);
        if n == 0 {
            return MatchingOrder {
                order,
                earlier_neighbors: Vec::new(),
                earlier_non_neighbors: Vec::new(),
            };
        }
        let start = pattern.vertices().min_by_key(|&v| global_cost(v)).expect("non-empty");
        order.push(start);
        placed[start as usize] = true;
        while order.len() < n {
            let placed_neighbors =
                |v: VertexId| pattern.neighbors(v).iter().filter(|&&w| placed[w as usize]).count();
            let next = pattern
                .vertices()
                .filter(|&v| !placed[v as usize] && placed_neighbors(v) > 0)
                .min_by_key(|&v| {
                    (space.candidates(v).len(), std::cmp::Reverse(placed_neighbors(v)), v)
                })
                .or_else(|| {
                    // Disconnected pattern: open the next component at its best root.
                    pattern
                        .vertices()
                        .filter(|&v| !placed[v as usize])
                        .min_by_key(|&v| global_cost(v))
                })
                .expect("some vertex unplaced");
            order.push(next);
            placed[next as usize] = true;
        }
        let mut position = vec![usize::MAX; n];
        for (d, &v) in order.iter().enumerate() {
            position[v as usize] = d;
        }
        let earlier_neighbors: Vec<Vec<VertexId>> = order
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                pattern.neighbors(v).iter().copied().filter(|&w| position[w as usize] < d).collect()
            })
            .collect();
        let earlier_non_neighbors = order
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                order[..d].iter().copied().filter(|&w| !pattern.has_edge(v, w)).collect()
            })
            .collect();
        MatchingOrder { order, earlier_neighbors, earlier_non_neighbors }
    }
}

/// Sentinel for "pattern vertex not yet assigned".
const UNSET: VertexId = VertexId::MAX;

/// One sequential enumeration run over (a root-restriction of) a candidate space.
///
/// `root_pool` overrides the depth-0 candidate pool — the parallel enumerator passes
/// each worker a contiguous chunk of the root candidates; `None` means the full set.
/// Returns `true` if the search space was exhausted, `false` if the visitor stopped
/// or `cancel` fired (cooperative cancellation, polled every [`CHECK_STRIDE`]
/// scan steps).
pub(crate) fn run_search<V: EmbeddingVisitor>(
    graph: &LabeledGraph,
    space: &CandidateSpace,
    order: &MatchingOrder,
    induced: bool,
    root_pool: Option<&[VertexId]>,
    cancel: &CancelToken,
    visitor: &mut V,
) -> bool {
    let n = order.order.len();
    debug_assert!(n > 0, "empty patterns are handled by the caller");
    if space.has_empty_set() {
        return true;
    }
    if cancel.is_cancelled() {
        return false;
    }
    // `assignment[pv]` is the image of pattern vertex `pv` — exactly the embedding
    // layout, so a complete assignment is visited without re-indexing.
    let mut assignment: Vec<VertexId> = vec![UNSET; n];
    let mut used = vec![false; graph.num_vertices()];
    // Per-depth candidate pool (a borrowed slice) and the scan position within it.
    let mut pools: Vec<&[VertexId]> = vec![&[]; n];
    let mut pos: Vec<usize> = vec![0; n];

    // Pool selection at `depth`: the pivot is the earlier-matched pattern neighbour
    // whose image has the fewest data neighbours; without one (depth 0 or a new
    // pattern component) the pool is the full candidate set.
    let pool_for = |depth: usize, assignment: &[VertexId]| -> &[VertexId] {
        order.earlier_neighbors[depth]
            .iter()
            .copied()
            .min_by_key(|&pn| graph.degree(assignment[pn as usize]))
            .map(|pn| graph.neighbors(assignment[pn as usize]))
            .unwrap_or_else(|| space.candidates(order.order[depth]))
    };

    let feasible = |depth: usize, gv: VertexId, assignment: &[VertexId], used: &[bool]| -> bool {
        if used[gv as usize] {
            return false;
        }
        // Pivot pools come from raw adjacency lists; membership in the candidate
        // set carries the label / degree / fingerprint / refinement checks.
        if !space.contains(order.order[depth], gv) {
            return false;
        }
        for &pn in &order.earlier_neighbors[depth] {
            if !graph.has_edge(gv, assignment[pn as usize]) {
                return false;
            }
        }
        if induced {
            for &pw in &order.earlier_non_neighbors[depth] {
                if graph.has_edge(gv, assignment[pw as usize]) {
                    return false;
                }
            }
        }
        true
    };

    pools[0] = root_pool.unwrap_or_else(|| space.candidates(order.order[0]));
    pos[0] = 0;
    let mut depth = 0usize;
    let mut steps: u32 = 0;
    loop {
        let mut extended = false;
        while pos[depth] < pools[depth].len() {
            steps += 1;
            if steps >= CHECK_STRIDE {
                steps = 0;
                if cancel.is_cancelled() {
                    return false;
                }
            }
            let gv = pools[depth][pos[depth]];
            pos[depth] += 1;
            if !feasible(depth, gv, &assignment, &used) {
                continue;
            }
            let pv = order.order[depth];
            if depth + 1 == n {
                // Complete embedding: report it and keep scanning this depth.
                assignment[pv as usize] = gv;
                let flow = visitor.visit(&assignment);
                assignment[pv as usize] = UNSET;
                if flow == VisitFlow::Stop {
                    return false;
                }
            } else {
                assignment[pv as usize] = gv;
                used[gv as usize] = true;
                depth += 1;
                pools[depth] = pool_for(depth, &assignment);
                pos[depth] = 0;
                extended = true;
                break;
            }
        }
        if extended {
            continue;
        }
        // Pool exhausted: backtrack.
        if depth == 0 {
            return true;
        }
        depth -= 1;
        let pv = order.order[depth];
        let gv = assignment[pv as usize];
        assignment[pv as usize] = UNSET;
        used[gv as usize] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::GraphIndex;
    use ffsm_graph::isomorphism::CollectVisitor;
    use ffsm_graph::{patterns, Label};

    fn enumerate_all(pattern: &Pattern, graph: &LabeledGraph) -> Vec<Vec<VertexId>> {
        let index = GraphIndex::build(graph);
        let space = CandidateSpace::build(pattern, graph, &index);
        let order = MatchingOrder::build(pattern, &space);
        let mut collect = CollectVisitor::with_limit(usize::MAX);
        if pattern.num_vertices() > 0 {
            let complete = run_search(
                graph,
                &space,
                &order,
                false,
                None,
                &CancelToken::default(),
                &mut collect,
            );
            assert!(complete);
        }
        collect.embeddings
    }

    #[test]
    fn matching_order_visits_every_vertex_once() {
        let g = LabeledGraph::from_edges(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let p = patterns::uniform_path(3, Label(0));
        let ix = GraphIndex::build(&g);
        let cs = CandidateSpace::build(&p, &g, &ix);
        let order = MatchingOrder::build(&p, &cs);
        let mut seen = order.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        // Every vertex after the first has an earlier neighbour (connected pattern).
        for d in 1..order.order.len() {
            assert!(!order.earlier_neighbors[d].is_empty());
        }
    }

    #[test]
    fn triangle_occurrences_match_naive_count() {
        let g = LabeledGraph::from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (2, 5)],
        );
        let p = patterns::triangle(Label(0), Label(0), Label(0));
        assert_eq!(enumerate_all(&p, &g).len(), 6);
    }

    #[test]
    fn embeddings_are_indexed_by_pattern_vertex() {
        let g = LabeledGraph::from_edges(&[1, 2, 1], &[(0, 1), (1, 2)]);
        let p = patterns::single_edge(Label(1), Label(2));
        let embeddings = enumerate_all(&p, &g);
        assert_eq!(embeddings.len(), 2);
        for emb in &embeddings {
            assert_eq!(g.label(emb[0]), Label(1), "slot 0 holds pattern vertex 0's image");
            assert_eq!(g.label(emb[1]), Label(2));
        }
    }

    #[test]
    fn disconnected_pattern_is_enumerated() {
        let mut p = LabeledGraph::new();
        let a = p.add_vertex(Label(1));
        let b = p.add_vertex(Label(2));
        let c = p.add_vertex(Label(3));
        let d = p.add_vertex(Label(4));
        p.add_edge(a, b).unwrap();
        p.add_edge(c, d).unwrap();
        let g = LabeledGraph::from_edges(&[1, 2, 3, 4], &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(enumerate_all(&p, &g).len(), 1);
    }

    #[test]
    fn induced_semantics_reject_chords() {
        let g = LabeledGraph::from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let p = patterns::path(&[Label(0), Label(0), Label(0)]);
        let index = GraphIndex::build(&g);
        let space = CandidateSpace::build(&p, &g, &index);
        let order = MatchingOrder::build(&p, &space);
        let mut open = CollectVisitor::with_limit(usize::MAX);
        run_search(&g, &space, &order, false, None, &CancelToken::default(), &mut open);
        assert_eq!(open.embeddings.len(), 6);
        let mut induced = CollectVisitor::with_limit(usize::MAX);
        run_search(&g, &space, &order, true, None, &CancelToken::default(), &mut induced);
        assert!(induced.embeddings.is_empty());
    }

    #[test]
    fn visitor_stop_aborts_the_search() {
        let g = LabeledGraph::from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let p = patterns::single_edge(Label(0), Label(0));
        let index = GraphIndex::build(&g);
        let space = CandidateSpace::build(&p, &g, &index);
        let order = MatchingOrder::build(&p, &space);
        let mut collect = CollectVisitor::with_limit(2);
        let complete =
            run_search(&g, &space, &order, false, None, &CancelToken::default(), &mut collect);
        assert!(!complete);
        assert_eq!(collect.embeddings.len(), 2);
    }
}
