//! [`IncrementalMiner`] — delta re-mining over consecutive epochs.
//!
//! One session configuration, many epochs: the miner records every candidate
//! evaluation of its first run ([`MiningSession::run_recorded`]) and, for each
//! **consecutive** later epoch, feeds the cache and the epoch's
//! [`GraphDelta`](ffsm_graph::GraphDelta) into [`MiningSession::run_delta`] so
//! only patterns whose occurrences touch the dirty region are re-evaluated.
//! Results are bit-for-bit those of a cold full mine of the same epoch.
//!
//! Skipping epochs (mining epoch 1, then epoch 4) breaks the delta chain; the
//! miner detects it and transparently falls back to a cold recorded run, which
//! re-arms the chain from that epoch on.  The same applies to re-mining the
//! same epoch twice or mining backwards.

use crate::store::EpochSnapshot;
use ffsm_core::FfsmError;
use ffsm_miner::{EvalCache, MiningResult, MiningSession, SessionConfig};

/// A reusable mining loop over the epochs of a [`DynamicGraph`](crate::DynamicGraph).
///
/// Holds the session configuration applied at every epoch plus the rolling
/// [`EvalCache`].  The configuration's measure, measure config and enumeration
/// backend must stay fixed (they key the cache); threshold and budgets are free
/// to vary via [`IncrementalMiner::config_mut`] between epochs.
pub struct IncrementalMiner {
    config: SessionConfig,
    cache: Option<EvalCache>,
    /// Epoch the cache describes; a mine of any other epoch than
    /// `last_epoch + 1` runs cold.
    last_epoch: Option<usize>,
}

impl IncrementalMiner {
    /// A miner applying `config` at every epoch, starting with an empty cache.
    pub fn new(config: SessionConfig) -> Self {
        IncrementalMiner { config, cache: None, last_epoch: None }
    }

    /// The session configuration applied at every epoch.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Mutable access to the configuration.  Changing the measure, measure
    /// config or backend invalidates the cache — call
    /// [`IncrementalMiner::reset`] afterwards; threshold/budget tweaks are safe.
    pub fn config_mut(&mut self) -> &mut SessionConfig {
        &mut self.config
    }

    /// Drop the cache, forcing the next [`IncrementalMiner::mine`] to run cold.
    pub fn reset(&mut self) {
        self.cache = None;
        self.last_epoch = None;
    }

    /// `true` when the next mine of `epoch` would take the incremental path.
    pub fn is_chained_to(&self, epoch: usize) -> bool {
        self.cache.is_some() && self.last_epoch.is_some_and(|e| e + 1 == epoch)
    }

    /// Mine one epoch snapshot: incrementally when it directly succeeds the
    /// last mined epoch (and carries a delta), cold otherwise.  Either way the
    /// cache rolls forward to this epoch.
    pub fn mine(&mut self, snapshot: &EpochSnapshot) -> Result<MiningResult, FfsmError> {
        let session = MiningSession::with_config(snapshot.prepared(), self.config.clone());
        let chained = self.is_chained_to(snapshot.epoch());
        let (result, cache) = match (chained, snapshot.delta()) {
            (true, Some(delta)) => {
                let prior = self.cache.take().expect("chained implies cache");
                session.run_delta(prior, delta)?
            }
            _ => session.run_recorded()?,
        };
        self.cache = Some(cache);
        self.last_epoch = Some(snapshot.epoch());
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DynamicGraph;
    use ffsm_core::{GraphUpdate, MeasureKind};
    use ffsm_graph::{generators, LabeledGraph};

    fn store() -> DynamicGraph {
        let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        DynamicGraph::new(generators::replicated(&triangle, 6, false))
    }

    fn config(store: &DynamicGraph) -> SessionConfig {
        MiningSession::over(store.current().prepared())
            .measure(MeasureKind::Mni)
            .min_support(3.0)
            .max_edges(3)
            .config()
            .clone()
    }

    fn fingerprints(result: &MiningResult) -> Vec<(Vec<u64>, u64, usize)> {
        result
            .patterns
            .iter()
            .map(|p| {
                (
                    ffsm_graph::canonical::canonical_code(&p.pattern).as_slice().to_vec(),
                    p.support.to_bits(),
                    p.num_occurrences,
                )
            })
            .collect()
    }

    #[test]
    fn chained_epochs_match_cold_runs() {
        let mut store = store();
        let mut miner = IncrementalMiner::new(config(&store));
        miner.mine(store.current()).unwrap();
        let batches: Vec<Vec<GraphUpdate>> = vec![
            vec![GraphUpdate::RemoveEdge(0, 1)],
            vec![GraphUpdate::AddEdge(0, 1), GraphUpdate::RemoveVertex(5)],
            vec![GraphUpdate::AddVertex(ffsm_graph::Label(1)), GraphUpdate::AddEdge(17, 0)],
        ];
        for batch in batches {
            let snapshot = store.apply(&batch).unwrap().clone();
            assert!(miner.is_chained_to(snapshot.epoch()));
            let incremental = miner.mine(&snapshot).unwrap();
            let cold = MiningSession::with_config(snapshot.prepared(), miner.config().clone())
                .run()
                .unwrap();
            assert_eq!(fingerprints(&incremental), fingerprints(&cold), "batch {batch:?}");
            assert_eq!(incremental.final_threshold.to_bits(), cold.final_threshold.to_bits());
        }
    }

    #[test]
    fn skipping_an_epoch_falls_back_to_cold() {
        let mut store = store();
        let mut miner = IncrementalMiner::new(config(&store));
        miner.mine(store.current()).unwrap();
        store.apply(&[GraphUpdate::RemoveEdge(0, 1)]).unwrap();
        store.apply(&[GraphUpdate::RemoveEdge(3, 4)]).unwrap();
        // Epoch 2 is not chained (epoch 1 was never mined) — must still be correct.
        assert!(!miner.is_chained_to(store.epoch()));
        let result = miner.mine(store.current()).unwrap();
        let cold = MiningSession::with_config(store.current().prepared(), miner.config().clone())
            .run()
            .unwrap();
        assert_eq!(fingerprints(&result), fingerprints(&cold));
        // The chain re-arms from here.
        let snapshot = store.apply(&[GraphUpdate::AddEdge(0, 1)]).unwrap().clone();
        assert!(miner.is_chained_to(snapshot.epoch()));
        let incremental = miner.mine(&snapshot).unwrap();
        assert!(incremental.stats.evaluations_reused > 0, "delta path taken");
    }

    #[test]
    fn reset_forces_cold() {
        let mut store = store();
        let mut miner = IncrementalMiner::new(config(&store));
        miner.mine(store.current()).unwrap();
        let snapshot = store.apply(&[GraphUpdate::RemoveEdge(0, 2)]).unwrap().clone();
        miner.reset();
        assert!(!miner.is_chained_to(snapshot.epoch()));
        let result = miner.mine(&snapshot).unwrap();
        assert_eq!(result.stats.evaluations_reused, 0);
    }
}
