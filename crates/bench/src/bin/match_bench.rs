//! `match_bench` — the `match_scaling` workload behind `BENCH_match.json`.
//!
//! Three sweeps over the subgraph-matching engines:
//!
//! * **decoy sweep** — the layered decoy-cycle workload (`workloads::
//!   decoy_cycle_workload`), where the naive oracle walks `Θ(n⁴)` doomed partial
//!   paths and the candidate-space engine prunes the whole block before searching.
//!   This is the headline naive-vs-indexed comparison; the largest size asserts the
//!   ≥ 5x speedup the subsystem promises.
//! * **dense sweep** — the embedding-heavy disjoint-clique workload
//!   (`workloads::dense_triangle_workload`), timing the indexed engine at 1, 2, 4
//!   and 8 worker threads to chart the deterministic root-partition parallelism.
//! * **dense-community sweep** — the two-label dense-community workload
//!   (`workloads::dense_community_workload`), the matcher pathology where the label
//!   filter prunes almost nothing.  Each entry also times a **seed-equivalent**
//!   search (the pre-fix loop: always-pivot-adjacency pools with per-vertex
//!   membership tests, no word-parallel intersection, no backjumping, fresh
//!   allocations per pattern) over the same candidate space; the largest size
//!   asserts the fixed search loop beats it by ≥ 1.5x.  Both sides of that gate
//!   count without materialising (`count_us` vs `seed_equiv_us`), so the ratio
//!   measures the search loops themselves rather than the shared cost of
//!   allocating a six-figure embedding vector.
//!
//! Every entry additionally times the `Auto` backend end to end (heuristic decision
//! plus whichever engine it resolves to, counting without materialising); on the
//! largest decoy and dense-community entries `Auto` must stay within 10% (plus a
//! small absolute grace) of the better fixed backend's counting cost.  Counting on
//! both sides keeps the gate about the heuristic + search loop rather than the
//! multi-millisecond allocation noise of materialising six-figure embedding
//! vectors.
//!
//! Every timed run is cross-checked against the naive oracle's embedding count, so
//! the bench doubles as an integration test of the engines' equivalence.
//!
//! Usage: `match_bench [--max-layer N] [--dense-copies N] [--community-size N] [--out PATH]`
//! (defaults: layer 64, 2000 copies, community size 32, `BENCH_match.json` in the
//! working directory).
//!
//! The JSON report is a flat list of entries (`workload`, `size`, `embeddings`,
//! `naive_us`, `space_us`, `indexed_us`, `t2_us`, `t4_us`, `t8_us`, `count_us`,
//! `seed_equiv_us`, `auto_us`, `speedup`) consumed by the CI artifact upload; future
//! PRs extend the trajectory rather than reformatting it.

use ffsm_bench::report::{json_string, Table};
use ffsm_bench::{flag_value, format_duration, timed, workloads};
use ffsm_graph::isomorphism::{
    count_embeddings, enumerate_embeddings, EnumeratorBackend, IsoConfig,
};
use ffsm_graph::{LabeledGraph, Pattern, VertexId};
use ffsm_match::{auto_backend, GraphIndex, Matcher};
use std::time::Duration;

struct Entry {
    workload: &'static str,
    size: usize,
    embeddings: usize,
    naive: Duration,
    /// Candidate-space + matching-order build (the per-pattern setup cost).
    space: Duration,
    /// Sequential enumeration over the prepared space.
    indexed: Duration,
    threaded: [Duration; 3], // 2, 4, 8 workers, enumeration only
    /// Sequential counting over the prepared space — the search loop without the
    /// cost of materialising embeddings; the fixed side of the seed-equivalent gate.
    count: Duration,
    /// The pre-fix search loop over the same candidate space (counting only).
    seed_equiv: Duration,
    /// The `Auto` backend end to end: heuristic decision + resolved engine
    /// (including the candidate-space build when it resolves there), counting
    /// without materialising — the same discipline as `count`/`seed_equiv`.
    auto: Duration,
}

impl Entry {
    /// Naive time over the *total* per-pattern indexed cost (setup + search).
    fn speedup(&self) -> f64 {
        self.naive.as_secs_f64() / (self.space + self.indexed).as_secs_f64().max(1e-9)
    }

    /// Counting cost of the better *fixed* backend — what the (counting) `Auto`
    /// measurement competes with.  The naive side reuses the materialising run,
    /// which can only overstate the naive cost and therefore never loosens the
    /// gate in `Auto`'s favour when the fixed engine is the faster one.
    fn best_fixed_count(&self) -> Duration {
        self.naive.min(self.space + self.count)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"workload\": {}, \"size\": {}, \"embeddings\": {}, \"naive_us\": {}, \
             \"space_us\": {}, \"indexed_us\": {}, \"t2_us\": {}, \"t4_us\": {}, \
             \"t8_us\": {}, \"count_us\": {}, \"seed_equiv_us\": {}, \"auto_us\": {}, \
             \"speedup\": {:.2}}}",
            json_string(self.workload),
            self.size,
            self.embeddings,
            self.naive.as_micros(),
            self.space.as_micros(),
            self.indexed.as_micros(),
            self.threaded[0].as_micros(),
            self.threaded[1].as_micros(),
            self.threaded[2].as_micros(),
            self.count.as_micros(),
            self.seed_equiv.as_micros(),
            self.auto.as_micros(),
            self.speedup()
        )
    }
}

/// The seed's search loop, re-implemented over the public API exactly as it ran
/// before the dense-graph fix (see `run_search` in PR 4's `enumerate.rs`): the
/// per-depth pool is the *unfiltered* adjacency slice of the earlier-matched
/// neighbor whose image has the fewest data neighbors, and every pool element
/// then pays the full feasibility ladder — a `used` probe, candidate-set
/// membership (a binary search), and a `has_edge` binary search against **every**
/// earlier pattern neighbor, the pivot included.  Nothing is word-parallel,
/// exhausted subtrees backtrack one level at a time (no backjumping), and all
/// search buffers are allocated fresh per call.  Non-induced semantics, counting
/// only — enough to time the search loop itself.
fn seed_equivalent_count(graph: &LabeledGraph, pattern: &Pattern, matcher: &Matcher) -> usize {
    let space = matcher.space();
    let order = matcher.matching_order();
    let n = order.len();
    if n == 0 || space.has_empty_set() {
        return 0;
    }
    // Earlier-in-order pattern neighbors of each order position.
    let earlier: Vec<Vec<VertexId>> = order
        .iter()
        .enumerate()
        .map(|(d, &u)| {
            pattern.neighbors(u).iter().copied().filter(|w| order[..d].contains(w)).collect()
        })
        .collect();
    let mut assignment: Vec<VertexId> = vec![VertexId::MAX; pattern.num_vertices()];
    let mut used = vec![false; graph.num_vertices()];
    let mut pools: Vec<&[VertexId]> = vec![&[]; n];
    let mut pos = vec![0usize; n];
    let mut count = 0usize;

    // Pool selection as in the seed: the earlier neighbor with the smallest-degree
    // image donates its whole adjacency list; membership in the candidate set is
    // re-checked per element inside the feasibility ladder.
    let pool_for = |depth: usize, assignment: &[VertexId]| -> &[VertexId] {
        earlier[depth]
            .iter()
            .copied()
            .min_by_key(|&pn| graph.degree(assignment[pn as usize]))
            .map(|pn| graph.neighbors(assignment[pn as usize]))
            .unwrap_or_else(|| space.candidates(order[depth]))
    };
    let feasible = |depth: usize, gv: VertexId, assignment: &[VertexId], used: &[bool]| -> bool {
        if used[gv as usize] {
            return false;
        }
        if !space.contains(order[depth], gv) {
            return false;
        }
        earlier[depth].iter().all(|&pn| graph.has_edge(gv, assignment[pn as usize]))
    };

    pools[0] = space.candidates(order[0]);
    let mut depth = 0usize;
    loop {
        let u = order[depth];
        let mut descended = false;
        while pos[depth] < pools[depth].len() {
            let gv = pools[depth][pos[depth]];
            pos[depth] += 1;
            if !feasible(depth, gv, &assignment, &used) {
                continue;
            }
            if depth + 1 == n {
                count += 1;
                continue;
            }
            assignment[u as usize] = gv;
            used[gv as usize] = true;
            depth += 1;
            pools[depth] = pool_for(depth, &assignment);
            pos[depth] = 0;
            descended = true;
            break;
        }
        if descended {
            continue;
        }
        if depth == 0 {
            break;
        }
        depth -= 1;
        let pu = order[depth];
        used[assignment[pu as usize] as usize] = false;
        assignment[pu as usize] = VertexId::MAX;
    }
    count
}

/// Run one workload through both engines and every thread count, cross-checking all
/// embedding counts against the naive oracle.
fn measure(workload: &'static str, size: usize, graph: &LabeledGraph, pattern: &Pattern) -> Entry {
    let naive_config = IsoConfig::default().with_backend(EnumeratorBackend::Naive);
    let (naive_result, naive) = timed(|| enumerate_embeddings(pattern, graph, naive_config));
    assert!(naive_result.complete, "naive run must finish ({workload}, size {size})");

    // The per-graph index is the once-per-session cost; report it out of band and
    // time the per-pattern work (candidate space + search) like the miner sees it.
    let (index, index_time) = timed(|| GraphIndex::build(graph));
    eprintln!("index build at {workload}/{size}: {}", format_duration(index_time));

    let (matcher, space) = timed(|| Matcher::new(pattern, graph, &index));
    let run_indexed = |threads: usize| -> (usize, Duration) {
        let config = IsoConfig { threads, ..IsoConfig::default() };
        let (result, elapsed) = timed(|| matcher.enumerate(config));
        assert_eq!(
            result.len(),
            naive_result.len(),
            "candidate-space engine diverged from the oracle ({workload}, size {size}, \
             {threads} threads)"
        );
        (result.len(), elapsed)
    };
    let (embeddings, indexed) = run_indexed(1);
    let threaded = [run_indexed(2).1, run_indexed(4).1, run_indexed(8).1];

    let ((counted, count_complete), count) = timed(|| matcher.count(IsoConfig::default()));
    assert_eq!(
        (counted, count_complete),
        (naive_result.len(), true),
        "counting path diverged from the oracle ({workload}, size {size})"
    );

    let (seed_count, seed_equiv) = timed(|| seed_equivalent_count(graph, pattern, &matcher));
    assert_eq!(
        seed_count,
        naive_result.len(),
        "seed-equivalent search diverged from the oracle ({workload}, size {size})"
    );

    // `Auto` end to end: the per-pattern cost a miner sees with the shared index
    // already built — heuristic decision plus the engine it resolves to, counting
    // without materialising so the measurement is comparable to the `count` column
    // it is gated against.  Best of three to suppress single-sample scheduler
    // noise.
    let mut auto = Duration::MAX;
    for _ in 0..3 {
        let (auto_count, sample) = timed(|| match auto_backend(pattern, &index) {
            EnumeratorBackend::Naive => count_embeddings(pattern, graph, IsoConfig::default()),
            _ => Matcher::new(pattern, graph, &index).count(IsoConfig::default()).0,
        });
        assert_eq!(
            auto_count,
            naive_result.len(),
            "auto backend diverged from the oracle ({workload}, size {size})"
        );
        auto = auto.min(sample);
    }

    Entry { workload, size, embeddings, naive, space, indexed, threaded, count, seed_equiv, auto }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_layer: usize = flag_value(&args, "--max-layer")
        .map(|v| v.parse().expect("--max-layer expects a number"))
        .unwrap_or(64);
    let dense_copies: usize = flag_value(&args, "--dense-copies")
        .map(|v| v.parse().expect("--dense-copies expects a number"))
        .unwrap_or(2000);
    let community_size: usize = flag_value(&args, "--community-size")
        .map(|v| v.parse().expect("--community-size expects a number"))
        .unwrap_or(32);
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_match.json").to_string();

    let mut entries: Vec<Entry> = Vec::new();
    let mut table = Table::new(
        "match_scaling: naive vs candidate-space embedding enumeration",
        &[
            "workload",
            "size",
            "embeddings",
            "naive",
            "space",
            "indexed",
            "x2",
            "x4",
            "x8",
            "count",
            "seed-equiv",
            "auto",
            "speedup",
        ],
    );
    for layer in workloads::match_scaling_sizes(max_layer) {
        let (graph, pattern) = workloads::decoy_cycle_workload(layer, 8);
        entries.push(measure("decoy_cycle", layer, &graph, &pattern));
    }
    for copies in [dense_copies / 4, dense_copies] {
        let (graph, pattern) = workloads::dense_triangle_workload(copies.max(1));
        entries.push(measure("dense_triangle", copies.max(1), &graph, &pattern));
    }
    for size in [community_size / 2, community_size] {
        let (graph, pattern) = workloads::dense_community_workload(size.max(4));
        entries.push(measure("dense_community", size.max(4), &graph, &pattern));
    }
    for e in &entries {
        table.add_row(vec![
            e.workload.to_string(),
            e.size.to_string(),
            e.embeddings.to_string(),
            format_duration(e.naive),
            format_duration(e.space),
            format_duration(e.indexed),
            format_duration(e.threaded[0]),
            format_duration(e.threaded[1]),
            format_duration(e.threaded[2]),
            format_duration(e.count),
            format_duration(e.seed_equiv),
            format_duration(e.auto),
            format!("{:.2}x", e.speedup()),
        ]);
    }
    table.print();

    let body: Vec<String> = entries.iter().map(|e| format!("    {}", e.to_json())).collect();
    let json = format!(
        "{{\n  \"bench\": \"match_scaling\",\n  \"workloads\": [\"decoy_cycle(4-cycle)\", \
         \"dense_triangle\", \"dense_community\"],\n  \"entries\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write perf report");
    println!("wrote {out_path} ({} entries)", entries.len());

    // Acceptance gate 1: on the largest decoy workload, the candidate-space engine
    // must beat the naive oracle by at least 5x.
    let largest_decoy = entries
        .iter()
        .filter(|e| e.workload == "decoy_cycle")
        .max_by_key(|e| e.size)
        .expect("decoy sweep ran");
    assert!(
        largest_decoy.speedup() >= 5.0,
        "candidate-space engine only {:.2}x faster than naive on the largest decoy workload \
         ({:?} vs {:?} at layer size {})",
        largest_decoy.speedup(),
        largest_decoy.space + largest_decoy.indexed,
        largest_decoy.naive,
        largest_decoy.size
    );

    // Acceptance gate 2: on the largest dense-community workload, the fixed search
    // loop must beat the seed-equivalent one by at least 1.5x over the *same*
    // candidate space.  Both sides count without materialising, so the ratio is
    // the search loops themselves; it is also conservative, since both sides
    // already share the fixed (word-parallel) space build.
    let largest_dense = entries
        .iter()
        .filter(|e| e.workload == "dense_community")
        .max_by_key(|e| e.size)
        .expect("dense-community sweep ran");
    let dense_gain =
        largest_dense.seed_equiv.as_secs_f64() / largest_dense.count.as_secs_f64().max(1e-9);
    assert!(
        dense_gain >= 1.5,
        "fixed matcher only {dense_gain:.2}x over the seed-equivalent search on the largest \
         dense-community workload ({:?} vs {:?} at community size {})",
        largest_dense.count,
        largest_dense.seed_equiv,
        largest_dense.size
    );

    // Acceptance gate 3: `Auto` stays within 10% (plus a 200µs grace for timing
    // noise on sub-millisecond entries) of the better fixed backend's counting
    // cost on the decoy and dense-community headliners.
    for e in [largest_decoy, largest_dense] {
        let budget = e.best_fixed_count().mul_f64(1.1) + Duration::from_micros(200);
        assert!(
            e.auto <= budget,
            "auto backend too slow on {}/{}: {:?} vs best fixed {:?} (budget {:?})",
            e.workload,
            e.size,
            e.auto,
            e.best_fixed_count(),
            budget
        );
    }
}
