//! Contract tests for the prepare-once/serve-many split ([`PreparedGraph`]) and
//! the streaming API ([`MiningSession::stream`]):
//!
//! * **stream == batch** — the `Pattern` events of a stream and the patterns of
//!   the equivalent batch `run()` agree bit-for-bit (canonical code, support
//!   bits, occurrence counts), across sequential / level-parallel / top-k modes
//!   and both enumerator backends (proptest, alongside the other differential
//!   harnesses in this directory);
//! * **interruption yields a prefix** — a cancelled or deadline-hit stream
//!   produces a deterministic prefix of the full run's pattern sequence, with
//!   the matching typed [`Completion`];
//! * **index exactly once** — a [`PreparedGraph`] shared across concurrent
//!   sessions builds its `GraphIndex` exactly once (build-counter assert).
//!
//! The proptest shim seeds each generator deterministically from the test name,
//! so every run (locally and in CI) replays the same fixed case sequence.

use ffsm::core::{CancelToken, EnumeratorBackend, MeasureKind};
use ffsm::graph::canonical::canonical_code;
use ffsm::graph::generators;
use ffsm::miner::{Completion, MiningEvent, MiningResult, MiningSession, PreparedGraph};
use proptest::prelude::*;
use std::time::Duration;

/// One pattern, bit-for-bit: canonical code, exact support bits, occurrences.
type PatternFingerprint = (Vec<u64>, u64, usize);

fn fingerprint(pattern: &ffsm::miner::FrequentPattern) -> PatternFingerprint {
    (
        canonical_code(&pattern.pattern).as_slice().to_vec(),
        pattern.support.to_bits(),
        pattern.num_occurrences,
    )
}

fn session(
    prepared: &PreparedGraph,
    measure: MeasureKind,
    backend: EnumeratorBackend,
    threads: usize,
    top_k: Option<usize>,
) -> MiningSession {
    let mut session = MiningSession::over(prepared)
        .measure(measure)
        .min_support(2.0)
        .max_edges(2)
        .enumerator(backend)
        .threads(threads);
    if let Some(k) = top_k {
        session = session.top_k(k);
    }
    session
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Tentpole differential: streamed patterns == batch `run()` patterns
    /// bit-for-bit across sequential / parallel / top-k and both backends.
    #[test]
    fn stream_equals_batch_across_modes_and_backends(seed in 0u64..10_000) {
        let graph = generators::community_graph(2, 9, 0.45, 0.08, 3, seed);
        prop_assume!(graph.num_edges() >= 4);
        let prepared = PreparedGraph::new(graph);
        for backend in [EnumeratorBackend::CandidateSpace, EnumeratorBackend::Naive] {
            for (threads, top_k) in [(1, None), (3, None), (2, Some(5))] {
                let context = format!("seed {seed}, {backend:?}, {threads} threads, top_k {top_k:?}");
                let batch: MiningResult =
                    session(&prepared, MeasureKind::Mni, backend, threads, top_k)
                        .run()
                        .expect("valid session");
                let mut streamed: Vec<PatternFingerprint> = Vec::new();
                let mut finished = None;
                let stream = session(&prepared, MeasureKind::Mni, backend, threads, top_k)
                    .stream()
                    .expect("valid session");
                for event in stream {
                    match event.expect("in-process streams never error") {
                        MiningEvent::Pattern(p) => streamed.push(fingerprint(&p)),
                        MiningEvent::LevelCompleted(_) | MiningEvent::Undecided(_) => {}
                        MiningEvent::Finished(summary) => finished = Some(summary),
                    }
                }
                let summary = finished.expect("stream ends with Finished");
                prop_assert_eq!(summary.completion, Completion::Complete, "{}", &context);
                prop_assert_eq!(summary.num_patterns, batch.len(), "{}", &context);
                let batch_fp: Vec<PatternFingerprint> =
                    batch.patterns.iter().map(fingerprint).collect();
                match top_k {
                    None => {
                        // Threshold mode: the event sequence IS the result sequence.
                        prop_assert_eq!(&streamed, &batch_fp, "stream != batch, {}", &context);
                    }
                    Some(_) => {
                        // Top-k mode: events are entries into the running top-k (a
                        // superset); the final result must match the batch exactly.
                        for fp in &batch_fp {
                            prop_assert!(streamed.contains(fp),
                                "batch pattern missing from stream, {}", &context);
                        }
                    }
                }
                // And the stream's own batch view agrees too.
                let via_stream = session(&prepared, MeasureKind::Mni, backend, threads, top_k)
                    .stream()
                    .expect("valid session")
                    .into_result();
                let via_stream_fp: Vec<PatternFingerprint> =
                    via_stream.patterns.iter().map(fingerprint).collect();
                prop_assert_eq!(&via_stream_fp, &batch_fp, "into_result != run, {}", &context);
                prop_assert_eq!(via_stream.final_threshold.to_bits(),
                    batch.final_threshold.to_bits(), "threshold, {}", &context);
            }
        }
        // Every session above shared one prepared graph: its index was built
        // exactly once (the naive-backend sessions never need it, the
        // candidate-space ones share it).
        prop_assert_eq!(prepared.index_build_count(), 1);
    }

    /// A stream cancelled after consuming part of its events yields a prefix of
    /// the full run's pattern sequence — whole levels, deterministic.
    #[test]
    fn cancelled_stream_yields_deterministic_prefix(
        seed in 0u64..10_000,
        consume in 0usize..12,
    ) {
        let graph = generators::community_graph(2, 8, 0.5, 0.1, 3, seed);
        prop_assume!(graph.num_edges() >= 4);
        let prepared = PreparedGraph::new(graph);
        let full = MiningSession::over(&prepared)
            .min_support(2.0)
            .max_edges(3)
            .run()
            .expect("valid session");
        let full_fp: Vec<PatternFingerprint> = full.patterns.iter().map(fingerprint).collect();

        let token = CancelToken::new();
        let mut stream = MiningSession::over(&prepared)
            .min_support(2.0)
            .max_edges(3)
            .cancel_token(token.clone())
            .stream()
            .expect("valid session");
        for _ in 0..consume {
            if stream.next().is_none() {
                break;
            }
        }
        token.cancel();
        let partial = stream.into_result();
        let partial_fp: Vec<PatternFingerprint> =
            partial.patterns.iter().map(fingerprint).collect();
        prop_assert!(partial_fp.len() <= full_fp.len());
        prop_assert_eq!(&partial_fp[..], &full_fp[..partial_fp.len()],
            "cancelled result is not a prefix, seed {}, consumed {}", seed, consume);
        // Either the run finished before the token was honoured, or it reports
        // the cancellation; a short prefix must never masquerade as complete.
        match partial.completion() {
            Completion::Complete => prop_assert_eq!(partial_fp.len(), full_fp.len()),
            Completion::Cancelled => {}
            other => prop_assert!(false, "unexpected completion {:?}", other),
        }
    }
}

#[test]
fn zero_deadline_stops_before_any_level() {
    let triangle = ffsm::graph::LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
    let graph = generators::replicated(&triangle, 5, false);
    let result = MiningSession::on(&graph)
        .min_support(1.0)
        .deadline(Duration::ZERO)
        .run()
        .expect("valid session");
    assert!(result.is_empty());
    assert_eq!(result.completion(), Completion::DeadlineExceeded);
    assert!(result.stats.truncated());

    // The stream form emits exactly one event: the typed Finished.
    let events: Vec<MiningEvent> = MiningSession::on(&graph)
        .min_support(1.0)
        .deadline(Duration::ZERO)
        .stream()
        .expect("valid session")
        .map(|e| e.unwrap())
        .collect();
    assert_eq!(events.len(), 1);
    assert!(matches!(
        &events[0],
        MiningEvent::Finished(s) if s.completion == Completion::DeadlineExceeded
    ));
}

#[test]
fn generous_deadline_changes_nothing() {
    let graph = generators::community_graph(2, 8, 0.5, 0.1, 3, 41);
    let prepared = PreparedGraph::new(graph);
    let plain = MiningSession::over(&prepared).min_support(2.0).run().unwrap();
    let deadlined = MiningSession::over(&prepared)
        .min_support(2.0)
        .deadline(Duration::from_secs(3600))
        .run()
        .unwrap();
    assert_eq!(plain.len(), deadlined.len());
    assert_eq!(deadlined.completion(), Completion::Complete);
}

#[test]
fn budget_caps_report_which_budget() {
    let graph = generators::gnm_random(60, 180, 2, 8);
    let prepared = PreparedGraph::new(graph);
    let evals = MiningSession::over(&prepared)
        .min_support(1.0)
        .budget(ffsm::miner::MiningBudget { max_evaluations: 4, max_patterns: 10_000 })
        .run()
        .unwrap();
    assert_eq!(
        evals.completion(),
        Completion::BudgetExhausted(ffsm::miner::BudgetKind::Evaluations)
    );
    assert!(evals.stats.candidates_evaluated <= 4);

    let patterns = MiningSession::over(&prepared)
        .min_support(1.0)
        .budget(ffsm::miner::MiningBudget { max_evaluations: 100_000, max_patterns: 2 })
        .run()
        .unwrap();
    assert_eq!(
        patterns.completion(),
        Completion::BudgetExhausted(ffsm::miner::BudgetKind::Patterns)
    );
    assert_eq!(patterns.len(), 2);
}

/// The headline serving contract: one `PreparedGraph`, many concurrent sessions,
/// exactly one index build — and every session agrees with the others.
#[test]
fn shared_prepared_graph_builds_index_exactly_once_across_threads() {
    let graph = generators::community_graph(3, 10, 0.4, 0.05, 3, 77);
    let prepared = PreparedGraph::new(graph);
    assert_eq!(prepared.index_build_count(), 0, "index must stay lazy until a session runs");
    let results: Vec<Vec<PatternFingerprint>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let prepared = prepared.clone();
                scope.spawn(move || {
                    // Mix of modes, all over the same shared handle.
                    let mut session = MiningSession::over(&prepared).min_support(2.0).max_edges(2);
                    if i % 2 == 1 {
                        session = session.threads(2);
                    }
                    session
                        .run()
                        .expect("valid session")
                        .patterns
                        .iter()
                        .map(fingerprint)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("mining thread panicked")).collect()
    });
    assert_eq!(
        prepared.index_build_count(),
        1,
        "concurrent sessions must share exactly one index build"
    );
    for w in results.windows(2) {
        assert_eq!(w[0], w[1], "concurrent sessions disagreed");
    }
}
