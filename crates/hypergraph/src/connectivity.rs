//! Hypergraph connectivity and component decomposition.
//!
//! Occurrence/instance hypergraphs of a pattern in a large data graph usually split
//! into many connected components (distant occurrences never share an image vertex).
//! The NP-hard measures (MVC, MIES/MIS) and the LP relaxations are *additive* over
//! these components, so solving per component and summing is both exact and much
//! faster — this is the "additiveness" extension the paper lists as future work
//! (Section 6, item 4).  `ffsm-core::decompose` builds on this module.

use crate::{EdgeId, Hypergraph};

/// One connected component of a hypergraph, re-indexed densely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// The component as a standalone hypergraph with vertices `0..vertices.len()`.
    pub hypergraph: Hypergraph,
    /// Map from component vertex index to the original vertex id.
    pub vertices: Vec<usize>,
    /// Original edge ids, in the order they appear in `hypergraph`.
    pub edges: Vec<EdgeId>,
}

/// Union-find over hypergraph vertices: two vertices are connected when some edge
/// contains both.  Returns the root of every vertex.
fn vertex_partition(h: &Hypergraph) -> Vec<usize> {
    let n = h.num_vertices();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    for (_, edge) in h.edges() {
        let mut it = edge.iter();
        if let Some(&first) = it.next() {
            let mut root = find(&mut parent, first);
            for &v in it {
                let rv = find(&mut parent, v);
                if rv != root {
                    // Union by simply re-rooting; path compression keeps this fast.
                    parent[rv] = root;
                    root = find(&mut parent, root);
                }
            }
        }
    }
    (0..n).map(|v| find(&mut parent, v)).collect()
}

/// Split the hypergraph into its connected components.  Isolated vertices (contained
/// in no edge) are *not* reported as components — they are irrelevant to every cover /
/// matching / LP problem this crate solves.
///
/// Components are ordered by their smallest original vertex.
pub fn connected_components(h: &Hypergraph) -> Vec<Component> {
    if h.num_edges() == 0 {
        return Vec::new();
    }
    let roots = vertex_partition(h);
    // Group non-isolated vertices by root.
    let mut non_isolated = vec![false; h.num_vertices()];
    for (_, edge) in h.edges() {
        for &v in edge {
            non_isolated[v] = true;
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for v in 0..h.num_vertices() {
        if non_isolated[v] {
            groups.entry(roots[v]).or_default().push(v);
        }
    }
    // Index: root -> component position.
    let mut component_of_root = std::collections::HashMap::new();
    let mut components: Vec<Component> = Vec::with_capacity(groups.len());
    for (root, vertices) in groups {
        component_of_root.insert(root, components.len());
        let mut local_index = std::collections::HashMap::with_capacity(vertices.len());
        for (i, &v) in vertices.iter().enumerate() {
            local_index.insert(v, i);
        }
        components.push(Component {
            hypergraph: Hypergraph::new(vertices.len()),
            vertices,
            edges: Vec::new(),
        });
    }
    // Distribute edges.
    for (eid, edge) in h.edges() {
        let root = roots[edge[0]];
        let ci = component_of_root[&root];
        let comp = &mut components[ci];
        let local: Vec<usize> = edge
            .iter()
            .map(|&v| comp.vertices.binary_search(&v).expect("vertex is in its component"))
            .collect();
        comp.hypergraph.add_edge(local).expect("component edge is valid");
        comp.edges.push(eid);
    }
    components
}

/// Number of connected components (by edges; isolated vertices ignored).
pub fn num_components(h: &Hypergraph) -> usize {
    connected_components(h).len()
}

/// `true` if all edges lie in a single connected component (trivially true for a
/// hypergraph with no edges).
pub fn is_connected(h: &Hypergraph) -> bool {
    num_components(h) <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_cover::exact_vertex_cover;
    use crate::SearchBudget;

    fn two_component_hypergraph() -> Hypergraph {
        let mut h = Hypergraph::new(8);
        h.add_edge(vec![0, 1, 2]).unwrap();
        h.add_edge(vec![2, 3]).unwrap();
        h.add_edge(vec![5, 6]).unwrap();
        h.add_edge(vec![6, 7]).unwrap();
        h
    }

    #[test]
    fn empty_hypergraph_has_no_components() {
        let h = Hypergraph::new(5);
        assert!(connected_components(&h).is_empty());
        assert!(is_connected(&h));
        assert_eq!(num_components(&h), 0);
    }

    #[test]
    fn components_are_split_correctly() {
        let h = two_component_hypergraph();
        let comps = connected_components(&h);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].vertices, vec![0, 1, 2, 3]);
        assert_eq!(comps[1].vertices, vec![5, 6, 7]);
        assert_eq!(comps[0].edges, vec![0, 1]);
        assert_eq!(comps[1].edges, vec![2, 3]);
        assert_eq!(comps[0].hypergraph.num_edges(), 2);
        assert_eq!(comps[1].hypergraph.num_vertices(), 3);
        assert!(!is_connected(&h));
        // Vertex 4 is isolated and belongs to no component.
        assert!(comps.iter().all(|c| !c.vertices.contains(&4)));
    }

    #[test]
    fn component_edges_reference_local_vertices() {
        let h = two_component_hypergraph();
        for comp in connected_components(&h) {
            for (_, edge) in comp.hypergraph.edges() {
                for &v in edge {
                    assert!(v < comp.vertices.len());
                }
            }
        }
    }

    #[test]
    fn single_component_when_edges_chain() {
        let mut h = Hypergraph::new(6);
        h.add_edge(vec![0, 1]).unwrap();
        h.add_edge(vec![1, 2]).unwrap();
        h.add_edge(vec![2, 3, 4, 5]).unwrap();
        assert!(is_connected(&h));
        let comps = connected_components(&h);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].vertices.len(), 6);
    }

    #[test]
    fn vertex_cover_is_additive_over_components() {
        let h = two_component_hypergraph();
        let whole = exact_vertex_cover(&h, SearchBudget::default()).value;
        let per_component: usize = connected_components(&h)
            .iter()
            .map(|c| exact_vertex_cover(&c.hypergraph, SearchBudget::default()).value)
            .sum();
        assert_eq!(whole, per_component);
    }

    #[test]
    fn large_union_decomposes_into_many_parts() {
        // 20 disjoint 3-vertex edges.
        let mut h = Hypergraph::new(60);
        for i in 0..20 {
            h.add_edge(vec![3 * i, 3 * i + 1, 3 * i + 2]).unwrap();
        }
        let comps = connected_components(&h);
        assert_eq!(comps.len(), 20);
        assert!(comps.iter().all(|c| c.hypergraph.num_edges() == 1));
    }
}
