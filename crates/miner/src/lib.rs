//! # ffsm-miner — single-graph frequent-subgraph mining
//!
//! A pattern-growth miner in the style of GraMi (Elseidy et al., VLDB 2014), the
//! setting that motivates the paper: find all patterns whose support in a *single*
//! large labeled graph reaches a threshold τ.  The miner is parameterised by a
//! pluggable [`SupportMeasure`](ffsm_core::SupportMeasure) — any of the anti-monotone
//! measures of `ffsm-core` (MNI, MI, MVC, MIS/MIES, the LP relaxations, MCP) or a
//! user-defined one — which is exactly the comparison the paper's evaluation
//! performs: the same threshold admits more patterns under an over-estimating
//! measure (MNI) than under a conservative one (MIS/MVC).
//!
//! [`MiningSession`] is the single entry point.  Sequential, level-parallel and
//! top-k mining are modes of one engine, batch ([`MiningSession::run`]) and
//! streaming ([`MiningSession::stream`]) are two views of the same computation,
//! and [`PreparedGraph`] splits the once-per-graph preprocessing from the
//! per-session query work:
//!
//! ```
//! use ffsm_graph::{generators, LabeledGraph};
//! use ffsm_core::MeasureKind;
//! use ffsm_miner::MiningSession;
//!
//! // Five disjoint labelled triangles: the triangle is frequent at threshold 5.
//! let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
//! let graph = generators::replicated(&triangle, 5, false);
//! let result = MiningSession::on(&graph)
//!     .measure(MeasureKind::Mni)
//!     .min_support(5.0)
//!     .max_edges(3)
//!     .run()
//!     .expect("valid session");
//! assert!(result.patterns.iter().any(|p| p.pattern.num_edges() == 3));
//! ```
//!
//! ## User-defined measures
//!
//! Any type implementing [`SupportMeasure`](ffsm_core::SupportMeasure) plugs into a
//! session — the engine treats it exactly like a built-in measure:
//!
//! ```
//! use ffsm_core::{OccurrenceSet, SupportMeasure};
//! use ffsm_graph::{generators, LabeledGraph};
//! use ffsm_miner::MiningSession;
//! use std::sync::Arc;
//!
//! /// Counts the distinct data vertices touched by any occurrence, scaled by the
//! /// pattern size.  Smaller patterns touching the same vertices score higher, so
//! /// the measure is anti-monotone and sound for pruning.
//! struct ImageSpread;
//!
//! impl SupportMeasure for ImageSpread {
//!     fn support(&self, occurrences: &OccurrenceSet) -> f64 {
//!         occurrences.num_images() as f64 / occurrences.pattern().num_vertices().max(1) as f64
//!     }
//!     fn is_anti_monotone(&self) -> bool {
//!         true
//!     }
//!     fn name(&self) -> &str {
//!         "image-spread"
//!     }
//! }
//!
//! let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
//! let graph = generators::replicated(&triangle, 4, false);
//! let measure: Arc<dyn SupportMeasure> = Arc::new(ImageSpread);
//! let result = MiningSession::on(&graph)
//!     .measure(measure)
//!     .min_support(4.0)
//!     .max_edges(3)
//!     .run()
//!     .expect("valid session");
//! // Each of the 4 triangle copies contributes 3 vertices: the single-vertex-per-
//! // pattern-node spread of every frequent pattern is 4.
//! assert!(result.patterns.iter().all(|p| p.support >= 4.0));
//! assert!(!result.is_empty());
//! ```
//!
//! Algorithm outline:
//!
//! 1. seed with all frequent single-edge patterns (one per frequent label pair);
//! 2. grow patterns by adding either an edge between existing nodes or a new labelled
//!    node attached to an existing node ([`extension`]);
//! 3. de-duplicate candidates by canonical code, evaluate their support (in parallel
//!    when `.threads(k)` is set), and prune every candidate below the threshold —
//!    sound because the engine only accepts anti-monotone measures (Theorems 3.2,
//!    3.5, 4.2, 4.3, 4.4 of the paper).
//!
//! ## Serving workloads
//!
//! For repeated mining over one graph, build a [`PreparedGraph`] once and open
//! sessions over it with [`MiningSession::over`]: the per-graph matching index is
//! built lazily exactly once and shared across every concurrent session.
//! [`MiningSession::stream`] turns a session into a lazy [`PatternStream`] of
//! [`MiningEvent`]s for incremental delivery, and
//! [`MiningSession::cancel_token`] / [`MiningSession::deadline`] bound a run's
//! wall-clock cost with a typed [`Completion`] status instead of silent
//! truncation.
//!
//! The pre-session entry points (`Miner`, `mine_parallel`, `mine_top_k` and their
//! config structs), deprecated since 0.2.0, have been removed; the session API
//! covers every mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta;
mod engine;
pub mod extension;
pub mod postprocess;
mod prepared;
mod session;
mod sharded;
mod stream;
mod types;

pub use delta::{CachedEval, EvalCache};
pub use prepared::PreparedGraph;
pub use session::{MeasureSelection, MiningBudget, MiningSession, SessionConfig};
pub use sharded::{ShardedRunStats, ShardedSession};
pub use stream::{LevelSummary, MiningEvent, PatternStream, RunSummary};
pub use types::{
    BudgetKind, Completion, FrequentPattern, MiningResult, MiningStats, SessionCounters,
    UndecidedPattern,
};

// Re-exported so downstream consumers of `MiningStats` can name the
// observability types without depending on `ffsm-obs` directly.
pub use ffsm_obs::{Phase, PhaseTimes, SearchCounters};

// Re-exported so bounds-first consumers can name the interval/certificate types
// (and probe measure support) without depending on `ffsm-approx` directly.
pub use ffsm_approx::{BoundsEvaluator, BoundsOutcome, Certificate, SupportInterval};

pub use postprocess::{closed_patterns, maximal_patterns, PatternLattice};
