//! Block-partitioned overlap enumeration — the boundary restriction behind
//! partitioned mining.
//!
//! When a graph is mined shard-by-shard (`ffsm-shard`), its occurrence
//! hypergraph arrives *blocked*: every hyperedge (occurrence) carries the shard
//! that anchored it, and a vertex (pattern-node image) is either **private** to
//! the occurrences of one block or lies on the **boundary** — the cut region
//! where halos overlap.  That structure bounds where overlaps can happen:
//!
//! > Two occurrences from *different* blocks can only overlap in a boundary
//! > vertex, because a private vertex is, by definition, touched by one block
//! > only.
//!
//! So a partitioned overlap build needs the full pairwise scan *within* each
//! block but only the boundary vertices' incidence lists *across* blocks —
//! which is exactly how the exact cross-shard support merge stays cheap: the
//! within-block work parallelises per shard, and the cross-block work scales
//! with the cut, not with the graph.  [`blocked_overlap_pairs`] implements that
//! enumeration and [`validate_block_cover`] checks the precondition it relies
//! on; the differential tests pin both against the brute-force all-pairs scan.

use crate::hypergraph::{EdgeId, Hypergraph};

/// A violation of the block-cover precondition: a vertex not marked boundary is
/// shared by occurrences of two different blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCoverViolation {
    /// The offending (private-but-shared) vertex.
    pub vertex: usize,
    /// An edge of one block touching it.
    pub edge_a: EdgeId,
    /// An edge of another block touching it.
    pub edge_b: EdgeId,
}

/// Check the precondition of [`blocked_overlap_pairs`]: every vertex *not* in
/// `is_boundary` is touched by edges of at most one block.
///
/// # Panics
/// Panics if `block.len() != h.num_edges()` or `is_boundary.len() != h.num_vertices()`.
pub fn validate_block_cover(
    h: &Hypergraph,
    block: &[u32],
    is_boundary: &[bool],
) -> Result<(), BlockCoverViolation> {
    assert_eq!(block.len(), h.num_edges(), "one block id per hyperedge");
    assert_eq!(is_boundary.len(), h.num_vertices(), "one boundary flag per vertex");
    let mut first_touch: Vec<Option<EdgeId>> = vec![None; h.num_vertices()];
    for (e, vertices) in h.edges() {
        for &v in vertices {
            if is_boundary[v] {
                continue;
            }
            match first_touch[v] {
                None => first_touch[v] = Some(e),
                Some(prev) if block[prev] != block[e] => {
                    return Err(BlockCoverViolation { vertex: v, edge_a: prev, edge_b: e });
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

/// All overlapping hyperedge pairs `(a, b)` with `a < b`, sorted and
/// de-duplicated, computed blockwise: private vertices contribute only
/// within-block pairs, boundary vertices contribute pairs regardless of block.
///
/// Sound and complete **iff** the block cover is valid (see
/// [`validate_block_cover`]); debug builds assert it.  With a single block and
/// no boundary this degenerates to the ordinary inverted-index overlap scan.
///
/// # Panics
/// Panics if `block.len() != h.num_edges()` or `is_boundary.len() != h.num_vertices()`.
pub fn blocked_overlap_pairs(
    h: &Hypergraph,
    block: &[u32],
    is_boundary: &[bool],
) -> Vec<(EdgeId, EdgeId)> {
    assert_eq!(block.len(), h.num_edges(), "one block id per hyperedge");
    assert_eq!(is_boundary.len(), h.num_vertices(), "one boundary flag per vertex");
    debug_assert!(validate_block_cover(h, block, is_boundary).is_ok());
    let mut pairs: Vec<(EdgeId, EdgeId)> = Vec::new();
    for (v, incident) in h.incidence().into_iter().enumerate() {
        for (i, &a) in incident.iter().enumerate() {
            for &b in &incident[i + 1..] {
                // Cross-block pairs are only reachable through the boundary;
                // a private vertex's incident edges all share one block.
                if is_boundary[v] || block[a] == block[b] {
                    pairs.push(if a < b { (a, b) } else { (b, a) });
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The oracle: every pair sharing at least one vertex.
    fn brute_force_pairs(h: &Hypergraph) -> Vec<(EdgeId, EdgeId)> {
        let mut pairs = Vec::new();
        for a in 0..h.num_edges() {
            for b in (a + 1)..h.num_edges() {
                let ea = h.edge(a);
                if h.edge(b).iter().any(|v| ea.binary_search(v).is_ok()) {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }

    /// Build a random blocked hypergraph honouring the cover precondition:
    /// `blocks` groups of private vertices plus one shared boundary pool; each
    /// edge mixes private vertices of its own block with boundary vertices.
    fn random_blocked(
        seed: u64,
        blocks: u32,
        private_per_block: usize,
        boundary_pool: usize,
        edges: usize,
    ) -> (Hypergraph, Vec<u32>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = blocks as usize * private_per_block + boundary_pool;
        let mut h = Hypergraph::new(n);
        let mut block = Vec::with_capacity(edges);
        let mut is_boundary = vec![false; n];
        for flag in is_boundary.iter_mut().skip(blocks as usize * private_per_block) {
            *flag = true;
        }
        for _ in 0..edges {
            let b = rng.gen_range(0..blocks);
            let base = b as usize * private_per_block;
            let mut vertices = Vec::new();
            for _ in 0..rng.gen_range(1..4) {
                vertices.push(base + rng.gen_range(0..private_per_block));
            }
            // Roughly half the edges straddle into the boundary pool.
            if boundary_pool > 0 && rng.gen_bool(0.5) {
                vertices
                    .push(blocks as usize * private_per_block + rng.gen_range(0..boundary_pool));
            }
            h.add_edge(vertices).unwrap();
            block.push(b);
        }
        (h, block, is_boundary)
    }

    #[test]
    fn blocked_scan_matches_brute_force_on_random_instances() {
        for seed in 0..25u64 {
            let (h, block, boundary) = random_blocked(seed, 1 + (seed % 4) as u32, 6, 4, 30);
            assert_eq!(validate_block_cover(&h, &block, &boundary), Ok(()));
            assert_eq!(
                blocked_overlap_pairs(&h, &block, &boundary),
                brute_force_pairs(&h),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn single_block_degenerates_to_plain_overlap_scan() {
        let (h, _, _) = random_blocked(99, 3, 5, 3, 20);
        let block = vec![0u32; h.num_edges()];
        let boundary = vec![false; h.num_vertices()];
        assert_eq!(validate_block_cover(&h, &block, &boundary), Ok(()));
        assert_eq!(blocked_overlap_pairs(&h, &block, &boundary), brute_force_pairs(&h));
    }

    #[test]
    fn cover_violations_are_reported_and_would_lose_pairs() {
        // Two blocks sharing vertex 0, which is *not* marked boundary.
        let mut h = Hypergraph::new(3);
        h.add_edge(vec![0, 1]).unwrap();
        h.add_edge(vec![0, 2]).unwrap();
        let block = vec![0, 1];
        let boundary = vec![false, false, false];
        let violation = validate_block_cover(&h, &block, &boundary).unwrap_err();
        assert_eq!(violation.vertex, 0);
        // Marking the shared vertex boundary repairs the cover and the pair shows up.
        let repaired = vec![true, false, false];
        assert_eq!(validate_block_cover(&h, &block, &repaired), Ok(()));
        assert_eq!(blocked_overlap_pairs(&h, &block, &repaired), vec![(0, 1)]);
    }
}
