//! Differential test harness for the candidate-space matching engine.
//!
//! Two oracles anchor this file:
//!
//! * the retained naive backtracker (`ffsm_graph::isomorphism`) — the
//!   candidate-space engine must produce an *identical embedding multiset* (the
//!   engines order embeddings differently, so sets are compared sorted) for
//!   proptest-generated pattern / data-graph pairs, under both the induced and
//!   non-induced semantics, sequentially and in parallel;
//! * the naive-backend mining engine — MIS, MVC, MNI and MI session supports must
//!   agree bit-for-bit across the enumerator backends, in every session mode
//!   (sequential, level-parallel, top-k).
//!
//! Within the candidate-space engine the contract is stronger than multiset
//! equality: the parallel root partition must reproduce the sequential emission
//! *order* exactly, for every thread count.
//!
//! The proptest shim seeds each generator deterministically from the test name, so
//! every run (locally and in CI) replays the same fixed case sequence.

use ffsm::core::occurrences::OccurrenceSet;
use ffsm::core::MeasureKind;
use ffsm::graph::canonical::canonical_code;
use ffsm::graph::isomorphism::{
    enumerate_embeddings, Embedding, EnumeratorBackend, IsoConfig, VisitFlow,
};
use ffsm::graph::{generators, LabeledGraph};
use ffsm::matching::{GraphIndex, Matcher};
use ffsm::miner::MiningSession;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn sorted(mut embeddings: Vec<Embedding>) -> Vec<Embedding> {
    embeddings.sort();
    embeddings
}

/// The frequent-pattern multiset of a mining run, keyed by canonical code, with the
/// exact support bits (`f64::to_bits`) as values — "bit-for-bit" agreement.
fn pattern_supports(
    graph: &LabeledGraph,
    kind: MeasureKind,
    backend: EnumeratorBackend,
    threads: usize,
    top_k: Option<usize>,
) -> BTreeMap<String, (u64, usize)> {
    let mut session = MiningSession::on(graph)
        .measure(kind)
        .min_support(2.0)
        .max_edges(2)
        .threads(threads)
        .enumerator(backend);
    if let Some(k) = top_k {
        session = session.top_k(k);
    }
    let result = session.run().expect("valid session");
    result
        .patterns
        .iter()
        .map(|p| {
            (format!("{:?}", canonical_code(&p.pattern)), (p.support.to_bits(), p.num_occurrences))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Tentpole equivalence: on random graphs and sampled patterns, the
    /// candidate-space engine (sequential, 3-thread and one-per-core) reproduces
    /// the naive oracle's embedding multiset in both semantics.
    #[test]
    fn candidate_space_matches_naive_oracle(seed in 0u64..10_000, edges in 1usize..4) {
        let graph = generators::gnm_random(24, 60, 2, seed);
        let Some((pattern, _)) = generators::sample_pattern(&graph, edges, seed ^ 0xbeef) else {
            return Ok(());
        };
        let index = GraphIndex::build(&graph);
        let matcher = Matcher::new(&pattern, &graph, &index);
        for induced in [false, true] {
            let config = IsoConfig { induced, ..IsoConfig::default() };
            let naive = enumerate_embeddings(&pattern, &graph, config.clone());
            prop_assert!(naive.complete);
            let oracle = sorted(naive.embeddings);
            let context = format!("seed {seed}, {edges}-edge pattern, induced {induced}");
            let sequential = matcher.enumerate(config.clone());
            prop_assert!(sequential.complete, "sequential incomplete, {}", context);
            prop_assert_eq!(sorted(sequential.embeddings.clone()), oracle.clone(),
                "sequential vs oracle, {}", context);
            for threads in [3usize, 0] {
                let parallel = matcher.enumerate(IsoConfig { threads, ..config.clone() });
                // The parallel contract is exact-order equality with sequential.
                prop_assert_eq!(&parallel.embeddings, &sequential.embeddings,
                    "parallel order diverged, {} threads, {}", threads, context);
            }
            // Counting and existence agree with the materialising path.
            let (count, complete) = matcher.count(config.clone());
            prop_assert_eq!((count, complete), (oracle.len(), true), "count, {}", context);
            prop_assert_eq!(matcher.exists(config), !oracle.is_empty(), "exists, {}", context);
        }
    }

    /// The dispatching `OccurrenceSet::enumerate` produces the same occurrence sets
    /// under both backends, and a shared prebuilt index changes nothing.
    #[test]
    fn occurrence_sets_agree_across_backends(seed in 0u64..10_000) {
        let graph = generators::community_graph(2, 8, 0.5, 0.1, 2, seed);
        let Some((pattern, _)) = generators::sample_pattern(&graph, 2, seed ^ 0x51) else {
            return Ok(());
        };
        let config = IsoConfig::default();
        let indexed = OccurrenceSet::enumerate(&pattern, &graph, config.clone());
        let naive = OccurrenceSet::enumerate(
            &pattern,
            &graph,
            config.clone().with_backend(EnumeratorBackend::Naive),
        );
        prop_assert!(indexed.is_complete() && naive.is_complete());
        prop_assert_eq!(
            sorted(indexed.embeddings().to_vec()),
            sorted(naive.embeddings().to_vec()),
            "backends disagree, seed {}", seed
        );
        let index = GraphIndex::build(&graph);
        let shared = OccurrenceSet::enumerate_with_index(&pattern, &graph, &index, config);
        prop_assert_eq!(shared.embeddings(), indexed.embeddings(),
            "throwaway vs shared index, seed {}", seed);
        // Derived set-level views coincide too (they are order-invariant).
        prop_assert_eq!(indexed.num_instances(), naive.num_instances());
        prop_assert_eq!(indexed.num_images(), naive.num_images());
    }

    /// Dense-community regression (the matcher pathology this harness guards): high
    /// average degree and only two labels, so the label filter prunes almost
    /// nothing and the search lives or dies on intersected pools and backjumping.
    /// All three backends — including `Auto`, whichever engine it resolves to —
    /// must reproduce the oracle's embedding multiset, sequentially and in
    /// parallel, in both semantics.
    #[test]
    fn dense_graphs_agree_across_all_backends(seed in 0u64..10_000, edges in 1usize..4) {
        let graph = generators::community_graph(2, 12, 0.8, 0.25, 2, seed);
        prop_assume!(graph.num_edges() * 4 >= graph.num_vertices() * 10); // avg degree >= 5
        let Some((pattern, _)) = generators::sample_pattern(&graph, edges, seed ^ 0xdead) else {
            return Ok(());
        };
        let index = GraphIndex::build(&graph);
        let matcher = Matcher::new(&pattern, &graph, &index);
        for induced in [false, true] {
            let config = IsoConfig { induced, ..IsoConfig::default() };
            let naive = enumerate_embeddings(&pattern, &graph, config.clone());
            prop_assert!(naive.complete);
            let oracle = sorted(naive.embeddings);
            let context = format!("seed {seed}, {edges}-edge pattern, induced {induced}");
            let sequential = matcher.enumerate(config.clone());
            prop_assert!(sequential.complete, "dense sequential incomplete, {}", context);
            prop_assert_eq!(sorted(sequential.embeddings.clone()), oracle.clone(),
                "dense sequential vs oracle, {}", context);
            for threads in [4usize, 0] {
                let parallel = matcher.enumerate(IsoConfig { threads, ..config.clone() });
                prop_assert_eq!(&parallel.embeddings, &sequential.embeddings,
                    "dense parallel order diverged, {} threads, {}", threads, context);
            }
            let auto = OccurrenceSet::enumerate(
                &pattern,
                &graph,
                config.clone().with_backend(EnumeratorBackend::Auto),
            );
            prop_assert!(auto.is_complete());
            prop_assert_eq!(sorted(auto.embeddings().to_vec()), oracle,
                "auto backend vs oracle, {}", context);
        }
    }

    /// MIS / MVC / MNI / MI session supports agree bit-for-bit across the
    /// enumerator backends, in the sequential, level-parallel and top-k modes.
    #[test]
    fn session_supports_bit_for_bit_across_backends(seed in 0u64..10_000) {
        let graph = generators::community_graph(2, 9, 0.45, 0.08, 3, seed);
        prop_assume!(graph.num_edges() >= 4);
        for kind in [MeasureKind::Mis, MeasureKind::Mvc, MeasureKind::Mni, MeasureKind::Mi] {
            let naive = pattern_supports(&graph, kind, EnumeratorBackend::Naive, 1, None);
            let indexed =
                pattern_supports(&graph, kind, EnumeratorBackend::CandidateSpace, 1, None);
            prop_assert_eq!(&naive, &indexed, "backends change {} results, seed {}", kind, seed);
            let parallel =
                pattern_supports(&graph, kind, EnumeratorBackend::CandidateSpace, 4, None);
            prop_assert_eq!(&naive, &parallel,
                "parallel indexed session changes {} results, seed {}", kind, seed);
            let k = naive.len().max(1);
            let top_k =
                pattern_supports(&graph, kind, EnumeratorBackend::CandidateSpace, 2, Some(k));
            prop_assert_eq!(&naive, &top_k,
                "top-k indexed session diverges from naive {} run, seed {}", kind, seed);
        }
    }

}

proptest! {
    // The mining runs below are the expensive kind (exact MIS on dense occurrence
    // hypergraphs, five full sessions per measure), so this block runs fewer cases
    // than the enumeration-level tests above.
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    /// The four measures on the dense workload, now including the `Auto` backend:
    /// per measure, every (backend, thread-count) combination must match the naive
    /// sequential run bit-for-bit.
    #[test]
    fn dense_session_supports_bit_for_bit_across_backends(seed in 0u64..10_000) {
        let graph = generators::community_graph(2, 8, 0.65, 0.12, 2, seed);
        prop_assume!(graph.num_edges() * 2 >= graph.num_vertices() * 4); // avg degree >= 4
        for kind in [MeasureKind::Mis, MeasureKind::Mvc, MeasureKind::Mni, MeasureKind::Mi] {
            let naive = pattern_supports(&graph, kind, EnumeratorBackend::Naive, 1, None);
            for backend in [EnumeratorBackend::CandidateSpace, EnumeratorBackend::Auto] {
                for threads in [1usize, 4] {
                    let run = pattern_supports(&graph, kind, backend, threads, None);
                    prop_assert_eq!(&naive, &run,
                        "dense {} run diverges ({} backend, {} threads), seed {}",
                        kind, backend, threads, seed);
                }
            }
        }
    }
}

#[test]
fn streaming_visitor_counts_without_materialising() {
    let graph = generators::star_overlap(6, 8);
    let pattern = ffsm::graph::patterns::single_edge(ffsm::graph::Label(0), ffsm::graph::Label(1));
    let index = GraphIndex::build(&graph);
    let matcher = Matcher::new(&pattern, &graph, &index);

    // Stream with early termination after 5 embeddings.
    let mut seen = 0usize;
    let complete = matcher.stream(IsoConfig::default(), &mut |emb: &[u32]| {
        assert_eq!(emb.len(), 2);
        seen += 1;
        if seen == 5 {
            VisitFlow::Stop
        } else {
            VisitFlow::Continue
        }
    });
    assert!(!complete);
    assert_eq!(seen, 5);

    // Budgeted counting clamps identically on every thread count, and the naive
    // oracle's budgeted count agrees.
    let limit = IsoConfig::with_limit(11);
    for threads in [1usize, 2, 4] {
        let config = IsoConfig { threads, ..limit.clone() };
        assert_eq!(matcher.count(config), (11, false), "threads {threads}");
    }
    assert_eq!(ffsm::graph::isomorphism::count_embeddings(&pattern, &graph, limit), 11);
}

#[test]
fn one_index_serves_many_patterns() {
    // Session-style reuse: one GraphIndex, many patterns — each OccurrenceSet must
    // match its own from-scratch enumeration.
    let graph = generators::community_graph(3, 8, 0.5, 0.1, 3, 99);
    let index = GraphIndex::build(&graph);
    let mut checked = 0usize;
    for edges in 1..=3 {
        for seed in [1u64, 7, 23] {
            let Some((pattern, _)) = generators::sample_pattern(&graph, edges, seed) else {
                continue;
            };
            let shared =
                OccurrenceSet::enumerate_with_index(&pattern, &graph, &index, IsoConfig::default());
            let fresh = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
            assert_eq!(shared.embeddings(), fresh.embeddings());
            checked += 1;
        }
    }
    assert!(checked >= 6, "pattern sampling failed too often ({checked} checks)");
}

#[test]
fn candidate_space_diagnostics_are_consistent() {
    let (graph, pattern) = {
        // Small decoy workload: the pruning statistics must show actual deletions.
        let mut g = LabeledGraph::new();
        let mut layer = Vec::new();
        for label in 0..4u32 {
            layer.push((0..5).map(|_| g.add_vertex(ffsm::graph::Label(label))).collect::<Vec<_>>());
        }
        for l in 0..3 {
            for &u in &layer[l] {
                for &v in &layer[l + 1] {
                    g.add_edge(u, v).unwrap();
                }
            }
        }
        // One real cycle.
        let a = g.add_vertex(ffsm::graph::Label(0));
        let b = g.add_vertex(ffsm::graph::Label(1));
        let c = g.add_vertex(ffsm::graph::Label(2));
        let d = g.add_vertex(ffsm::graph::Label(3));
        for (u, v) in [(a, b), (b, c), (c, d), (d, a)] {
            g.add_edge(u, v).unwrap();
        }
        let p = ffsm::graph::patterns::cycle(&[
            ffsm::graph::Label(0),
            ffsm::graph::Label(1),
            ffsm::graph::Label(2),
            ffsm::graph::Label(3),
        ]);
        (g, p)
    };
    let index = GraphIndex::build(&graph);
    let matcher = Matcher::new(&pattern, &graph, &index);
    let space = matcher.space();
    // Only the real cycle survives pruning: one candidate per pattern vertex.
    assert_eq!(space.sizes(), vec![1, 1, 1, 1]);
    // The middle layers passed the initial filter and were peeled by refinement.
    let initial: usize = space.initial_sizes().iter().sum();
    assert!(initial > space.total_size());
    assert!(space.refinement_rounds() >= 2);
    let result = matcher.enumerate(IsoConfig::default());
    assert_eq!(result.len(), 1);
}
