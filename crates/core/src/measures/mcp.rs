//! The MCP (minimum clique partition) support measure.
//!
//! Calders, Ramon and Van Dyck (ICDM 2008) proposed partitioning the overlap graph
//! into the minimum number of cliques and using that number as the support.  Every
//! independent set of the overlap graph contains at most one vertex per clique, so
//!
//! ```text
//! σMIS ≤ σMCP
//! ```
//!
//! i.e. MCP is a *less conservative* overlap-graph measure than MIS while remaining
//! anti-monotonic (proved in the original paper; intuitively, the clique partition of
//! a subpattern's overlap graph induces one for the superpattern).  Like MIS it is
//! NP-hard; the exact solver is budgeted and a greedy upper bound is available.
//!
//! In the hypergraph framework the overlap graph is derived from the occurrence /
//! instance hypergraph exactly as for MIS (Section 4.2), so MCP slots into the same
//! machinery — it is simply a different graph invariant of the same object.

use super::MeasureOutcome;
use ffsm_hypergraph::clique_cover::{clique_cover_number, greedy_clique_partition};
use ffsm_hypergraph::{Hypergraph, SearchBudget};

/// MCP support on an already-built overlap graph — the single solving path shared by
/// [`mcp`], `SupportMeasures` (which caches the graph) and the miner.
pub fn mcp_on_graph(
    overlap: &ffsm_hypergraph::independent_set::SimpleGraph,
    budget: SearchBudget,
) -> MeasureOutcome {
    let res = clique_cover_number(overlap, budget);
    MeasureOutcome { value: res.value, optimal: res.optimal }
}

/// Exact (budgeted) minimum clique partition of the overlap graph of `hypergraph`,
/// built through the inverted incidence index ([`Hypergraph::overlap_graph`]).
/// Callers that also need σMIS should go through `SupportMeasures`, whose
/// `OverlapCache` shares one overlap-graph build between the two.
pub fn mcp(hypergraph: &Hypergraph, budget: SearchBudget) -> MeasureOutcome {
    if hypergraph.is_empty() {
        return MeasureOutcome { value: 0, optimal: true };
    }
    mcp_on_graph(&hypergraph.overlap_graph(), budget)
}

/// Greedy clique-partition upper bound on σMCP.
pub fn mcp_greedy(hypergraph: &Hypergraph) -> usize {
    if hypergraph.is_empty() {
        return 0;
    }
    greedy_clique_partition(&hypergraph.overlap_graph()).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::mis::mis;
    use crate::occurrences::{HypergraphBasis, OccurrenceSet};
    use ffsm_graph::isomorphism::IsoConfig;
    use ffsm_graph::{figures, generators};

    fn occurrence_hypergraph(example: &ffsm_graph::figures::FigureExample) -> Hypergraph {
        let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
        occ.hypergraph(HypergraphBasis::Occurrence)
    }

    #[test]
    fn figure2_single_instance_needs_one_clique() {
        // All six automorphic occurrences pairwise overlap: the overlap graph is a
        // clique, so one clique covers it.
        let h = occurrence_hypergraph(&figures::figure2());
        let r = mcp(&h, SearchBudget::default());
        assert!(r.optimal);
        assert_eq!(r.value, 1);
        assert_eq!(mcp_greedy(&h), 1);
    }

    #[test]
    fn figure6_two_hubs_two_cliques() {
        // The seven occurrences split into the hub-1 star and the hub-8 star; each
        // star's occurrences pairwise overlap, so two cliques suffice, and MIS = 2
        // shows two are necessary.
        let h = occurrence_hypergraph(&figures::figure6());
        let r = mcp(&h, SearchBudget::default());
        assert!(r.optimal);
        assert_eq!(r.value, 2);
    }

    #[test]
    fn mcp_dominates_mis_on_all_figures() {
        for example in ffsm_graph::figures::all_figures() {
            let h = occurrence_hypergraph(&example);
            let budget = SearchBudget::default();
            let mis_v = mis(&h, budget);
            let mcp_v = mcp(&h, budget);
            assert!(mis_v.optimal && mcp_v.optimal, "truncated on {}", example.name);
            assert!(
                mis_v.value <= mcp_v.value,
                "σMIS={} > σMCP={} on {}",
                mis_v.value,
                mcp_v.value,
                example.name
            );
            assert!(mcp_v.value <= mcp_greedy(&h), "greedy below exact on {}", example.name);
        }
    }

    #[test]
    fn disjoint_occurrences_need_one_clique_each() {
        // Five disjoint labelled edges: the overlap graph has no edges, so MCP equals
        // the number of occurrences (and so does MIS).
        let edge = ffsm_graph::LabeledGraph::from_edges(&[0, 1], &[(0, 1)]);
        let graph = generators::replicated(&edge, 5, false);
        let pattern = ffsm_graph::patterns::single_edge(ffsm_graph::Label(0), ffsm_graph::Label(1));
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
        let h = occ.hypergraph(HypergraphBasis::Occurrence);
        assert_eq!(mcp(&h, SearchBudget::default()).value, 5);
        assert_eq!(mcp_greedy(&h), 5);
    }

    #[test]
    fn empty_hypergraph_is_zero() {
        let h = Hypergraph::new(0);
        assert_eq!(mcp(&h, SearchBudget::default()).value, 0);
        assert_eq!(mcp_greedy(&h), 0);
    }
}
