//! The support measures of the paper, unified behind one calculator.
//!
//! [`SupportMeasures`] is built from an [`OccurrenceSet`] and a [`MeasureConfig`]; it
//! exposes one method per measure plus a generic [`SupportMeasures::compute`] keyed by
//! [`MeasureKind`] (used by the miner and the experiment harness).  The occurrence and
//! instance hypergraphs are built lazily and cached.

pub mod mcp;
pub mod mi;
pub mod mis;
pub mod mni;
pub mod mvc;
pub mod relaxed;

use crate::occurrences::{HypergraphBasis, OccurrenceSet};
use ffsm_graph::isomorphism::IsoConfig;
use ffsm_hypergraph::{Hypergraph, SearchBudget};
use std::cell::OnceCell;

/// Strategy for choosing the coarse-grained (transitive) node subsets over which the
/// MI measure minimises (Definition 3.2.4 leaves this collection open; see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MiStrategy {
    /// Only singleton subsets — MI degenerates to MNI.
    Singletons,
    /// Connected node subsets of exactly `k` vertices — the parameterised MNI-k of
    /// Definition 2.2.9.
    ConnectedK(usize),
    /// Singletons plus every subset of every automorphism orbit of every connected
    /// subgraph of the pattern (the reading illustrated by Figures 4 and 7).
    /// This is the default.
    #[default]
    AutomorphismOrbits,
    /// Singletons plus every subset of every label class — the loosest literal
    /// reading of "transitive node subset in a subgraph of P" (the edgeless subgraph
    /// makes all same-labelled vertices transitive).  Produces the smallest MI values.
    LabelClasses,
}

/// Algorithm used for the NP-hard MVC measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MvcAlgorithm {
    /// Branch-and-bound exact cover (budgeted).
    #[default]
    Exact,
    /// Maximal-matching based k-approximation (k = pattern size).
    GreedyMatching,
    /// Highest-degree greedy heuristic.
    GreedyDegree,
}

/// Identifies a support measure for generic computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeasureKind {
    /// Number of occurrences (not anti-monotonic; for reference only).
    OccurrenceCount,
    /// Number of instances (not anti-monotonic; for reference only).
    InstanceCount,
    /// Minimum-image-based support (Definition 2.2.8).
    Mni,
    /// Minimum k-image-based support (Definition 2.2.9).
    MniK(usize),
    /// Minimum instance support (Definition 3.2.4) under the configured strategy.
    Mi,
    /// Minimum vertex cover support (Definition 3.3.2) under the configured algorithm.
    Mvc,
    /// Overlap-graph maximum-independent-set support (Definition 2.2.7).
    Mis,
    /// Maximum independent edge set support (Definition 4.2.1).
    Mies,
    /// LP relaxation of MVC (Definition 4.3.1).
    RelaxedMvc,
    /// LP relaxation of MIES (Definition 4.3.2).
    RelaxedMies,
    /// Minimum clique partition of the overlap graph (Calders et al.; Section 5).
    Mcp,
}

impl MeasureKind {
    /// All anti-monotonic measures in the order of the bounding chain (smallest
    /// expected value first).
    pub fn bounding_chain() -> Vec<MeasureKind> {
        vec![
            MeasureKind::Mis,
            MeasureKind::Mies,
            MeasureKind::RelaxedMies,
            MeasureKind::RelaxedMvc,
            MeasureKind::Mvc,
            MeasureKind::Mi,
            MeasureKind::Mni,
        ]
    }

    /// Short name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            MeasureKind::OccurrenceCount => "occurrences".to_string(),
            MeasureKind::InstanceCount => "instances".to_string(),
            MeasureKind::Mni => "MNI".to_string(),
            MeasureKind::MniK(k) => format!("MNI-{k}"),
            MeasureKind::Mi => "MI".to_string(),
            MeasureKind::Mvc => "MVC".to_string(),
            MeasureKind::Mis => "MIS".to_string(),
            MeasureKind::Mies => "MIES".to_string(),
            MeasureKind::RelaxedMvc => "nuMVC".to_string(),
            MeasureKind::RelaxedMies => "nuMIES".to_string(),
            MeasureKind::Mcp => "MCP".to_string(),
        }
    }
}

/// Outcome of an NP-hard measure: the value plus whether it is proven optimal (the
/// branch-and-bound searches are budgeted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureOutcome {
    /// The measure value.
    pub value: usize,
    /// `false` if the search budget was exhausted and `value` is only the best bound
    /// found (an upper bound for minimisation problems, lower bound for maximisation).
    pub optimal: bool,
}

/// Configuration shared by all measures.
#[derive(Debug, Clone)]
pub struct MeasureConfig {
    /// Occurrence-enumeration settings (embedding budget, induced flag).
    pub iso_config: IsoConfig,
    /// Strategy for the MI measure.
    pub mi_strategy: MiStrategy,
    /// Algorithm for the MVC measure.
    pub mvc_algorithm: MvcAlgorithm,
    /// Hypergraph basis (occurrence vs instance) for MVC / MIS / MIES / relaxations.
    pub basis: HypergraphBasis,
    /// Node budget for exact branch-and-bound searches.
    pub search_budget: SearchBudget,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            iso_config: IsoConfig::default(),
            mi_strategy: MiStrategy::default(),
            mvc_algorithm: MvcAlgorithm::default(),
            basis: HypergraphBasis::default(),
            search_budget: SearchBudget::default(),
        }
    }
}

/// Calculator for every support measure over one pattern/data-graph pair.
#[derive(Debug)]
pub struct SupportMeasures {
    occurrences: OccurrenceSet,
    config: MeasureConfig,
    occurrence_hg: OnceCell<Hypergraph>,
    instance_hg: OnceCell<Hypergraph>,
}

impl SupportMeasures {
    /// Build a calculator from an occurrence set.
    pub fn new(occurrences: OccurrenceSet, config: MeasureConfig) -> Self {
        SupportMeasures {
            occurrences,
            config,
            occurrence_hg: OnceCell::new(),
            instance_hg: OnceCell::new(),
        }
    }

    /// The underlying occurrence set.
    pub fn occurrences(&self) -> &OccurrenceSet {
        &self.occurrences
    }

    /// The active configuration.
    pub fn config(&self) -> &MeasureConfig {
        &self.config
    }

    /// The (cached) hypergraph for `basis`.
    pub fn hypergraph(&self, basis: HypergraphBasis) -> &Hypergraph {
        match basis {
            HypergraphBasis::Occurrence => self
                .occurrence_hg
                .get_or_init(|| self.occurrences.occurrence_hypergraph()),
            HypergraphBasis::Instance => self
                .instance_hg
                .get_or_init(|| self.occurrences.instance_hypergraph()),
        }
    }

    /// Number of occurrences (reference value, not anti-monotonic).
    pub fn occurrence_count(&self) -> usize {
        self.occurrences.num_occurrences()
    }

    /// Number of instances (reference value, not anti-monotonic).
    pub fn instance_count(&self) -> usize {
        self.occurrences.num_instances()
    }

    /// Minimum-image-based support σMNI (Definition 2.2.8).
    pub fn mni(&self) -> usize {
        mni::mni(&self.occurrences)
    }

    /// Minimum k-image-based support σMNI(·, k) (Definition 2.2.9).
    pub fn mni_k(&self, k: usize) -> usize {
        mni::mni_k(&self.occurrences, k)
    }

    /// Minimum instance support σMI (Definition 3.2.4) under the configured strategy.
    pub fn mi(&self) -> usize {
        self.mi_with(self.config.mi_strategy)
    }

    /// Minimum instance support under an explicit strategy.
    pub fn mi_with(&self, strategy: MiStrategy) -> usize {
        mi::mi(&self.occurrences, strategy)
    }

    /// Minimum vertex cover support σMVC (Definition 3.3.2) under the configured
    /// algorithm and basis.
    pub fn mvc(&self) -> MeasureOutcome {
        self.mvc_with(self.config.mvc_algorithm)
    }

    /// Minimum vertex cover support under an explicit algorithm.
    pub fn mvc_with(&self, algorithm: MvcAlgorithm) -> MeasureOutcome {
        mvc::mvc(self.hypergraph(self.config.basis), algorithm, self.config.search_budget)
    }

    /// Overlap-graph MIS support σMIS (Definition 2.2.7) under the configured basis.
    pub fn mis(&self) -> MeasureOutcome {
        mis::mis(self.hypergraph(self.config.basis), self.config.search_budget)
    }

    /// Minimum clique partition support σMCP (Calders et al.) under the configured
    /// basis.  Always `≥ σMIS` (every clique contributes at most one independent
    /// occurrence).
    pub fn mcp(&self) -> MeasureOutcome {
        mcp::mcp(self.hypergraph(self.config.basis), self.config.search_budget)
    }

    /// Maximum independent edge set support σMIES (Definition 4.2.1).
    pub fn mies(&self) -> MeasureOutcome {
        mis::mies(self.hypergraph(self.config.basis), self.config.search_budget)
    }

    /// LP-relaxed vertex cover νMVC (Definition 4.3.1).
    pub fn relaxed_mvc(&self) -> f64 {
        relaxed::relaxed_mvc(self.hypergraph(self.config.basis))
    }

    /// LP-relaxed independent edge set νMIES (Definition 4.3.2).
    pub fn relaxed_mies(&self) -> f64 {
        relaxed::relaxed_mies(self.hypergraph(self.config.basis))
    }

    /// Generic computation keyed by [`MeasureKind`]; integral measures are returned as
    /// `f64` for uniformity.
    pub fn compute(&self, kind: MeasureKind) -> f64 {
        match kind {
            MeasureKind::OccurrenceCount => self.occurrence_count() as f64,
            MeasureKind::InstanceCount => self.instance_count() as f64,
            MeasureKind::Mni => self.mni() as f64,
            MeasureKind::MniK(k) => self.mni_k(k) as f64,
            MeasureKind::Mi => self.mi() as f64,
            MeasureKind::Mvc => self.mvc().value as f64,
            MeasureKind::Mis => self.mis().value as f64,
            MeasureKind::Mies => self.mies().value as f64,
            MeasureKind::RelaxedMvc => self.relaxed_mvc(),
            MeasureKind::RelaxedMies => self.relaxed_mies(),
            MeasureKind::Mcp => self.mcp().value as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::figures;

    fn calculator(example: &ffsm_graph::figures::FigureExample) -> SupportMeasures {
        let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
        SupportMeasures::new(occ, MeasureConfig::default())
    }

    #[test]
    fn figure2_values() {
        // MNI = 3, MIS = 1, one instance.
        let m = calculator(&figures::figure2());
        assert_eq!(m.occurrence_count(), 6);
        assert_eq!(m.instance_count(), 1);
        assert_eq!(m.mni(), 3);
        assert_eq!(m.mis().value, 1);
        assert_eq!(m.mies().value, 1);
        assert_eq!(m.mi(), 1);
        assert_eq!(m.mvc().value, 1);
    }

    #[test]
    fn figure4_values() {
        // MNI = 2, MI = 1.
        let m = calculator(&figures::figure4());
        assert_eq!(m.mni(), 2);
        assert_eq!(m.mi(), 1);
        assert_eq!(m.mis().value, 1);
    }

    #[test]
    fn figure6_values() {
        // MIS = 2, MVC = 2, MI = 4, MNI = 4.
        let m = calculator(&figures::figure6());
        assert_eq!(m.occurrence_count(), 7);
        assert_eq!(m.mis().value, 2);
        assert_eq!(m.mvc().value, 2);
        assert_eq!(m.mi(), 4);
        assert_eq!(m.mni(), 4);
    }

    #[test]
    fn figure8_values() {
        // MIS = MIES = 2.
        let m = calculator(&figures::figure8());
        assert_eq!(m.mis().value, 2);
        assert_eq!(m.mies().value, 2);
        assert!((m.relaxed_mies() - 2.0).abs() < 1e-6);
        assert!((m.relaxed_mvc() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn figure1_values() {
        // Reconstructed Figure 1: MIS = 2, MVC = 3, MI = 4, MNI = 5.
        let m = calculator(&figures::figure1());
        assert_eq!(m.mis().value, 2);
        assert_eq!(m.mvc().value, 3);
        assert_eq!(m.mi(), 4);
        assert_eq!(m.mni(), 5);
    }

    #[test]
    fn figure5_anti_monotonicity_of_mvc() {
        // Extending the Figure 2 triangle by one vertex keeps MVC at 1.
        let m2 = calculator(&figures::figure2());
        let m5 = calculator(&figures::figure5());
        assert_eq!(m2.mvc().value, 1);
        assert_eq!(m5.mvc().value, 1);
        assert!(m5.mni() <= m2.mni());
        assert!(m5.mi() <= m2.mi());
        assert!(m5.mis().value <= m2.mis().value);
    }

    #[test]
    fn generic_compute_matches_specific_methods() {
        let m = calculator(&figures::figure6());
        assert_eq!(m.compute(MeasureKind::Mni), m.mni() as f64);
        assert_eq!(m.compute(MeasureKind::Mi), m.mi() as f64);
        assert_eq!(m.compute(MeasureKind::Mvc), m.mvc().value as f64);
        assert_eq!(m.compute(MeasureKind::Mis), m.mis().value as f64);
        assert_eq!(m.compute(MeasureKind::Mies), m.mies().value as f64);
        assert_eq!(m.compute(MeasureKind::OccurrenceCount), 7.0);
        assert_eq!(m.compute(MeasureKind::InstanceCount), 7.0);
        assert_eq!(m.compute(MeasureKind::MniK(2)), m.mni_k(2) as f64);
        assert!(m.compute(MeasureKind::RelaxedMvc) <= m.compute(MeasureKind::Mvc) + 1e-9);
    }

    #[test]
    fn measure_kind_names() {
        assert_eq!(MeasureKind::Mni.name(), "MNI");
        assert_eq!(MeasureKind::MniK(3).name(), "MNI-3");
        assert_eq!(MeasureKind::RelaxedMvc.name(), "nuMVC");
        assert_eq!(MeasureKind::bounding_chain().len(), 7);
    }
}
