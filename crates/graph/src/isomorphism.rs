//! Subgraph-isomorphism enumeration (the naive reference enumerator).
//!
//! An **occurrence** of a pattern `P` in a data graph `G` (Definition 2.1.8) is an
//! injective, label-preserving map `f : V_P → V_G` such that every pattern edge maps
//! to a data-graph edge.  (Occurrences are *not* required to be induced; an optional
//! induced mode is provided for completeness.)
//!
//! The enumerator is a VF2-flavoured backtracking search:
//!
//! * pattern vertices are visited in a connectivity-aware order that starts from the
//!   most selective vertex (rarest label, then highest degree);
//! * candidates for a vertex with already-matched neighbours are drawn from the
//!   adjacency list of the image with the fewest data-graph neighbours, instead of
//!   the whole graph;
//! * label, degree and adjacency feasibility checks prune each extension.
//!
//! Enumeration can explode combinatorially (that is precisely why MNI/MI matter), so
//! the search takes an explicit [`IsoConfig::max_embeddings`] budget and reports
//! whether it completed.  Embeddings are *streamed* to an [`EmbeddingVisitor`], which
//! may stop the search at any point; [`enumerate_embeddings`] materialises them,
//! while [`has_embedding`] and [`count_embeddings`] never allocate per embedding.
//!
//! This module is the **differential-test oracle** of the workspace: the indexed
//! candidate-space engine (`ffsm-match`) must reproduce its embedding multiset
//! exactly.  [`EnumeratorBackend`] selects between the two; the functions here always
//! run the naive search regardless of the configured backend (dispatch happens one
//! layer up, in `ffsm-core`).

use crate::cancel::{CancelToken, CHECK_STRIDE};
use crate::{LabeledGraph, Pattern, VertexId};

/// An occurrence: `assignment[p]` is the data-graph image of pattern vertex `p`.
pub type Embedding = Vec<VertexId>;

/// Which engine enumerates occurrences.
///
/// The naive backtracker of this module is retained as the correctness oracle; the
/// candidate-space engine (`ffsm-match`) precomputes a per-graph index and prunes
/// candidate sets before searching.  `ffsm-core` dispatches on this tag (the
/// functions in this module ignore it and always run the naive search).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EnumeratorBackend {
    /// The recursive backtracker of this module — the differential-test oracle.
    Naive,
    /// The indexed candidate-space engine of `ffsm-match`.  The default.
    #[default]
    CandidateSpace,
    /// Pick [`Naive`](Self::Naive) or [`CandidateSpace`](Self::CandidateSpace) per
    /// pattern from `GraphIndex` statistics (label entropy, estimated candidate
    /// reduction, pattern size).  The decision is deterministic for a given
    /// (pattern, index) pair, and both backends produce the same embedding
    /// multiset, so `Auto` never changes any support value — only which engine
    /// pays for it.  Resolution happens one layer up, in `ffsm-match`.
    Auto,
}

impl std::str::FromStr for EnumeratorBackend {
    type Err = String;

    /// Accepts `naive`, `candidate-space` (or `candidate_space`/`cs`), and `auto`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(EnumeratorBackend::Naive),
            "candidate-space" | "candidate_space" | "cs" => Ok(EnumeratorBackend::CandidateSpace),
            "auto" => Ok(EnumeratorBackend::Auto),
            other => Err(format!(
                "unknown enumerator backend `{other}` (expected `naive`, `candidate-space`, or `auto`)"
            )),
        }
    }
}

impl std::fmt::Display for EnumeratorBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EnumeratorBackend::Naive => "naive",
            EnumeratorBackend::CandidateSpace => "candidate-space",
            EnumeratorBackend::Auto => "auto",
        })
    }
}

/// Configuration for the embedding enumerator.
///
/// Cloning is cheap (the only non-`Copy` field is the [`CancelToken`], an
/// `Option<Arc<..>>`); the struct stopped being `Copy` when cancellation support
/// was added, so per-call users clone it explicitly.
#[derive(Debug, Clone)]
pub struct IsoConfig {
    /// Stop after this many embeddings have been produced.
    pub max_embeddings: usize,
    /// Require induced embeddings (pattern *non*-edges must map to non-edges).
    /// The paper's occurrences are non-induced, so this defaults to `false`.
    pub induced: bool,
    /// Which enumeration engine `ffsm-core` dispatches to.
    pub backend: EnumeratorBackend,
    /// Worker threads for the candidate-space engine's root partition (`1` =
    /// sequential, `0` = one per core).  The thread count never changes the
    /// embedding order; the naive oracle is always sequential.
    pub threads: usize,
    /// Cooperative cancellation / deadline token.  Both enumerators poll it once
    /// at search entry and then every [`CHECK_STRIDE`] search steps; a fired token
    /// makes the enumeration return early with `complete == false`.  The default
    /// token is inert (never fires, free to poll).
    pub cancel: CancelToken,
}

impl Default for IsoConfig {
    fn default() -> Self {
        IsoConfig {
            max_embeddings: 2_000_000,
            induced: false,
            backend: EnumeratorBackend::default(),
            threads: 1,
            cancel: CancelToken::default(),
        }
    }
}

impl IsoConfig {
    /// Config with a custom embedding budget.
    pub fn with_limit(max_embeddings: usize) -> Self {
        IsoConfig { max_embeddings, ..Default::default() }
    }

    /// This config with the given enumeration backend.
    pub fn with_backend(self, backend: EnumeratorBackend) -> Self {
        IsoConfig { backend, ..self }
    }

    /// This config with the given cancellation token.
    pub fn with_cancel(self, cancel: CancelToken) -> Self {
        IsoConfig { cancel, ..self }
    }
}

/// Whether a streaming enumeration should continue after a visited embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisitFlow {
    /// Keep searching.
    Continue,
    /// Stop the search immediately (existence checks, embedding budgets, …).
    Stop,
}

/// Streaming consumer of embeddings.
///
/// Both the naive enumerator and the candidate-space engine push each embedding to a
/// visitor the moment it is found, so counting and existence checks never
/// materialise embedding vectors, and any consumer can terminate the search early by
/// returning [`VisitFlow::Stop`].  The borrowed slice is only valid for the duration
/// of the call — clone it to keep it.
pub trait EmbeddingVisitor {
    /// Called once per embedding, in the enumerator's deterministic order.
    fn visit(&mut self, embedding: &[VertexId]) -> VisitFlow;
}

impl<F: FnMut(&[VertexId]) -> VisitFlow> EmbeddingVisitor for F {
    fn visit(&mut self, embedding: &[VertexId]) -> VisitFlow {
        self(embedding)
    }
}

/// Visitor that clones every embedding into a vector, up to a budget.
#[derive(Debug)]
pub struct CollectVisitor {
    /// The embeddings collected so far.
    pub embeddings: Vec<Embedding>,
    max: usize,
}

impl CollectVisitor {
    /// Collect at most `max` embeddings, then stop the search.
    pub fn with_limit(max: usize) -> Self {
        CollectVisitor { embeddings: Vec::new(), max }
    }
}

impl EmbeddingVisitor for CollectVisitor {
    fn visit(&mut self, embedding: &[VertexId]) -> VisitFlow {
        // Budget check *before* accepting: a visit at the budget is rejected, so a
        // zero budget collects nothing and an enumeration with exactly `max`
        // embeddings completes — the contract the parallel merge mirrors.
        if self.embeddings.len() >= self.max {
            return VisitFlow::Stop;
        }
        self.embeddings.push(embedding.to_vec());
        VisitFlow::Continue
    }
}

/// Visitor that counts embeddings without materialising them, up to a budget.
#[derive(Debug)]
pub struct CountVisitor {
    /// Number of embeddings seen so far.
    pub count: usize,
    max: usize,
}

impl CountVisitor {
    /// Count at most `max` embeddings, then stop the search.
    pub fn with_limit(max: usize) -> Self {
        CountVisitor { count: 0, max }
    }
}

impl EmbeddingVisitor for CountVisitor {
    fn visit(&mut self, _embedding: &[VertexId]) -> VisitFlow {
        // Same check-before-accept contract as [`CollectVisitor`].
        if self.count >= self.max {
            return VisitFlow::Stop;
        }
        self.count += 1;
        VisitFlow::Continue
    }
}

/// Visitor that stops at the first embedding (existence check).
#[derive(Debug, Default)]
pub struct ExistsVisitor {
    /// `true` once any embedding has been seen.
    pub found: bool,
}

impl EmbeddingVisitor for ExistsVisitor {
    fn visit(&mut self, _embedding: &[VertexId]) -> VisitFlow {
        self.found = true;
        VisitFlow::Stop
    }
}

/// Result of an enumeration run.
#[derive(Debug, Clone)]
pub struct EnumerationResult {
    /// All embeddings found (up to the configured limit).
    pub embeddings: Vec<Embedding>,
    /// `false` if the search stopped early because the limit was hit.
    pub complete: bool,
}

impl EnumerationResult {
    /// Number of embeddings found.
    pub fn len(&self) -> usize {
        self.embeddings.len()
    }

    /// `true` when no embedding was found.
    pub fn is_empty(&self) -> bool {
        self.embeddings.is_empty()
    }
}

/// Search order: a permutation of pattern vertices such that (for connected patterns)
/// every vertex after the first has at least one earlier neighbour.
fn search_order(pattern: &Pattern, graph: &LabeledGraph) -> Vec<VertexId> {
    let n = pattern.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    // Selectivity: fewer data vertices with this label first, then higher degree.
    let mut label_count = std::collections::HashMap::new();
    for v in graph.vertices() {
        *label_count.entry(graph.label(v)).or_insert(0usize) += 1;
    }
    let selectivity = |v: VertexId| -> (usize, std::cmp::Reverse<usize>) {
        (*label_count.get(&pattern.label(v)).unwrap_or(&0), std::cmp::Reverse(pattern.degree(v)))
    };
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let start = pattern.vertices().min_by_key(|&v| selectivity(v)).expect("non-empty pattern");
    order.push(start);
    placed[start as usize] = true;
    while order.len() < n {
        // Prefer vertices adjacent to the already-ordered prefix.
        let next = pattern
            .vertices()
            .filter(|&v| !placed[v as usize])
            .filter(|&v| pattern.neighbors(v).iter().any(|&w| placed[w as usize]))
            .min_by_key(|&v| selectivity(v))
            .or_else(|| {
                // Disconnected pattern: fall back to any unplaced vertex.
                pattern.vertices().filter(|&v| !placed[v as usize]).min_by_key(|&v| selectivity(v))
            })
            .expect("some vertex unplaced");
        order.push(next);
        placed[next as usize] = true;
    }
    order
}

struct Search<'a> {
    pattern: &'a Pattern,
    graph: &'a LabeledGraph,
    order: Vec<VertexId>,
    /// For each position in `order`, the pattern neighbours that appear earlier.
    earlier_neighbors: Vec<Vec<VertexId>>,
    /// For each position with *no* earlier neighbour (the root and any later
    /// component root), the label-matching data vertices — computed once so the
    /// search never rescans the whole vertex set.
    root_candidates: Vec<Vec<VertexId>>,
    config: IsoConfig,
    assignment: Vec<Option<VertexId>>,
    used: Vec<bool>,
    stopped: bool,
    /// Search steps since the last cancellation poll (see [`CHECK_STRIDE`]).
    steps: u32,
}

impl<'a> Search<'a> {
    fn new(pattern: &'a Pattern, graph: &'a LabeledGraph, config: IsoConfig) -> Self {
        let order = search_order(pattern, graph);
        let mut position = vec![usize::MAX; pattern.num_vertices()];
        for (i, &v) in order.iter().enumerate() {
            position[v as usize] = i;
        }
        let earlier_neighbors: Vec<Vec<VertexId>> = order
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                pattern.neighbors(v).iter().copied().filter(|&w| position[w as usize] < i).collect()
            })
            .collect();
        let root_candidates = order
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if earlier_neighbors[i].is_empty() {
                    graph
                        .vertices()
                        .filter(|&gv| graph.label(gv) == pattern.label(v))
                        .collect::<Vec<VertexId>>()
                } else {
                    Vec::new()
                }
            })
            .collect();
        Search {
            pattern,
            graph,
            order,
            earlier_neighbors,
            root_candidates,
            config,
            assignment: vec![None; pattern.num_vertices()],
            used: vec![false; graph.num_vertices()],
            stopped: false,
            steps: 0,
        }
    }

    fn feasible(&self, pv: VertexId, gv: VertexId, depth: usize) -> bool {
        if self.used[gv as usize] {
            return false;
        }
        if self.graph.label(gv) != self.pattern.label(pv) {
            return false;
        }
        if self.graph.degree(gv) < self.pattern.degree(pv) {
            return false;
        }
        // Every earlier-matched pattern neighbour must be adjacent in the data graph.
        for &pn in &self.earlier_neighbors[depth] {
            let gn = self.assignment[pn as usize].expect("earlier vertex assigned");
            if !self.graph.has_edge(gv, gn) {
                return false;
            }
        }
        if self.config.induced {
            // Earlier-matched pattern NON-neighbours must not be adjacent.
            for (p_other, assigned) in self.assignment.iter().enumerate() {
                if let Some(g_other) = assigned {
                    let p_other = p_other as VertexId;
                    if p_other != pv
                        && !self.pattern.has_edge(pv, p_other)
                        && self.graph.has_edge(gv, *g_other)
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Of the already-assigned earlier pattern neighbours, the one whose data-graph
    /// image has the fewest neighbours — the cheapest adjacency list to scan.
    fn min_degree_pivot(&self, depth: usize) -> Option<VertexId> {
        self.earlier_neighbors[depth].iter().copied().min_by_key(|&pn| {
            let gn = self.assignment[pn as usize].expect("earlier vertex assigned");
            self.graph.degree(gn)
        })
    }

    fn run<V: EmbeddingVisitor>(&mut self, depth: usize, visitor: &mut V) {
        if self.stopped {
            return;
        }
        // Cooperative cancellation: poll the token at a bounded stride so a fired
        // token aborts the search within a few thousand node expansions.
        self.steps += 1;
        if self.steps >= CHECK_STRIDE {
            self.steps = 0;
            if self.config.cancel.is_cancelled() {
                self.stopped = true;
                return;
            }
        }
        if depth == self.order.len() {
            let emb: Embedding =
                self.assignment.iter().map(|a| a.expect("complete assignment")).collect();
            if visitor.visit(&emb) == VisitFlow::Stop {
                self.stopped = true;
            }
            return;
        }
        let pv = self.order[depth];
        match self.min_degree_pivot(depth) {
            Some(pn) => {
                let gn = self.assignment[pn as usize].expect("earlier vertex assigned");
                // The adjacency slice borrows the graph, not the search state, so no
                // clone is needed around the recursive calls.
                let graph: &'a LabeledGraph = self.graph;
                for &gv in graph.neighbors(gn) {
                    if self.feasible(pv, gv, depth) {
                        self.assignment[pv as usize] = Some(gv);
                        self.used[gv as usize] = true;
                        self.run(depth + 1, visitor);
                        self.assignment[pv as usize] = None;
                        self.used[gv as usize] = false;
                        if self.stopped {
                            return;
                        }
                    }
                }
            }
            None => {
                // Root of a (new) pattern component: scan the precomputed
                // label-matching list.  Moved out and back in so the recursion can
                // borrow `self` mutably without cloning the list.
                let candidates = std::mem::take(&mut self.root_candidates[depth]);
                for &gv in &candidates {
                    if self.feasible(pv, gv, depth) {
                        self.assignment[pv as usize] = Some(gv);
                        self.used[gv as usize] = true;
                        self.run(depth + 1, visitor);
                        self.assignment[pv as usize] = None;
                        self.used[gv as usize] = false;
                        if self.stopped {
                            break;
                        }
                    }
                }
                self.root_candidates[depth] = candidates;
            }
        }
    }
}

/// Stream every occurrence of `pattern` in `graph` to `visitor`, in the naive
/// enumerator's deterministic order.  Returns `false` if the visitor stopped the
/// search early, `true` if the search space was exhausted.
///
/// This is the primitive behind [`enumerate_embeddings`], [`count_embeddings`] and
/// [`has_embedding`]; use it directly to consume embeddings without materialising
/// them.  `config.max_embeddings` is *not* applied here — wrap the visitor (e.g.
/// [`CollectVisitor::with_limit`]) to bound the output.
pub fn enumerate_with_visitor<V: EmbeddingVisitor>(
    pattern: &Pattern,
    graph: &LabeledGraph,
    config: IsoConfig,
    visitor: &mut V,
) -> bool {
    if pattern.num_vertices() == 0 {
        // The empty pattern has exactly one (empty) occurrence by convention.
        return visitor.visit(&[]) == VisitFlow::Continue;
    }
    if pattern.num_vertices() > graph.num_vertices() {
        return true;
    }
    if config.cancel.is_cancelled() {
        return false;
    }
    let mut search = Search::new(pattern, graph, config);
    search.run(0, visitor);
    !search.stopped
}

/// Enumerate all occurrences (subgraph isomorphisms) of `pattern` in `graph`.
pub fn enumerate_embeddings(
    pattern: &Pattern,
    graph: &LabeledGraph,
    config: IsoConfig,
) -> EnumerationResult {
    if pattern.num_vertices() == 0 {
        // The empty pattern has exactly one (empty) occurrence by convention.
        return EnumerationResult { embeddings: vec![Vec::new()], complete: true };
    }
    let mut collect = CollectVisitor::with_limit(config.max_embeddings);
    let complete = enumerate_with_visitor(pattern, graph, config, &mut collect);
    EnumerationResult { embeddings: collect.embeddings, complete }
}

/// `true` if `pattern` has at least one occurrence in `graph`.  Stops at the first
/// embedding found, without materialising it.
pub fn has_embedding(pattern: &Pattern, graph: &LabeledGraph) -> bool {
    let mut exists = ExistsVisitor::default();
    enumerate_with_visitor(pattern, graph, IsoConfig::default(), &mut exists);
    exists.found
}

/// `true` if the two graphs are isomorphic (Definition 2.1.5): same vertex count, same
/// edge count, and an induced embedding exists in both directions (one direction plus
/// the count equalities suffices).
pub fn are_isomorphic(a: &LabeledGraph, b: &LabeledGraph) -> bool {
    if a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges() {
        return false;
    }
    if a.label_histogram() != b.label_histogram() {
        return false;
    }
    // With equal vertex and edge counts, a (non-induced) edge-preserving bijection is
    // automatically edge-reflecting, hence an isomorphism.
    has_embedding(a, b)
}

/// Count occurrences without materialising them (still bounded by
/// `config.max_embeddings`, and early-exiting the moment the budget is reached).
pub fn count_embeddings(pattern: &Pattern, graph: &LabeledGraph, config: IsoConfig) -> usize {
    if pattern.num_vertices() == 0 {
        return 1;
    }
    let mut counter = CountVisitor::with_limit(config.max_embeddings);
    enumerate_with_visitor(pattern, graph, config, &mut counter);
    counter.count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use crate::Label;

    /// The Figure 2 data graph: a labeled triangle {1,2,3} plus pendant vertices.
    fn figure2_graph() -> LabeledGraph {
        // vertices 1..6 in the paper are 0..5 here; all share one label.
        LabeledGraph::from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 4), (2, 5), (1, 5)],
        )
    }

    #[test]
    fn triangle_has_six_occurrences_one_instance() {
        // Figure 2: the triangle pattern has 6 occurrences in the data graph (3! maps
        // onto the single triangle instance).
        let g = LabeledGraph::from_edges(
            &[0, 0, 0, 0, 0, 0],
            &[(0, 1), (1, 2), (0, 2), (0, 3), (1, 4), (2, 5)],
        );
        let p = patterns::triangle(Label(0), Label(0), Label(0));
        let res = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(res.len(), 6);
        assert!(res.complete);
    }

    #[test]
    fn single_edge_pattern_counts_directed_embeddings() {
        // An edge with two same-label endpoints has 2 occurrences per data edge.
        let g = LabeledGraph::from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let p = patterns::single_edge(Label(0), Label(0));
        let res = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn labels_filter_candidates() {
        let g = LabeledGraph::from_edges(&[1, 2, 1], &[(0, 1), (1, 2)]);
        let p = patterns::single_edge(Label(1), Label(2));
        let res = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(res.len(), 2); // (0,1) and (2,1)
        for emb in &res.embeddings {
            assert_eq!(g.label(emb[0]), Label(1));
            assert_eq!(g.label(emb[1]), Label(2));
        }
    }

    #[test]
    fn embedding_maps_edges_to_edges() {
        let g = figure2_graph();
        let p = patterns::path(&[Label(0), Label(0), Label(0)]);
        let res = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert!(!res.is_empty());
        for emb in &res.embeddings {
            for (u, v) in p.edges() {
                assert!(g.has_edge(emb[u as usize], emb[v as usize]));
            }
            // injectivity
            let mut sorted = emb.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), emb.len());
        }
    }

    #[test]
    fn limit_truncates_search() {
        let g = figure2_graph();
        let p = patterns::path(&[Label(0), Label(0)]);
        let res = enumerate_embeddings(&p, &g, IsoConfig::with_limit(3));
        assert_eq!(res.len(), 3);
        assert!(!res.complete);
    }

    #[test]
    fn induced_mode_excludes_chords() {
        // Path pattern a-b-c in a triangle: non-induced finds 6, induced finds 0
        // (because the chord a-c always exists).
        let g = LabeledGraph::from_edges(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]);
        let p = patterns::path(&[Label(0), Label(0), Label(0)]);
        let open = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(open.len(), 6);
        let induced =
            enumerate_embeddings(&p, &g, IsoConfig { induced: true, ..Default::default() });
        assert_eq!(induced.len(), 0);
    }

    #[test]
    fn pattern_larger_than_graph_has_no_embeddings() {
        let g = LabeledGraph::from_edges(&[0, 0], &[(0, 1)]);
        let p = patterns::path(&[Label(0), Label(0), Label(0)]);
        assert!(enumerate_embeddings(&p, &g, IsoConfig::default()).is_empty());
        assert!(!has_embedding(&p, &g));
    }

    #[test]
    fn empty_pattern_has_one_occurrence() {
        let g = LabeledGraph::from_edges(&[0], &[]);
        let p = LabeledGraph::new();
        let res = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn isomorphism_check() {
        let a = patterns::cycle(&[Label(0), Label(1), Label(0), Label(1)]);
        // same cycle, listed starting elsewhere
        let b = patterns::cycle(&[Label(1), Label(0), Label(1), Label(0)]);
        assert!(are_isomorphic(&a, &b));
        let c = patterns::path(&[Label(0), Label(1), Label(0), Label(1)]);
        assert!(!are_isomorphic(&a, &c));
        let d = patterns::cycle(&[Label(0), Label(0), Label(1), Label(1)]);
        assert!(!are_isomorphic(&a, &d));
    }

    #[test]
    fn disconnected_pattern_is_supported() {
        // Two disjoint edges as pattern; data graph a path of 4 distinct-labelled vertices.
        let mut p = LabeledGraph::new();
        let a = p.add_vertex(Label(1));
        let b = p.add_vertex(Label(2));
        let c = p.add_vertex(Label(3));
        let d = p.add_vertex(Label(4));
        p.add_edge(a, b).unwrap();
        p.add_edge(c, d).unwrap();
        let g = LabeledGraph::from_edges(&[1, 2, 3, 4], &[(0, 1), (1, 2), (2, 3)]);
        let res = enumerate_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn count_matches_enumerate() {
        let g = figure2_graph();
        let p = patterns::triangle(Label(0), Label(0), Label(0));
        let n = count_embeddings(&p, &g, IsoConfig::default());
        assert_eq!(n, enumerate_embeddings(&p, &g, IsoConfig::default()).len());
    }

    #[test]
    fn visitor_streams_and_stops_early() {
        let g = figure2_graph();
        let p = patterns::path(&[Label(0), Label(0)]);
        // A closure is a visitor: stop after the second embedding.
        let mut seen = 0usize;
        let complete =
            enumerate_with_visitor(&p, &g, IsoConfig::default(), &mut |emb: &[u32]| {
                assert_eq!(emb.len(), 2);
                seen += 1;
                if seen == 2 {
                    VisitFlow::Stop
                } else {
                    VisitFlow::Continue
                }
            });
        assert_eq!(seen, 2);
        assert!(!complete);
        // Exhausting the space reports completion.
        let mut all = 0usize;
        let complete = enumerate_with_visitor(&p, &g, IsoConfig::default(), &mut |_: &[u32]| {
            all += 1;
            VisitFlow::Continue
        });
        assert!(complete);
        assert_eq!(all, 2 * g.num_edges());
    }

    #[test]
    fn count_respects_budget_without_materialising() {
        let g = figure2_graph();
        let p = patterns::path(&[Label(0), Label(0)]);
        assert_eq!(count_embeddings(&p, &g, IsoConfig::with_limit(3)), 3);
        assert_eq!(count_embeddings(&p, &g, IsoConfig::default()), 2 * g.num_edges());
    }

    #[test]
    fn backend_tag_defaults_to_candidate_space() {
        let config = IsoConfig::default();
        assert_eq!(config.backend, EnumeratorBackend::CandidateSpace);
        assert_eq!(config.threads, 1);
        let naive = config.clone().with_backend(EnumeratorBackend::Naive);
        assert_eq!(naive.backend, EnumeratorBackend::Naive);
        assert_eq!(naive.max_embeddings, config.max_embeddings);
    }
}
