//! Profile every support measure (value, runtime, optimality) on a realistic
//! citation-style workload and print the full comparison table, including the MCP
//! measure and the additive per-component decomposition.
//!
//! Run with: `cargo run --release --example measure_profile`

use ffsm::core::decompose::{mvc_by_components, DecompositionConfig};
use ffsm::core::measures::{MeasureConfig, MvcAlgorithm};
use ffsm::core::{HypergraphBasis, MeasureProfile, OccurrenceSet};
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::graph::{datasets, patterns, GraphStatistics, Label};

fn main() {
    // A citation-like synthetic dataset (see DESIGN.md §5 for the substitution).
    let dataset = datasets::citation_like(400, 7);
    println!("dataset `{}`: {}", dataset.name, dataset.description);
    println!("{}\n", GraphStatistics::compute(&dataset.graph));

    // Profile a few query patterns of growing size.
    let queries = vec![
        ("edge 0-1", patterns::single_edge(Label(0), Label(1))),
        ("path of three same-label vertices", patterns::uniform_path(3, Label(0))),
        ("star with two leaves", patterns::uniform_star(2, Label(0), Label(1))),
        ("triangle", patterns::uniform_clique(3, Label(0))),
    ];
    let config = MeasureConfig::default();
    for (name, pattern) in queries {
        let profile =
            MeasureProfile::compute_labeled(name.to_string(), &pattern, &dataset.graph, &config);
        println!("{profile}");
        println!(
            "bounding chain holds: {}\n",
            if profile.chain_holds() { "yes" } else { "NO (unexpected)" }
        );
    }

    // The additive decomposition of MVC over hypergraph components (Section 6, item 4).
    let pattern = patterns::single_edge(Label(0), Label(1));
    let occ = OccurrenceSet::enumerate(&pattern, &dataset.graph, IsoConfig::default());
    let hypergraph = occ.hypergraph(HypergraphBasis::Occurrence);
    let decomposed = mvc_by_components(
        &hypergraph,
        MvcAlgorithm::Exact,
        DecompositionConfig { parallel: true, ..Default::default() },
    );
    println!(
        "additive MVC for `edge 0-1`: value {} over {} hypergraph components (optimal: {})",
        decomposed.value, decomposed.num_components, decomposed.optimal
    );
}
