//! [`GraphIndex`] — the reusable per-data-graph matching index.
//!
//! Built **once per data graph** and shared across every pattern matched against it
//! (the mining session builds it at `run()` time, not per candidate pattern).  Three
//! structures per graph:
//!
//! * a **label inverted index**: label → vertices carrying it, ascending by id;
//! * **degree buckets**: the same vertices sorted by `(degree, id)`, so the
//!   candidates with degree ≥ d are one `partition_point` away;
//! * **neighbour-label fingerprints**: a 64-bit bitset per vertex with one (hashed)
//!   bit per distinct neighbour label.  A pattern vertex can only map onto a data
//!   vertex whose fingerprint is a superset of the pattern vertex's — hash
//!   collisions only ever make the filter *more* permissive, never unsound.

use ffsm_graph::{Label, LabeledGraph, VertexId};
use std::collections::HashMap;

/// Per-data-graph index consulted by the candidate-space builder.
///
/// The index holds no reference to the graph it was built from; callers pair them
/// (the two are only meaningful together, and keeping the index free of lifetimes
/// lets a mining session share one `Arc<GraphIndex>` across worker threads).
#[derive(Debug, Clone)]
pub struct GraphIndex {
    /// label → vertices with that label, ascending by vertex id.
    label_index: HashMap<Label, Vec<VertexId>>,
    /// label → the same vertices sorted by `(degree, id)` — the degree buckets.
    degree_buckets: HashMap<Label, Vec<VertexId>>,
    /// Neighbour-label fingerprint of every vertex.
    fingerprints: Vec<u64>,
    /// Degree of every vertex (copied out of the graph so bucket lookups need no
    /// graph reference).
    degrees: Vec<u32>,
}

impl GraphIndex {
    /// Build the index for `graph`.  One `O(V + E)` pass (plus the per-label sorts).
    pub fn build(graph: &LabeledGraph) -> Self {
        let n = graph.num_vertices();
        let mut label_index: HashMap<Label, Vec<VertexId>> = HashMap::new();
        let mut fingerprints = vec![0u64; n];
        let mut degrees = vec![0u32; n];
        for v in graph.vertices() {
            label_index.entry(graph.label(v)).or_default().push(v);
            fingerprints[v as usize] = Self::neighbor_fingerprint(graph, v);
            degrees[v as usize] = graph.degree(v) as u32;
        }
        let degree_buckets = label_index
            .iter()
            .map(|(&label, vertices)| {
                let mut bucket = vertices.clone();
                bucket.sort_by_key(|&v| (degrees[v as usize], v));
                (label, bucket)
            })
            .collect();
        GraphIndex { label_index, degree_buckets, fingerprints, degrees }
    }

    /// Number of vertices of the indexed graph.
    pub fn num_vertices(&self) -> usize {
        self.fingerprints.len()
    }

    /// The fingerprint bit of one label.
    pub fn label_bit(label: Label) -> u64 {
        1u64 << (label.0 % 64)
    }

    /// The neighbour-label fingerprint of `v` in `graph`: the OR of the label bits
    /// of its neighbours.  Used for data vertices at build time and for pattern
    /// vertices at candidate-filter time, so the two sides hash identically.
    pub fn neighbor_fingerprint(graph: &LabeledGraph, v: VertexId) -> u64 {
        graph.neighbors(v).iter().fold(0u64, |fp, &w| fp | Self::label_bit(graph.label(w)))
    }

    /// The stored fingerprint of data vertex `v`.
    pub fn fingerprint(&self, v: VertexId) -> u64 {
        self.fingerprints[v as usize]
    }

    /// All vertices carrying `label`, ascending by id (empty if the label does not
    /// occur).
    pub fn vertices_with_label(&self, label: Label) -> &[VertexId] {
        self.label_index.get(&label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// How many vertices carry `label`.
    pub fn label_frequency(&self, label: Label) -> usize {
        self.vertices_with_label(label).len()
    }

    /// The vertices with `label` and degree ≥ `min_degree`, sorted by
    /// `(degree, id)` — one binary search into the label's degree bucket.
    pub fn vertices_with_min_degree(&self, label: Label, min_degree: usize) -> &[VertexId] {
        let Some(bucket) = self.degree_buckets.get(&label) else {
            return &[];
        };
        let cut = bucket.partition_point(|&v| (self.degrees[v as usize] as usize) < min_degree);
        &bucket[cut..]
    }

    /// Degree of data vertex `v` (as recorded at build time).
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabeledGraph {
        // Star: hub 0 (label 0) with leaves 1..4 (label 1) plus an isolated label-2
        // vertex and a label-1 vertex of degree 2.
        LabeledGraph::from_edges(&[0, 1, 1, 1, 1, 2, 1], &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 6)])
    }

    #[test]
    fn label_index_is_sorted_and_complete() {
        let g = sample();
        let ix = GraphIndex::build(&g);
        assert_eq!(ix.num_vertices(), 7);
        assert_eq!(ix.vertices_with_label(Label(0)), &[0]);
        assert_eq!(ix.vertices_with_label(Label(1)), &[1, 2, 3, 4, 6]);
        assert_eq!(ix.vertices_with_label(Label(2)), &[5]);
        assert_eq!(ix.vertices_with_label(Label(9)), &[] as &[VertexId]);
        assert_eq!(ix.label_frequency(Label(1)), 5);
    }

    #[test]
    fn degree_buckets_cut_at_min_degree() {
        let g = sample();
        let ix = GraphIndex::build(&g);
        // Label-1 degrees: v1 has 2, v2..v4 have 1, v6 has 1.
        assert_eq!(ix.vertices_with_min_degree(Label(1), 2), &[1]);
        let all = ix.vertices_with_min_degree(Label(1), 0);
        assert_eq!(all.len(), 5);
        // Bucket order is (degree, id): the three degree-1 leaves and v6 first.
        assert_eq!(&all[..4], &[2, 3, 4, 6]);
        assert!(ix.vertices_with_min_degree(Label(2), 1).is_empty());
        assert!(ix.vertices_with_min_degree(Label(7), 0).is_empty());
    }

    #[test]
    fn fingerprints_reflect_neighbor_labels() {
        let g = sample();
        let ix = GraphIndex::build(&g);
        // Hub 0 sees only label-1 neighbours.
        assert_eq!(ix.fingerprint(0), GraphIndex::label_bit(Label(1)));
        // Leaf 1 sees labels 0 and 1 (via vertex 6).
        assert_eq!(
            ix.fingerprint(1),
            GraphIndex::label_bit(Label(0)) | GraphIndex::label_bit(Label(1))
        );
        // The isolated vertex has the empty fingerprint.
        assert_eq!(ix.fingerprint(5), 0);
        // Subset test used by the candidate builder: hub's requirement ⊆ leaf's view.
        let need = GraphIndex::label_bit(Label(0));
        assert_eq!(need & !ix.fingerprint(1), 0);
        assert_ne!(need & !ix.fingerprint(0), 0);
    }

    #[test]
    fn degrees_are_recorded() {
        let g = sample();
        let ix = GraphIndex::build(&g);
        assert_eq!(ix.degree(0), 4);
        assert_eq!(ix.degree(5), 0);
        assert_eq!(ix.degree(1), 2);
    }
}
