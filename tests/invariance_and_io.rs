//! Cross-crate invariance tests:
//!
//! * support measures are isomorphism-invariant (relabeling data-graph vertex ids or
//!   permuting pattern vertex ids must not change any value);
//! * graphs survive a `.lg` round-trip with identical measure values;
//! * dataset generators are deterministic in their seeds.

use ffsm::core::evaluate;
use ffsm::core::measures::{MeasureConfig, MeasureKind};
use ffsm::graph::io::{from_lg_string, to_lg_string};
use ffsm::graph::isomorphism::are_isomorphic;
use ffsm::graph::{datasets, generators, Label, LabeledGraph, Pattern, VertexId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Rebuild `graph` with its vertex ids permuted by a random permutation.
fn permute_graph(graph: &LabeledGraph, seed: u64) -> LabeledGraph {
    let n = graph.num_vertices();
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut StdRng::seed_from_u64(seed));
    // perm[old] = new
    let mut labels = vec![0u32; n];
    for old in 0..n {
        labels[perm[old]] = graph.label(old as VertexId).0;
    }
    let edges: Vec<(VertexId, VertexId)> = graph
        .edges()
        .map(|(u, v)| (perm[u as usize] as VertexId, perm[v as usize] as VertexId))
        .collect();
    LabeledGraph::from_edges(&labels, &edges)
}

/// Build a measure calculator for `pattern` in `graph` under `config`.
fn measures_of(
    pattern: &Pattern,
    graph: &LabeledGraph,
    config: &MeasureConfig,
) -> ffsm::core::SupportMeasures {
    let occ = ffsm::core::OccurrenceSet::enumerate(pattern, graph, config.iso_config.clone());
    ffsm::core::SupportMeasures::new(occ, config.clone())
}

/// Measures whose computation is exact (no search budget), so invariance must hold
/// as strict equality.
fn exact_kinds() -> Vec<MeasureKind> {
    vec![
        MeasureKind::OccurrenceCount,
        MeasureKind::InstanceCount,
        MeasureKind::Mni,
        MeasureKind::Mi,
        MeasureKind::RelaxedMvc,
    ]
}

/// Compare the budgeted branch-and-bound measures (MVC, MIS, MIES) on two graphs.
/// Their values are only well-defined when the search completed: an exhausted budget
/// yields the best bound found, which legitimately depends on vertex order, so those
/// outcomes are skipped rather than compared.
fn assert_budgeted_invariant(
    a: &ffsm::core::SupportMeasures,
    b: &ffsm::core::SupportMeasures,
) -> Result<(), String> {
    let pairs =
        [("MVC", a.mvc(), b.mvc()), ("MIS", a.mis(), b.mis()), ("MIES", a.mies(), b.mies())];
    for (name, x, y) in pairs {
        if x.optimal && y.optimal && x.value != y.value {
            return Err(format!("{name} changed: {} vs {}", x.value, y.value));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn measures_are_invariant_under_data_graph_relabeling(
        n in 15usize..50,
        labels in 1u32..4,
        seed in 0u64..10_000,
    ) {
        let graph = generators::gnm_random(n, 2 * n, labels, seed);
        prop_assume!(graph.num_edges() > 0);
        let Some((pattern, _)) = generators::sample_pattern(&graph, 2, seed ^ 0xaa) else { return Ok(()); };
        let permuted = permute_graph(&graph, seed ^ 0x5555);
        prop_assert!(are_isomorphic(&graph, &permuted));
        let config = MeasureConfig::default();
        for kind in exact_kinds() {
            let a = evaluate(&pattern, &graph, kind, &config);
            let b = evaluate(&pattern, &permuted, kind, &config);
            prop_assert!((a - b).abs() < 1e-6, "{} changed under relabeling: {a} vs {b}", kind.name());
        }
        let ma = measures_of(&pattern, &graph, &config);
        let mb = measures_of(&pattern, &permuted, &config);
        if let Err(message) = assert_budgeted_invariant(&ma, &mb) {
            prop_assert!(false, "under relabeling: {message}");
        }
    }

    #[test]
    fn measures_are_invariant_under_pattern_vertex_permutation(
        n in 15usize..50,
        seed in 0u64..10_000,
    ) {
        let graph = generators::community_graph(2, n / 2 + 1, 0.3, 0.05, 3, seed);
        prop_assume!(graph.num_edges() > 0);
        let Some((pattern, _)) = generators::sample_pattern(&graph, 3, seed ^ 0xbb) else { return Ok(()); };
        let permuted_pattern: Pattern = permute_graph(&pattern, seed ^ 0x1234);
        let config = MeasureConfig::default();
        for kind in exact_kinds() {
            let a = evaluate(&pattern, &graph, kind, &config);
            let b = evaluate(&permuted_pattern, &graph, kind, &config);
            prop_assert!((a - b).abs() < 1e-6, "{} changed under pattern permutation", kind.name());
        }
        let ma = measures_of(&pattern, &graph, &config);
        let mb = measures_of(&permuted_pattern, &graph, &config);
        if let Err(message) = assert_budgeted_invariant(&ma, &mb) {
            prop_assert!(false, "under pattern permutation: {message}");
        }
    }

    #[test]
    fn lg_roundtrip_preserves_measures(
        n in 10usize..40,
        labels in 1u32..4,
        seed in 0u64..10_000,
    ) {
        let graph = generators::gnm_random(n, 2 * n, labels, seed);
        let back = from_lg_string(&to_lg_string(&graph)).expect("roundtrip parses");
        prop_assert_eq!(&graph, &back);
        if let Some((pattern, _)) = generators::sample_pattern(&graph, 2, seed) {
            let config = MeasureConfig::default();
            for kind in [MeasureKind::Mni, MeasureKind::Mi, MeasureKind::Mvc] {
                prop_assert_eq!(
                    evaluate(&pattern, &graph, kind, &config),
                    evaluate(&pattern, &back, kind, &config)
                );
            }
        }
    }
}

#[test]
fn dataset_generators_are_deterministic_and_distinct() {
    let a = datasets::standard_suite(7);
    let b = datasets::standard_suite(7);
    let c = datasets::standard_suite(8);
    for ((x, y), z) in a.iter().zip(b.iter()).zip(c.iter()) {
        assert_eq!(x.graph, y.graph, "dataset {} not deterministic", x.name);
        assert_ne!(x.graph, z.graph, "dataset {} ignores its seed", x.name);
    }
    let names: Vec<&str> = a.iter().map(|d| d.name.as_str()).collect();
    assert_eq!(names, vec!["chemical", "social", "citation", "protein"]);
}

#[test]
fn figure_graphs_roundtrip_through_lg() {
    for example in ffsm::graph::figures::all_figures() {
        let text = to_lg_string(&example.graph);
        let back = from_lg_string(&text).unwrap();
        assert_eq!(example.graph, back, "lg roundtrip changed {}", example.name);
    }
}

#[test]
fn single_label_graph_edge_pattern_support_equals_known_value() {
    // Sanity check with closed-form values: in a star with k >= 2 same-labelled
    // leaves, every instance of the one-edge pattern shares the hub, so MIS = MVC = 1,
    // there are k instances, and 2k occurrences (both orientations of each edge).
    for k in 2usize..6 {
        let graph = {
            let mut g = LabeledGraph::new();
            let hub = g.add_vertex(Label(0));
            for _ in 0..k {
                let leaf = g.add_vertex(Label(0));
                g.add_edge(hub, leaf).unwrap();
            }
            g
        };
        let pattern = ffsm::graph::patterns::single_edge(Label(0), Label(0));
        let config = MeasureConfig::default();
        assert_eq!(evaluate(&pattern, &graph, MeasureKind::Mis, &config), 1.0);
        assert_eq!(evaluate(&pattern, &graph, MeasureKind::Mvc, &config), 1.0);
        assert_eq!(evaluate(&pattern, &graph, MeasureKind::InstanceCount, &config), k as f64);
        assert_eq!(
            evaluate(&pattern, &graph, MeasureKind::OccurrenceCount, &config),
            2.0 * k as f64
        );
    }
}
