//! [`PatternStream`] — lazy, pull-based mining with typed events.
//!
//! [`crate::MiningSession::stream`] returns a `PatternStream`: an owned, `Send`
//! iterator of [`MiningEvent`]s that replaces the old lifetime-infected
//! `on_pattern` callback.  Nothing is evaluated until the consumer pulls; each
//! pull advances the engine by at most one pattern-growth level, so a server
//! thread can interleave consumption with its own work, forward events over the
//! wire as they happen (`ffsm mine --stream` does exactly this), or abandon the
//! run early.
//!
//! ## Event contract
//!
//! For one session configuration the event sequence is fully deterministic:
//!
//! 1. zero or more [`MiningEvent::Pattern`] events per level, in the engine's
//!    fixed candidate order (threshold mode: every emitted pattern; top-k mode:
//!    every pattern *entering* the running top-k — a later, better pattern may
//!    still evict it from the final result);
//! 2. one [`MiningEvent::LevelCompleted`] per fully processed level, carrying a
//!    stats snapshot;
//! 3. in a bounds-first session interrupted by deadline or cancellation, one
//!    [`MiningEvent::Undecided`] per still-pending candidate, each carrying a
//!    certified support interval (honest anytime semantics);
//! 4. exactly one final [`MiningEvent::Finished`] carrying the typed
//!    [`Completion`] status, after which the iterator yields `None`.
//!
//! Streaming and batch mining are the same computation:
//! [`PatternStream::into_result`] drains the remainder and returns precisely the
//! [`MiningResult`] that [`crate::MiningSession::run`] (a thin adapter over this
//! method) would have produced.  A cancelled or deadline-hit stream emits a
//! deterministic *prefix* of the full run's events (whole levels only) and
//! finishes with [`Completion::Cancelled`] / [`Completion::DeadlineExceeded`].
//!
//! Items are `Result<MiningEvent, FfsmError>` so future event sources with
//! fallible transports can surface errors mid-stream; the in-process engine never
//! yields `Err` today — interruptions are *events* (a typed `Finished`), not
//! errors, because the prefix mined so far is still valid.

use crate::engine::EngineState;
use crate::types::{Completion, FrequentPattern, MiningResult, MiningStats, UndecidedPattern};
use ffsm_core::FfsmError;
use std::collections::VecDeque;

/// Progress of one fully processed pattern-growth level.
#[derive(Debug, Clone)]
pub struct LevelSummary {
    /// 1-based level number (level 1 evaluates the single-edge seeds).
    pub level: usize,
    /// Candidates whose support was evaluated in this level.
    pub evaluated: usize,
    /// Candidates accepted in this level (threshold mode: emitted patterns;
    /// top-k mode: patterns that entered the running top-k).
    pub accepted: usize,
    /// The threshold in force after the level (rises in top-k mode).
    pub threshold: f64,
    /// Cumulative statistics snapshot (its `completion` field stays
    /// [`Completion::Complete`] until the run actually stops).
    pub stats: MiningStats,
}

/// The final event of every stream.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Why the run stopped.
    pub completion: Completion,
    /// The threshold in force when the run stopped.
    pub final_threshold: f64,
    /// Number of patterns in the final result (top-k mode: after evictions, so
    /// this can be smaller than the number of `Pattern` events).
    pub num_patterns: usize,
    /// Candidates a bounds-first session left undecided at an interruption
    /// (equals the number of [`MiningEvent::Undecided`] events; 0 otherwise).
    pub num_undecided: usize,
    /// Final statistics.
    pub stats: MiningStats,
}

/// One streamed mining event.  See the [module docs](self) for the sequence
/// contract.
#[derive(Debug, Clone)]
pub enum MiningEvent {
    /// A pattern was accepted (threshold mode: final; top-k mode: provisional —
    /// it may later be evicted from the running top-k).
    Pattern(FrequentPattern),
    /// A pattern-growth level was fully processed.
    LevelCompleted(LevelSummary),
    /// A bounds-first session was interrupted (deadline or cancellation) before
    /// deciding this candidate; the payload carries its certified support
    /// interval.  Emitted between the last `LevelCompleted` and `Finished`,
    /// in the engine's deterministic candidate order.
    Undecided(UndecidedPattern),
    /// The run stopped; always the last event.
    Finished(RunSummary),
}

/// A lazy, pull-based mining run.  Owned and `Send`: spawn it onto any thread.
/// Construct via [`crate::MiningSession::stream`].
pub struct PatternStream {
    state: EngineState,
    queue: VecDeque<MiningEvent>,
    finished: bool,
}

impl PatternStream {
    pub(crate) fn new(state: EngineState) -> Self {
        PatternStream { state, queue: VecDeque::new(), finished: false }
    }

    /// The typed completion status, once the `Finished` event has been emitted
    /// (`None` while the run is still in progress).
    pub fn completion(&self) -> Option<Completion> {
        self.state.completion()
    }

    /// Drain the remaining events and return the batch [`MiningResult`].
    ///
    /// Consuming the whole stream first is *not* required — this method runs the
    /// rest of the mining loop itself.  To get a partial result instead, fire the
    /// session's `CancelToken` first: the result then holds the deterministic
    /// prefix with [`Completion::Cancelled`].
    pub fn into_result(mut self) -> MiningResult {
        for _event in &mut self {}
        self.state.into_result()
    }

    /// Drain the remaining events and return the batch result together with the
    /// per-pattern [`EvalCache`](crate::EvalCache) the run recorded (empty unless
    /// the session asked for recording — `run_recorded` / `run_delta`).
    pub(crate) fn into_result_and_cache(mut self) -> (MiningResult, crate::EvalCache) {
        for _event in &mut self {}
        self.state.into_result_and_cache()
    }
}

impl Iterator for PatternStream {
    type Item = Result<MiningEvent, FfsmError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(event) = self.queue.pop_front() {
                if matches!(event, MiningEvent::Finished(_)) {
                    self.finished = true;
                }
                return Some(Ok(event));
            }
            if self.finished {
                return None;
            }
            // Lazy pull: advance the engine by one level (which pushes >= 1
            // events — at minimum the Finished event).
            self.state.step(&mut self.queue);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn stream_and_events_are_send() {
        assert_send::<PatternStream>();
        assert_send::<MiningEvent>();
    }
}
