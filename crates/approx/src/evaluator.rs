//! The bounds-first evaluator: certified support intervals from cheap arguments.
//!
//! For a candidate pattern the evaluator produces an interval `[lo, hi]` that
//! provably contains the pattern's exact support, in two stages:
//!
//! * **Pre-enumeration** ([`BoundsEvaluator::pre_bounds`]) — before a single
//!   occurrence is enumerated, the support is capped by anti-monotonicity (the
//!   parent pattern's upper bound) and by index cardinality: every MNI image of
//!   a pattern vertex is a data vertex with the same label and at least the
//!   pattern degree, so the smallest candidate set bounds every measure in the
//!   paper's containment chain.  When the cap already falls below the
//!   threshold, enumeration is skipped entirely.
//! * **Post-enumeration** ([`BoundsEvaluator::post_bounds`]) — once the
//!   occurrence set exists but before the NP-hard exact solve, the chain
//!   `σMIS = σMIES ≤ νMIES = νMVC ≤ σMVC ≤ σMI ≤ σMNI` (Section 4.4) is
//!   deployed: the linear-time MNI caps the expensive measures from above, a
//!   greedy independent edge set (a feasible packing) bounds them from below,
//!   and the fractional covering LP — presolved, then solved together with its
//!   dual — tightens whichever side the measure needs, with weak duality
//!   guaranteeing soundness even when the simplex stops short of a certified
//!   optimum.
//!
//! Decisions are made against the *true* support, so a bounds-first session
//! accepts exactly the patterns exact mining accepts.  (When an exact search
//! budget or embedding cap truncates the exact engine itself, the engine's
//! reported value is approximate; the intervals still certify the true
//! support.)

use crate::interval::{Certificate, SupportInterval};
use ffsm_core::measures::mni;
use ffsm_core::{GraphIndex, MeasureConfig, MeasureKind, OccurrenceSet};
use ffsm_core::{HypergraphBasis, MvcAlgorithm};
use ffsm_graph::{Label, Pattern};
use ffsm_hypergraph::matching::greedy_independent_edge_set;
use ffsm_hypergraph::Hypergraph;
use ffsm_lp::{presolve_covering, solve_with_dual};

/// Slack used when rounding fractional LP bounds to the integral measures, and
/// when stamping LP optimality certificates.
const LP_TOL: f64 = 1e-6;

/// One evaluation's certified interval, its justification and its verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsOutcome {
    /// The certified support interval.
    pub interval: SupportInterval,
    /// The argument that produced the binding side of the interval.
    pub certificate: Certificate,
    /// The verdict against the evaluator's threshold: `Some(true)` = certainly
    /// frequent, `Some(false)` = certainly infrequent, `None` = undecided (the
    /// caller must evaluate exactly).
    pub decision: Option<bool>,
}

/// Sound envelope around the fractional covering optimum νMVC (= νMIES):
/// `lower ≤ ν ≤ upper` by weak duality, regardless of whether the simplex
/// reached a certified optimum.
struct LpEnvelope {
    lower: f64,
    upper: f64,
    certified: bool,
}

/// Computes certified support intervals for one measure kind at one threshold.
///
/// Construct once per session via [`BoundsEvaluator::new`]; the evaluator is
/// immutable and freely shared across worker threads.
#[derive(Debug, Clone)]
pub struct BoundsEvaluator {
    kind: MeasureKind,
    basis: HypergraphBasis,
    threshold: f64,
}

impl BoundsEvaluator {
    /// `true` when bounds-first evaluation is sound for `kind` under `config`.
    ///
    /// Every chain measure qualifies.  MVC qualifies only under the exact
    /// algorithm (the greedy variants report covers that may exceed the MNI
    /// cap); MCP sits outside the proven chain and is declined.
    pub fn supports(kind: MeasureKind, config: &MeasureConfig) -> bool {
        match kind {
            MeasureKind::Mni
            | MeasureKind::Mi
            | MeasureKind::Mis
            | MeasureKind::Mies
            | MeasureKind::RelaxedMvc
            | MeasureKind::RelaxedMies => true,
            MeasureKind::Mvc => matches!(config.mvc_algorithm, MvcAlgorithm::Exact),
            // MNI-k counts distinct image *sets* of size-k subsets, which can
            // exceed every single-vertex candidate count, so the index
            // cardinality bound is unsound for it (and its exact evaluation is
            // already linear).  MCP sits outside the proven chain; the raw
            // counts are not even anti-monotone.
            MeasureKind::MniK(_)
            | MeasureKind::Mcp
            | MeasureKind::OccurrenceCount
            | MeasureKind::InstanceCount => false,
        }
    }

    /// An evaluator for `kind` at threshold `threshold`, or `None` when
    /// [`BoundsEvaluator::supports`] declines the configuration.
    pub fn new(
        kind: MeasureKind,
        config: &MeasureConfig,
        threshold: f64,
    ) -> Option<BoundsEvaluator> {
        BoundsEvaluator::supports(kind, config).then_some(BoundsEvaluator {
            kind,
            basis: config.basis,
            threshold,
        })
    }

    /// The measure kind this evaluator bounds.
    pub fn kind(&self) -> MeasureKind {
        self.kind
    }

    /// The frequency threshold decisions are made against.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Stage 1: bound the support before enumerating a single occurrence.
    ///
    /// `parent_hi` is the upper bound established for the pattern's parent
    /// (`f64::INFINITY` for seed patterns); by anti-monotonicity it caps the
    /// child.  The index cardinality bound uses
    /// [`GraphIndex::vertices_with_min_degree`] when an index exists (the
    /// candidate-space backends) and falls back to plain label counts under the
    /// naive backend.  A `Some(false)` decision means enumeration can be
    /// skipped outright.
    pub fn pre_bounds(
        &self,
        pattern: &Pattern,
        label_counts: &[(Label, usize)],
        index: Option<&GraphIndex>,
        parent_hi: f64,
    ) -> BoundsOutcome {
        let mut hi = parent_hi;
        let mut certificate = Certificate::ParentSupport;
        for u in pattern.vertices() {
            let label = pattern.label(u);
            let cap = match index {
                Some(index) => index.vertices_with_min_degree(label, pattern.degree(u)).len(),
                None => label_counts
                    .iter()
                    .find(|(l, _)| *l == label)
                    .map(|&(_, count)| count)
                    .unwrap_or(0),
            } as f64;
            if cap < hi {
                hi = cap;
                certificate = Certificate::IndexDegree;
            }
        }
        self.outcome(SupportInterval::new(0.0, hi), certificate)
    }

    /// `true` when [`BoundsEvaluator::post_bounds`] can short-circuit an
    /// expensive exact solve for this measure kind.  Linear-time MNI skips the
    /// stage: its exact evaluation *is* the cheap path.
    pub fn post_stage(&self) -> bool {
        matches!(
            self.kind,
            MeasureKind::Mi
                | MeasureKind::Mvc
                | MeasureKind::Mis
                | MeasureKind::Mies
                | MeasureKind::RelaxedMvc
                | MeasureKind::RelaxedMies
        )
    }

    /// Stage 2: bound the support from the enumerated occurrence set, before
    /// the NP-hard (or LP) exact solve.
    ///
    /// `pre` is the stage-1 outcome; its upper bound carries over.  Arguments
    /// are tried cheapest first — MNI cap, greedy packing, then the covering
    /// LP with its dual — and the stage returns as soon as one side clears the
    /// threshold.
    pub fn post_bounds(&self, occ: &OccurrenceSet, pre: &BoundsOutcome) -> BoundsOutcome {
        let mut lo = pre.interval.lo.max(0.0);
        let mut hi = pre.interval.hi;
        let mut hi_certificate = pre.certificate;
        let mni_cap = mni::mni(occ) as f64;
        if mni_cap < hi {
            hi = mni_cap;
            hi_certificate = Certificate::ContainmentChain;
        }
        if hi < self.threshold {
            return self.outcome(SupportInterval::new(lo, hi), hi_certificate);
        }
        let h = occ.hypergraph(self.basis);
        let greedy = greedy_independent_edge_set(&h).len() as f64;
        lo = lo.max(greedy);
        if lo >= self.threshold {
            return self.outcome(SupportInterval::new(lo, hi), Certificate::GreedyPacking);
        }
        match self.kind {
            // The integral MVC (and MI above it) sit above the fractional
            // covering optimum: MVC ≥ ⌈ν⌉, and any dual feasible value
            // under-estimates ν.
            MeasureKind::Mvc | MeasureKind::Mi => {
                if let Some(env) = covering_envelope(&h) {
                    lo = lo.max((env.lower - LP_TOL).ceil());
                    if lo >= self.threshold {
                        let certificate = Certificate::LpRelaxation { certified: env.certified };
                        return self.outcome(SupportInterval::new(lo, hi.max(lo)), certificate);
                    }
                }
            }
            // The integral MIS = MIES sit below it: MIES ≤ ⌊ν⌋, and any primal
            // feasible cover over-estimates ν.
            MeasureKind::Mis | MeasureKind::Mies => {
                if let Some(env) = covering_envelope(&h) {
                    let cap = (env.upper + LP_TOL).floor();
                    if cap < hi {
                        hi = cap;
                        hi_certificate = Certificate::LpRelaxation { certified: env.certified };
                    }
                    if hi < self.threshold {
                        return self.outcome(SupportInterval::new(lo.min(hi), hi), hi_certificate);
                    }
                }
            }
            // For νMVC / νMIES the LP *is* the measure; solving it here would
            // be the exact evaluation, so only the greedy/MNI sandwich applies.
            _ => {}
        }
        self.outcome(SupportInterval::new(lo, hi.max(lo)), hi_certificate)
    }

    /// The exact-evaluation outcome: a point interval with an [`Certificate::Exact`]
    /// stamp.
    pub fn exact(&self, support: f64) -> BoundsOutcome {
        self.outcome(SupportInterval::point(support), Certificate::Exact)
    }

    fn outcome(&self, interval: SupportInterval, certificate: Certificate) -> BoundsOutcome {
        BoundsOutcome { decision: interval.decides(self.threshold), interval, certificate }
    }
}

/// Sound lower/upper envelope around the fractional covering optimum of `h`,
/// via presolve + one dual-certified simplex solve.  `None` when the solver
/// fails (iteration limit on a pathological instance): the caller simply keeps
/// its current bounds.
fn covering_envelope(h: &Hypergraph) -> Option<LpEnvelope> {
    if h.num_edges() == 0 {
        return Some(LpEnvelope { lower: 0.0, upper: 0.0, certified: true });
    }
    let sets: Vec<Vec<usize>> = h.edges().map(|(_, e)| e.to_vec()).collect();
    let pre = presolve_covering(h.num_vertices(), &sets);
    if pre.rows.is_empty() {
        // Presolve decided every set: the optimum is the forced offset itself.
        return Some(LpEnvelope { lower: pre.offset, upper: pre.offset, certified: true });
    }
    let report = solve_with_dual(&pre.reduced_problem()).ok()?;
    Some(LpEnvelope {
        lower: pre.offset + report.dual.objective,
        upper: pre.offset + report.primal.objective,
        certified: report.certifies_optimality(LP_TOL),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_core::measures::SupportMeasures;
    use ffsm_graph::figures;
    use ffsm_graph::isomorphism::IsoConfig;

    fn chain_kinds() -> Vec<MeasureKind> {
        vec![
            MeasureKind::Mni,
            MeasureKind::Mi,
            MeasureKind::Mvc,
            MeasureKind::Mis,
            MeasureKind::Mies,
            MeasureKind::RelaxedMvc,
            MeasureKind::RelaxedMies,
        ]
    }

    #[test]
    fn unsupported_configurations_are_declined() {
        let config = MeasureConfig::default();
        assert!(BoundsEvaluator::new(MeasureKind::Mcp, &config, 1.0).is_none());
        assert!(BoundsEvaluator::new(MeasureKind::MniK(2), &config, 1.0).is_none());
        let greedy = MeasureConfig {
            mvc_algorithm: MvcAlgorithm::GreedyMatching,
            ..MeasureConfig::default()
        };
        assert!(BoundsEvaluator::new(MeasureKind::Mvc, &greedy, 1.0).is_none());
        assert!(BoundsEvaluator::new(MeasureKind::Mvc, &config, 1.0).is_some());
    }

    #[test]
    fn intervals_contain_the_exact_support_on_all_figures() {
        let config = MeasureConfig::default();
        for example in figures::all_figures() {
            let occ =
                OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
            let counts = example.graph.label_histogram();
            let index = GraphIndex::build(&example.graph);
            for kind in chain_kinds() {
                let evaluator = BoundsEvaluator::new(kind, &config, 2.0).expect("supported");
                let pre =
                    evaluator.pre_bounds(&example.pattern, &counts, Some(&index), f64::INFINITY);
                let exact = SupportMeasures::new(occ.clone(), config.clone()).compute(kind);
                assert!(
                    pre.interval.contains(exact, LP_TOL),
                    "{kind:?} pre interval {:?} misses {exact} on {}",
                    pre.interval,
                    example.name
                );
                if evaluator.post_stage() {
                    let post = evaluator.post_bounds(&occ, &pre);
                    assert!(
                        post.interval.contains(exact, LP_TOL),
                        "{kind:?} post interval {:?} misses {exact} on {}",
                        post.interval,
                        example.name
                    );
                    assert!(post.interval.lo <= post.interval.hi + LP_TOL);
                    // A decision must agree with the exact comparison.
                    if let Some(frequent) = post.decision {
                        assert_eq!(frequent, exact >= 2.0, "{kind:?} on {}", example.name);
                    }
                }
            }
        }
    }

    #[test]
    fn pre_bounds_skip_impossible_patterns() {
        // Figure 4's path graph has two A and two B vertices; a pattern vertex
        // demanding degree 3 has no candidates, so the cap decides infrequent
        // with zero enumeration.
        let f = figures::figure4();
        let index = GraphIndex::build(&f.graph);
        let counts = f.graph.label_histogram();
        let star = ffsm_graph::patterns::star(Label(0), &[Label(1); 3]);
        let evaluator =
            BoundsEvaluator::new(MeasureKind::Mni, &MeasureConfig::default(), 1.0).unwrap();
        let pre = evaluator.pre_bounds(&star, &counts, Some(&index), f64::INFINITY);
        assert_eq!(pre.decision, Some(false));
        assert_eq!(pre.certificate, Certificate::IndexDegree);
        assert_eq!(pre.interval.hi, 0.0);
        // Without the index the label-count fallback still caps the pattern at
        // the rarer label's frequency.
        let pre = evaluator.pre_bounds(&star, &counts, None, f64::INFINITY);
        assert!(pre.interval.hi <= 2.0);
    }

    #[test]
    fn parent_bound_caps_children() {
        let f = figures::figure4();
        let evaluator =
            BoundsEvaluator::new(MeasureKind::Mni, &MeasureConfig::default(), 3.0).unwrap();
        let counts = f.graph.label_histogram();
        // Parent established support 2; the child inherits hi = 2 < τ = 3.
        let pre = evaluator.pre_bounds(&f.pattern, &counts, None, 2.0);
        assert_eq!(pre.decision, Some(false));
        assert!(pre.interval.hi <= 2.0);
    }

    #[test]
    fn lp_envelope_brackets_the_fractional_optimum() {
        // Odd triangle of pairwise overlaps: ν = 1.5.
        let mut h = Hypergraph::new(3);
        h.add_edge(vec![0, 1]).unwrap();
        h.add_edge(vec![1, 2]).unwrap();
        h.add_edge(vec![0, 2]).unwrap();
        let env = covering_envelope(&h).expect("solvable");
        assert!(env.lower <= 1.5 + LP_TOL && 1.5 <= env.upper + LP_TOL);
        assert!(env.certified);
        assert!(env.upper - env.lower <= LP_TOL);
    }
}
