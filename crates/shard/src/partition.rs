//! Partitioning a data graph into interior + halo shards.
//!
//! See the crate docs for the halo invariant and the anchor-shard dedup rule.
//! The partitioner is deliberately simple and deterministic: contiguous vertex
//! ranges, or greedy label-block packing for label-skewed graphs — both produce
//! the *same* assignment on every run so that sharded mining is reproducible
//! and differentially testable against the unsharded engine.

use crate::store::{ShardStore, ShardStoreStats};
use ffsm_core::{FfsmError, GraphIndex};
use ffsm_graph::{Label, LabeledGraph, VertexId};
use std::collections::{BTreeSet, VecDeque};
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// How interiors are chosen: which shard *owns* each vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Contiguous vertex-id ranges of near-equal size.  The right default when
    /// vertex ids correlate with locality (generators emit communities as
    /// contiguous ranges; so do most bulk loaders).
    VertexRange,
    /// Greedy label-block packing: labels descending by frequency, each label's
    /// vertex block assigned to the currently smallest shard.  Keeps same-label
    /// vertices together so label-local patterns rarely straddle a cut.
    LabelAware,
}

impl std::fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionStrategy::VertexRange => write!(f, "vertex-range"),
            PartitionStrategy::LabelAware => write!(f, "label-aware"),
        }
    }
}

impl std::str::FromStr for PartitionStrategy {
    type Err = FfsmError;

    fn from_str(s: &str) -> Result<Self, FfsmError> {
        match s.to_ascii_lowercase().as_str() {
            "vertex-range" | "range" => Ok(PartitionStrategy::VertexRange),
            "label-aware" | "label" => Ok(PartitionStrategy::LabelAware),
            other => Err(FfsmError::Partition(format!(
                "unknown partition strategy {other:?} (expected vertex-range or label-aware)"
            ))),
        }
    }
}

/// A partitioning request: shard count, halo depth, interior strategy.
///
/// `halo_depth` must be at least the maximum pattern edge count that will be
/// mined over the partition — the sharded session checks this at run time; the
/// builder checks the spec against the graph itself (`num_shards >= 1`, halo
/// smaller than the graph when there is more than one shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Number of shards `K`.
    pub num_shards: usize,
    /// Hop radius of the halo around each interior.
    pub halo_depth: usize,
    /// Interior ownership strategy.
    pub strategy: PartitionStrategy,
}

impl PartitionSpec {
    /// Contiguous vertex-range partitioning.
    pub fn vertex_range(num_shards: usize, halo_depth: usize) -> Self {
        PartitionSpec { num_shards, halo_depth, strategy: PartitionStrategy::VertexRange }
    }

    /// Label-aware greedy partitioning.
    pub fn label_aware(num_shards: usize, halo_depth: usize) -> Self {
        PartitionSpec { num_shards, halo_depth, strategy: PartitionStrategy::LabelAware }
    }

    fn validate(&self, graph: &LabeledGraph) -> Result<(), FfsmError> {
        if self.num_shards == 0 {
            return Err(FfsmError::Partition("shards must be at least 1 (got 0)".into()));
        }
        if self.num_shards > 1
            && graph.num_vertices() > 0
            && self.halo_depth >= graph.num_vertices()
        {
            return Err(FfsmError::Partition(format!(
                "halo depth {} is no smaller than the graph ({} vertices): every shard \
                 would be the whole graph — lower the halo or use a single shard",
                self.halo_depth,
                graph.num_vertices()
            )));
        }
        Ok(())
    }
}

/// One in-memory shard: the induced subgraph over interior + halo, its local →
/// global vertex map, and a lazily built per-shard [`GraphIndex`] (same
/// build-exactly-once discipline as `PreparedGraph`).
#[derive(Debug)]
pub struct ResidentShard {
    graph: LabeledGraph,
    to_global: Vec<VertexId>,
    index: OnceLock<Arc<GraphIndex>>,
}

impl ResidentShard {
    pub(crate) fn new(graph: LabeledGraph, to_global: Vec<VertexId>) -> Self {
        ResidentShard { graph, to_global, index: OnceLock::new() }
    }

    /// The shard's induced subgraph (local vertex ids `0..n`).
    pub fn graph(&self) -> &LabeledGraph {
        &self.graph
    }

    /// Local vertex id → global vertex id, ascending in global id.
    pub fn to_global(&self) -> &[VertexId] {
        &self.to_global
    }

    /// The shard's matching index, built on first use and shared thereafter.
    pub fn index(&self) -> Arc<GraphIndex> {
        self.index.get_or_init(|| Arc::new(GraphIndex::build(&self.graph))).clone()
    }

    /// `true` once [`ResidentShard::index`] has run.
    pub fn index_is_built(&self) -> bool {
        self.index.get().is_some()
    }

    /// Documented storage proxy for this shard: 16 bytes per vertex (label +
    /// adjacency bookkeeping), 16 per edge (two sorted `u32` endpoints plus
    /// allocator slack), 4 per vertex for the global-id map.  Derived data (the
    /// lazy index) is excluded on both sides of every comparison that uses this
    /// proxy, so sharded-vs-whole ratios stay honest.
    pub fn approx_bytes(&self) -> u64 {
        approx_graph_bytes(self.graph.num_vertices(), self.graph.num_edges())
            + 4 * self.to_global.len() as u64
    }
}

/// Storage proxy for a bare graph — see [`ResidentShard::approx_bytes`].
pub(crate) fn approx_graph_bytes(vertices: usize, edges: usize) -> u64 {
    vertices as u64 * 16 + edges as u64 * 16
}

/// A data graph split into `K` interior+halo shards, with everything the mining
/// driver needs to reproduce the unsharded engine's behaviour *without* the
/// global graph in memory: the vertex→shard assignment, the label alphabet, the
/// seed label pairs, and the cut-boundary flags.
#[derive(Debug)]
pub struct PartitionedGraph {
    spec: PartitionSpec,
    assignment: Arc<Vec<u32>>,
    boundary: Arc<Vec<bool>>,
    alphabet: Arc<Vec<Label>>,
    seed_pairs: Vec<(Label, Label)>,
    num_vertices: usize,
    num_edges: usize,
    store: ShardStore,
}

impl PartitionedGraph {
    /// Partition `graph` according to `spec`.  All shards start resident;
    /// call [`PartitionedGraph::spill_to_disk`] to cap residency.
    pub fn build(graph: &LabeledGraph, spec: PartitionSpec) -> Result<Self, FfsmError> {
        spec.validate(graph)?;
        let n = graph.num_vertices();
        let assignment = match spec.strategy {
            PartitionStrategy::VertexRange => range_assignment(n, spec.num_shards),
            PartitionStrategy::LabelAware => label_assignment(graph, spec.num_shards),
        };
        debug_assert_eq!(assignment.len(), n);

        let mut boundary = vec![false; n];
        for v in graph.vertices() {
            for &w in graph.neighbors(v) {
                if assignment[v as usize] != assignment[w as usize] {
                    boundary[v as usize] = true;
                    break;
                }
            }
        }

        let mut shards = Vec::with_capacity(spec.num_shards);
        for shard in 0..spec.num_shards {
            let members = halo_ball(graph, &assignment, shard as u32, spec.halo_depth);
            let (sub, back) = graph.induced_subgraph(&members);
            shards.push(ResidentShard::new(sub, back));
        }

        let label_counts = graph.label_histogram();
        let alphabet: Vec<Label> = label_counts.iter().map(|&(l, _)| l).collect();
        let mut pairs = BTreeSet::new();
        for v in graph.vertices() {
            let a = graph.label(v);
            for &w in graph.neighbors(v) {
                if v < w {
                    let b = graph.label(w);
                    pairs.insert(if a <= b { (a, b) } else { (b, a) });
                }
            }
        }

        Ok(PartitionedGraph {
            spec,
            assignment: Arc::new(assignment),
            boundary: Arc::new(boundary),
            alphabet: Arc::new(alphabet),
            seed_pairs: pairs.into_iter().collect(),
            num_vertices: n,
            num_edges: graph.num_edges(),
            store: ShardStore::resident(shards),
        })
    }

    /// The spec this partition was built from.
    pub fn spec(&self) -> PartitionSpec {
        self.spec
    }

    /// Number of shards `K`.
    pub fn num_shards(&self) -> usize {
        self.spec.num_shards
    }

    /// Global vertex → owning shard.
    pub fn assignment(&self) -> &Arc<Vec<u32>> {
        &self.assignment
    }

    /// `boundary()[v]` is `true` iff `v` has a neighbour owned by another shard
    /// (i.e. `v` touches a cut edge).  Cross-shard occurrences can only meet in
    /// these vertices — the hypergraph block-overlap restriction keys on this.
    pub fn boundary(&self) -> &Arc<Vec<bool>> {
        &self.boundary
    }

    /// Distinct labels of the *global* graph, ascending — the extension
    /// alphabet, identical to `PreparedGraph::alphabet()` on the same graph.
    pub fn alphabet(&self) -> &[Label] {
        &self.alphabet
    }

    /// Unordered label pairs of the global edge set, sorted — reproduces
    /// `seed_patterns(global_graph)` without the global graph.
    pub fn seed_pairs(&self) -> &[(Label, Label)] {
        &self.seed_pairs
    }

    /// Global vertex count.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Global (undirected) edge count.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Fetch shard `i`, reloading it from the spill file if evicted.
    pub fn shard(&self, i: usize) -> Result<Arc<ResidentShard>, FfsmError> {
        self.store.fetch(i)
    }

    /// Spill every shard to `dir` and cap residency at `max_resident` shards
    /// (LRU-evicted).  Shards are immutable, so eviction never writes back.
    pub fn spill_to_disk(
        &self,
        dir: impl AsRef<Path>,
        max_resident: usize,
    ) -> Result<(), FfsmError> {
        self.store.spill(dir.as_ref(), max_resident)
    }

    /// Residency / load counters of the underlying [`ShardStore`].
    pub fn store_stats(&self) -> ShardStoreStats {
        self.store.stats()
    }

    /// Storage proxy for the whole graph under the same formula as
    /// [`ResidentShard::approx_bytes`] (without per-shard global-id maps), the
    /// denominator of the bench's resident-memory ratio.
    pub fn whole_graph_bytes(&self) -> u64 {
        approx_graph_bytes(self.num_vertices, self.num_edges)
    }
}

/// Contiguous near-equal ranges: vertex `v` goes to shard `v * k / n`.
fn range_assignment(n: usize, k: usize) -> Vec<u32> {
    if n == 0 {
        return Vec::new();
    }
    (0..n).map(|v| ((v * k) / n) as u32).collect()
}

/// Labels descending by frequency (ties: ascending label), each label block to
/// the currently smallest shard.  Deterministic; shards may own no vertices
/// when there are fewer labels than shards (they then enumerate nothing).
fn label_assignment(graph: &LabeledGraph, k: usize) -> Vec<u32> {
    let mut hist = graph.label_histogram();
    hist.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut shard_of_label = std::collections::BTreeMap::new();
    let mut load = vec![0usize; k];
    for (label, count) in hist {
        let smallest = (0..k).min_by_key(|&s| (load[s], s)).expect("num_shards >= 1 validated");
        shard_of_label.insert(label, smallest as u32);
        load[smallest] += count;
    }
    graph.vertices().map(|v| shard_of_label[&graph.label(v)]).collect()
}

/// `{ v : dist_G(v, interior) <= depth }` via multi-source BFS, ascending.
fn halo_ball(graph: &LabeledGraph, assignment: &[u32], shard: u32, depth: usize) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut dist: Vec<u32> = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for v in graph.vertices() {
        if assignment[v as usize] == shard {
            dist[v as usize] = 0;
            queue.push_back(v);
        }
    }
    while let Some(u) = queue.pop_front() {
        let d = dist[u as usize];
        if d as usize >= depth {
            continue;
        }
        for &w in graph.neighbors(u) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
    (0..n as VertexId).filter(|&v| dist[v as usize] != u32::MAX).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> LabeledGraph {
        let labels: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let edges: Vec<(VertexId, VertexId)> =
            (0..n - 1).map(|i| (i as VertexId, i as VertexId + 1)).collect();
        LabeledGraph::from_edges(&labels, &edges)
    }

    #[test]
    fn zero_shards_is_a_typed_error() {
        let g = path_graph(4);
        let err = PartitionedGraph::build(&g, PartitionSpec::vertex_range(0, 1)).unwrap_err();
        assert!(matches!(err, FfsmError::Partition(_)));
        assert!(err.to_string().contains("got 0"));
    }

    #[test]
    fn halo_swallowing_the_graph_is_a_typed_error() {
        let g = path_graph(4);
        let err = PartitionedGraph::build(&g, PartitionSpec::vertex_range(2, 4)).unwrap_err();
        assert!(matches!(err, FfsmError::Partition(_)));
        // A single shard tolerates any halo: there is nothing to duplicate.
        assert!(PartitionedGraph::build(&g, PartitionSpec::vertex_range(1, 100)).is_ok());
    }

    #[test]
    fn halo_ball_contains_interior_plus_radius() {
        let g = path_graph(10);
        let p = PartitionedGraph::build(&g, PartitionSpec::vertex_range(2, 2)).unwrap();
        // Shard 0 interior = {0..4}; halo depth 2 reaches 5 and 6 along the path.
        let s0 = p.shard(0).unwrap();
        assert_eq!(s0.to_global(), &[0, 1, 2, 3, 4, 5, 6]);
        let s1 = p.shard(1).unwrap();
        assert_eq!(s1.to_global(), &[3, 4, 5, 6, 7, 8, 9]);
        // Both shards are induced: the path edges among their members survive.
        assert_eq!(s0.graph().num_edges(), 6);
        assert_eq!(s1.graph().num_edges(), 6);
        // Boundary = the two endpoints of the single cut edge {4, 5}.
        let b = p.boundary();
        assert_eq!((0..10).filter(|&v| b[v]).collect::<Vec<_>>(), vec![4, 5],);
    }

    #[test]
    fn label_aware_keeps_label_blocks_together() {
        let g = path_graph(12); // labels cycle 0,1,2
        let p = PartitionedGraph::build(&g, PartitionSpec::label_aware(3, 1)).unwrap();
        let a = p.assignment();
        for v in g.vertices() {
            for w in g.vertices() {
                if g.label(v) == g.label(w) {
                    assert_eq!(a[v as usize], a[w as usize]);
                }
            }
        }
        // Deterministic: rebuilding yields the same assignment.
        let p2 = PartitionedGraph::build(&g, PartitionSpec::label_aware(3, 1)).unwrap();
        assert_eq!(p.assignment(), p2.assignment());
    }

    #[test]
    fn seeds_and_alphabet_match_the_global_graph() {
        let g = path_graph(9);
        let p = PartitionedGraph::build(&g, PartitionSpec::vertex_range(3, 2)).unwrap();
        assert_eq!(p.alphabet(), &[Label(0), Label(1), Label(2)]);
        // Path 0-1-2-0-1-2-…: unordered edge label pairs {0,1}, {1,2}, {0,2}.
        assert_eq!(
            p.seed_pairs(),
            &[(Label(0), Label(1)), (Label(0), Label(2)), (Label(1), Label(2))]
        );
        assert_eq!(p.num_vertices(), 9);
        assert_eq!(p.num_edges(), 8);
    }
}
