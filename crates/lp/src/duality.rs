//! LP duality utilities.
//!
//! Theorem 4.6 of the paper rests on strong duality: the covering relaxation νMVC and
//! the packing relaxation νMIES are a primal/dual pair, so their optima coincide.
//! This module makes that relationship explicit and testable:
//!
//! * [`dual_of`] — build the dual of a problem in the *standard inequality form*
//!   this project uses (minimise over `≥` rows, or maximise over `≤` rows, with
//!   non-negative variables);
//! * [`DualityReport`] — solve a problem and its dual and report the duality gap and
//!   a complementary-slackness check, which the experiments use to certify the LP
//!   relaxations are solved to optimality.

use crate::{Constraint, ConstraintOp, LpError, Objective, Problem, Solution, EPS};

/// Why a dual could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DualityError {
    /// The primal mixes `≤` and `≥` rows (or uses `=`): not in the supported
    /// inequality standard form.
    UnsupportedForm,
}

impl std::fmt::Display for DualityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DualityError::UnsupportedForm => write!(
                f,
                "dual construction requires a pure inequality form (min/≥ or max/≤) without upper bounds"
            ),
        }
    }
}

impl std::error::Error for DualityError {}

/// Build the dual of `problem`.
///
/// Supported forms (all variables non-negative, no explicit upper bounds):
///
/// * `min cᵀx  s.t. Ax ≥ b` → dual `max bᵀy  s.t. Aᵀy ≤ c`;
/// * `max cᵀx  s.t. Ax ≤ b` → dual `min bᵀy  s.t. Aᵀy ≥ c`.
///
/// Dual variable `i` corresponds to primal constraint `i`.
pub fn dual_of(problem: &Problem) -> Result<Problem, DualityError> {
    let constraints: &[Constraint] = problem.constraints();
    let primal_dir = problem.objective_direction();
    let expected_op = match primal_dir {
        Objective::Minimize => ConstraintOp::Ge,
        Objective::Maximize => ConstraintOp::Le,
    };
    if constraints.iter().any(|c| c.op != expected_op) {
        return Err(DualityError::UnsupportedForm);
    }
    if problem.upper_bounds().iter().any(Option::is_some) {
        return Err(DualityError::UnsupportedForm);
    }
    let num_primal_vars = problem.num_vars();
    let num_dual_vars = constraints.len();
    let dual_dir = match primal_dir {
        Objective::Minimize => Objective::Maximize,
        Objective::Maximize => Objective::Minimize,
    };
    let mut dual = Problem::new(dual_dir, num_dual_vars);
    for (i, c) in constraints.iter().enumerate() {
        dual.set_objective(i, c.rhs);
    }
    // Column j of A becomes dual row j: Σ_i A[i][j] y_i (≤ or ≥) c_j.
    let dual_op = match primal_dir {
        Objective::Minimize => ConstraintOp::Le,
        Objective::Maximize => ConstraintOp::Ge,
    };
    let mut columns: Vec<Vec<(usize, f64)>> = vec![Vec::new(); num_primal_vars];
    for (i, c) in constraints.iter().enumerate() {
        for &(j, a) in &c.coeffs {
            if a != 0.0 {
                columns[j].push((i, a));
            }
        }
    }
    for (j, col) in columns.into_iter().enumerate() {
        dual.add_constraint(col, dual_op, problem.objective_coeff(j));
    }
    Ok(dual)
}

/// Joint primal/dual solve with gap and complementary-slackness diagnostics.
#[derive(Debug, Clone)]
pub struct DualityReport {
    /// Primal optimal solution.
    pub primal: Solution,
    /// Dual optimal solution.
    pub dual: Solution,
    /// `|primal objective − dual objective|`.
    pub gap: f64,
    /// Largest complementary-slackness violation observed (0 for exact optima).
    pub max_slackness_violation: f64,
}

impl DualityReport {
    /// `true` when strong duality holds within `tol` and complementary slackness is
    /// satisfied within `tol`.
    pub fn certifies_optimality(&self, tol: f64) -> bool {
        self.gap <= tol && self.max_slackness_violation <= tol
    }
}

/// Solve `problem` and its dual, returning both optima plus the duality gap and the
/// worst complementary-slackness violation:
///
/// * for every primal variable `x_j > 0`, the corresponding dual constraint must be
///   tight;
/// * for every dual variable `y_i > 0`, the corresponding primal constraint must be
///   tight.
pub fn solve_with_dual(problem: &Problem) -> Result<DualityReport, LpError> {
    let dual_problem = dual_of(problem).map_err(|_| LpError::Infeasible)?;
    let primal = problem.solve()?;
    let dual = dual_problem.solve()?;
    let gap = (primal.objective - dual.objective).abs();

    let constraints = problem.constraints();
    let mut max_violation: f64 = 0.0;
    // Dual constraint j slack = |c_j − Σ_i A[i][j] y_i| relevant when x_j > 0.
    let mut dual_row_activity = vec![0.0f64; problem.num_vars()];
    for (i, c) in constraints.iter().enumerate() {
        for &(j, a) in &c.coeffs {
            dual_row_activity[j] += a * dual.values[i];
        }
    }
    for (j, &activity) in dual_row_activity.iter().enumerate().take(problem.num_vars()) {
        if primal.values[j] > EPS.sqrt() {
            let slack = (problem.objective_coeff(j) - activity).abs();
            max_violation = max_violation.max(slack);
        }
    }
    // Primal constraint i slack relevant when y_i > 0.
    for (i, c) in constraints.iter().enumerate() {
        if dual.values[i] > EPS.sqrt() {
            let activity: f64 = c.coeffs.iter().map(|&(j, a)| a * primal.values[j]).sum();
            max_violation = max_violation.max((activity - c.rhs).abs());
        }
    }
    Ok(DualityReport { primal, dual, gap, max_slackness_violation: max_violation })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{covering_lp, packing_lp};

    #[test]
    fn dual_of_covering_is_packing_shaped() {
        let sets = vec![vec![0, 1], vec![1, 2], vec![0, 2]];
        let primal = covering_lp(3, &sets);
        let dual = dual_of(&primal).unwrap();
        assert_eq!(dual.num_vars(), 3); // one per covering row
        assert_eq!(dual.num_constraints(), 3); // one per element
        assert_eq!(dual.objective_direction(), Objective::Maximize);
        let ds = dual.solve().unwrap();
        let ps = primal.solve().unwrap();
        assert!((ds.objective - ps.objective).abs() < 1e-7);
        assert!((ps.objective - 1.5).abs() < 1e-7);
    }

    #[test]
    fn dual_of_dual_recovers_primal_value() {
        let sets = vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 5]];
        let primal = covering_lp(6, &sets);
        let dual = dual_of(&primal).unwrap();
        let double_dual = dual_of(&dual).unwrap();
        let a = primal.solve().unwrap().objective;
        let b = double_dual.solve().unwrap().objective;
        assert!((a - b).abs() < 1e-7);
    }

    #[test]
    fn strong_duality_on_random_covering_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(3..10);
            let rows = rng.gen_range(2..12);
            let sets: Vec<Vec<usize>> = (0..rows)
                .map(|_| {
                    let k = rng.gen_range(1..4.min(n + 1));
                    let mut s: Vec<usize> = (0..k).map(|_| rng.gen_range(0..n)).collect();
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .collect();
            let primal = covering_lp(n, &sets);
            let report = solve_with_dual(&primal).unwrap();
            assert!(report.certifies_optimality(1e-6), "seed {seed}: gap {}", report.gap);
        }
    }

    #[test]
    fn covering_dual_matches_packing_constructor() {
        // The hand-built packing LP and the mechanically derived dual agree in value.
        let sets = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]];
        let primal = covering_lp(4, &sets);
        let derived = dual_of(&primal).unwrap().solve().unwrap();
        let packing = packing_lp(4, &sets, 4).solve().unwrap();
        assert!((derived.objective - packing.objective).abs() < 1e-7);
    }

    #[test]
    fn unsupported_forms_are_rejected() {
        // Mixing a ≤ row into a minimisation problem.
        let mut p = Problem::new(Objective::Minimize, 2);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 1.0);
        p.add_constraint(vec![(1, 1.0)], ConstraintOp::Le, 1.0);
        assert_eq!(dual_of(&p).unwrap_err(), DualityError::UnsupportedForm);
        // Upper bounds also block the construction.
        let mut q = Problem::new(Objective::Maximize, 1);
        q.set_objective(0, 1.0);
        q.set_upper_bound(0, 1.0);
        q.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 2.0);
        assert!(dual_of(&q).is_err());
        assert!(format!("{}", DualityError::UnsupportedForm).contains("inequality"));
    }

    #[test]
    fn maximization_primal_gets_minimization_dual() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 — optimum 36.
        let mut p = Problem::new(Objective::Maximize, 2);
        p.set_objective(0, 3.0);
        p.set_objective(1, 5.0);
        p.add_constraint(vec![(0, 1.0)], ConstraintOp::Le, 4.0);
        p.add_constraint(vec![(1, 2.0)], ConstraintOp::Le, 12.0);
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], ConstraintOp::Le, 18.0);
        let report = solve_with_dual(&p).unwrap();
        assert_eq!(dual_of(&p).unwrap().objective_direction(), Objective::Minimize);
        assert!((report.primal.objective - 36.0).abs() < 1e-6);
        assert!(report.certifies_optimality(1e-6));
    }
}
