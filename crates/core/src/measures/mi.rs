//! The minimum instance (MI) support measure.
//!
//! σMI(P, G) = min over *coarse-grained node subsets* T of the number of distinct
//! image sets c(T) = |{f_i(T)}| (Definition 3.2.4).  The collection of subsets is
//! drawn from the pattern's *transitive node subsets* (Definition 3.2.3): vertex sets
//! every pair of which is swapped by an automorphism of some subgraph of the pattern.
//!
//! The paper leaves the exact family of subgraphs open; the [`MiStrategy`] enum makes
//! the choice explicit (see DESIGN.md §2).  All strategies include the singletons, so
//! σMI ≤ σMNI (Theorem 3.4) holds by construction, and all are anti-monotonic because
//! the candidate family only depends on the pattern and is preserved under pattern
//! extension (the argument of Theorem 3.2).

use super::mni::connected_subsets_of_size;
use super::MiStrategy;
use crate::occurrences::OccurrenceSet;
use ffsm_graph::automorphism::connected_subgraph_orbits;
use ffsm_graph::VertexId;
use std::collections::BTreeSet;

/// Largest base-set size for which *all* subsets are enumerated as candidates; larger
/// orbits / label classes contribute only their full set (plus pairs), keeping the
/// candidate count polynomial in practice.
const MAX_SUBSET_ENUMERATION: usize = 12;

/// Minimum instance support (Definition 3.2.4) under the given strategy.
pub fn mi(occurrences: &OccurrenceSet, strategy: MiStrategy) -> usize {
    if occurrences.num_occurrences() == 0 || occurrences.pattern().num_vertices() == 0 {
        return 0;
    }
    let candidates = candidate_subsets(occurrences, strategy);
    candidates.iter().map(|t| occurrences.subset_image_count(t)).min().unwrap_or(0)
}

/// The coarse-grained node subsets considered by `strategy` (always non-empty for a
/// non-empty pattern).
pub fn candidate_subsets(occurrences: &OccurrenceSet, strategy: MiStrategy) -> Vec<Vec<VertexId>> {
    let pattern = occurrences.pattern();
    let singletons: Vec<Vec<VertexId>> = pattern.vertices().map(|v| vec![v]).collect();
    let mut out: BTreeSet<Vec<VertexId>> = BTreeSet::new();
    match strategy {
        MiStrategy::Singletons => {
            out.extend(singletons);
        }
        MiStrategy::ConnectedK(k) => {
            let subsets =
                connected_subsets_of_size(occurrences, k.clamp(1, pattern.num_vertices().max(1)));
            if subsets.is_empty() {
                out.extend(singletons);
            } else {
                out.extend(subsets);
            }
        }
        MiStrategy::AutomorphismOrbits => {
            out.extend(singletons);
            for orbit in connected_subgraph_orbits(pattern) {
                extend_with_subsets(&mut out, &orbit);
            }
        }
        MiStrategy::LabelClasses => {
            out.extend(singletons);
            for label in pattern.distinct_labels() {
                let class = pattern.vertices_with_label(label);
                if class.len() >= 2 {
                    extend_with_subsets(&mut out, &class);
                }
            }
        }
    }
    out.into_iter().collect()
}

/// Insert `base` and all of its subsets of size ≥ 2 (subject to the enumeration cap).
fn extend_with_subsets(out: &mut BTreeSet<Vec<VertexId>>, base: &[VertexId]) {
    let k = base.len();
    if k < 2 {
        return;
    }
    if k > MAX_SUBSET_ENUMERATION {
        // Full set plus all pairs only.
        out.insert(base.to_vec());
        for i in 0..k {
            for j in (i + 1)..k {
                out.insert(vec![base[i], base[j]]);
            }
        }
        return;
    }
    for mask in 1u32..(1 << k) {
        if mask.count_ones() < 2 {
            continue;
        }
        let subset: Vec<VertexId> =
            (0..k).filter(|&i| mask & (1 << i) != 0).map(|i| base[i]).collect();
        out.insert(subset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::isomorphism::IsoConfig;
    use ffsm_graph::{figures, patterns, Label, LabeledGraph};

    fn occ_of(example: &ffsm_graph::figures::FigureExample) -> OccurrenceSet {
        OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default())
    }

    #[test]
    fn figure4_mi_is_one() {
        let occ = occ_of(&figures::figure4());
        assert_eq!(mi(&occ, MiStrategy::AutomorphismOrbits), 1);
        assert_eq!(mi(&occ, MiStrategy::LabelClasses), 1);
        // With singletons only, MI degenerates to MNI = 2.
        assert_eq!(mi(&occ, MiStrategy::Singletons), 2);
    }

    #[test]
    fn figure2_mi_is_one() {
        // The triangle's full orbit {v1,v2,v3} has a single image set {1,2,3}.
        let occ = occ_of(&figures::figure2());
        assert_eq!(mi(&occ, MiStrategy::AutomorphismOrbits), 1);
    }

    #[test]
    fn figure6_mi_is_four() {
        // Different endpoint labels: no transitive pairs, MI = MNI = 4.
        let occ = occ_of(&figures::figure6());
        assert_eq!(mi(&occ, MiStrategy::AutomorphismOrbits), 4);
        assert_eq!(mi(&occ, MiStrategy::LabelClasses), 4);
    }

    #[test]
    fn figure9_mi_is_two() {
        // Stated in Section 4.5: MI = 2 via the transitive subset {v2, v3}.
        let occ = occ_of(&figures::figure9());
        assert_eq!(mi(&occ, MiStrategy::AutomorphismOrbits), 2);
        assert_eq!(mi(&occ, MiStrategy::Singletons), 2);
    }

    #[test]
    fn mi_never_exceeds_mni_for_any_strategy() {
        for example in ffsm_graph::figures::all_figures() {
            let occ = occ_of(&example);
            let mni = super::super::mni::mni(&occ);
            for strategy in
                [MiStrategy::Singletons, MiStrategy::AutomorphismOrbits, MiStrategy::LabelClasses]
            {
                assert!(mi(&occ, strategy) <= mni, "MI ({strategy:?}) > MNI on {}", example.name);
            }
        }
    }

    #[test]
    fn label_classes_is_at_most_orbits() {
        // LabelClasses considers a superset of candidate subsets, so its minimum can
        // only be lower or equal.
        for example in ffsm_graph::figures::all_figures() {
            let occ = occ_of(&example);
            assert!(
                mi(&occ, MiStrategy::LabelClasses) <= mi(&occ, MiStrategy::AutomorphismOrbits),
                "on {}",
                example.name
            );
        }
    }

    #[test]
    fn connected_k_strategy_matches_mni_k() {
        for example in [figures::figure2(), figures::figure4(), figures::figure9()] {
            let occ = occ_of(&example);
            for k in 1..=occ.pattern().num_vertices() {
                assert_eq!(
                    mi(&occ, MiStrategy::ConnectedK(k)),
                    super::super::mni::mni_k(&occ, k),
                    "k = {k} on {}",
                    example.name
                );
            }
        }
    }

    #[test]
    fn no_occurrences_gives_zero() {
        let pattern = patterns::single_edge(Label(5), Label(6));
        let graph = LabeledGraph::from_edges(&[0, 0], &[(0, 1)]);
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
        assert_eq!(mi(&occ, MiStrategy::AutomorphismOrbits), 0);
    }

    #[test]
    fn candidate_subsets_always_include_singletons() {
        let occ = occ_of(&figures::figure2());
        for strategy in
            [MiStrategy::Singletons, MiStrategy::AutomorphismOrbits, MiStrategy::LabelClasses]
        {
            let candidates = candidate_subsets(&occ, strategy);
            for v in occ.pattern().vertices() {
                assert!(candidates.contains(&vec![v]), "{strategy:?} misses {{{v}}}");
            }
        }
    }

    #[test]
    fn uniform_star_orbit_subsets_present() {
        // A 3-leaf uniform star: the leaves form an orbit; all leaf subsets of size >= 2
        // must be candidates under the orbit strategy.
        let pattern = patterns::uniform_star(3, Label(0), Label(1));
        let graph = ffsm_graph::generators::star_overlap(3, 5);
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
        let candidates = candidate_subsets(&occ, MiStrategy::AutomorphismOrbits);
        assert!(candidates.contains(&vec![1, 2]));
        assert!(candidates.contains(&vec![1, 2, 3]));
    }
}
