//! The worked examples of the paper's figures.
//!
//! Each function returns the data graph and query pattern of one figure, with the
//! support-measure values the paper states (or that follow from the construction)
//! documented on the function.  The experiment harness (`E1`) and the integration
//! tests assert these values against the implementation.
//!
//! Vertex numbering: the paper numbers data-graph vertices from 1; here they are
//! 0-based, so paper vertex *k* is `k - 1`.
//!
//! Figures 1, 3, 9 and 10 are not fully specified by the text (the thesis shows them
//! as drawings); their graphs are *reconstructed* so that every statement the text
//! makes about them holds.  The reconstruction choices are documented per function.

use crate::patterns;
use crate::{Label, LabeledGraph, Pattern};

/// A figure example: data graph, pattern and free-text notes.
#[derive(Debug, Clone)]
pub struct FigureExample {
    /// Figure identifier, e.g. `"figure2"`.
    pub name: &'static str,
    /// The data graph G.
    pub graph: LabeledGraph,
    /// The query pattern P.
    pub pattern: Pattern,
    /// What the paper states about this example.
    pub notes: &'static str,
}

/// Figure 1: a one-edge pattern in a small five-vertex data graph, used to sketch the
/// hypergraph framework.  Reconstruction: all five vertices share one label; the data
/// graph is a triangle {1,2,3} plus the disjoint edge {4,5}, giving four instances
/// (e1..e4) and a dual hypergraph in which vertices 4 and 5 share their single
/// incident edge — matching the "4,5" grouping drawn in the figure.
///
/// Expected values (computed, not stated in the paper):
/// MIS = MIES = 2, MVC = 3, MI = 4, MNI = 5.
pub fn figure1() -> FigureExample {
    let graph = LabeledGraph::from_edges(&[0, 0, 0, 0, 0], &[(0, 1), (0, 2), (1, 2), (3, 4)]);
    let pattern = patterns::single_edge(Label(0), Label(0));
    FigureExample {
        name: "figure1",
        graph,
        pattern,
        notes: "one-edge pattern; hypergraph framework sketch; MIS=2, MVC=3, MI=4, MNI=5",
    }
}

/// Figure 2: the triangle pattern with six occurrences but a single instance.
///
/// Data graph (paper vertices 1..6, all one label): triangle {1,2,3} with pendant
/// vertices 4 (adjacent to 2), 5 and 6 (adjacent to 3).
///
/// Stated values: the pattern has 6 occurrences, 1 instance, MNI = 3, MIS = 1.
pub fn figure2() -> FigureExample {
    let graph = LabeledGraph::from_edges(
        &[0, 0, 0, 0, 0, 0],
        &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (2, 5)],
    );
    let pattern = patterns::triangle(Label(0), Label(0), Label(0));
    FigureExample {
        name: "figure2",
        graph,
        pattern,
        notes: "6 occurrences, 1 instance; MNI = 3 over-estimates, MIS = 1",
    }
}

/// Figure 3: a triangular pattern with three distinct labels in a 20-vertex data
/// graph; its occurrence hypergraph has the six edges
/// `{1,2,3},{4,5,6},{4,6,8},{8,9,10},{11,13,17},{11,15,16}` (paper numbering).
///
/// Reconstruction: the six listed triangles are embedded with a consistent labelling
/// (label 0 / 1 / 2 per triangle corner); the remaining vertices are connected into a
/// path with labels that cannot complete another labelled triangle.
///
/// Because the pattern has no non-trivial automorphism, its occurrence and instance
/// hypergraphs coincide and have exactly 6 edges.
pub fn figure3() -> FigureExample {
    // paper vertex k -> index k-1.  Labels: 0 = "A", 1 = "B", 2 = "C", 3 = filler.
    let mut labels = vec![3u32; 20];
    let assign: &[(usize, u32)] = &[
        (1, 0),
        (2, 1),
        (3, 2), // triangle {1,2,3}
        (4, 0),
        (5, 1),
        (6, 2), // triangle {4,5,6}
        (8, 1), // triangle {4,6,8}: 4=A, 6=C, 8=B
        (9, 0),
        (10, 2), // triangle {8,9,10}
        (11, 0),
        (13, 1),
        (17, 2), // triangle {11,13,17}
        (15, 1),
        (16, 2), // triangle {11,15,16}
    ];
    for &(v, l) in assign {
        labels[v - 1] = l;
    }
    let triangles: &[[usize; 3]] =
        &[[1, 2, 3], [4, 5, 6], [4, 6, 8], [8, 9, 10], [11, 13, 17], [11, 15, 16]];
    let mut edges = Vec::new();
    for t in triangles {
        edges.push(((t[0] - 1) as u32, (t[1] - 1) as u32));
        edges.push(((t[0] - 1) as u32, (t[2] - 1) as u32));
        edges.push(((t[1] - 1) as u32, (t[2] - 1) as u32));
    }
    // Filler path over the unused vertices 7, 12, 14, 18, 19, 20 (paper numbering).
    let filler = [7usize, 12, 14, 18, 19, 20];
    for w in filler.windows(2) {
        edges.push(((w[0] - 1) as u32, (w[1] - 1) as u32));
    }
    let graph = LabeledGraph::from_edges(&labels, &edges);
    let pattern = patterns::triangle(Label(0), Label(1), Label(2));
    FigureExample {
        name: "figure3",
        graph,
        pattern,
        notes: "occurrence hypergraph has 6 edges; occurrence and instance hypergraphs coincide",
    }
}

/// Figure 4: MNI vs MI on a four-vertex path.
///
/// Data graph: path 1 — 2 — 3 — 4 with labels A, B, B, A.
/// Pattern: path v1(A) — v2(B) — v3(B).
///
/// Stated values: two occurrences (1,2,3) and (4,3,2); MNI = 2; MI = 1 (the
/// transitive subset {v2, v3} has a single image set {2,3}).
pub fn figure4() -> FigureExample {
    let graph = LabeledGraph::from_edges(&[0, 1, 1, 0], &[(0, 1), (1, 2), (2, 3)]);
    let pattern = patterns::path(&[Label(0), Label(1), Label(1)]);
    FigureExample { name: "figure4", graph, pattern, notes: "2 occurrences; MNI = 2, MI = 1" }
}

/// Figure 5: the Figure 2 data graph with the triangle pattern extended by a fourth
/// node v4 attached to v3 (all labels equal).  Illustrates anti-monotonicity: the
/// extended pattern has 6 occurrences and its MVC support is still 1 (vertex {1}
/// covers every occurrence).
pub fn figure5() -> FigureExample {
    let graph = figure2().graph;
    let mut pattern = patterns::triangle(Label(0), Label(0), Label(0));
    let v4 = pattern.add_vertex(Label(0));
    pattern.add_edge(2, v4).expect("edge v3-v4");
    FigureExample {
        name: "figure5",
        graph,
        pattern,
        notes: "superpattern of Figure 2's triangle; MVC stays 1 after the extension",
    }
}

/// Figure 6: the partial-overlap example where MNI and MI both over-estimate.
///
/// Data graph (paper vertices 1..8): label A on vertices 1–4, label B on 5–8;
/// edges 1-5, 1-6, 1-7, 1-8, 2-8, 3-8, 4-8.  Pattern: edge v1(A) — v2(B).
///
/// Stated values: 7 occurrences; MIS = 2, MVC = 2, MI = 4, MNI = 4.
pub fn figure6() -> FigureExample {
    let graph = LabeledGraph::from_edges(
        &[0, 0, 0, 0, 1, 1, 1, 1],
        &[(0, 4), (0, 5), (0, 6), (0, 7), (1, 7), (2, 7), (3, 7)],
    );
    let pattern = patterns::single_edge(Label(0), Label(1));
    FigureExample {
        name: "figure6",
        graph,
        pattern,
        notes: "7 occurrences; MIS = 2, MVC = 2, MI = 4, MNI = 4",
    }
}

/// Figure 8: the instance hypergraph and its dual for a one-edge pattern in a
/// four-vertex cycle with alternating labels.
///
/// Data graph: cycle 1 — 2 — 3 — 4 — 1 with labels A, B, A, B.
/// Pattern: edge v1(A) — v2(B).
///
/// Stated values: 4 instances; the overlap graph is a 4-cycle; MIS = MIES = 2.
pub fn figure8() -> FigureExample {
    let graph = LabeledGraph::from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let pattern = patterns::single_edge(Label(0), Label(1));
    FigureExample {
        name: "figure8",
        graph,
        pattern,
        notes: "4 instances; overlap graph is a 4-cycle; MIS = MIES = 2",
    }
}

/// Figure 9: structural overlap vs harmful overlap.
///
/// Reconstruction consistent with every statement in Section 4.5: data graph is the
/// path 1 — 2 — 3 — 4 with an extra vertex 5 attached to 3; labels A, B, B, B, A.
/// Pattern: path v1(A) — v2(B) — v3(B).
///
/// The three occurrences are g1 = (1,2,3), g2 = (5,3,4), g3 = (5,3,2).
/// Stated facts: SO(g1,g2) holds but HO(g1,g2) does not; SO and HO both hold for
/// (g1,g3); MI = 2 (transitive subset {v2,v3} has image sets {2,3} and {3,4}).
pub fn figure9() -> FigureExample {
    let graph = LabeledGraph::from_edges(&[0, 1, 1, 1, 0], &[(0, 1), (1, 2), (2, 3), (2, 4)]);
    let pattern = patterns::path(&[Label(0), Label(1), Label(1)]);
    FigureExample {
        name: "figure9",
        graph,
        pattern,
        notes: "SO(g1,g2) without HO; SO and HO together for (g1,g3); MI = 2",
    }
}

/// Figure 10: relationship of simple, harmful and structural overlap for a
/// four-node path pattern.
///
/// Reconstruction: pattern path v1(A) — v2(B) — v3(C) — v4(A); because the two
/// A-labelled end nodes are *not* transitive in any connected subgraph, harmful
/// overlap can occur without structural overlap.  Data graph: nine vertices with
/// labels A,B,C,A,B,C,A,B,C (paper numbering 1..9) and edges forming exactly three
/// occurrences f1 = (1,2,3,4), f2 = (4,5,6,1), f3 = (7,8,9,4).
///
/// Facts reproduced: HO(f1,f2) holds but SO(f1,f2) does not; f2 and f3 overlap simply
/// (share vertex 4) with neither HO nor SO.
pub fn figure10() -> FigureExample {
    let graph = LabeledGraph::from_edges(
        &[0, 1, 2, 0, 1, 2, 0, 1, 2],
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (6, 7), (7, 8), (8, 3)],
    );
    let pattern = patterns::path(&[Label(0), Label(1), Label(2), Label(0)]);
    FigureExample {
        name: "figure10",
        graph,
        pattern,
        notes: "HO without SO for (f1,f2); simple overlap only for (f2,f3)",
    }
}

/// All figure examples in order.
pub fn all_figures() -> Vec<FigureExample> {
    vec![
        figure1(),
        figure2(),
        figure3(),
        figure4(),
        figure5(),
        figure6(),
        figure8(),
        figure9(),
        figure10(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isomorphism::{enumerate_embeddings, IsoConfig};

    fn occurrences(example: &FigureExample) -> usize {
        enumerate_embeddings(&example.pattern, &example.graph, IsoConfig::default()).len()
    }

    #[test]
    fn figure2_has_six_occurrences() {
        assert_eq!(occurrences(&figure2()), 6);
    }

    #[test]
    fn figure3_has_six_occurrences_and_instances() {
        let f = figure3();
        assert_eq!(occurrences(&f), 6);
        assert_eq!(f.graph.num_vertices(), 20);
    }

    #[test]
    fn figure4_has_two_occurrences() {
        assert_eq!(occurrences(&figure4()), 2);
    }

    #[test]
    fn figure5_pattern_extends_figure2() {
        let f = figure5();
        assert_eq!(f.pattern.num_vertices(), 4);
        assert_eq!(f.pattern.num_edges(), 4);
        assert_eq!(occurrences(&f), 6);
    }

    #[test]
    fn figure6_has_seven_occurrences() {
        assert_eq!(occurrences(&figure6()), 7);
    }

    #[test]
    fn figure8_has_four_occurrences() {
        assert_eq!(occurrences(&figure8()), 4);
    }

    #[test]
    fn figure9_has_three_occurrences() {
        let f = figure9();
        let res = enumerate_embeddings(&f.pattern, &f.graph, IsoConfig::default());
        assert_eq!(res.len(), 3);
        let mut images: Vec<Vec<u32>> = res.embeddings.clone();
        images.sort();
        // paper numbering minus one: g1=(0,1,2), g2=(4,2,3), g3=(4,2,1)
        assert!(images.contains(&vec![0, 1, 2]));
        assert!(images.contains(&vec![4, 2, 3]));
        assert!(images.contains(&vec![4, 2, 1]));
    }

    #[test]
    fn figure10_has_three_occurrences() {
        let f = figure10();
        let res = enumerate_embeddings(&f.pattern, &f.graph, IsoConfig::default());
        assert_eq!(res.len(), 3);
        let images: Vec<Vec<u32>> = res.embeddings.clone();
        assert!(images.contains(&vec![0, 1, 2, 3]));
        assert!(images.contains(&vec![3, 4, 5, 0]));
        assert!(images.contains(&vec![6, 7, 8, 3]));
    }

    #[test]
    fn all_figures_are_well_formed() {
        for f in all_figures() {
            assert!(!f.graph.is_empty(), "{} graph empty", f.name);
            assert!(!f.pattern.is_empty(), "{} pattern empty", f.name);
            assert!(occurrences(&f) >= 1, "{} has no occurrences", f.name);
        }
    }
}
