//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this vendored shim
//! provides exactly the API surface the workspace uses: a seedable deterministic
//! generator ([`rngs::StdRng`]), the [`Rng`] extension methods `gen_range` /
//! `gen_bool`, and the [`seq::SliceRandom`] helpers `shuffle` / `choose`.
//!
//! The generator is SplitMix64, which is more than adequate for synthetic-dataset
//! generation and property tests.  It is **not** the ChaCha12 generator of the real
//! `rand::rngs::StdRng`, so exact value streams differ from upstream; everything in
//! this workspace treats seeded randomness as arbitrary-but-reproducible, never as a
//! specific stream.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics when the range is empty, matching the real crate.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// A type that can be drawn uniformly from a bounded interval.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_interval<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// A type usable as the argument of [`Rng::gen_range`].  The single blanket impl per
/// range shape ties the output type to the range's item type, matching the real
/// crate's inference behaviour.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_interval(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_interval(lo, hi, true, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_interval<R: RngCore>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e3779b97f4a7c15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Shuffling and random choice over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..18);
            assert!((3..18).contains(&v));
            let w = rng.gen_range(0u64..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
