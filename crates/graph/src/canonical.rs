//! Canonical codes for small patterns.
//!
//! The miner generates candidate patterns by extension and must recognise when two
//! candidates are isomorphic (Definition 2.1.5).  We assign every pattern a
//! *canonical code*: the lexicographically smallest serialisation of the pattern over
//! all vertex orderings.  Two patterns are isomorphic iff their canonical codes are
//! equal.
//!
//! The code of an ordering `π = (u₀, u₁, …)` is the sequence
//! `label(u₀), adj₁, label(u₁), adj₂, label(u₂), …` where `adjᵢ` is the bit pattern of
//! adjacency between `uᵢ` and `u₀…uᵢ₋₁`.  The minimisation is a branch-and-bound over
//! orderings with prefix pruning, which is exact and fast for the pattern sizes that
//! occur in frequent-subgraph mining (≲ 10 vertices).

use crate::{Pattern, VertexId};

/// A canonical code; equality ⇔ isomorphism of the underlying patterns.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalCode(Vec<u64>);

impl CanonicalCode {
    /// The raw code words.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }
}

/// Per-position contribution to the code: the label of the vertex placed at position
/// `i`, followed by its adjacency bitmask towards positions `0..i`.
fn position_words(pattern: &Pattern, placed: &[VertexId], v: VertexId) -> [u64; 2] {
    let mut adj = 0u64;
    for (i, &p) in placed.iter().enumerate() {
        if pattern.has_edge(v, p) {
            adj |= 1 << i;
        }
    }
    [pattern.label(v).0 as u64, adj]
}

struct CanonSearch<'a> {
    pattern: &'a Pattern,
    best: Option<Vec<u64>>,
    placed: Vec<VertexId>,
    current: Vec<u64>,
    used: Vec<bool>,
}

impl<'a> CanonSearch<'a> {
    /// `tight` is true while the current prefix is word-for-word equal to the best
    /// code's prefix; only then may a larger word prune the branch.  Once the prefix
    /// is strictly smaller than the best, every completion improves on the best and no
    /// pruning is allowed.
    fn run(&mut self, tight: bool) {
        let n = self.pattern.num_vertices();
        if self.placed.len() == n {
            let better = match &self.best {
                None => true,
                Some(b) => self.current < *b,
            };
            if better {
                self.best = Some(self.current.clone());
            }
            return;
        }
        for v in 0..n as VertexId {
            if self.used[v as usize] {
                continue;
            }
            // Connectivity-style ordering is not required for correctness; we explore
            // every vertex, relying on prefix pruning for speed.
            let words = position_words(self.pattern, &self.placed, v);
            let pos = self.current.len();
            // Prefix pruning: compare against the best code at the same positions.
            let mut child_tight = false;
            if tight {
                if let Some(best) = &self.best {
                    let cmp = words[0].cmp(&best[pos]).then_with(|| words[1].cmp(&best[pos + 1]));
                    match cmp {
                        std::cmp::Ordering::Greater => continue,
                        std::cmp::Ordering::Equal => child_tight = true,
                        std::cmp::Ordering::Less => child_tight = false,
                    }
                }
            }
            self.current.push(words[0]);
            self.current.push(words[1]);
            self.used[v as usize] = true;
            self.placed.push(v);
            self.run(child_tight);
            self.placed.pop();
            self.used[v as usize] = false;
            self.current.pop();
            self.current.pop();
        }
    }
}

/// Compute the canonical code of `pattern`.
pub fn canonical_code(pattern: &Pattern) -> CanonicalCode {
    let n = pattern.num_vertices();
    if n == 0 {
        return CanonicalCode(Vec::new());
    }
    let mut search = CanonSearch {
        pattern,
        best: None,
        placed: Vec::with_capacity(n),
        current: Vec::with_capacity(2 * n),
        used: vec![false; n],
    };
    search.run(true);
    CanonicalCode(search.best.expect("at least one ordering"))
}

/// Prefix-pruned pruning above is only sound when the best code is compared word by
/// word at matching positions, which requires all codes to have identical length; this
/// holds because every ordering contributes exactly `2·n` words.
///
/// `true` iff the two patterns are isomorphic, decided via canonical codes.
pub fn isomorphic_by_code(a: &Pattern, b: &Pattern) -> bool {
    if a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges() {
        return false;
    }
    canonical_code(a) == canonical_code(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isomorphism::are_isomorphic;
    use crate::patterns;
    use crate::Label;

    #[test]
    fn identical_patterns_same_code() {
        let a = patterns::uniform_path(4, Label(0));
        let b = patterns::uniform_path(4, Label(0));
        assert_eq!(canonical_code(&a), canonical_code(&b));
    }

    #[test]
    fn relabeled_vertices_same_code() {
        // Path a-b-c built in two different vertex orders.
        let a = patterns::path(&[Label(1), Label(2), Label(3)]);
        let mut b = Pattern::new();
        let v3 = b.add_vertex(Label(3));
        let v1 = b.add_vertex(Label(1));
        let v2 = b.add_vertex(Label(2));
        b.add_edge(v1, v2).unwrap();
        b.add_edge(v2, v3).unwrap();
        assert_eq!(canonical_code(&a), canonical_code(&b));
        assert!(isomorphic_by_code(&a, &b));
    }

    #[test]
    fn different_shapes_different_codes() {
        let path = patterns::uniform_path(4, Label(0));
        let star = patterns::uniform_star(3, Label(0), Label(0));
        assert_eq!(path.num_vertices(), star.num_vertices());
        assert_eq!(path.num_edges(), star.num_edges());
        assert_ne!(canonical_code(&path), canonical_code(&star));
        assert!(!isomorphic_by_code(&path, &star));
    }

    #[test]
    fn different_labels_different_codes() {
        let a = patterns::single_edge(Label(0), Label(1));
        let b = patterns::single_edge(Label(0), Label(2));
        assert_ne!(canonical_code(&a), canonical_code(&b));
    }

    #[test]
    fn code_agrees_with_vf2_isomorphism() {
        let shapes: Vec<Pattern> = vec![
            patterns::uniform_path(4, Label(0)),
            patterns::uniform_star(3, Label(0), Label(0)),
            patterns::cycle(&[Label(0); 4]),
            patterns::cycle(&[Label(0), Label(1), Label(0), Label(1)]),
            patterns::triangle(Label(0), Label(0), Label(1)),
            patterns::triangle(Label(0), Label(1), Label(0)),
            patterns::uniform_clique(4, Label(0)),
        ];
        for (i, a) in shapes.iter().enumerate() {
            for (j, b) in shapes.iter().enumerate() {
                assert_eq!(
                    isomorphic_by_code(a, b),
                    are_isomorphic(a, b),
                    "disagreement between canonical code and VF2 on shapes {i} and {j}"
                );
            }
        }
    }

    #[test]
    fn empty_and_single_vertex() {
        assert_eq!(canonical_code(&Pattern::new()).as_slice().len(), 0);
        let v = patterns::single_vertex(Label(5));
        assert_eq!(canonical_code(&v).as_slice(), &[5, 0]);
    }
}
