//! E5 — end-to-end frequent-subgraph mining time per support measure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffsm_core::measures::MeasureKind;
use ffsm_miner::{Miner, MinerConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("mining");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(3));
    let dataset = ffsm_graph::datasets::chemical_like(30, 7);
    for measure in [MeasureKind::Mni, MeasureKind::Mi, MeasureKind::Mvc, MeasureKind::Mis] {
        let config = MinerConfig {
            min_support: 10.0,
            measure,
            max_pattern_edges: 3,
            ..Default::default()
        };
        group.bench_function(BenchmarkId::new("chemical_tau10", measure.name()), |b| {
            b.iter(|| {
                let miner = Miner::new(&dataset.graph, config.clone());
                black_box(miner.mine().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
