//! Level-synchronous parallel mining.
//!
//! The sequential [`crate::Miner`] evaluates one candidate at a time.  Candidate
//! support evaluations at the same search level are independent (each enumerates its
//! own occurrences and builds its own hypergraph), so the frontier can be evaluated on
//! worker threads — this is the practical payoff of the paper's "additiveness /
//! parallel computation" extension (Section 6, item 4) at the *miner* level, on top of
//! the per-component decomposition that `ffsm-core::decompose` offers per measure.
//!
//! The implementation is deliberately simple and deterministic:
//!
//! 1. collect the current level's deduplicated candidates;
//! 2. split them round-robin over `num_threads` scoped workers, each computing
//!    `(support, occurrence count)` for its share;
//! 3. merge results in candidate order, apply the threshold and emit the next level.
//!
//! Because the partition and the merge order are fixed, the output is identical to
//! the sequential miner's (same patterns, same supports, same order per level).

use crate::extension::{dedupe_by_canonical_code, extensions, seed_patterns};
use crate::miner::{FrequentPattern, MiningResult, MiningStats};
use ffsm_core::{MeasureConfig, MeasureKind, OccurrenceSet, SupportMeasures};
use ffsm_graph::canonical::CanonicalCode;
use ffsm_graph::{LabeledGraph, Pattern};
use std::collections::HashSet;
use std::time::Instant;

/// Configuration of a parallel mining run.
#[derive(Debug, Clone)]
pub struct ParallelMinerConfig {
    /// Support threshold τ.
    pub min_support: f64,
    /// Which support measure to use.
    pub measure: MeasureKind,
    /// Measure configuration.
    pub measure_config: MeasureConfig,
    /// Stop growing patterns beyond this many edges.
    pub max_pattern_edges: usize,
    /// Number of worker threads (0 or 1 = sequential; values above the available
    /// parallelism are clamped).
    pub num_threads: usize,
    /// Safety cap on the number of support evaluations.
    pub max_evaluations: usize,
}

impl Default for ParallelMinerConfig {
    fn default() -> Self {
        ParallelMinerConfig {
            min_support: 2.0,
            measure: MeasureKind::Mni,
            measure_config: MeasureConfig::default(),
            max_pattern_edges: 4,
            num_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            max_evaluations: 100_000,
        }
    }
}

/// Evaluate the support of every candidate, in order, using `num_threads` workers.
fn evaluate_level(
    graph: &LabeledGraph,
    candidates: &[Pattern],
    config: &ParallelMinerConfig,
) -> Vec<(f64, usize)> {
    let evaluate = |pattern: &Pattern| -> (f64, usize) {
        let occ = OccurrenceSet::enumerate(pattern, graph, config.measure_config.iso_config);
        let n = occ.num_occurrences();
        let measures = SupportMeasures::new(occ, config.measure_config.clone());
        (measures.compute(config.measure), n)
    };
    let workers = config
        .num_threads
        .min(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .min(candidates.len());
    if workers <= 1 {
        return candidates.iter().map(evaluate).collect();
    }
    let mut results = vec![(0.0, 0usize); candidates.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let evaluate = &evaluate;
            handles.push(scope.spawn(move || {
                candidates
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % workers == w)
                    .map(|(i, p)| (i, evaluate(p)))
                    .collect::<Vec<(usize, (f64, usize))>>()
            }));
        }
        for handle in handles {
            for (i, r) in handle.join().expect("mining worker panicked") {
                results[i] = r;
            }
        }
    });
    results
}

/// Run the level-synchronous parallel miner.
pub fn mine_parallel(graph: &LabeledGraph, config: &ParallelMinerConfig) -> MiningResult {
    let start = Instant::now();
    let mut stats = MiningStats::default();
    let mut seen: HashSet<CanonicalCode> = HashSet::new();
    let mut frequent: Vec<FrequentPattern> = Vec::new();
    let alphabet = graph.distinct_labels();

    let seeds = seed_patterns(graph);
    stats.candidates_generated += seeds.len();
    let mut level: Vec<Pattern> = dedupe_by_canonical_code(seeds, &mut seen);

    while !level.is_empty() && !stats.truncated {
        // Respect the evaluation cap by trimming the level.
        let remaining = config.max_evaluations.saturating_sub(stats.candidates_evaluated);
        if level.len() > remaining {
            level.truncate(remaining);
            stats.truncated = true;
        }
        if level.is_empty() {
            break;
        }
        let supports = evaluate_level(graph, &level, config);
        stats.candidates_evaluated += level.len();
        let mut survivors: Vec<Pattern> = Vec::new();
        for (pattern, (support, num_occurrences)) in level.into_iter().zip(supports) {
            if support >= config.min_support {
                survivors.push(pattern.clone());
                frequent.push(FrequentPattern { pattern, support, num_occurrences });
            } else {
                stats.candidates_pruned += 1;
            }
        }
        // Next level: one-edge extensions of every surviving pattern.
        let mut next: Vec<Pattern> = Vec::new();
        for pattern in &survivors {
            if pattern.num_edges() >= config.max_pattern_edges {
                continue;
            }
            let candidates = extensions(pattern, &alphabet);
            stats.candidates_generated += candidates.len();
            next.extend(dedupe_by_canonical_code(candidates, &mut seen));
        }
        level = next;
    }

    stats.elapsed = start.elapsed();
    MiningResult { patterns: frequent, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::{Miner, MinerConfig};
    use ffsm_graph::canonical::canonical_code;
    use ffsm_graph::generators;

    fn workload() -> LabeledGraph {
        let triangle = ffsm_graph::LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        generators::replicated(&triangle, 5, true)
    }

    fn pattern_set(result: &MiningResult) -> std::collections::BTreeSet<Vec<u64>> {
        result
            .patterns
            .iter()
            .map(|p| canonical_code(&p.pattern).as_slice().to_vec())
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let graph = workload();
        let tau = 5.0;
        let sequential = Miner::new(
            &graph,
            MinerConfig { min_support: tau, max_pattern_edges: 3, ..Default::default() },
        )
        .mine();
        let parallel = mine_parallel(
            &graph,
            &ParallelMinerConfig {
                min_support: tau,
                max_pattern_edges: 3,
                num_threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(pattern_set(&sequential), pattern_set(&parallel));
        assert_eq!(sequential.len(), parallel.len());
        // Supports agree pattern by pattern.
        for p in &parallel.patterns {
            let code = canonical_code(&p.pattern);
            let s = sequential
                .patterns
                .iter()
                .find(|q| canonical_code(&q.pattern) == code)
                .expect("pattern found by both miners");
            assert!((p.support - s.support).abs() < 1e-9);
        }
    }

    #[test]
    fn single_thread_config_still_works() {
        let graph = workload();
        let result = mine_parallel(
            &graph,
            &ParallelMinerConfig { min_support: 5.0, num_threads: 1, max_pattern_edges: 3, ..Default::default() },
        );
        assert!(result.patterns.iter().any(|p| p.pattern.num_edges() == 3));
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let graph = generators::community_graph(2, 10, 0.4, 0.05, 3, 9);
        let base = mine_parallel(
            &graph,
            &ParallelMinerConfig { min_support: 3.0, num_threads: 1, max_pattern_edges: 2, ..Default::default() },
        );
        for threads in [2, 3, 8] {
            let other = mine_parallel(
                &graph,
                &ParallelMinerConfig {
                    min_support: 3.0,
                    num_threads: threads,
                    max_pattern_edges: 2,
                    ..Default::default()
                },
            );
            assert_eq!(pattern_set(&base), pattern_set(&other), "threads = {threads}");
        }
    }

    #[test]
    fn evaluation_cap_truncates() {
        let graph = generators::gnm_random(60, 180, 2, 8);
        let result = mine_parallel(
            &graph,
            &ParallelMinerConfig { min_support: 1.0, max_evaluations: 4, ..Default::default() },
        );
        assert!(result.stats.truncated);
        assert!(result.stats.candidates_evaluated <= 4);
    }

    #[test]
    fn empty_graph_mines_nothing() {
        let result = mine_parallel(&LabeledGraph::new(), &ParallelMinerConfig::default());
        assert!(result.is_empty());
    }
}
