//! E12 — kernelization / presolve ahead of the exact and LP-relaxed MVC solvers.
//!
//! The reduction rules (duplicate/superset edges, unit edges, dominated vertices) and
//! the covering-LP presolve shrink overlap-heavy occurrence hypergraphs dramatically;
//! these benches measure how much of the exact solver / simplex cost they remove.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffsm_bench::workloads;
use ffsm_core::HypergraphBasis;
use ffsm_hypergraph::reduction::{reduce_for_vertex_cover, reduced_exact_vertex_cover};
use ffsm_hypergraph::set_cover::greedy_set_cover_vertex_cover;
use ffsm_hypergraph::vertex_cover::exact_vertex_cover;
use ffsm_hypergraph::{Hypergraph, SearchBudget};
use ffsm_lp::{covering_lp, presolve_covering};
use std::hint::black_box;
use std::time::Duration;

fn occurrence_hypergraph(occurrences: usize) -> Hypergraph {
    let (graph, pattern) = workloads::star_overlap_workload(occurrences);
    let occ = workloads::enumerate(&pattern, &graph, 2_000_000);
    occ.hypergraph(HypergraphBasis::Occurrence)
}

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for &occurrences in &[64usize, 256, 1024] {
        let h = occurrence_hypergraph(occurrences);
        let budget = SearchBudget::default();
        let sets: Vec<Vec<usize>> = h.edges().map(|(_, e)| e.to_vec()).collect();

        group.bench_with_input(BenchmarkId::new("mvc_exact_direct", occurrences), &occurrences, |b, _| {
            b.iter(|| black_box(exact_vertex_cover(&h, budget)))
        });
        group.bench_with_input(BenchmarkId::new("mvc_exact_reduced", occurrences), &occurrences, |b, _| {
            b.iter(|| black_box(reduced_exact_vertex_cover(&h, budget)))
        });
        group.bench_with_input(BenchmarkId::new("reduction_only", occurrences), &occurrences, |b, _| {
            b.iter(|| black_box(reduce_for_vertex_cover(&h)))
        });
        group.bench_with_input(BenchmarkId::new("greedy_set_cover", occurrences), &occurrences, |b, _| {
            b.iter(|| black_box(greedy_set_cover_vertex_cover(&h)))
        });
        group.bench_with_input(BenchmarkId::new("lp_direct", occurrences), &occurrences, |b, _| {
            b.iter(|| black_box(covering_lp(h.num_vertices(), &sets).solve().unwrap().objective))
        });
        group.bench_with_input(BenchmarkId::new("lp_presolved", occurrences), &occurrences, |b, _| {
            b.iter(|| {
                black_box(
                    presolve_covering(h.num_vertices(), &sets)
                        .solve(h.num_vertices())
                        .unwrap()
                        .objective,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
