//! # ffsm-dynamic — the versioned dynamic-graph subsystem
//!
//! The paper's support measures are defined over a fixed data graph, but a
//! served graph changes between requests.  This crate makes change a
//! first-class, *versioned* operation instead of a cold restart:
//!
//! * [`DynamicGraph`] — a store that accepts batches of typed
//!   [`GraphUpdate`](ffsm_graph::GraphUpdate)s, validates them, and produces an
//!   immutable **epoch snapshot** per batch: a
//!   [`PreparedGraph`](ffsm_miner::PreparedGraph) (structurally sharing
//!   untouched state with its parent epoch, matching index patched
//!   incrementally) plus the [`GraphDelta`](ffsm_graph::GraphDelta) describing
//!   the dirty region;
//! * [`IncrementalMiner`] — a mining loop over consecutive epochs that carries
//!   the per-pattern [`EvalCache`](ffsm_miner::EvalCache) forward, so each
//!   re-mine only re-evaluates patterns whose occurrences touch the dirty
//!   region — with results **bit-for-bit identical** to a cold full mine of the
//!   same epoch.
//!
//! In-flight readers of an older epoch are never disturbed: snapshots are
//! `Arc`-shared immutable handles, exactly like any other `PreparedGraph`.
//!
//! ```
//! use ffsm_core::{GraphUpdate, MeasureKind};
//! use ffsm_dynamic::{DynamicGraph, IncrementalMiner};
//! use ffsm_graph::{generators, LabeledGraph};
//! use ffsm_miner::MiningSession;
//!
//! let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
//! let mut store = DynamicGraph::new(generators::replicated(&triangle, 5, false));
//! let config = MiningSession::over(store.current().prepared())
//!     .measure(MeasureKind::Mni)
//!     .min_support(4.0)
//!     .max_edges(3)
//!     .config()
//!     .clone();
//! let mut miner = IncrementalMiner::new(config);
//!
//! let before = miner.mine(store.current()).expect("epoch 0 mines cold");
//! // Knock one triangle open: its copy no longer supports the triangle pattern.
//! let epoch = store.apply(&[GraphUpdate::RemoveEdge(0, 1)]).expect("valid batch");
//! let after = miner.mine(epoch).expect("epoch 1 mines incrementally");
//! assert_eq!(store.epoch(), 1);
//! assert!(after.len() <= before.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod remine;
mod store;

pub use remine::IncrementalMiner;
pub use store::{DynamicGraph, EpochSnapshot};
