//! Legacy top-k mining API, kept as a thin shim over [`crate::MiningSession`]
//! (use `.top_k(k)` on a session instead).
//!
//! Top-k mining asks for the `k` patterns of highest support instead of fixing a
//! threshold τ up front; the engine exploits anti-monotonicity as a branch-and-bound
//! rule with a rising threshold.  A floor threshold (`min_support`) still applies so
//! patterns that essentially never occur are not reported even when `k` is large.

#![allow(deprecated)]

use crate::session::{MiningBudget, MiningSession};
use crate::types::{FrequentPattern, MiningStats};
use ffsm_core::{MeasureConfig, MeasureKind};
use ffsm_graph::LabeledGraph;

/// Configuration of a legacy top-k mining run.
#[deprecated(since = "0.2.0", note = "use `MiningSession::on(&graph).top_k(k)` instead")]
#[derive(Debug, Clone)]
pub struct TopKConfig {
    /// How many patterns to return.
    pub k: usize,
    /// Floor threshold: patterns below this support are never reported, even if
    /// fewer than `k` patterns qualify.
    pub min_support: f64,
    /// Support measure to rank by.
    pub measure: MeasureKind,
    /// Measure configuration.
    pub measure_config: MeasureConfig,
    /// Stop growing patterns beyond this many edges.
    pub max_pattern_edges: usize,
    /// Safety cap on support evaluations.
    pub max_evaluations: usize,
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig {
            k: 10,
            min_support: 1.0,
            measure: MeasureKind::Mni,
            measure_config: MeasureConfig::default(),
            max_pattern_edges: 3,
            max_evaluations: 50_000,
        }
    }
}

/// Result of a legacy top-k run: at most `k` patterns, sorted by descending support
/// (ties by fewer edges first).
#[deprecated(since = "0.2.0", note = "use `MiningSession::on(&graph).top_k(k)` instead")]
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// The best patterns found.
    pub patterns: Vec<FrequentPattern>,
    /// The threshold in force when the search finished (the k-th best support, or the
    /// floor if fewer than `k` patterns were found).
    pub final_threshold: f64,
    /// Search statistics.
    pub stats: MiningStats,
}

/// Mine the top-k patterns of `graph` under `config`.  Delegates to
/// [`crate::MiningSession`].
///
/// # Panics
///
/// Panics when the configuration is one the session API rejects (e.g. `k = 0`) —
/// the legacy signature has no error channel.
#[deprecated(since = "0.2.0", note = "use `MiningSession::on(&graph).top_k(k)` instead")]
pub fn mine_top_k(graph: &LabeledGraph, config: &TopKConfig) -> TopKResult {
    let result = MiningSession::on(graph)
        .measure(config.measure)
        .measure_config(config.measure_config.clone())
        .min_support(config.min_support)
        .max_edges(config.max_pattern_edges)
        .top_k(config.k)
        .budget(MiningBudget { max_evaluations: config.max_evaluations, max_patterns: usize::MAX })
        .run()
        .expect("legacy TopKConfig produced an invalid session");
    TopKResult {
        patterns: result.patterns,
        final_threshold: result.final_threshold,
        stats: result.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::{Miner, MinerConfig};
    use ffsm_graph::{generators, LabeledGraph};

    fn triangle_forest(copies: usize) -> LabeledGraph {
        let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        generators::replicated(&triangle, copies, false)
    }

    #[test]
    fn returns_at_most_k_patterns_sorted() {
        let graph = triangle_forest(6);
        let result = mine_top_k(&graph, &TopKConfig { k: 4, ..Default::default() });
        assert!(result.patterns.len() <= 4);
        assert!(!result.patterns.is_empty());
        for w in result.patterns.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn top_k_supports_match_threshold_mining() {
        // The k best supports found by top-k must equal the k best supports in an
        // exhaustive run at the floor threshold.
        let graph = triangle_forest(5);
        let k = 5;
        let topk = mine_top_k(
            &graph,
            &TopKConfig { k, min_support: 1.0, max_pattern_edges: 3, ..Default::default() },
        );
        let full = Miner::new(
            &graph,
            MinerConfig { min_support: 1.0, max_pattern_edges: 3, ..Default::default() },
        )
        .mine();
        let mut full_supports: Vec<f64> = full.patterns.iter().map(|p| p.support).collect();
        full_supports.sort_by(|a, b| b.partial_cmp(a).unwrap());
        full_supports.truncate(k);
        let topk_supports: Vec<f64> = topk.patterns.iter().map(|p| p.support).collect();
        assert_eq!(topk_supports, full_supports);
    }

    #[test]
    fn rising_threshold_prunes_more_than_floor() {
        let graph = generators::community_graph(3, 10, 0.35, 0.02, 4, 11);
        let topk = mine_top_k(
            &graph,
            &TopKConfig { k: 3, min_support: 1.0, max_pattern_edges: 2, ..Default::default() },
        );
        let full = Miner::new(
            &graph,
            MinerConfig { min_support: 1.0, max_pattern_edges: 2, ..Default::default() },
        )
        .mine();
        // Top-k evaluates no more candidates than the exhaustive run and usually fewer.
        assert!(topk.stats.candidates_evaluated <= full.stats.candidates_evaluated);
        assert!(topk.final_threshold >= 1.0);
        assert_eq!(topk.patterns.len(), 3);
    }

    #[test]
    fn floor_threshold_limits_results() {
        let graph = triangle_forest(2);
        let result =
            mine_top_k(&graph, &TopKConfig { k: 50, min_support: 10.0, ..Default::default() });
        // Nothing reaches support 10 with only two copies.
        assert!(result.patterns.is_empty());
        assert_eq!(result.final_threshold, 10.0);
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let result = mine_top_k(&LabeledGraph::new(), &TopKConfig::default());
        assert!(result.patterns.is_empty());
        assert_eq!(result.stats.candidates_evaluated, 0);
    }

    #[test]
    fn evaluation_cap_truncates() {
        let graph = generators::gnm_random(60, 200, 2, 4);
        let result =
            mine_top_k(&graph, &TopKConfig { k: 10, max_evaluations: 3, ..Default::default() });
        assert!(result.stats.truncated);
        assert!(result.stats.candidates_evaluated <= 3);
    }
}
