//! Top-k frequent-pattern mining.
//!
//! Instead of fixing a support threshold τ up front (hard to choose on an unknown
//! graph), top-k mining asks for the `k` patterns of highest support.  The search
//! exploits anti-monotonicity as a branch-and-bound rule: the running k-th best
//! support is a *rising* threshold, and any candidate below it can be pruned together
//! with all of its extensions — exactly the pruning argument of Definition 2.2.2, so
//! the algorithm is correct for every measure exposed by `ffsm-core` (MNI, MI, MVC,
//! MIS/MIES, the relaxations and MCP).
//!
//! A floor threshold (`min_support`) is still applied so that patterns that occur
//! essentially never are not reported even when `k` is larger than the number of
//! interesting patterns.

use crate::extension::{dedupe_by_canonical_code, extensions, seed_patterns};
use crate::miner::{FrequentPattern, MiningStats};
use ffsm_core::{MeasureConfig, MeasureKind, OccurrenceSet, SupportMeasures};
use ffsm_graph::canonical::CanonicalCode;
use ffsm_graph::LabeledGraph;
use std::collections::{HashSet, VecDeque};
use std::time::Instant;

/// Configuration of a top-k mining run.
#[derive(Debug, Clone)]
pub struct TopKConfig {
    /// How many patterns to return.
    pub k: usize,
    /// Floor threshold: patterns below this support are never reported, even if
    /// fewer than `k` patterns qualify.
    pub min_support: f64,
    /// Support measure to rank by.
    pub measure: MeasureKind,
    /// Measure configuration.
    pub measure_config: MeasureConfig,
    /// Stop growing patterns beyond this many edges.
    pub max_pattern_edges: usize,
    /// Safety cap on support evaluations.
    pub max_evaluations: usize,
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig {
            k: 10,
            min_support: 1.0,
            measure: MeasureKind::Mni,
            measure_config: MeasureConfig::default(),
            max_pattern_edges: 3,
            max_evaluations: 50_000,
        }
    }
}

/// Result of a top-k run: at most `k` patterns, sorted by descending support (ties by
/// fewer edges first, then insertion order).
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// The best patterns found.
    pub patterns: Vec<FrequentPattern>,
    /// The threshold in force when the search finished (the k-th best support, or the
    /// floor if fewer than `k` patterns were found).
    pub final_threshold: f64,
    /// Search statistics.
    pub stats: MiningStats,
}

/// Mine the top-k patterns of `graph` under `config`.
pub fn mine_top_k(graph: &LabeledGraph, config: &TopKConfig) -> TopKResult {
    let start = Instant::now();
    let mut stats = MiningStats::default();
    let mut best: Vec<FrequentPattern> = Vec::new();
    let mut threshold = config.min_support;
    let mut seen: HashSet<CanonicalCode> = HashSet::new();
    let mut queue: VecDeque<ffsm_graph::Pattern> = VecDeque::new();
    let alphabet = graph.distinct_labels();

    let support_of = |pattern: &ffsm_graph::Pattern, stats: &mut MiningStats| -> (f64, usize) {
        stats.candidates_evaluated += 1;
        let occ = OccurrenceSet::enumerate(pattern, graph, config.measure_config.iso_config);
        let n = occ.num_occurrences();
        let measures = SupportMeasures::new(occ, config.measure_config.clone());
        (measures.compute(config.measure), n)
    };

    // Insert a pattern into the running top-k list, returning the updated threshold.
    let insert = |best: &mut Vec<FrequentPattern>, found: FrequentPattern, k: usize, floor: f64| -> f64 {
        best.push(found);
        best.sort_by(|a, b| {
            b.support
                .partial_cmp(&a.support)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.pattern.num_edges().cmp(&b.pattern.num_edges()))
        });
        if best.len() > k {
            best.truncate(k);
        }
        if best.len() == k {
            best.last().map(|p| p.support).unwrap_or(floor).max(floor)
        } else {
            floor
        }
    };

    let seeds = seed_patterns(graph);
    stats.candidates_generated += seeds.len();
    for seed in dedupe_by_canonical_code(seeds, &mut seen) {
        if stats.candidates_evaluated >= config.max_evaluations {
            stats.truncated = true;
            break;
        }
        let (support, num_occurrences) = support_of(&seed, &mut stats);
        if support >= threshold {
            queue.push_back(seed.clone());
            threshold = insert(
                &mut best,
                FrequentPattern { pattern: seed, support, num_occurrences },
                config.k,
                config.min_support,
            );
        } else {
            stats.candidates_pruned += 1;
        }
    }

    while let Some(pattern) = queue.pop_front() {
        if stats.truncated || pattern.num_edges() >= config.max_pattern_edges {
            continue;
        }
        let candidates = extensions(&pattern, &alphabet);
        stats.candidates_generated += candidates.len();
        for candidate in dedupe_by_canonical_code(candidates, &mut seen) {
            if stats.candidates_evaluated >= config.max_evaluations {
                stats.truncated = true;
                break;
            }
            let (support, num_occurrences) = support_of(&candidate, &mut stats);
            // Anti-monotonic pruning against the *current* threshold: extensions of a
            // below-threshold candidate can never re-enter the top k.
            if support >= threshold && support >= config.min_support {
                queue.push_back(candidate.clone());
                threshold = insert(
                    &mut best,
                    FrequentPattern { pattern: candidate, support, num_occurrences },
                    config.k,
                    config.min_support,
                );
            } else {
                stats.candidates_pruned += 1;
            }
        }
    }

    stats.elapsed = start.elapsed();
    TopKResult { patterns: best, final_threshold: threshold, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::{Miner, MinerConfig};
    use ffsm_graph::{generators, LabeledGraph};

    fn triangle_forest(copies: usize) -> LabeledGraph {
        let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        generators::replicated(&triangle, copies, false)
    }

    #[test]
    fn returns_at_most_k_patterns_sorted() {
        let graph = triangle_forest(6);
        let result = mine_top_k(&graph, &TopKConfig { k: 4, ..Default::default() });
        assert!(result.patterns.len() <= 4);
        assert!(!result.patterns.is_empty());
        for w in result.patterns.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn top_k_supports_match_threshold_mining() {
        // The k best supports found by top-k must equal the k best supports in an
        // exhaustive run at the floor threshold.
        let graph = triangle_forest(5);
        let k = 5;
        let topk = mine_top_k(
            &graph,
            &TopKConfig { k, min_support: 1.0, max_pattern_edges: 3, ..Default::default() },
        );
        let full = Miner::new(
            &graph,
            MinerConfig { min_support: 1.0, max_pattern_edges: 3, ..Default::default() },
        )
        .mine();
        let mut full_supports: Vec<f64> = full.patterns.iter().map(|p| p.support).collect();
        full_supports.sort_by(|a, b| b.partial_cmp(a).unwrap());
        full_supports.truncate(k);
        let topk_supports: Vec<f64> = topk.patterns.iter().map(|p| p.support).collect();
        assert_eq!(topk_supports, full_supports);
    }

    #[test]
    fn rising_threshold_prunes_more_than_floor() {
        let graph = generators::community_graph(3, 10, 0.35, 0.02, 4, 11);
        let topk = mine_top_k(
            &graph,
            &TopKConfig { k: 3, min_support: 1.0, max_pattern_edges: 2, ..Default::default() },
        );
        let full = Miner::new(
            &graph,
            MinerConfig { min_support: 1.0, max_pattern_edges: 2, ..Default::default() },
        )
        .mine();
        // Top-k evaluates no more candidates than the exhaustive run and usually fewer.
        assert!(topk.stats.candidates_evaluated <= full.stats.candidates_evaluated);
        assert!(topk.final_threshold >= 1.0);
        assert_eq!(topk.patterns.len(), 3);
    }

    #[test]
    fn floor_threshold_limits_results() {
        let graph = triangle_forest(2);
        let result = mine_top_k(
            &graph,
            &TopKConfig { k: 50, min_support: 10.0, ..Default::default() },
        );
        // Nothing reaches support 10 with only two copies.
        assert!(result.patterns.is_empty());
        assert_eq!(result.final_threshold, 10.0);
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let result = mine_top_k(&LabeledGraph::new(), &TopKConfig::default());
        assert!(result.patterns.is_empty());
        assert_eq!(result.stats.candidates_evaluated, 0);
    }

    #[test]
    fn evaluation_cap_truncates() {
        let graph = generators::gnm_random(60, 200, 2, 4);
        let result = mine_top_k(
            &graph,
            &TopKConfig { k: 10, max_evaluations: 3, ..Default::default() },
        );
        assert!(result.stats.truncated);
        assert!(result.stats.candidates_evaluated <= 3);
    }
}
