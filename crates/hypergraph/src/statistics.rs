//! Structural statistics of hypergraphs.
//!
//! The experiment harness reports these for every occurrence / instance hypergraph it
//! builds: they characterise *how much* overlap a workload has (degree distribution of
//! image vertices, number of repeated edges, component structure), which is exactly
//! the axis along which MNI over-estimation and MVC/MIS hardness vary.

use crate::{connectivity, Hypergraph};
use serde::{Deserialize, Serialize};

/// Summary statistics of one hypergraph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypergraphStatistics {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of vertices contained in at least one edge.
    pub num_covered_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Number of *distinct* edge vertex sets (repeated edges arise from pattern
    /// automorphisms).
    pub num_distinct_edges: usize,
    /// `Some(k)` if the hypergraph is k-uniform.
    pub uniform_rank: Option<usize>,
    /// Largest edge size.
    pub max_edge_size: usize,
    /// Mean edge size (0 if there are no edges).
    pub mean_edge_size: f64,
    /// Maximum vertex degree (number of edges containing the busiest vertex).
    pub max_vertex_degree: usize,
    /// Mean vertex degree over covered vertices (0 if none).
    pub mean_vertex_degree: f64,
    /// Number of connected components (isolated vertices ignored).
    pub num_components: usize,
    /// Size (in edges) of the largest component.
    pub largest_component_edges: usize,
    /// Number of pairs of edges that share at least one vertex — the edge count of
    /// the overlap graph (Definition 2.2.5).
    pub overlapping_edge_pairs: usize,
}

impl HypergraphStatistics {
    /// Compute the statistics for `h`.
    pub fn compute(h: &Hypergraph) -> Self {
        let incidence = h.incidence();
        let degrees: Vec<usize> = incidence.iter().map(Vec::len).collect();
        let covered = degrees.iter().filter(|&&d| d > 0).count();
        let edge_sizes: Vec<usize> = h.edges().map(|(_, e)| e.len()).collect();
        let mut distinct: std::collections::BTreeSet<Vec<usize>> =
            std::collections::BTreeSet::new();
        for (_, e) in h.edges() {
            distinct.insert(e.to_vec());
        }
        let components = connectivity::connected_components(h);
        let overlapping_edge_pairs = h.overlap_graph().num_edges();
        HypergraphStatistics {
            num_vertices: h.num_vertices(),
            num_covered_vertices: covered,
            num_edges: h.num_edges(),
            num_distinct_edges: distinct.len(),
            uniform_rank: h.uniform_rank(),
            max_edge_size: h.max_edge_size(),
            mean_edge_size: if edge_sizes.is_empty() {
                0.0
            } else {
                edge_sizes.iter().sum::<usize>() as f64 / edge_sizes.len() as f64
            },
            max_vertex_degree: degrees.iter().copied().max().unwrap_or(0),
            mean_vertex_degree: if covered == 0 {
                0.0
            } else {
                degrees.iter().sum::<usize>() as f64 / covered as f64
            },
            num_components: components.len(),
            largest_component_edges: components
                .iter()
                .map(|c| c.hypergraph.num_edges())
                .max()
                .unwrap_or(0),
            overlapping_edge_pairs,
        }
    }

    /// Overlap density: fraction of edge pairs that overlap (0 when fewer than two
    /// edges).  1.0 means every pair of occurrences shares an image vertex.
    pub fn overlap_density(&self) -> f64 {
        if self.num_edges < 2 {
            return 0.0;
        }
        let pairs = self.num_edges * (self.num_edges - 1) / 2;
        self.overlapping_edge_pairs as f64 / pairs as f64
    }

    /// Edge multiplicity: average number of hyperedges per distinct vertex set
    /// (> 1 exactly when the pattern has non-trivial automorphisms).
    pub fn edge_multiplicity(&self) -> f64 {
        if self.num_distinct_edges == 0 {
            0.0
        } else {
            self.num_edges as f64 / self.num_distinct_edges as f64
        }
    }

    /// One-line summary used in experiment logs.
    pub fn one_line(&self) -> String {
        format!(
            "|V|={} |E|={} (distinct {}) rank={:?} comps={} overlap={:.2}",
            self.num_covered_vertices,
            self.num_edges,
            self.num_distinct_edges,
            self.uniform_rank,
            self.num_components,
            self.overlap_density()
        )
    }
}

impl std::fmt::Display for HypergraphStatistics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "vertices (covered/total): {}/{}",
            self.num_covered_vertices, self.num_vertices
        )?;
        writeln!(f, "edges (distinct):         {} ({})", self.num_edges, self.num_distinct_edges)?;
        writeln!(f, "uniform rank:             {:?}", self.uniform_rank)?;
        writeln!(f, "edge size mean/max:       {:.2}/{}", self.mean_edge_size, self.max_edge_size)?;
        writeln!(
            f,
            "vertex degree mean/max:   {:.2}/{}",
            self.mean_vertex_degree, self.max_vertex_degree
        )?;
        writeln!(
            f,
            "components (largest):     {} ({} edges)",
            self.num_components, self.largest_component_edges
        )?;
        write!(
            f,
            "overlapping edge pairs:   {} (density {:.3})",
            self.overlapping_edge_pairs,
            self.overlap_density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_of_empty_hypergraph() {
        let s = HypergraphStatistics::compute(&Hypergraph::new(3));
        assert_eq!(s.num_vertices, 3);
        assert_eq!(s.num_covered_vertices, 0);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.mean_edge_size, 0.0);
        assert_eq!(s.overlap_density(), 0.0);
        assert_eq!(s.edge_multiplicity(), 0.0);
        assert_eq!(s.num_components, 0);
    }

    #[test]
    fn statistics_of_triangle_occurrence_hypergraph() {
        // Six identical {0,1,2} edges — the Figure 2 situation.
        let mut h = Hypergraph::new(3);
        for _ in 0..6 {
            h.add_edge(vec![0, 1, 2]).unwrap();
        }
        let s = HypergraphStatistics::compute(&h);
        assert_eq!(s.num_edges, 6);
        assert_eq!(s.num_distinct_edges, 1);
        assert!((s.edge_multiplicity() - 6.0).abs() < 1e-12);
        assert_eq!(s.uniform_rank, Some(3));
        assert_eq!(s.num_components, 1);
        assert!((s.overlap_density() - 1.0).abs() < 1e-12);
        assert_eq!(s.max_vertex_degree, 6);
    }

    #[test]
    fn statistics_of_disjoint_edges() {
        let mut h = Hypergraph::new(6);
        h.add_edge(vec![0, 1]).unwrap();
        h.add_edge(vec![2, 3]).unwrap();
        h.add_edge(vec![4, 5]).unwrap();
        let s = HypergraphStatistics::compute(&h);
        assert_eq!(s.num_components, 3);
        assert_eq!(s.largest_component_edges, 1);
        assert_eq!(s.overlapping_edge_pairs, 0);
        assert_eq!(s.overlap_density(), 0.0);
        assert_eq!(s.mean_vertex_degree, 1.0);
        assert!(s.one_line().contains("comps=3"));
    }

    #[test]
    fn mixed_rank_hypergraph_is_not_uniform() {
        let mut h = Hypergraph::new(5);
        h.add_edge(vec![0, 1]).unwrap();
        h.add_edge(vec![1, 2, 3]).unwrap();
        let s = HypergraphStatistics::compute(&h);
        assert_eq!(s.uniform_rank, None);
        assert_eq!(s.max_edge_size, 3);
        assert!((s.mean_edge_size - 2.5).abs() < 1e-12);
        assert_eq!(s.overlapping_edge_pairs, 1);
        let text = format!("{s}");
        assert!(text.contains("uniform rank"));
    }
}
