//! Compare how the choice of support measure changes what counts as "frequent".
//!
//! For a community-structured graph and a sweep of thresholds, mine frequent patterns
//! under MNI, MI, MVC and MIS and report how many patterns each admits, illustrating
//! the spectrum σMIS ≤ σMVC ≤ σMI ≤ σMNI at the application level.
//!
//! Run with: `cargo run --release --example measure_comparison`

use ffsm::core::measures::MeasureKind;
use ffsm::graph::generators;
use ffsm::miner::MiningSession;

fn main() {
    let graph = generators::community_graph(4, 18, 0.3, 0.02, 4, 5);
    println!(
        "community graph: {} vertices, {} edges, {} labels\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.distinct_labels().len()
    );

    let measures = [MeasureKind::Mni, MeasureKind::Mi, MeasureKind::Mvc, MeasureKind::Mis];
    println!("{:>6} | {:>10} {:>10} {:>10} {:>10}", "tau", "MNI", "MI", "MVC", "MIS");
    println!("{}", "-".repeat(56));
    for tau in [2.0, 4.0, 8.0, 16.0] {
        let mut counts = Vec::new();
        for &measure in &measures {
            let result = MiningSession::on(&graph)
                .measure(measure)
                .min_support(tau)
                .max_edges(3)
                .run()
                .expect("valid session");
            counts.push(result.len());
        }
        println!(
            "{:>6} | {:>10} {:>10} {:>10} {:>10}",
            tau, counts[0], counts[1], counts[2], counts[3]
        );
        // Conservative measures admit no more patterns than permissive ones.
        assert!(counts[3] <= counts[2] && counts[2] <= counts[1] && counts[1] <= counts[0]);
    }
    println!("\nEvery row satisfies #MIS <= #MVC <= #MI <= #MNI, the application-level face of the bounding chain.");
}
