//! The NDJSON-over-TCP mining server.
//!
//! [`Server::bind`] opens a listener; [`Server::run`] accepts connections and
//! serves the protocol of [`crate::protocol`] until a graceful drain finishes.
//! Each connection is one request/response conversation: the client sends one
//! flat JSON request per line, the server answers with a stream of event
//! frames terminated by exactly one `done` frame, in request order.
//!
//! ## Threading model
//!
//! * one accept loop (the thread that called `run`), polling a shutdown flag;
//! * one thread per connection, which parses requests and answers `update`,
//!   `list`, `stat` and `shutdown` inline — those are cheap;
//! * `mine` requests go through the [`SessionScheduler`]: the connection
//!   thread checks out the graph's current epoch, admits a job onto the
//!   bounded queue (or answers a typed `overloaded` rejection), then waits for
//!   the job to finish before reading the next request.
//!
//! The mining job writes each frame straight to the socket as it pulls the
//! next event from the lazy [`PatternStream`] — a slow client therefore slows
//! the *miner*, not a buffer: backpressure is real, and memory per session
//! stays flat no matter how far ahead the miner could run.
//!
//! ## Disconnects and deadlines
//!
//! A client that goes away mid-stream (broken pipe, reset, or a write that
//! times out) cancels the session's [`CancelToken`] and tears the session
//! down quietly — never an unwind, never a worker held hostage.  Per-request
//! `deadline_ms` maps onto the same token, so a deadline expiring mid-run
//! yields the session's usual deterministic whole-level prefix, a `finished`
//! frame naming the deadline, and a `done` frame.

use crate::events::{
    counter_frame, error_frame, finished_frame, gauge_frame, histogram_frame, level_frame,
    pattern_frame, undecided_frame, write_frame, Frame, FrameWrite,
};
use crate::protocol::{parse_request, MineParams, Request};
use crate::registry::{GraphRegistry, GraphStats};
use crate::scheduler::SessionScheduler;
use ffsm_core::FfsmError;
use ffsm_dynamic::EpochSnapshot;
use ffsm_graph::CancelToken;
use ffsm_miner::{MiningEvent, MiningSession, MiningStats, Phase};
use ffsm_obs::{Counter, Gauge, MetricsRegistry};
use std::io::BufRead;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Tunables for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Mining worker threads (concurrent sessions).  `0` = one per core,
    /// capped at 8.
    pub workers: usize,
    /// Sessions that may wait in the admission queue beyond the running ones;
    /// the queue full means new `mine` requests get a typed `overloaded`
    /// rejection.
    pub queue_capacity: usize,
    /// Threads each mining session evaluates candidates with (`1` =
    /// sequential; sessions are already concurrent with each other).
    pub session_threads: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms`.  `None` lets such requests run to completion.
    pub default_deadline: Option<Duration>,
    /// Epoch snapshots each graph retains for in-flight readers.
    pub retain_epochs: usize,
    /// A frame write stalling longer than this treats the client as gone.
    pub write_timeout: Duration,
    /// Run mining sessions with fine-grained phase timing enabled
    /// ([`MiningSession::metrics`]), so completed sessions fold per-phase
    /// wall-time totals into the server's metrics registry.  On by default;
    /// benchmarks turn it off to measure the timing overhead itself.
    pub session_metrics: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_capacity: 16,
            session_threads: 1,
            default_deadline: None,
            retain_epochs: 4,
            write_timeout: Duration::from_secs(10),
            session_metrics: true,
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(8)
        }
    }
}

/// Shared server state: registry, scheduler, flags and counters.
#[derive(Debug)]
struct ServerState {
    registry: GraphRegistry,
    scheduler: SessionScheduler,
    config: ServerConfig,
    workers: usize,
    shutdown: AtomicBool,
    connections: AtomicU64,
    disconnects: AtomicU64,
    started: Instant,
    /// Named metrics scraped by the `metrics` op.  The two hot handles below
    /// are resolved once at bind time so the frame path never takes the
    /// registry lock.
    metrics: MetricsRegistry,
    frames_written: Arc<Counter>,
    active_sessions: Arc<Gauge>,
}

/// A handle for signalling the server from other threads (the CLI's SIGINT
/// path, tests, or a `shutdown` request).  Cheap to clone.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Begin a graceful drain: the accept loop stops admitting connections,
    /// in-flight sessions are cancelled (each still flushes its terminal
    /// frames), and [`Server::run`] returns once everything is joined.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once a drain has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// The server's graph registry — lets an embedding process register graphs
    /// or inspect state while (or after) [`Server::run`] owns the server.
    pub fn registry(&self) -> &GraphRegistry {
        &self.state.registry
    }
}

/// The mining server.  See the [module docs](self).
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:7878"`; port `0` picks a free port).
    ///
    /// # Errors
    ///
    /// [`FfsmError::InvalidConfig`] when the address cannot be bound.
    pub fn bind(addr: &str, config: ServerConfig) -> Result<Server, FfsmError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| FfsmError::InvalidConfig(format!("cannot bind {addr}: {e}")))?;
        let workers = config.effective_workers();
        let metrics = MetricsRegistry::new();
        let frames_written = metrics.counter("frames_written");
        let active_sessions = metrics.gauge("active_sessions");
        let state = Arc::new(ServerState {
            registry: GraphRegistry::new(config.retain_epochs),
            scheduler: SessionScheduler::new(workers, config.queue_capacity),
            workers,
            config,
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            started: Instant::now(),
            metrics,
            frames_written,
            active_sessions,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (the actual port when `bind` was given port `0`).
    ///
    /// # Errors
    ///
    /// [`FfsmError::InvalidConfig`] if the socket cannot report it.
    pub fn local_addr(&self) -> Result<SocketAddr, FfsmError> {
        self.listener
            .local_addr()
            .map_err(|e| FfsmError::InvalidConfig(format!("cannot read local addr: {e}")))
    }

    /// The graph registry, for registering graphs before (or while) serving.
    pub fn registry(&self) -> &GraphRegistry {
        &self.state.registry
    }

    /// A clonable handle for signalling shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { state: Arc::clone(&self.state) }
    }

    /// Serve until a drain (via [`ServerHandle::shutdown`] or a client's
    /// `shutdown` request) completes.  Blocks the calling thread.
    ///
    /// # Errors
    ///
    /// [`FfsmError::InvalidConfig`] when the listener cannot be switched to
    /// non-blocking polling.
    pub fn run(self) -> Result<(), FfsmError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| FfsmError::InvalidConfig(format!("cannot poll listener: {e}")))?;
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.state.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    connections.retain(|h| !h.is_finished());
                    self.state.connections.fetch_add(1, Ordering::Relaxed);
                    let state = Arc::clone(&self.state);
                    let handle = std::thread::Builder::new()
                        .name("ffsm-serve-conn".into())
                        .spawn(move || serve_connection(stream, &state))
                        .expect("spawning connection thread");
                    connections.push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        // Drain: cancel in-flight sessions and run queued ones to their
        // (cancelled) terminal frames, then wait for connections to notice
        // the flag and hang up.
        self.state.scheduler.shutdown();
        for handle in connections {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// How long a connection read waits before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

fn serve_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = std::io::BufReader::new(stream);
    // `read_until` (unlike `read_line`) keeps partially read bytes in the
    // buffer when a read times out, so the poll loop never corrupts a frame
    // that arrives in pieces.
    let mut line: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return, // EOF — client hung up
            Ok(_) => {
                let text = String::from_utf8_lossy(&line).into_owned();
                let text = text.trim();
                if !text.is_empty() && !handle_request(text, &mut writer, state) {
                    return;
                }
                line.clear();
            }
            Err(e) if crate::events::is_disconnect(&e) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return; // draining — hang up; in-flight work is cancelled
                }
            }
            Err(_) => return,
        }
    }
}

/// Serve one request line.  Returns `false` when the connection should close
/// (the client disconnected mid-response).  Every request is counted and its
/// wall time recorded into the per-op latency histogram (`latency_<op>_us`).
fn handle_request(line: &str, writer: &mut TcpStream, state: &Arc<ServerState>) -> bool {
    let started = Instant::now();
    let envelope = match parse_request(line) {
        Ok(envelope) => envelope,
        Err(e) => {
            state.metrics.counter("requests_malformed").inc();
            return send_failure(writer, &e, None, state);
        }
    };
    let id = envelope.id;
    let op = match &envelope.request {
        Request::Mine(_) => "mine",
        Request::Update { .. } => "update",
        Request::Partition { .. } => "partition",
        Request::List => "list",
        Request::Stat { .. } => "stat",
        Request::Metrics => "metrics",
        Request::Shutdown => "shutdown",
    };
    state.metrics.counter(&format!("requests_{op}")).inc();
    let alive = match envelope.request {
        Request::Mine(params) => handle_mine(params, id, writer, state),
        Request::Update { graph, batches } => handle_update(&graph, &batches, id, writer, state),
        Request::Partition { graph, spec } => handle_partition(&graph, spec, id, writer, state),
        Request::List => handle_list(id, writer, state),
        Request::Stat { graph } => handle_stat(graph.as_deref(), id, writer, state),
        Request::Metrics => handle_metrics(id, writer, state),
        Request::Shutdown => {
            let alive = send_done(writer, "complete", id, state);
            state.shutdown.store(true, Ordering::SeqCst);
            alive
        }
    };
    state.metrics.histogram(&format!("latency_{op}_us")).record_duration_us(started.elapsed());
    alive
}

/// `error` frame + `done(status: "error")` frame.  Returns connection liveness.
fn send_failure(
    writer: &mut TcpStream,
    e: &FfsmError,
    id: Option<u64>,
    state: &Arc<ServerState>,
) -> bool {
    if !send(writer, error_frame(e).id(id), state) {
        return false;
    }
    let done = Frame::event("done")
        .str("status", "error")
        .str("code", crate::events::error_code(e))
        .id(id);
    send(writer, done, state)
}

fn send_done(
    writer: &mut TcpStream,
    status: &str,
    id: Option<u64>,
    state: &Arc<ServerState>,
) -> bool {
    send(writer, Frame::event("done").str("status", status).id(id), state)
}

/// Write one frame, counting a vanished client.  Returns connection liveness.
fn send(writer: &mut TcpStream, frame: Frame, state: &Arc<ServerState>) -> bool {
    match write_frame(writer, &frame.finish()) {
        Ok(FrameWrite::Written) => {
            state.frames_written.inc();
            true
        }
        Ok(FrameWrite::Disconnected) | Err(_) => {
            state.disconnects.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

fn handle_mine(
    params: MineParams,
    id: Option<u64>,
    writer: &mut TcpStream,
    state: &Arc<ServerState>,
) -> bool {
    let snapshot = match state.registry.checkout(&params.graph) {
        Ok(snapshot) => snapshot,
        Err(e) => return send_failure(writer, &e, id, state),
    };
    let Ok(mut job_writer) = writer.try_clone() else { return false };
    let token = CancelToken::new();
    let (done_tx, done_rx) = mpsc::channel::<bool>();
    let job_state = Arc::clone(state);
    let job_token = token.clone();
    let submitted = state.scheduler.submit(&token, move || {
        let alive =
            run_mine_session(&snapshot, &params, id, &job_token, &mut job_writer, &job_state);
        let _ = done_tx.send(alive);
    });
    if let Err(e) = submitted {
        if matches!(e, FfsmError::Overloaded { .. }) {
            state.metrics.counter("admission_rejected").inc();
        }
        return send_failure(writer, &e, id, state);
    }
    // Requests are answered in order per connection: wait for the session's
    // terminal frame before reading the next request.  An `Err` here means
    // the job panicked after the workers contained it; the client gets a
    // closed conversation either way.
    done_rx.recv().unwrap_or(false)
}

/// The scheduled part of a `mine`: build the session over the checked-out
/// epoch, stream frames straight to the socket, terminate with `done`.
/// Returns connection liveness.
fn run_mine_session(
    snapshot: &EpochSnapshot,
    params: &MineParams,
    id: Option<u64>,
    token: &CancelToken,
    writer: &mut TcpStream,
    state: &Arc<ServerState>,
) -> bool {
    state.active_sessions.add(1);
    let _active = GaugeGuard(Arc::clone(&state.active_sessions));
    let mut session = MiningSession::over(snapshot.prepared())
        .measure(params.measure)
        .min_support(params.tau)
        .max_edges(params.max_edges)
        .threads(state.config.session_threads)
        .metrics(state.config.session_metrics)
        .bounds_first(params.bounds)
        .cancel_token(token.clone());
    if let Some(k) = params.top_k {
        session = session.top_k(k);
    }
    let deadline = params.deadline_ms.map(Duration::from_millis).or(state.config.default_deadline);
    if let Some(deadline) = deadline {
        session = session.deadline(deadline);
    }
    let stream = match session.stream() {
        Ok(stream) => stream,
        Err(e) => return send_failure(writer, &e, id, state),
    };
    let mut status = "complete";
    for event in stream {
        let frame = match event {
            Ok(MiningEvent::Pattern(p)) => pattern_frame(&p, None),
            Ok(MiningEvent::Undecided(u)) => undecided_frame(&u),
            Ok(MiningEvent::LevelCompleted(level)) => level_frame(&level),
            Ok(MiningEvent::Finished(summary)) => {
                status = summary.completion.name();
                fold_session_stats(&summary.stats, state);
                finished_frame(&summary)
            }
            Err(e) => {
                // A mid-run failure still closes the conversation in form:
                // typed error, then done.
                return send_failure(writer, &e, id, state);
            }
        };
        if !send(writer, frame, state) {
            // The client went away: stop pulling (which stops the miner at
            // the next poll) and tear down without unwinding.
            token.cancel();
            return false;
        }
    }
    let done = Frame::event("done").str("status", status).raw("epoch", snapshot.epoch()).id(id);
    send(writer, done, state)
}

/// Decrements its gauge when dropped — keeps `active_sessions` honest on every
/// exit path of a session (completion, mid-stream disconnect, error).
struct GaugeGuard(Arc<Gauge>);

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.0.add(-1);
    }
}

/// Fold a finished session's observability block into the server registry:
/// per-phase wall-time totals (`phase_<name>_ns`) and the headline mining
/// counters, summed across every session the server has completed.
fn fold_session_stats(stats: &MiningStats, state: &Arc<ServerState>) {
    for phase in Phase::ALL {
        let nanos = stats.phase_timings.nanos(phase);
        if nanos > 0 {
            state.metrics.counter(&format!("phase_{}_ns", phase.name())).add(nanos);
        }
    }
    let counters = &stats.counters;
    state.metrics.counter("mine_steps").add(counters.search.steps);
    state.metrics.counter("mine_backjumps").add(counters.search.backjumps);
    state.metrics.counter("mine_pools_filled").add(counters.search.pools_filled);
    state.metrics.counter("mine_hub_verified_pools").add(counters.search.hub_verified_pools);
    state.metrics.counter("mine_overlap_probes").add(counters.overlap_probes);
    state.metrics.counter("mine_patterns_emitted").add(counters.patterns_emitted);
    state.metrics.counter("mine_evaluations_bounded").add(counters.evaluations_bounded);
    state.metrics.counter("mine_bound_decided").add(counters.bound_decided);
}

/// Answer a `metrics` scrape: refresh the point-in-time gauges, then emit one
/// flat `metric` frame per registered metric, sorted by kind then name.
fn handle_metrics(id: Option<u64>, writer: &mut TcpStream, state: &Arc<ServerState>) -> bool {
    let scheduler = state.scheduler.stats();
    let active = state.active_sessions.value().max(0);
    state.metrics.gauge("queue_depth").set((scheduler.inflight as i64 - active).max(0));
    let snapshot = state.metrics.snapshot();
    let mut emitted = 0usize;
    for (name, value) in &snapshot.counters {
        if !send(writer, counter_frame(name, *value).id(id), state) {
            return false;
        }
        emitted += 1;
    }
    for (name, value) in &snapshot.gauges {
        if !send(writer, gauge_frame(name, *value).id(id), state) {
            return false;
        }
        emitted += 1;
    }
    for (name, histogram) in &snapshot.histograms {
        if !send(writer, histogram_frame(name, histogram).id(id), state) {
            return false;
        }
        emitted += 1;
    }
    let done = Frame::event("done").str("status", "complete").raw("metrics", emitted).id(id);
    send(writer, done, state)
}

fn handle_update(
    graph: &str,
    batches: &[Vec<ffsm_graph::GraphUpdate>],
    id: Option<u64>,
    writer: &mut TcpStream,
    state: &Arc<ServerState>,
) -> bool {
    let mut committed = 0usize;
    for batch in batches {
        match state.registry.apply(graph, batch) {
            Ok((epoch, delta, summary)) => {
                let frame = Frame::event("epoch")
                    .raw("epoch", epoch)
                    .str("delta", &delta.summary())
                    .raw("vertices", summary.vertices)
                    .raw("edges", summary.edges)
                    .id(id);
                if !send(writer, frame, state) {
                    return false;
                }
                committed += 1;
            }
            // Batches are atomic: earlier ones stay committed, this one
            // changed nothing, later ones are not attempted.
            Err(e) => return send_failure(writer, &e, id, state),
        }
    }
    let done = Frame::event("done").str("status", "complete").raw("epochs", committed).id(id);
    send(writer, done, state)
}

/// Answer a `partition` request: build the shard partition over the graph's
/// current epoch, report its geometry, terminate with `done`.
fn handle_partition(
    graph: &str,
    spec: ffsm_shard::PartitionSpec,
    id: Option<u64>,
    writer: &mut TcpStream,
    state: &Arc<ServerState>,
) -> bool {
    let handle = match state.registry.partition(graph, spec) {
        Ok(handle) => handle,
        Err(e) => return send_failure(writer, &e, id, state),
    };
    let partitioned = &handle.partitioned;
    let boundary = partitioned.boundary().iter().filter(|&&b| b).count();
    let frame = Frame::event("partitioned")
        .str("graph", graph)
        .raw("epoch", handle.epoch)
        .raw("shards", partitioned.num_shards())
        .raw("halo", partitioned.spec().halo_depth)
        .str("strategy", &partitioned.spec().strategy.to_string())
        .raw("boundary_vertices", boundary)
        .id(id);
    if !send(writer, frame, state) {
        return false;
    }
    send_done(writer, "complete", id, state)
}

fn handle_list(id: Option<u64>, writer: &mut TcpStream, state: &Arc<ServerState>) -> bool {
    let graphs = state.registry.list();
    for summary in &graphs {
        let mut frame = Frame::event("graph")
            .str("name", &summary.name)
            .raw("epoch", summary.epoch)
            .raw("vertices", summary.vertices)
            .raw("edges", summary.edges)
            .raw("labels", summary.labels);
        if let Some(shards) = summary.shards {
            frame = frame.raw("shards", shards);
        }
        let frame = frame.id(id);
        if !send(writer, frame, state) {
            return false;
        }
    }
    let done = Frame::event("done").str("status", "complete").raw("graphs", graphs.len()).id(id);
    send(writer, done, state)
}

fn handle_stat(
    graph: Option<&str>,
    id: Option<u64>,
    writer: &mut TcpStream,
    state: &Arc<ServerState>,
) -> bool {
    let frame = match graph {
        Some(name) => match state.registry.stats(name) {
            Ok(stats) => graph_stat_frame(&stats),
            Err(e) => return send_failure(writer, &e, id, state),
        },
        None => server_stat_frame(state),
    };
    if !send(writer, frame.id(id), state) {
        return false;
    }
    send_done(writer, "complete", id, state)
}

fn graph_stat_frame(stats: &GraphStats) -> Frame {
    let mut frame = Frame::event("stat")
        .str("graph", &stats.summary.name)
        .raw("epoch", stats.summary.epoch)
        .raw("vertices", stats.summary.vertices)
        .raw("edges", stats.summary.edges)
        .raw("labels", stats.summary.labels)
        .raw("oldest_epoch", stats.retained.0)
        .raw("newest_epoch", stats.retained.1)
        .raw("mines", stats.mines)
        .raw("updates", stats.updates)
        .raw("cache_hits", stats.cache_hits)
        .raw("cache_misses", stats.cache_misses)
        .raw("index_built", stats.index_built)
        .raw("partitions", stats.partitions);
    if let Some((shards, halo)) = stats.partition_geometry {
        frame = frame.raw("shards", shards).raw("halo", halo);
    }
    frame
}

fn server_stat_frame(state: &Arc<ServerState>) -> Frame {
    let scheduler = state.scheduler.stats();
    let active = state.active_sessions.value().max(0);
    Frame::event("stat")
        .raw("graphs", state.registry.len())
        .raw("workers", state.workers)
        .raw("queue_capacity", state.config.queue_capacity)
        .raw("admitted", scheduler.admitted)
        .raw("rejected", scheduler.rejected)
        .raw("finished", scheduler.finished)
        .raw("inflight", scheduler.inflight)
        .raw("active_sessions", active)
        .raw("queue_depth", (scheduler.inflight as i64 - active).max(0))
        .raw("frames_written", state.frames_written.value())
        .raw("connections", state.connections.load(Ordering::Relaxed))
        .raw("disconnects", state.disconnects.load(Ordering::Relaxed))
        .raw("uptime_ms", state.started.elapsed().as_millis())
        .raw("draining", state.shutdown.load(Ordering::SeqCst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::generators;
    use std::io::{BufRead, BufReader, Write};

    fn spawn_server(
        config: ServerConfig,
    ) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        server.registry().register("g", generators::gnm_random(40, 70, 3, 11)).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run().unwrap());
        (addr, handle, thread)
    }

    fn request(addr: SocketAddr, line: &str) -> Vec<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        writeln!(stream, "{line}").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        BufReader::new(stream).lines().map(Result::unwrap).collect()
    }

    #[test]
    fn serves_mine_list_stat_and_typed_errors_per_connection() {
        let (addr, handle, thread) = spawn_server(ServerConfig::default());

        let frames = request(addr, "{\"op\": \"list\", \"id\": 1}");
        assert!(frames[0].starts_with("{\"event\": \"graph\", \"name\": \"g\""));
        assert_eq!(
            frames[1],
            "{\"event\": \"done\", \"status\": \"complete\", \"graphs\": 1, \"id\": 1}"
        );

        let frames = request(addr, "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 2}");
        assert!(frames.iter().any(|f| f.starts_with("{\"event\": \"pattern\"")));
        assert!(frames.iter().any(|f| f.starts_with("{\"event\": \"finished\"")));
        let last = frames.last().unwrap();
        assert!(
            last.starts_with("{\"event\": \"done\", \"status\": \"complete\", \"epoch\": 0"),
            "{last}"
        );

        let frames =
            request(addr, "{\"op\": \"mine\", \"graph\": \"nope\", \"tau\": 2, \"id\": 3}");
        assert!(frames[0].contains("\"code\": \"unknown-graph\""));
        assert!(frames[0].ends_with("\"id\": 3}"));
        assert!(frames[1].contains("\"status\": \"error\""));

        let frames = request(addr, "this is not json");
        assert!(frames[0].contains("\"code\": \"protocol\""));

        let frames = request(addr, "{\"op\": \"stat\"}");
        assert!(frames[0].contains("\"graphs\": 1"));
        assert!(frames[0].contains("\"workers\": "));

        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn metrics_scrape_reports_counters_gauges_and_histograms() {
        let (addr, handle, thread) = spawn_server(ServerConfig::default());
        let frames = request(addr, "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 2}");
        assert!(frames.iter().any(|f| f.contains("\"event\": \"finished\"")));

        let frames = request(addr, "{\"op\": \"metrics\", \"id\": 5}");
        let text = frames.join("\n");
        assert!(text.contains("\"name\": \"requests_mine\", \"value\": 1"), "{text}");
        assert!(text.contains("\"name\": \"frames_written\""));
        assert!(text.contains("\"name\": \"queue_depth\""));
        assert!(text.contains("\"kind\": \"histogram\", \"name\": \"latency_mine_us\""));
        assert!(text.contains("\"name\": \"phase_support_eval_ns\""));
        assert!(text.contains("\"name\": \"mine_steps\""));
        let last = frames.last().unwrap();
        assert!(last.starts_with("{\"event\": \"done\", \"status\": \"complete\", \"metrics\": "));
        assert!(last.ends_with("\"id\": 5}"));

        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn partition_round_trips_and_shows_in_list_and_stat() {
        let (addr, handle, thread) = spawn_server(ServerConfig::default());

        let frames = request(
            addr,
            "{\"op\": \"partition\", \"graph\": \"g\", \"shards\": 3, \"halo\": 2, \"id\": 7}",
        );
        assert!(
            frames[0].starts_with("{\"event\": \"partitioned\", \"graph\": \"g\""),
            "{frames:?}"
        );
        assert!(frames[0].contains("\"shards\": 3"));
        assert!(frames[0].contains("\"halo\": 2"));
        assert!(frames[0].contains("\"strategy\": \"vertex-range\""));
        assert!(frames[0].contains("\"boundary_vertices\": "));
        assert!(frames[1].contains("\"status\": \"complete\""));

        let frames = request(addr, "{\"op\": \"list\"}");
        assert!(frames[0].contains("\"shards\": 3"), "{frames:?}");

        let frames = request(addr, "{\"op\": \"stat\", \"graph\": \"g\"}");
        assert!(frames[0].contains("\"partitions\": 1"), "{frames:?}");
        assert!(frames[0].contains("\"shards\": 3"));

        // Invalid geometry is a typed partition error, and an update drops the
        // partition from later list frames.
        let frames = request(addr, "{\"op\": \"partition\", \"graph\": \"g\", \"shards\": 0}");
        assert!(frames[0].contains("\"code\": \"partition\""), "{frames:?}");
        let frames = request(addr, "{\"op\": \"update\", \"graph\": \"g\", \"updates\": \"av 1\"}");
        assert!(frames.last().unwrap().contains("\"status\": \"complete\""));
        let frames = request(addr, "{\"op\": \"list\"}");
        assert!(!frames[0].contains("\"shards\""), "{frames:?}");

        handle.shutdown();
        thread.join().unwrap();
    }

    #[test]
    fn update_commits_batches_and_new_mines_see_the_epoch() {
        let (addr, handle, thread) = spawn_server(ServerConfig::default());
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();

        writeln!(
            stream,
            "{{\"op\": \"update\", \"graph\": \"g\", \"updates\": \"av 2\\nt 1\\nav 2\"}}"
        )
        .unwrap();
        for expected in ["\"epoch\": 1", "\"epoch\": 2", "\"epochs\": 2"] {
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains(expected), "{line}");
        }

        writeln!(stream, "{{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 3}}").unwrap();
        let done = loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line.contains("\"event\": \"done\"") {
                break line.clone();
            }
        };
        assert!(done.contains("\"epoch\": 2"), "mine ran over the updated epoch: {done}");

        writeln!(stream, "{{\"op\": \"shutdown\"}}").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"status\": \"complete\""));
        assert!(handle.is_shutting_down());
        thread.join().unwrap();
    }
}
