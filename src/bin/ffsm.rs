//! `ffsm` — command-line front end for the support-measure framework.
//!
//! Subcommands:
//!
//! * `stats <graph.lg>` — structural statistics of a labeled graph file;
//! * `measure <graph.lg> --pattern <pattern.lg> [--measure NAME]` — compute one or all
//!   support measures of a pattern in a data graph;
//! * `match <graph.lg> --pattern <pattern.lg> [--backend B] [--naive] [--induced]
//!   [--threads K] [--limit N]` — enumerate the pattern's embeddings.  `--backend`
//!   picks `naive`, `candidate-space` (default) or `auto` (resolved per pattern from
//!   index statistics; the resolved engine is printed); `--naive` stays as shorthand
//!   for `--backend naive`.  The candidate-space engine reports candidate-space
//!   sizes and index build / search timings;
//! * `mine <graph.lg> --tau <t> [--measure NAME] [--max-edges N] [--threads K] [--parallel]
//!   [--backend B] [--bounds] [--stream] [--trace] [--deadline-ms MS] [--shards K
//!   [--max-resident M] [--partition vertex-range|label-aware]]` — run the
//!   frequent-subgraph miner.
//!   The default output is a table plus the run's typed completion status (complete vs which
//!   budget cap vs deadline); `--bounds` turns on bounds-first evaluation
//!   ([`MiningSession::bounds_first`]): certified support intervals decide patterns
//!   cheaply where possible (streamed `pattern` frames carry `support_lo` /
//!   `support_hi` / `certificate`, and a deadline-cut run emits one `undecided`
//!   frame per unresolved pattern); `--stream` switches to NDJSON events (one JSON object
//!   per line — `pattern`, `level`, `finished` — flushed as found), `--trace` implies
//!   `--stream` and follows each `level` frame with a `trace` frame of per-level
//!   observability deltas (search counters, per-phase wall time), and
//!   `--deadline-ms` bounds the run's wall-clock time.  `--shards K` mines through
//!   the partitioned out-of-core engine ([`ffsm::shard`]): the graph is split into
//!   K interior+halo shards (halo depth = `--max-edges`, so every pattern fits
//!   inside one shard) and results are bit-for-bit identical to the unsharded run;
//!   `--max-resident M` additionally spills shards to a temporary directory and
//!   keeps at most M in memory.  Sharded runs are batch-only (no
//!   `--stream`/`--trace`); invalid geometry (e.g. `--shards 0`) is a typed
//!   partition error (exit 2);
//! * `topk <graph.lg> --k <K> [--measure NAME] [--max-edges N]` — top-k mining;
//! * `update <graph.lg> --updates <u.gu> --tau <t> [--measure NAME] [--max-edges N]
//!   [--threads K] [--cold] [--stream]` — apply batches of graph updates (the `.gu`
//!   format of `ffsm_graph::io`: `av`/`rv`/`ae`/`re`/`rl` lines, `t` separators) as
//!   epochs of a versioned [`DynamicGraph`], re-mining each epoch **incrementally**
//!   (delta re-mine over the dirty region; `--cold` forces full re-mines for
//!   comparison) and printing one completion line per epoch; `--stream` switches to
//!   NDJSON events (`pattern` per frequent pattern, `epoch` per completed epoch;
//!   flushed per epoch — a delta re-mine answers most patterns from cache in one
//!   step, so the epoch, not the level, is the streaming unit here); `--trace`
//!   implies `--stream` and adds one `trace` frame per epoch, including the
//!   update-apply (delta-repair) wall time.
//!   A malformed or out-of-range updates file is a usage error (exit 1);
//! * `serve --graph NAME=PATH [--graph ...] [--listen ADDR] [--workers N] [--queue N]
//!   [--retain N] [--deadline-ms MS]` — run the multi-tenant mining server: the named
//!   graphs become a registry of versioned [`DynamicGraph`](ffsm::dynamic::DynamicGraph)s,
//!   clients speak the NDJSON-over-TCP protocol of `PROTOCOL.md` (ops `mine`, `update`,
//!   `list`, `stat`, `metrics`, `shutdown`), and Ctrl-C or a `shutdown` request drains gracefully
//!   (in-flight sessions are cancelled but still flush their terminal frames);
//! * `generate <kind> <out.lg> [--seed S]` — write one of the synthetic datasets to a
//!   `.lg` file (kinds: chemical, social, citation, protein, grid, star-overlap).
//!
//! Graphs use the plain-text `.lg` format of `ffsm_graph::io` (`v <id> <label>` /
//! `e <u> <v>` lines).  All mining goes through [`MiningSession`]; every failure is a
//! typed [`FfsmError`].  Exit code 0 on success, 1 on a usage error, 2 on an I/O,
//! parse or configuration error — including a mining run stopped by `--deadline-ms`
//! or cancellation, which exits 2 via [`FfsmError::DeadlineExceeded`] /
//! [`FfsmError::Cancelled`] after reporting the prefix it found.

use ffsm::core::measures::{MeasureConfig, MeasureKind};
use ffsm::core::{
    FfsmError, MeasureProfile, OccurrenceSet, OverlapAnalysis, OverlapBuild, OverlapConfig,
    OverlapKind,
};
use ffsm::graph::isomorphism::{EnumeratorBackend, IsoConfig};
use ffsm::graph::{datasets, generators, io, GraphStatistics, LabeledGraph, Pattern};
use ffsm::matching::{GraphIndex, Matcher};
use ffsm::miner::postprocess::maximal_patterns;
use ffsm::miner::{Completion, MiningEvent, MiningResult, MiningSession};
use ffsm::serve::{events, Server, ServerConfig};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

/// A CLI failure: either a usage problem (exit code 1) or a framework error
/// (exit code 2).
enum CliError {
    /// Wrong arguments; the message explains the expected usage.
    Usage(String),
    /// An I/O, parse or configuration error from the framework.
    Ffsm(FfsmError),
}

impl From<FfsmError> for CliError {
    fn from(e: FfsmError) -> Self {
        CliError::Ffsm(e)
    }
}

impl From<ffsm::graph::GraphError> for CliError {
    fn from(e: ffsm::graph::GraphError) -> Self {
        CliError::Ffsm(FfsmError::Graph(e))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(1);
    };
    let result = match command.as_str() {
        "stats" => cmd_stats(&args[1..]),
        "measure" => cmd_measure(&args[1..]),
        "match" => cmd_match(&args[1..]),
        "overlap" => cmd_overlap(&args[1..]),
        "mine" => cmd_mine(&args[1..]),
        "topk" => cmd_topk(&args[1..]),
        "update" => cmd_update(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(1)
        }
        Err(CliError::Ffsm(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: ffsm <command> [options]

commands:
  stats    <graph.lg>                              structural statistics of a graph
  measure  <graph.lg> --pattern <p.lg> [--measure NAME]
                                                   support measures of a pattern
  match    <graph.lg> --pattern <p.lg> [--backend naive|candidate-space|auto]
           [--naive] [--induced] [--threads K] [--limit N]
                                                   enumerate embeddings (--backend auto
                                                   picks the engine per pattern from
                                                   index statistics; --naive is short
                                                   for --backend naive)
  overlap  <graph.lg> --pattern <p.lg> [--kind NAME] [--naive] [--threads K]
                                                   overlap census / MIS per notion
                                                   (kinds: simple|harmful|structural|edge)
  mine     <graph.lg> --tau <t> [--measure NAME] [--max-edges N] [--threads K] [--parallel]
           [--backend naive|candidate-space|auto] [--bounds] [--stream] [--trace]
           [--deadline-ms MS]
           [--shards K [--max-resident M] [--partition vertex-range|label-aware]]
                                                   frequent-subgraph mining
                                                   (--bounds: bounds-first evaluation —
                                                   certified support intervals decide
                                                   patterns without full enumeration
                                                   when possible; interrupted runs
                                                   report undecided patterns with
                                                   their intervals;
                                                   --stream: NDJSON events, one per
                                                   line, flushed as found;
                                                   --trace: implies --stream, adds a
                                                   trace frame of per-level counter
                                                   and phase-time deltas;
                                                   --deadline-ms: wall-clock bound —
                                                   a deadline/cancel stop exits 2;
                                                   --shards K: partitioned mining,
                                                   identical results, batch only;
                                                   --max-resident M: spill shards,
                                                   keep at most M in memory)
  topk     <graph.lg> --k <K> [--measure NAME] [--max-edges N]
                                                   top-k pattern mining
  update   <graph.lg> --updates <u.gu> --tau <t> [--measure NAME] [--max-edges N]
           [--threads K] [--cold] [--stream] [--trace]
                                                   apply update batches as epochs and
                                                   re-mine each one incrementally
                                                   (--cold: full re-mine per epoch;
                                                   --stream: NDJSON epoch/pattern
                                                   events; --trace: implies --stream,
                                                   adds a trace frame per epoch incl.
                                                   delta-repair time;
                                                   bad update files exit 1)
  serve    --graph NAME=PATH [--graph NAME=PATH ...] [--listen ADDR] [--workers N]
           [--queue N] [--retain N] [--deadline-ms MS]
                                                   serve the named graphs over the
                                                   NDJSON-over-TCP protocol (see
                                                   PROTOCOL.md); Ctrl-C or a shutdown
                                                   request drains gracefully
  generate <kind> <out.lg> [--seed S]              write a synthetic dataset
                                                   (chemical|social|citation|protein|grid|star-overlap)

measure names: MNI, MNI-k, MI, MVC, MIS, MIES, nuMVC, nuMIES, MCP (default: all)";

fn load_graph(path: &str) -> Result<LabeledGraph, CliError> {
    io::load_lg(Path::new(path)).map_err(CliError::from)
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Parse a `--measure` name through the canonical [`MeasureKind`] `FromStr` impl.
fn parse_measure(name: &str) -> Result<MeasureKind, CliError> {
    name.parse::<MeasureKind>().map_err(CliError::from)
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let Some(path) = args.first() else {
        return Err(CliError::Usage("ffsm stats <graph.lg>".into()));
    };
    let graph = load_graph(path)?;
    println!("graph: {path}");
    println!("{}", GraphStatistics::compute(&graph));
    Ok(())
}

fn cmd_measure(args: &[String]) -> Result<(), CliError> {
    let Some(graph_path) = args.first() else {
        return Err(CliError::Usage(
            "ffsm measure <graph.lg> --pattern <pattern.lg> [--measure NAME]".into(),
        ));
    };
    let pattern_path = flag_value(args, "--pattern")
        .ok_or_else(|| CliError::Usage("--pattern <pattern.lg> is required".to_string()))?;
    let graph = load_graph(graph_path)?;
    let pattern: Pattern = load_graph(pattern_path)?;
    let config = MeasureConfig::default();
    let profile = MeasureProfile::compute_labeled(
        format!("{pattern_path} in {graph_path}"),
        &pattern,
        &graph,
        &config,
    );
    match flag_value(args, "--measure") {
        Some(name) => {
            let kind = parse_measure(name)?;
            let value = profile.value_of(kind).ok_or_else(|| {
                CliError::Ffsm(FfsmError::InvalidConfig(format!("measure {name} was not profiled")))
            })?;
            println!("{kind} = {value}");
        }
        None => {
            print!("{profile}");
            println!("bounding chain holds: {}", if profile.chain_holds() { "yes" } else { "NO" });
        }
    }
    Ok(())
}

fn cmd_match(args: &[String]) -> Result<(), CliError> {
    let Some(graph_path) = args.first() else {
        return Err(CliError::Usage(
            "ffsm match <graph.lg> --pattern <pattern.lg> [--backend naive|candidate-space|auto] \
             [--naive] [--induced] [--threads K] [--limit N]"
                .into(),
        ));
    };
    let pattern_path = flag_value(args, "--pattern")
        .ok_or_else(|| CliError::Usage("--pattern <pattern.lg> is required".to_string()))?;
    let graph = load_graph(graph_path)?;
    let pattern: Pattern = load_graph(pattern_path)?;
    let naive_flag = args.iter().any(|a| a == "--naive");
    let backend = match flag_value(args, "--backend") {
        Some(v) => {
            let b: EnumeratorBackend = v.parse().map_err(CliError::Usage)?;
            if naive_flag && b != EnumeratorBackend::Naive {
                return Err(CliError::Usage(format!(
                    "--naive conflicts with --backend {b} — drop one of the two"
                )));
            }
            b
        }
        None if naive_flag => EnumeratorBackend::Naive,
        None => EnumeratorBackend::CandidateSpace,
    };
    let induced = args.iter().any(|a| a == "--induced");
    let threads = match flag_value(args, "--threads") {
        Some(v) => {
            v.parse::<usize>().map_err(|_| CliError::Usage(format!("invalid --threads {v:?}")))?
        }
        None => 1,
    };
    if backend == EnumeratorBackend::Naive && flag_value(args, "--threads").is_some() {
        return Err(CliError::Usage(
            "--threads only applies to the candidate-space engine; the naive oracle is \
             sequential — drop one of --naive / --threads"
                .into(),
        ));
    }
    let max_embeddings = match flag_value(args, "--limit") {
        Some(v) => {
            v.parse::<usize>().map_err(|_| CliError::Usage(format!("invalid --limit {v:?}")))?
        }
        None => IsoConfig::default().max_embeddings,
    };
    let config = IsoConfig { max_embeddings, induced, threads, ..IsoConfig::default() };
    println!(
        "matching {pattern_path} ({} vertices, {} edges) in {graph_path} ({} vertices, {} edges)",
        pattern.num_vertices(),
        pattern.num_edges(),
        graph.num_vertices(),
        graph.num_edges()
    );
    if backend == EnumeratorBackend::Naive {
        let (result, search_time) = ffsm_bench_free_timed(|| {
            ffsm::graph::isomorphism::enumerate_embeddings(&pattern, &graph, config)
        });
        println!("engine:      naive oracle (sequential)");
        println!(
            "embeddings:  {}{}",
            result.len(),
            if result.complete { "" } else { " (truncated)" }
        );
        println!("search:      {search_time:?}");
        return Ok(());
    }
    let (index, index_time) = ffsm_bench_free_timed(|| GraphIndex::build(&graph));
    if backend == EnumeratorBackend::Auto {
        let resolved = ffsm::matching::auto_backend(&pattern, &index);
        println!("engine:      auto -> {resolved}");
        if resolved == EnumeratorBackend::Naive {
            let (result, search_time) = ffsm_bench_free_timed(|| {
                ffsm::graph::isomorphism::enumerate_embeddings(&pattern, &graph, config)
            });
            println!("index build: {index_time:?}");
            println!(
                "embeddings:  {}{}",
                result.len(),
                if result.complete { "" } else { " (truncated)" }
            );
            println!("search:      {search_time:?}");
            return Ok(());
        }
    }
    let (matcher, space_time) = ffsm_bench_free_timed(|| Matcher::new(&pattern, &graph, &index));
    let (result, search_time) = ffsm_bench_free_timed(|| matcher.enumerate(config));
    println!(
        "engine:      candidate-space ({} thread{})",
        if threads == 0 { "all-core".to_string() } else { threads.to_string() },
        if threads == 1 { "" } else { "s" }
    );
    let space = matcher.space();
    println!("index build: {index_time:?}");
    println!(
        "candidates:  {} total after {} refinement sweep(s)",
        space.total_size(),
        space.refinement_rounds()
    );
    for (u, (&initial, &refined)) in space.initial_sizes().iter().zip(&space.sizes()).enumerate() {
        println!("  pattern vertex {u}: {initial} -> {refined}");
    }
    println!("space build: {space_time:?}");
    println!("embeddings:  {}{}", result.len(), if result.complete { "" } else { " (truncated)" });
    println!("search:      {search_time:?}");
    Ok(())
}

/// Time one closure (the bench crate's helper, inlined so the CLI does not depend
/// on `ffsm-bench`).
fn ffsm_bench_free_timed<T>(f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed())
}

fn cmd_overlap(args: &[String]) -> Result<(), CliError> {
    let Some(graph_path) = args.first() else {
        return Err(CliError::Usage(
            "ffsm overlap <graph.lg> --pattern <pattern.lg> [--kind NAME] [--naive] [--threads K]"
                .into(),
        ));
    };
    let pattern_path = flag_value(args, "--pattern")
        .ok_or_else(|| CliError::Usage("--pattern <pattern.lg> is required".to_string()))?;
    let graph = load_graph(graph_path)?;
    let pattern: Pattern = load_graph(pattern_path)?;
    let build = if args.iter().any(|a| a == "--naive") {
        OverlapBuild::Naive
    } else {
        OverlapBuild::Indexed
    };
    let threads = match flag_value(args, "--threads") {
        Some(v) => {
            v.parse::<usize>().map_err(|_| CliError::Usage(format!("invalid --threads {v:?}")))?
        }
        None => 1,
    };
    if build == OverlapBuild::Naive && flag_value(args, "--threads").is_some() {
        return Err(CliError::Usage(
            "--threads only applies to the indexed builder; the naive all-pairs oracle is \
             sequential — drop one of --naive / --threads"
                .into(),
        ));
    }
    let occurrences =
        OccurrenceSet::enumerate(&pattern, &graph, MeasureConfig::default().iso_config);
    let analysis = OverlapAnalysis::with_config(&occurrences, OverlapConfig { build, threads });
    let budget = ffsm::hypergraph::SearchBudget::default();
    println!("occurrences: {}", occurrences.num_occurrences());
    let kinds: Vec<OverlapKind> = match flag_value(args, "--kind") {
        // `--kind` names one notion through the canonical `OverlapKind` FromStr impl.
        Some(name) => vec![name.parse::<OverlapKind>()?],
        None => OverlapKind::all().to_vec(),
    };
    println!("{:<12} {:>14} {:>10}", "notion", "overlap pairs", "MIS");
    for kind in kinds {
        println!(
            "{:<12} {:>14} {:>10}",
            kind.name(),
            analysis.overlap_edge_count(kind),
            analysis.mis_under(kind, budget)
        );
    }
    Ok(())
}

fn mining_params(args: &[String]) -> Result<(MeasureKind, usize), CliError> {
    let measure = match flag_value(args, "--measure") {
        Some(name) => parse_measure(name)?,
        None => MeasureKind::Mni,
    };
    let max_edges = match flag_value(args, "--max-edges") {
        Some(v) => {
            v.parse::<usize>().map_err(|_| CliError::Usage(format!("invalid --max-edges {v:?}")))?
        }
        None => 3,
    };
    Ok((measure, max_edges))
}

fn print_frequent(patterns: &[ffsm::miner::FrequentPattern]) {
    println!("{:<6} {:>8} {:>6} {:>6} {:>12}", "rank", "support", "nodes", "edges", "occurrences");
    for (rank, p) in patterns.iter().enumerate() {
        println!(
            "{:<6} {:>8.1} {:>6} {:>6} {:>12}",
            rank + 1,
            p.support,
            p.pattern.num_vertices(),
            p.pattern.num_edges(),
            p.num_occurrences
        );
    }
}

/// Map an interrupted completion to its typed error (the documented non-zero exit
/// path for `--deadline-ms` / cancellation); budget-capped and complete runs are
/// successes — their status is in the output.
fn completion_exit(completion: Completion, deadline: Option<Duration>) -> Result<(), CliError> {
    match completion {
        Completion::DeadlineExceeded => {
            Err(CliError::Ffsm(FfsmError::DeadlineExceeded(deadline.unwrap_or_default())))
        }
        Completion::Cancelled => Err(CliError::Ffsm(FfsmError::Cancelled)),
        Completion::Complete | Completion::BudgetExhausted(_) => Ok(()),
    }
}

/// Drive a session as NDJSON: one JSON object per line, flushed the moment the
/// event happens, so a consumer sees patterns while the miner is still running.
/// Frames come from the shared serializer in [`ffsm::serve::events`] — the exact
/// bytes a server session writes to its socket.  With `trace`, every `level`
/// frame is followed by a `trace` frame carrying the level's observability
/// deltas (search counters, per-phase wall time).
fn stream_ndjson(session: MiningSession, trace: bool) -> Result<Completion, CliError> {
    // The token lets a vanished consumer stop the miner the same way a server
    // session does: cancel, don't unwind.
    let token = ffsm::graph::CancelToken::new();
    let session = if trace { session.metrics(true) } else { session };
    let stream = session.cancel_token(token.clone()).stream()?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut completion = Completion::Complete;
    // Level stats snapshots are cumulative; trace frames report per-level deltas.
    let mut prev_counters = ffsm::miner::SessionCounters::default();
    let mut prev_phases = ffsm::miner::PhaseTimes::default();
    for event in stream {
        let mut frames: Vec<events::Frame> = Vec::with_capacity(2);
        match event? {
            MiningEvent::Pattern(p) => frames.push(events::pattern_frame(&p, None)),
            MiningEvent::Undecided(u) => frames.push(events::undecided_frame(&u)),
            MiningEvent::LevelCompleted(level) => {
                frames.push(events::level_frame(&level));
                if trace {
                    let counters = level.stats.counters.saturating_sub(&prev_counters);
                    let phases = level.stats.phase_timings.saturating_sub(&prev_phases);
                    frames.push(events::trace_frame(level.level, &counters, &phases));
                    prev_counters = level.stats.counters;
                    prev_phases = level.stats.phase_timings;
                }
            }
            MiningEvent::Finished(summary) => {
                completion = summary.completion;
                frames.push(events::finished_frame(&summary));
            }
        }
        for frame in frames {
            match events::write_frame(&mut out, &frame.finish()) {
                Ok(events::FrameWrite::Written) => {}
                // A consumer closing the pipe early (`... --stream | head`) is a
                // normal way to stop consuming, not a mining failure: cancel the
                // session and end the stream cleanly so exit code 2 keeps meaning
                // "run interrupted", nothing else.
                Ok(events::FrameWrite::Disconnected) => {
                    token.cancel();
                    return Ok(Completion::Complete);
                }
                Err(e) => {
                    token.cancel();
                    return Err(CliError::Ffsm(FfsmError::Graph(ffsm::graph::GraphError::Io(
                        e.to_string(),
                    ))));
                }
            }
        }
    }
    Ok(completion)
}

fn cmd_mine(args: &[String]) -> Result<(), CliError> {
    let Some(graph_path) = args.first() else {
        return Err(CliError::Usage(
            "ffsm mine <graph.lg> --tau <t> [--measure NAME] [--max-edges N] [--threads K] \
             [--parallel] [--backend naive|candidate-space|auto] [--bounds] [--stream] \
             [--trace] [--deadline-ms MS]"
                .into(),
        ));
    };
    let tau: f64 = flag_value(args, "--tau")
        .ok_or_else(|| CliError::Usage("--tau <threshold> is required".to_string()))?
        .parse()
        .map_err(|_| CliError::Usage("invalid --tau value".to_string()))?;
    let (measure, max_edges) = mining_params(args)?;
    let threads = match flag_value(args, "--threads") {
        Some(v) => {
            v.parse::<usize>().map_err(|_| CliError::Usage(format!("invalid --threads {v:?}")))?
        }
        // `--parallel` without an explicit count means one worker per core.
        None if args.iter().any(|a| a == "--parallel") => 0,
        None => 1,
    };
    let deadline = match flag_value(args, "--deadline-ms") {
        Some(v) => Some(Duration::from_millis(v.parse::<u64>().map_err(|_| {
            CliError::Usage(format!("invalid --deadline-ms {v:?} (expected milliseconds)"))
        })?)),
        None => None,
    };
    let backend = match flag_value(args, "--backend") {
        Some(v) => v.parse::<EnumeratorBackend>().map_err(CliError::Usage)?,
        None => EnumeratorBackend::default(),
    };
    let trace = args.iter().any(|a| a == "--trace");
    let stream = trace || args.iter().any(|a| a == "--stream");
    let bounds = args.iter().any(|a| a == "--bounds");
    if let Some(v) = flag_value(args, "--shards") {
        if bounds {
            return Err(CliError::Usage(
                "--bounds is unsharded-only: it cannot be combined with --shards".into(),
            ));
        }
        let shards =
            v.parse::<usize>().map_err(|_| CliError::Usage(format!("invalid --shards {v:?}")))?;
        if stream {
            return Err(CliError::Usage(
                "--shards is batch-only: it cannot be combined with --stream/--trace".into(),
            ));
        }
        let max_resident = match flag_value(args, "--max-resident") {
            Some(v) => Some(
                v.parse::<usize>()
                    .map_err(|_| CliError::Usage(format!("invalid --max-resident {v:?}")))?,
            ),
            None => None,
        };
        let strategy = match flag_value(args, "--partition") {
            Some(name) => name.parse::<ffsm::shard::PartitionStrategy>()?,
            None => ffsm::shard::PartitionStrategy::VertexRange,
        };
        return mine_sharded(
            graph_path,
            tau,
            measure,
            max_edges,
            threads,
            backend,
            deadline,
            shards,
            strategy,
            max_resident,
        );
    }
    if flag_value(args, "--max-resident").is_some() {
        return Err(CliError::Usage("--max-resident requires --shards".into()));
    }
    // The CLI owns the loaded graph: move it into the prepared handle instead of
    // paying `MiningSession::on`'s defensive clone.
    let prepared = ffsm::miner::PreparedGraph::new(load_graph(graph_path)?);
    let mut session = MiningSession::over(&prepared)
        .measure(measure)
        .min_support(tau)
        .max_edges(max_edges)
        .threads(threads)
        .enumerator(backend)
        .bounds_first(bounds);
    if let Some(d) = deadline {
        session = session.deadline(d);
    }
    if stream {
        let completion = stream_ndjson(session, trace)?;
        return completion_exit(completion, deadline);
    }
    let result: MiningResult = session.run()?;
    println!(
        "{} frequent patterns under {measure} at tau = {tau} ({} maximal), {} candidates evaluated in {:?}",
        result.len(),
        maximal_patterns(&result).len(),
        result.stats.candidates_evaluated,
        result.stats.elapsed
    );
    // Why the run stopped — a capped run is no longer indistinguishable from a
    // complete one.
    println!("status: {}", result.completion());
    print_frequent(&result.patterns);
    // A bounds-first run cut short still knows what it was unsure about: one
    // line per open candidate with its certified interval.
    if !result.undecided.is_empty() {
        println!("{} undecided patterns (certified support intervals):", result.undecided.len());
        for u in &result.undecided {
            println!(
                "  [{}, {}] via {}: {} vertices, {} edges",
                u.interval.lo,
                u.interval.hi,
                u.certificate,
                u.pattern.num_vertices(),
                u.pattern.num_edges()
            );
        }
    }
    completion_exit(result.completion(), deadline)
}

/// The `--shards` path of `cmd_mine`: build the partition (halo depth =
/// `max_edges`, so every minable pattern fits inside one shard), optionally
/// spill to a temporary directory, and mine through [`ShardedSession`] — whose
/// results are bit-for-bit identical to the unsharded engine's.
#[allow(clippy::too_many_arguments)]
fn mine_sharded(
    graph_path: &str,
    tau: f64,
    measure: MeasureKind,
    max_edges: usize,
    threads: usize,
    backend: EnumeratorBackend,
    deadline: Option<Duration>,
    shards: usize,
    strategy: ffsm::shard::PartitionStrategy,
    max_resident: Option<usize>,
) -> Result<(), CliError> {
    use ffsm::shard::{PartitionSpec, PartitionedGraph};
    let graph = load_graph(graph_path)?;
    let spec = PartitionSpec { num_shards: shards, halo_depth: max_edges, strategy };
    let partitioned = PartitionedGraph::build(&graph, spec)?;
    drop(graph); // from here on, the shards are the graph
    let mut spill_dir = None;
    if let Some(cap) = max_resident {
        let dir = std::env::temp_dir().join(format!("ffsm-shards-{}", std::process::id()));
        partitioned.spill_to_disk(&dir, cap)?;
        spill_dir = Some(dir);
    }
    let partitioned = std::sync::Arc::new(partitioned);
    let mut session = ffsm::miner::ShardedSession::over(&partitioned)
        .measure(measure)
        .min_support(tau)
        .max_edges(max_edges)
        .threads(threads)
        .enumerator(backend);
    if let Some(d) = deadline {
        session = session.deadline(d);
    }
    let outcome = session.run_detailed();
    if let Some(dir) = spill_dir {
        let _ = std::fs::remove_dir_all(dir); // best-effort temp cleanup
    }
    let (result, run) = outcome?;
    println!(
        "{} frequent patterns under {measure} at tau = {tau} ({} maximal), {} candidates evaluated in {:?}",
        result.len(),
        maximal_patterns(&result).len(),
        result.stats.candidates_evaluated,
        result.stats.elapsed
    );
    println!(
        "sharded over {} shards ({strategy}, halo {max_edges}): {} cross-shard occurrences \
         deduplicated, {} shard loads, {} shards / {} bytes resident at peak",
        partitioned.num_shards(),
        run.cross_shard_occurrences,
        run.store.loads,
        run.store.resident_shards,
        run.store.peak_resident_bytes,
    );
    println!("status: {}", result.completion());
    print_frequent(&result.patterns);
    completion_exit(result.completion(), deadline)
}

fn cmd_topk(args: &[String]) -> Result<(), CliError> {
    let Some(graph_path) = args.first() else {
        return Err(CliError::Usage(
            "ffsm topk <graph.lg> --k <K> [--measure NAME] [--max-edges N]".into(),
        ));
    };
    let k: usize = flag_value(args, "--k")
        .ok_or_else(|| CliError::Usage("--k <count> is required".to_string()))?
        .parse()
        .map_err(|_| CliError::Usage("invalid --k value".to_string()))?;
    let (measure, max_edges) = mining_params(args)?;
    let prepared = ffsm::miner::PreparedGraph::new(load_graph(graph_path)?);
    let result = MiningSession::over(&prepared)
        .measure(measure)
        .min_support(1.0)
        .max_edges(max_edges)
        .top_k(k)
        .run()?;
    println!(
        "top-{k} patterns under {measure} (final threshold {:.1}, {} candidates evaluated)",
        result.final_threshold, result.stats.candidates_evaluated
    );
    println!("status: {}", result.completion());
    print_frequent(&result.patterns);
    Ok(())
}

/// Report one mined epoch: human-readable line, or NDJSON `pattern` events plus
/// one `epoch` event when streaming (with an extra `trace` frame before the
/// `epoch` frame when `trace` carries the epoch's phase times).  Returns
/// `Ok(false)` when a streaming consumer closed the pipe (`... --stream | head`)
/// — the caller then stops cleanly, exactly like `ffsm mine --stream`.
fn report_epoch(
    epoch: usize,
    delta_summary: Option<String>,
    result: &MiningResult,
    stream: bool,
    trace: Option<&ffsm::miner::PhaseTimes>,
) -> Result<bool, CliError> {
    let stats = &result.stats;
    if !stream {
        let delta = delta_summary.map(|s| format!(" ({s})")).unwrap_or_default();
        println!(
            "epoch {epoch}{delta}: {} patterns, status {}, {} evaluated ({} reused), {:?}",
            result.len(),
            result.completion(),
            stats.candidates_evaluated,
            stats.evaluations_reused,
            stats.elapsed
        );
        return Ok(true);
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    // Same serializer, same teardown contract as `mine --stream` and the server.
    let mut emit = |frame: events::Frame| -> Result<bool, CliError> {
        match events::write_frame(&mut out, &frame.finish()) {
            Ok(events::FrameWrite::Written) => Ok(true),
            Ok(events::FrameWrite::Disconnected) => Ok(false),
            Err(e) => {
                Err(CliError::Ffsm(FfsmError::Graph(ffsm::graph::GraphError::Io(e.to_string()))))
            }
        }
    };
    for p in &result.patterns {
        if !emit(events::pattern_frame(p, Some(epoch)))? {
            return Ok(false);
        }
    }
    // Each epoch is its own run, so its stats are already per-epoch deltas; the
    // caller's phase block additionally carries the update-apply (delta-repair)
    // wall time, which happens outside the mining session.
    if let Some(phases) = trace {
        if !emit(events::trace_frame(epoch, &result.stats.counters, phases))? {
            return Ok(false);
        }
    }
    emit(events::epoch_frame(epoch, result))
}

fn cmd_update(args: &[String]) -> Result<(), CliError> {
    let Some(graph_path) = args.first() else {
        return Err(CliError::Usage(
            "ffsm update <graph.lg> --updates <u.gu> --tau <t> [--measure NAME] [--max-edges N] \
             [--threads K] [--cold] [--stream] [--trace]"
                .into(),
        ));
    };
    let updates_path = flag_value(args, "--updates")
        .ok_or_else(|| CliError::Usage("--updates <u.gu> is required".to_string()))?;
    let tau: f64 = flag_value(args, "--tau")
        .ok_or_else(|| CliError::Usage("--tau <threshold> is required".to_string()))?
        .parse()
        .map_err(|_| CliError::Usage("invalid --tau value".to_string()))?;
    let (measure, max_edges) = mining_params(args)?;
    let threads = match flag_value(args, "--threads") {
        Some(v) => {
            v.parse::<usize>().map_err(|_| CliError::Usage(format!("invalid --threads {v:?}")))?
        }
        None => 1,
    };
    let cold = args.iter().any(|a| a == "--cold");
    let trace = args.iter().any(|a| a == "--trace");
    let stream = trace || args.iter().any(|a| a == "--stream");
    // Malformed update files are usage errors (exit 1), keeping exit 2 for
    // mining-side failures — the typed parse error still names the line.
    let batches = io::load_updates(Path::new(updates_path))
        .map_err(|e| CliError::Usage(format!("bad updates file {updates_path}: {e}")))?;

    let mut store = ffsm::dynamic::DynamicGraph::new(load_graph(graph_path)?);
    let config = MiningSession::over(store.current().prepared())
        .measure(measure)
        .min_support(tau)
        .max_edges(max_edges)
        .threads(threads)
        .metrics(trace)
        .config()
        .clone();
    let mut miner = ffsm::dynamic::IncrementalMiner::new(config);
    if !stream {
        println!(
            "mining {graph_path} under {measure} at tau = {tau} through {} update batch(es) from \
             {updates_path}{}",
            batches.len(),
            if cold { " (cold re-mines)" } else { "" }
        );
    }
    let mut last = miner.mine(store.current()).map_err(CliError::Ffsm)?;
    let phases = last.stats.phase_timings;
    if !report_epoch(0, None, &last, stream, trace.then_some(&phases))? {
        return Ok(());
    }
    for batch in &batches {
        // Out-of-range updates are usage errors too: the file asked for an
        // impossible edit, mining never started for this epoch.
        let apply_start = std::time::Instant::now();
        let snapshot = match store.apply(batch) {
            Ok(snapshot) => snapshot.clone(),
            Err(e) => return Err(CliError::Usage(format!("bad updates file {updates_path}: {e}"))),
        };
        let apply_nanos = apply_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if cold {
            miner.reset();
        }
        last = miner.mine(&snapshot).map_err(CliError::Ffsm)?;
        let summary = snapshot.delta().map(|d| d.summary());
        let mut phases = last.stats.phase_timings;
        phases.add_nanos(ffsm::miner::Phase::DeltaRepair, apply_nanos);
        if !report_epoch(snapshot.epoch(), summary, &last, stream, trace.then_some(&phases))? {
            return Ok(());
        }
        // Keep only what chaining needs; old epochs remain valid for readers.
        store.retain_recent(2);
    }
    if !stream {
        print_frequent(&last.patterns);
    }
    Ok(())
}

/// SIGINT (Ctrl-C) latch for `ffsm serve`, registered through the C `signal`
/// entry point so the binary needs no extra dependency.  The handler only sets
/// an atomic flag (the one async-signal-safe thing worth doing); a watcher
/// thread turns the flag into a graceful drain.
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigint(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// POSIX `SIGINT`.
    const SIGINT: i32 = 2;

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    const SERVE_USAGE: &str = "ffsm serve --graph NAME=PATH [--graph NAME=PATH ...] \
         [--listen ADDR] [--workers N] [--queue N] [--retain N] [--deadline-ms MS]";
    let mut graphs: Vec<(&str, &str)> = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        if arg == "--graph" {
            let spec = args.get(i + 1).ok_or_else(|| {
                CliError::Usage(format!("--graph needs NAME=PATH\n{SERVE_USAGE}"))
            })?;
            let (name, path) = spec.split_once('=').ok_or_else(|| {
                CliError::Usage(format!("--graph expects NAME=PATH, got {spec:?}"))
            })?;
            graphs.push((name, path));
        }
    }
    if graphs.is_empty() {
        return Err(CliError::Usage(format!("at least one --graph is required\n{SERVE_USAGE}")));
    }
    let listen = flag_value(args, "--listen").unwrap_or("127.0.0.1:7878");
    let parse_count = |flag: &str, default: usize| -> Result<usize, CliError> {
        match flag_value(args, flag) {
            Some(v) => v.parse().map_err(|_| CliError::Usage(format!("invalid {flag} {v:?}"))),
            None => Ok(default),
        }
    };
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        workers: parse_count("--workers", defaults.workers)?,
        queue_capacity: parse_count("--queue", defaults.queue_capacity)?,
        retain_epochs: parse_count("--retain", defaults.retain_epochs)?,
        default_deadline: match flag_value(args, "--deadline-ms") {
            Some(v) => Some(Duration::from_millis(v.parse::<u64>().map_err(|_| {
                CliError::Usage(format!("invalid --deadline-ms {v:?} (expected milliseconds)"))
            })?)),
            None => None,
        },
        ..defaults
    };
    let server = Server::bind(listen, config)?;
    for (name, path) in &graphs {
        server.registry().register(name, load_graph(path)?)?;
    }
    let addr = server.local_addr()?;
    println!(
        "serving {} graph(s) on {addr} — NDJSON protocol (see PROTOCOL.md); \
         Ctrl-C or {{\"op\": \"shutdown\"}} drains gracefully",
        graphs.len()
    );
    sigint::install();
    let handle = server.handle();
    let watcher = std::thread::spawn(move || {
        // Turn the SIGINT latch into a drain; exits quietly when the drain
        // started elsewhere (a client's `shutdown` request).
        while !handle.is_shutting_down() {
            if sigint::INTERRUPTED.load(std::sync::atomic::Ordering::SeqCst) {
                handle.shutdown();
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });
    let outcome = server.run();
    let _ = watcher.join();
    outcome?;
    println!("drained; all sessions flushed");
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    let (Some(kind), Some(out)) = (args.first(), args.get(1)) else {
        return Err(CliError::Usage("ffsm generate <kind> <out.lg> [--seed S]".into()));
    };
    let seed: u64 = match flag_value(args, "--seed") {
        Some(v) => v.parse().map_err(|_| CliError::Usage("invalid --seed value".to_string()))?,
        None => 42,
    };
    let graph = match kind.as_str() {
        "chemical" => datasets::chemical_like(80, seed).graph,
        "social" => datasets::social_like(400, seed).graph,
        "citation" => datasets::citation_like(400, seed).graph,
        "protein" => datasets::protein_like(10, 8, seed).graph,
        "grid" => generators::grid(20, 20, 4),
        "star-overlap" => generators::star_overlap(8, 32),
        other => {
            return Err(CliError::Usage(format!(
                "unknown dataset kind {other:?} (expected chemical, social, citation, protein, grid or star-overlap)"
            )))
        }
    };
    io::save_lg(&graph, Path::new(out))?;
    println!(
        "wrote {} ({} vertices, {} edges, {} labels)",
        out,
        graph.num_vertices(),
        graph.num_edges(),
        graph.distinct_labels().len()
    );
    Ok(())
}
