//! The workspace-wide typed error, [`FfsmError`].
//!
//! Every public fallible surface of the framework — graph loading and parsing
//! (`ffsm-graph::io`), measure selection (`MeasureKind::from_str`), and mining
//! session configuration / execution (`ffsm-miner`) — reports through this one enum,
//! so callers match on variants instead of scraping strings or catching panics.

use ffsm_graph::{GraphError, UpdateError};

/// Errors produced by the support-measure framework and the miner.
#[derive(Debug, Clone, PartialEq)]
pub enum FfsmError {
    /// A graph-layer error: unknown vertex, self loop, `.lg` parse or I/O failure.
    Graph(GraphError),
    /// A graph-update batch failed validation or application: the payload names
    /// the offending update, its index in the batch and the underlying cause.
    /// Raised by the dynamic-graph subsystem (`PreparedGraph::apply_updates`,
    /// `ffsm-dynamic`).
    Update(UpdateError),
    /// A configuration value that makes the requested computation meaningless
    /// (zero-vertex pattern budget, `top_k(0)`, `MNI-0`, …).  The message names the
    /// offending parameter.
    InvalidConfig(String),
    /// A measure name that [`crate::MeasureKind`] does not know.
    UnknownMeasure(String),
    /// An overlap-notion name that [`crate::OverlapKind`] does not know.
    UnknownOverlap(String),
    /// A measure that is not anti-monotone was requested for threshold pruning,
    /// which would make the miner unsound (Definition 2.2.2 of the paper).  The
    /// payload is the measure's display name.
    NotAntiMonotone(String),
    /// A mining run was cancelled through its `CancelToken` before completing.
    /// Raised by callers that treat a partial result as a failure (the CLI exits
    /// non-zero on it); the streaming API reports the same condition as a
    /// `Completion::Cancelled` status with the deterministic result prefix intact.
    Cancelled,
    /// A mining run exceeded its wall-clock deadline.  The payload is the
    /// configured deadline.  Like [`FfsmError::Cancelled`], this is the error-channel
    /// form of `Completion::DeadlineExceeded`.
    DeadlineExceeded(std::time::Duration),
    /// A request named a graph the serving registry does not hold.  The payload
    /// is the requested name.
    UnknownGraph(String),
    /// The serving scheduler's admission queue was full — the typed `429`: the
    /// request was never admitted, nothing was computed, and the client should
    /// back off and retry.  The payload is the queue capacity that was exceeded.
    Overloaded {
        /// Admission-queue capacity in force when the request was rejected.
        capacity: usize,
    },
    /// A malformed wire-protocol frame: not a JSON object, an unknown `op`, a
    /// missing or ill-typed field.  The message names the offending part.
    Protocol(String),
    /// An invalid graph-partition specification (zero shards, a halo deeper
    /// than the graph, a shard spill directory that cannot be written) or a
    /// shard-store failure while spilling / reloading a shard.  The message
    /// names the offending parameter or file.
    Partition(String),
    /// The server is draining for shutdown and no longer admits requests.
    ShuttingDown,
}

impl std::fmt::Display for FfsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FfsmError::Graph(e) => write!(f, "{e}"),
            FfsmError::Update(e) => write!(f, "invalid graph update: {e}"),
            FfsmError::InvalidConfig(message) => write!(f, "invalid configuration: {message}"),
            FfsmError::UnknownMeasure(name) => write!(
                f,
                "unknown measure {name:?} (expected MNI, MNI-k, MI, MVC, MIS, MIES, nuMVC, nuMIES or MCP)"
            ),
            FfsmError::UnknownOverlap(name) => write!(
                f,
                "unknown overlap notion {name:?} (expected simple, harmful, structural or edge)"
            ),
            FfsmError::NotAntiMonotone(name) => write!(
                f,
                "measure {name} is not anti-monotone, so threshold pruning would be unsound; \
                 pick an anti-monotone measure for mining"
            ),
            FfsmError::Cancelled => write!(f, "mining run was cancelled before completing"),
            FfsmError::DeadlineExceeded(deadline) => {
                write!(f, "mining run exceeded its {deadline:?} deadline")
            }
            FfsmError::UnknownGraph(name) => {
                write!(f, "unknown graph {name:?}: not registered with the serving registry")
            }
            FfsmError::Overloaded { capacity } => write!(
                f,
                "server overloaded: admission queue (capacity {capacity}) is full — back off and retry"
            ),
            FfsmError::Protocol(message) => write!(f, "protocol error: {message}"),
            FfsmError::Partition(message) => write!(f, "partition error: {message}"),
            FfsmError::ShuttingDown => {
                write!(f, "server is shutting down and no longer admits requests")
            }
        }
    }
}

impl std::error::Error for FfsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FfsmError::Graph(e) => Some(e),
            FfsmError::Update(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for FfsmError {
    fn from(e: GraphError) -> Self {
        FfsmError::Graph(e)
    }
}

impl From<UpdateError> for FfsmError {
    fn from(e: UpdateError) -> Self {
        FfsmError::Update(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FfsmError::UnknownMeasure("bogus".into());
        assert!(e.to_string().contains("bogus"));
        let e = FfsmError::UnknownOverlap("fuzzy".into());
        assert!(e.to_string().contains("fuzzy") && e.to_string().contains("structural"));
        let e = FfsmError::NotAntiMonotone("occurrences".into());
        assert!(e.to_string().contains("anti-monotone"));
        let e: FfsmError = GraphError::SelfLoop(3).into();
        assert!(matches!(e, FfsmError::Graph(GraphError::SelfLoop(3))));
        assert!(e.to_string().contains("self loop"));
        let e: FfsmError = UpdateError {
            index: 4,
            update: ffsm_graph::GraphUpdate::RemoveVertex(9),
            source: GraphError::UnknownVertex(9),
        }
        .into();
        assert!(matches!(e, FfsmError::Update(_)));
        assert!(e.to_string().contains("update 4") && e.to_string().contains("rv 9"));
    }

    #[test]
    fn serving_variants_display_their_payloads() {
        let e = FfsmError::UnknownGraph("orders".into());
        assert!(e.to_string().contains("orders") && e.to_string().contains("registry"));
        let e = FfsmError::Overloaded { capacity: 16 };
        assert!(e.to_string().contains("16") && e.to_string().contains("overloaded"));
        let e = FfsmError::Protocol("missing field \"op\"".into());
        assert!(e.to_string().contains("missing field"));
        assert!(FfsmError::ShuttingDown.to_string().contains("shutting down"));
        let e = FfsmError::Partition("shards must be at least 1 (got 0)".into());
        assert!(e.to_string().contains("partition error") && e.to_string().contains("got 0"));
    }
}
