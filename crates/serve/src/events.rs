//! The NDJSON event serializer — single source of truth for the wire format.
//!
//! Every streaming surface of the framework speaks the same newline-delimited
//! JSON vocabulary: `ffsm mine --stream` and `ffsm update --stream` on stdout,
//! and the `ffsm serve` TCP protocol on sockets.  Before this module each path
//! hand-assembled its lines, so the formats could (and did) only agree by
//! discipline; now every frame is composed here and the consumers cannot drift.
//!
//! ## Vocabulary
//!
//! * `pattern` — one frequent pattern (support, sizes, occurrence count, the
//!   `.lg` text of the pattern itself), optionally tagged with the epoch that
//!   produced it (the `update` streaming path); bounds-first sessions add the
//!   certified `support_lo`/`support_hi` interval and its `certificate`;
//! * `undecided` — one candidate a bounds-first session could not decide before
//!   an interruption, with its certified support interval;
//! * `level` — one fully processed pattern-growth level;
//! * `finished` — the typed end of one mining run ([`RunSummary`]);
//! * `epoch` — one completed epoch of an incremental re-mine, or (on the server)
//!   one committed update batch;
//! * `metric` — one named metric from the server's registry (counter, gauge or
//!   histogram), answering the `metrics` protocol op;
//! * `trace` — one per-level observability snapshot (counter and phase-time
//!   deltas), emitted by `ffsm mine --trace` / `ffsm update --trace`;
//! * `error` — a typed [`FfsmError`], as a stable machine `code` plus the
//!   human message;
//! * `done` — the server's per-request terminator (exactly one per request).
//!
//! Frames are built with [`Frame`], which writes keys in call order — callers
//! append protocol-level fields (request ids, graph names) to the shared event
//! bodies without re-stating the format.
//!
//! ## Disconnect handling
//!
//! [`write_frame`] is the one way frames reach a consumer.  It distinguishes a
//! consumer that *went away* (broken pipe, connection reset — a normal way to
//! stop consuming) from a genuine I/O failure, so every streaming path tears
//! down the same way: cancel the session's `CancelToken` and stop, never
//! unwind.

use ffsm_core::FfsmError;
use ffsm_graph::io;
use ffsm_miner::{
    FrequentPattern, LevelSummary, MiningResult, Phase, PhaseTimes, RunSummary, SessionCounters,
    UndecidedPattern,
};
use ffsm_obs::HistogramSnapshot;
use std::io::Write;

/// An in-progress NDJSON frame: one JSON object, keys in insertion order.
#[derive(Debug, Clone)]
pub struct Frame {
    buf: String,
}

impl Frame {
    /// Start a frame with its `event` discriminator — always the first key, so
    /// consumers can dispatch on a prefix.
    pub fn event(name: &str) -> Frame {
        let mut frame = Frame { buf: String::with_capacity(128) };
        frame.buf.push('{');
        frame.push_key("event");
        frame.buf.push_str(&json_string(name));
        frame
    }

    fn push_key(&mut self, key: &str) {
        if !self.buf.ends_with('{') {
            self.buf.push_str(", ");
        }
        self.buf.push_str(&json_string(key));
        self.buf.push_str(": ");
    }

    /// Append a raw (unquoted) JSON value — numbers, booleans, `null`.
    pub fn raw(mut self, key: &str, value: impl std::fmt::Display) -> Frame {
        self.push_key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Append an escaped, quoted string value.
    pub fn str(mut self, key: &str, value: &str) -> Frame {
        self.push_key(key);
        self.buf.push_str(&json_string(value));
        self
    }

    /// Append the request id, if the client supplied one.  A no-op for `None`,
    /// so CLI frames (which have no request ids) stay byte-identical.
    pub fn id(self, id: Option<u64>) -> Frame {
        match id {
            Some(id) => self.raw("id", id),
            None => self,
        }
    }

    /// Close the object and return the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Escape a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a JSON string literal (escaped and quoted).
pub fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// One frequent pattern.  `epoch` tags the pattern with the epoch that produced
/// it (the `update` streaming path); `None` omits the field (the `mine` path).
/// A pattern from a bounds-first session additionally carries its certified
/// `support_lo`/`support_hi` interval and the `certificate` that justified it;
/// the fields are omitted otherwise, so plain sessions stay byte-identical.
pub fn pattern_frame(p: &FrequentPattern, epoch: Option<usize>) -> Frame {
    let frame = Frame::event("pattern");
    let frame = match epoch {
        Some(epoch) => frame.raw("epoch", epoch),
        None => frame,
    };
    let mut frame = frame.raw("support", p.support);
    if let Some(interval) = p.support_interval {
        frame = frame.raw("support_lo", interval.lo).raw("support_hi", interval.hi);
    }
    if let Some(certificate) = p.certificate {
        frame = frame.str("certificate", certificate.name());
    }
    frame
        .raw("vertices", p.pattern.num_vertices())
        .raw("edges", p.pattern.num_edges())
        .raw("occurrences", p.num_occurrences)
        .str("pattern", io::to_lg_string(&p.pattern).trim_end())
}

/// One candidate a bounds-first session left undecided at an interruption: the
/// certified interval its exact support is known to lie in.
pub fn undecided_frame(u: &UndecidedPattern) -> Frame {
    Frame::event("undecided")
        .raw("support_lo", u.interval.lo)
        .raw("support_hi", u.interval.hi)
        .str("certificate", u.certificate.name())
        .raw("vertices", u.pattern.num_vertices())
        .raw("edges", u.pattern.num_edges())
        .str("pattern", io::to_lg_string(&u.pattern).trim_end())
}

/// One fully processed pattern-growth level.
pub fn level_frame(level: &LevelSummary) -> Frame {
    Frame::event("level")
        .raw("level", level.level)
        .raw("evaluated", level.evaluated)
        .raw("accepted", level.accepted)
        .raw("threshold", level.threshold)
}

/// The typed end of one mining run.  `undecided` appears only when a
/// bounds-first interruption left candidates undecided, so every other run's
/// frame stays byte-identical.
pub fn finished_frame(summary: &RunSummary) -> Frame {
    let frame = Frame::event("finished")
        .str("completion", summary.completion.name())
        .raw("patterns", summary.num_patterns);
    let frame = if summary.num_undecided > 0 {
        frame.raw("undecided", summary.num_undecided)
    } else {
        frame
    };
    frame
        .raw("final_threshold", summary.final_threshold)
        .raw("evaluated", summary.stats.candidates_evaluated)
        .raw("elapsed_ms", summary.stats.elapsed.as_millis())
}

/// One completed epoch of an incremental re-mine (the `update` streaming path).
pub fn epoch_frame(epoch: usize, result: &MiningResult) -> Frame {
    Frame::event("epoch")
        .raw("epoch", epoch)
        .str("completion", result.completion().name())
        .raw("patterns", result.len())
        .raw("evaluated", result.stats.candidates_evaluated)
        .raw("reused", result.stats.evaluations_reused)
        .raw("elapsed_ms", result.stats.elapsed.as_millis())
}

/// One counter from a metrics scrape.
pub fn counter_frame(name: &str, value: u64) -> Frame {
    Frame::event("metric").str("kind", "counter").str("name", name).raw("value", value)
}

/// One gauge from a metrics scrape.
pub fn gauge_frame(name: &str, value: i64) -> Frame {
    Frame::event("metric").str("kind", "gauge").str("name", name).raw("value", value)
}

/// One histogram from a metrics scrape.  Quantiles are the log₂-bucket upper
/// bounds; `buckets` is the compact non-empty-bucket encoding of
/// [`HistogramSnapshot::encode_buckets`] (`"bucket:count,…"`), which keeps the
/// frame flat — the protocol has no nested values.
pub fn histogram_frame(name: &str, snapshot: &HistogramSnapshot) -> Frame {
    Frame::event("metric")
        .str("kind", "histogram")
        .str("name", name)
        .raw("count", snapshot.count)
        .raw("sum", snapshot.sum)
        .raw("p50", snapshot.quantile(0.50))
        .raw("p90", snapshot.quantile(0.90))
        .raw("p99", snapshot.quantile(0.99))
        .str("buckets", &snapshot.encode_buckets())
}

/// One per-level observability snapshot for the CLI's `--trace` streams.
/// `counters` and `phases` are *deltas* over the previous level (computed with
/// the `saturating_sub` helpers on [`SessionCounters`] / [`PhaseTimes`]), except
/// `arena_peak_bytes`, which is the run's high-water mark so far.
pub fn trace_frame(level: usize, counters: &SessionCounters, phases: &PhaseTimes) -> Frame {
    let mut frame = Frame::event("trace")
        .raw("level", level)
        .raw("steps", counters.search.steps)
        .raw("backjumps", counters.search.backjumps)
        .raw("pools_filled", counters.search.pools_filled)
        .raw("hub_verified_pools", counters.search.hub_verified_pools)
        .raw("cancel_polls", counters.search.cancel_polls)
        .raw("refine_rounds", counters.search.refine_rounds)
        .raw("overlap_probes", counters.overlap_probes)
        .raw("patterns_emitted", counters.patterns_emitted)
        .raw("evaluations_bounded", counters.evaluations_bounded)
        .raw("bound_decided", counters.bound_decided)
        .raw("arena_peak_bytes", counters.arena_peak_bytes);
    for phase in Phase::ALL {
        frame = frame.raw(&format!("{}_us", phase.name()), phases.nanos(phase) / 1_000);
    }
    frame
}

/// The stable machine code naming an [`FfsmError`] variant on the wire.
pub fn error_code(e: &FfsmError) -> &'static str {
    match e {
        FfsmError::Graph(_) => "graph",
        FfsmError::Update(_) => "update",
        FfsmError::InvalidConfig(_) => "invalid-config",
        FfsmError::UnknownMeasure(_) => "unknown-measure",
        FfsmError::UnknownOverlap(_) => "unknown-overlap",
        FfsmError::NotAntiMonotone(_) => "not-anti-monotone",
        FfsmError::Cancelled => "cancelled",
        FfsmError::DeadlineExceeded(_) => "deadline-exceeded",
        FfsmError::UnknownGraph(_) => "unknown-graph",
        FfsmError::Overloaded { .. } => "overloaded",
        FfsmError::Protocol(_) => "protocol",
        FfsmError::ShuttingDown => "shutting-down",
        FfsmError::Partition(_) => "partition",
    }
}

/// A typed error frame: stable `code` for dispatch plus the display message.
pub fn error_frame(e: &FfsmError) -> Frame {
    Frame::event("error").str("code", error_code(e)).str("message", &e.to_string())
}

/// Outcome of writing one frame to a consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameWrite {
    /// The frame reached the consumer (written and flushed).
    Written,
    /// The consumer went away — broken pipe, connection reset.  A normal way to
    /// stop consuming, not an I/O failure: the caller cancels the session's
    /// `CancelToken` and tears down cleanly.
    Disconnected,
}

/// Write one frame (a line, newline appended here) and flush it, classifying a
/// vanished consumer as [`FrameWrite::Disconnected`] instead of an error.  This
/// is the uniform teardown contract shared by the CLI stream paths and every
/// server connection.
pub fn write_frame<W: Write>(w: &mut W, frame: &str) -> std::io::Result<FrameWrite> {
    let outcome = writeln!(w, "{frame}").and_then(|()| w.flush());
    match outcome {
        Ok(()) => Ok(FrameWrite::Written),
        Err(e) if is_disconnect(&e) => Ok(FrameWrite::Disconnected),
        Err(e) => Err(e),
    }
}

/// `true` for I/O errors that mean "the consumer went away" rather than "the
/// write failed": broken pipe (closed stdout pipe, half-closed socket),
/// connection reset/aborted (TCP peer vanished), and write timeouts (a stalled
/// peer holding a worker hostage is indistinguishable from a dead one).
pub fn is_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::LabeledGraph;

    fn sample_pattern() -> FrequentPattern {
        FrequentPattern {
            pattern: LabeledGraph::from_edges(&[0, 1], &[(0, 1)]),
            support: 5.0,
            num_occurrences: 12,
            support_interval: None,
            certificate: None,
        }
    }

    #[test]
    fn frame_builder_orders_keys_and_escapes() {
        let line = Frame::event("demo").raw("n", 3).str("s", "a\"b\n").finish();
        assert_eq!(line, "{\"event\": \"demo\", \"n\": 3, \"s\": \"a\\\"b\\n\"}");
    }

    #[test]
    fn id_is_appended_only_when_present() {
        assert_eq!(Frame::event("done").id(None).finish(), "{\"event\": \"done\"}");
        assert_eq!(Frame::event("done").id(Some(7)).finish(), "{\"event\": \"done\", \"id\": 7}");
    }

    #[test]
    fn pattern_frame_matches_the_cli_shape() {
        let line = pattern_frame(&sample_pattern(), None).finish();
        assert!(line.starts_with("{\"event\": \"pattern\", \"support\": 5, \"vertices\": 2"));
        assert!(line.contains("\"occurrences\": 12"));
        assert!(line.contains("\"pattern\": \"t 0\\nv 0 0\\nv 1 1\\ne 0 1\""));
        assert!(!line.contains("epoch"));
        let line = pattern_frame(&sample_pattern(), Some(3)).finish();
        assert!(line.starts_with("{\"event\": \"pattern\", \"epoch\": 3, \"support\": 5"));
    }

    #[test]
    fn bounds_first_patterns_carry_interval_and_certificate() {
        let mut p = sample_pattern();
        p.support_interval = Some(ffsm_miner::SupportInterval::new(5.0, 9.0));
        p.certificate = Some(ffsm_miner::Certificate::GreedyPacking);
        let line = pattern_frame(&p, None).finish();
        assert!(
            line.starts_with(
                "{\"event\": \"pattern\", \"support\": 5, \"support_lo\": 5, \
                 \"support_hi\": 9, \"certificate\": \"greedy-packing\""
            ),
            "{line}"
        );
        // The plain shape stays byte-identical: no interval fields at all.
        assert!(!pattern_frame(&sample_pattern(), None).finish().contains("support_lo"));
    }

    #[test]
    fn undecided_frame_reports_the_certified_interval() {
        let u = UndecidedPattern {
            pattern: LabeledGraph::from_edges(&[0, 1], &[(0, 1)]),
            interval: ffsm_miner::SupportInterval::new(0.0, 4.0),
            certificate: ffsm_miner::Certificate::IndexDegree,
        };
        let line = undecided_frame(&u).finish();
        assert!(
            line.starts_with(
                "{\"event\": \"undecided\", \"support_lo\": 0, \"support_hi\": 4, \
                 \"certificate\": \"index-degree\""
            ),
            "{line}"
        );
        assert!(line.contains("\"pattern\": \"t 0"));
    }

    #[test]
    fn finished_frame_reports_undecided_only_when_present() {
        let mut summary = RunSummary {
            completion: ffsm_miner::Completion::Complete,
            final_threshold: 2.0,
            num_patterns: 3,
            num_undecided: 0,
            stats: Default::default(),
        };
        assert!(!finished_frame(&summary).finish().contains("undecided"));
        summary.num_undecided = 2;
        summary.completion = ffsm_miner::Completion::DeadlineExceeded;
        let line = finished_frame(&summary).finish();
        assert!(line.contains("\"undecided\": 2"), "{line}");
    }

    #[test]
    fn metric_frames_stay_flat() {
        assert_eq!(
            counter_frame("steps", 7).finish(),
            "{\"event\": \"metric\", \"kind\": \"counter\", \"name\": \"steps\", \"value\": 7}"
        );
        assert_eq!(
            gauge_frame("queue_depth", -1).finish(),
            "{\"event\": \"metric\", \"kind\": \"gauge\", \"name\": \"queue_depth\", \
             \"value\": -1}"
        );
        let h = ffsm_obs::Histogram::default();
        h.record(3);
        h.record(100);
        let line = histogram_frame("latency_mine_us", &h.snapshot()).finish();
        assert!(line.contains("\"kind\": \"histogram\""));
        assert!(line.contains("\"count\": 2"));
        assert!(line.contains("\"sum\": 103"));
        assert!(line.contains("\"buckets\": \"2:1,7:1\""), "{line}");
        // Every value is a flat scalar — the protocol parser would reject
        // nested arrays, so buckets ride as an encoded string.
        assert!(!line.contains('['));
    }

    #[test]
    fn trace_frame_carries_counter_and_phase_deltas() {
        let mut counters = SessionCounters::default();
        counters.search.steps = 42;
        counters.overlap_probes = 7;
        let mut phases = PhaseTimes::default();
        phases.add_nanos(Phase::SupportEval, 3_000_000);
        let line = trace_frame(2, &counters, &phases).finish();
        assert!(line.starts_with("{\"event\": \"trace\", \"level\": 2, \"steps\": 42"));
        assert!(line.contains("\"overlap_probes\": 7"));
        assert!(line.contains("\"support_eval_us\": 3000"));
        assert!(line.contains("\"extension_us\": 0"));
        assert!(line.contains("\"evaluations_bounded\": 0"));
        assert!(line.contains("\"bound_decided\": 0"));
        assert!(line.contains("\"bounds_eval_us\": 0"));
    }

    #[test]
    fn error_frames_carry_stable_codes() {
        let line = error_frame(&FfsmError::Overloaded { capacity: 4 }).finish();
        assert!(line.contains("\"code\": \"overloaded\""));
        assert!(line.contains("capacity 4"));
        let line = error_frame(&FfsmError::UnknownGraph("g".into())).finish();
        assert!(line.contains("\"code\": \"unknown-graph\""));
        // Every variant has a distinct code.
        let all = [
            error_code(&FfsmError::Cancelled),
            error_code(&FfsmError::ShuttingDown),
            error_code(&FfsmError::Protocol(String::new())),
            error_code(&FfsmError::Overloaded { capacity: 0 }),
            error_code(&FfsmError::UnknownGraph(String::new())),
            error_code(&FfsmError::InvalidConfig(String::new())),
            error_code(&FfsmError::Partition(String::new())),
        ];
        let distinct: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), all.len());
    }

    #[test]
    fn write_frame_classifies_disconnects() {
        let mut buf = Vec::new();
        assert_eq!(write_frame(&mut buf, "{}").unwrap(), FrameWrite::Written);
        assert_eq!(buf, b"{}\n");

        /// A sink whose consumer has gone away.
        struct BrokenPipe;
        impl Write for BrokenPipe {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert_eq!(write_frame(&mut BrokenPipe, "{}").unwrap(), FrameWrite::Disconnected);

        /// A sink with a genuine failure.
        struct DiskFull;
        impl Write for DiskFull {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert!(write_frame(&mut DiskFull, "{}").is_err());
    }
}
