//! Candidate generation: grow a pattern by one edge.
//!
//! Two kinds of extension keep the search space complete for connected patterns:
//!
//! * **edge extensions** — connect two existing, non-adjacent pattern nodes;
//! * **vertex extensions** — attach a new node (with any label from the alphabet) to
//!   an existing node.
//!
//! Candidates are later de-duplicated by canonical code, so the generator does not
//! need to avoid producing isomorphic duplicates.

use ffsm_graph::canonical::{canonical_code, CanonicalCode};
use ffsm_graph::{patterns, Label, Pattern};

/// All single-edge extensions of `pattern` over the given label alphabet.
pub fn extensions(pattern: &Pattern, alphabet: &[Label]) -> Vec<Pattern> {
    let mut out = Vec::new();
    let n = pattern.num_vertices() as u32;
    // Edge extensions between existing vertices.
    for u in 0..n {
        for v in (u + 1)..n {
            if let Some(p) = patterns::extend_with_edge(pattern, u, v) {
                out.push(p);
            }
        }
    }
    // Vertex extensions.
    for at in 0..n {
        for &label in alphabet {
            if let Some(p) = patterns::extend_with_vertex(pattern, at, label) {
                out.push(p);
            }
        }
    }
    out
}

/// Deduplicate a batch of candidate patterns by canonical code, preserving the first
/// representative of each isomorphism class and skipping codes already in `seen`.
pub fn dedupe_by_canonical_code(
    candidates: Vec<Pattern>,
    seen: &mut std::collections::HashSet<CanonicalCode>,
) -> Vec<Pattern> {
    dedupe_with_codes(candidates, seen).into_iter().map(|(pattern, _)| pattern).collect()
}

/// [`dedupe_by_canonical_code`], but keeping each survivor's canonical code —
/// the mining engine threads the codes through to the per-pattern
/// [`EvalCache`](crate::EvalCache) instead of canonicalising twice.
pub fn dedupe_with_codes(
    candidates: Vec<Pattern>,
    seen: &mut std::collections::HashSet<CanonicalCode>,
) -> Vec<(Pattern, CanonicalCode)> {
    let mut out = Vec::new();
    for candidate in candidates {
        let code = canonical_code(&candidate);
        if seen.insert(code.clone()) {
            out.push((candidate, code));
        }
    }
    out
}

/// All frequent single-edge seed patterns of a graph: one pattern per unordered label
/// pair that actually occurs on at least one edge.
pub fn seed_patterns(graph: &ffsm_graph::LabeledGraph) -> Vec<Pattern> {
    let mut pairs: std::collections::BTreeSet<(Label, Label)> = std::collections::BTreeSet::new();
    for (u, v) in graph.edges() {
        let (a, b) = (graph.label(u), graph.label(v));
        pairs.insert(if a <= b { (a, b) } else { (b, a) });
    }
    pairs.into_iter().map(|(a, b)| patterns::single_edge(a, b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::LabeledGraph;

    #[test]
    fn seed_patterns_cover_label_pairs() {
        let g = LabeledGraph::from_edges(&[0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3)]);
        let seeds = seed_patterns(&g);
        assert_eq!(seeds.len(), 3); // (0,1), (1,1), (1,2)
        for s in &seeds {
            assert_eq!(s.num_edges(), 1);
        }
    }

    #[test]
    fn extensions_add_exactly_one_edge() {
        let p = patterns::path(&[Label(0), Label(1)]);
        let alphabet = vec![Label(0), Label(1)];
        let exts = extensions(&p, &alphabet);
        // No edge extension possible (only two adjacent vertices); 2 vertices × 2 labels
        // vertex extensions.
        assert_eq!(exts.len(), 4);
        for e in &exts {
            assert_eq!(e.num_edges(), p.num_edges() + 1);
        }
    }

    #[test]
    fn edge_extension_closes_triangles() {
        let p = patterns::path(&[Label(0), Label(0), Label(0)]);
        let exts = extensions(&p, &[Label(0)]);
        assert!(exts.iter().any(|e| e.num_vertices() == 3 && e.num_edges() == 3));
    }

    #[test]
    fn dedupe_collapses_isomorphic_candidates() {
        // Extending a symmetric path produces isomorphic candidates (attach to either
        // end); deduplication keeps only one.
        let p = patterns::uniform_path(3, Label(0));
        let exts = extensions(&p, &[Label(0)]);
        let mut seen = std::collections::HashSet::new();
        let unique = dedupe_by_canonical_code(exts.clone(), &mut seen);
        assert!(unique.len() < exts.len());
        // Running again with the same `seen` yields nothing new.
        let again = dedupe_by_canonical_code(exts, &mut seen);
        assert!(again.is_empty());
    }

    #[test]
    fn empty_graph_has_no_seeds() {
        let g = LabeledGraph::new();
        assert!(seed_patterns(&g).is_empty());
    }
}
