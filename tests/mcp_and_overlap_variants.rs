//! Cross-crate checks for the MCP measure and the overlap-notion variants:
//! ordering against MIS/MVC, behaviour under the MeasureKind API, and consistency of
//! the overlap census across the dataset suite.

use ffsm::core::measures::{MeasureConfig, MeasureKind, SupportMeasures};
use ffsm::core::{OccurrenceSet, OverlapAnalysis, OverlapKind};
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::graph::{datasets, figures, generators, patterns, Label};
use ffsm::hypergraph::SearchBudget;
use proptest::prelude::*;

fn calculator(
    pattern: &ffsm::graph::Pattern,
    graph: &ffsm::graph::LabeledGraph,
    limit: usize,
) -> SupportMeasures {
    let occ = OccurrenceSet::enumerate(pattern, graph, IsoConfig::with_limit(limit));
    SupportMeasures::new(occ, MeasureConfig::default())
}

#[test]
fn mcp_sits_above_mis_on_figures_and_datasets() {
    for example in figures::all_figures() {
        let m = calculator(&example.pattern, &example.graph, 100_000);
        let mis = m.mis();
        let mcp = m.mcp();
        assert!(mis.optimal && mcp.optimal, "truncated on {}", example.name);
        assert!(mis.value <= mcp.value, "figure {}", example.name);
    }
    for dataset in datasets::small_suite(9) {
        let pattern = patterns::single_edge(Label(0), Label(1));
        // A few hundred occurrences are plenty to exercise MCP vs MIS; the exact
        // clique-partition search is exponential in the overlap-graph size.
        let m = calculator(&pattern, &dataset.graph, 250);
        if m.occurrence_count() == 0 {
            continue;
        }
        let mis = m.mis();
        let mcp = m.mcp();
        if mis.optimal && mcp.optimal {
            assert!(mis.value <= mcp.value, "dataset {}", dataset.name);
        }
    }
}

#[test]
fn measure_kind_mcp_matches_direct_call() {
    let fig = figures::figure6();
    let m = calculator(&fig.pattern, &fig.graph, 10_000);
    assert_eq!(m.compute(MeasureKind::Mcp), m.mcp().value as f64);
    assert_eq!(MeasureKind::Mcp.name(), "MCP");
    // Figure 6: the two hubs' occurrence stars form two cliques in the overlap graph.
    assert_eq!(m.mcp().value, 2);
}

#[test]
fn mining_with_mcp_is_anti_monotonic_in_threshold() {
    use ffsm::miner::{MiningSession, PreparedGraph};
    let triangle = ffsm::graph::LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
    let prepared = PreparedGraph::new(generators::replicated(&triangle, 5, false));
    let low = MiningSession::over(&prepared)
        .measure(MeasureKind::Mcp)
        .min_support(2.0)
        .max_edges(3)
        .run()
        .unwrap();
    let high = MiningSession::over(&prepared)
        .measure(MeasureKind::Mcp)
        .min_support(5.0)
        .max_edges(3)
        .run()
        .unwrap();
    assert!(high.len() <= low.len());
    // Every disjoint triangle counts once under MCP, so the triangle is frequent at 5.
    assert!(high.patterns.iter().any(|p| p.pattern.num_edges() == 3));
}

#[test]
fn overlap_census_orderings_hold_across_datasets() {
    for dataset in datasets::small_suite(31) {
        for pattern in
            [patterns::single_edge(Label(0), Label(1)), patterns::uniform_path(3, Label(0))]
        {
            let occ =
                OccurrenceSet::enumerate(&pattern, &dataset.graph, IsoConfig::with_limit(800));
            if occ.num_occurrences() < 2 {
                continue;
            }
            let analysis = OverlapAnalysis::new(&occ);
            let census = analysis.overlap_census();
            assert!(census.harmful <= census.simple, "dataset {}", dataset.name);
            assert!(census.structural <= census.simple, "dataset {}", dataset.name);
            assert!(census.edge <= census.simple, "dataset {}", dataset.name);
            assert!(census.num_pairs() >= census.simple, "dataset {}", dataset.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Weaker overlap notions always produce MIS values at least as large as the
    /// simple-overlap MIS, and MCP always dominates MIS, on random workloads.
    #[test]
    fn variant_orderings_on_random_graphs(
        n in 10usize..35,
        m in 10usize..60,
        seed in 0u64..400,
    ) {
        let graph = generators::gnm_random(n, m, 2, seed);
        let Some((pattern, _)) = generators::sample_pattern(&graph, 2, seed + 3) else {
            return Ok(());
        };
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::with_limit(400));
        if occ.num_occurrences() < 2 || !occ.is_complete() {
            return Ok(());
        }
        let analysis = OverlapAnalysis::new(&occ);
        let budget = SearchBudget::default();
        let simple = analysis.mis_under(OverlapKind::Simple, budget);
        prop_assert!(analysis.mis_under(OverlapKind::Harmful, budget) >= simple);
        prop_assert!(analysis.mis_under(OverlapKind::Structural, budget) >= simple);
        prop_assert!(analysis.mis_under(OverlapKind::Edge, budget) >= simple);
        prop_assert!(analysis.mcp_under(OverlapKind::Simple, budget) >= simple);
    }
}
