//! Polynomial-time LP relaxations νMVC and νMIES (Section 4.3).
//!
//! Relaxing the integrality constraints of the MVC integer program (Eq. 4.1) yields
//! the fractional covering LP of Definition 4.3.1; relaxing the MIES program (Eq. 4.2)
//! yields the fractional packing LP of Definition 4.3.2.  Both are solved exactly with
//! the workspace's own simplex implementation (`ffsm-lp`), and by LP duality their
//! optimal values coincide (Theorem 4.6) — a fact the test-suite checks numerically.
//!
//! Both relaxations consume the occurrence/instance hypergraph that
//! `SupportMeasures` caches per pattern (shared with MVC and MIES); they never build
//! an overlap graph, so they ride along with the per-pattern `OverlapCache` at zero
//! additional construction cost.

use ffsm_hypergraph::Hypergraph;
use ffsm_lp::{covering_lp, packing_lp};

/// Fractional minimum vertex cover νMVC (Definition 4.3.1) of the hypergraph.
pub fn relaxed_mvc(hypergraph: &Hypergraph) -> f64 {
    if hypergraph.is_empty() {
        return 0.0;
    }
    let sets: Vec<Vec<usize>> = hypergraph.edges().map(|(_, e)| e.to_vec()).collect();
    covering_lp(hypergraph.num_vertices(), &sets).solve().map(|s| s.objective).unwrap_or(f64::NAN)
}

/// Fractional maximum independent edge set νMIES (Definition 4.3.2) of the hypergraph.
pub fn relaxed_mies(hypergraph: &Hypergraph) -> f64 {
    if hypergraph.is_empty() {
        return 0.0;
    }
    let sets: Vec<Vec<usize>> = hypergraph.edges().map(|(_, e)| e.to_vec()).collect();
    packing_lp(hypergraph.num_edges(), &sets, hypergraph.num_vertices())
        .solve()
        .map(|s| s.objective)
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::{mis, mvc, MvcAlgorithm};
    use crate::occurrences::OccurrenceSet;
    use ffsm_graph::figures;
    use ffsm_graph::isomorphism::IsoConfig;
    use ffsm_hypergraph::SearchBudget;

    fn occurrence_hypergraph(example: &ffsm_graph::figures::FigureExample) -> Hypergraph {
        OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default())
            .occurrence_hypergraph()
    }

    #[test]
    fn duality_on_all_figures() {
        // Theorem 4.6: νMIES = νMVC.
        for example in ffsm_graph::figures::all_figures() {
            let h = occurrence_hypergraph(&example);
            let cover = relaxed_mvc(&h);
            let pack = relaxed_mies(&h);
            assert!(
                (cover - pack).abs() < 1e-6,
                "duality gap {} vs {} on {}",
                cover,
                pack,
                example.name
            );
        }
    }

    #[test]
    fn relaxations_sit_inside_the_chain() {
        // σMIES <= νMIES = νMVC <= σMVC for every figure.
        for example in ffsm_graph::figures::all_figures() {
            let h = occurrence_hypergraph(&example);
            let mies = mis::mies(&h, SearchBudget::default()).value as f64;
            let exact_cover =
                mvc::mvc(&h, MvcAlgorithm::Exact, SearchBudget::default()).value as f64;
            let nu = relaxed_mvc(&h);
            assert!(mies <= nu + 1e-6, "MIES > relaxation on {}", example.name);
            assert!(nu <= exact_cover + 1e-6, "relaxation > MVC on {}", example.name);
        }
    }

    #[test]
    fn figure6_relaxation_value() {
        // The Figure 6 hypergraph's fractional cover is exactly 2 (put 1 on each hub).
        let h = occurrence_hypergraph(&figures::figure6());
        assert!((relaxed_mvc(&h) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn figure2_relaxation_value() {
        // Six copies of the edge {1,2,3}: fractional cover is 1 (1/3 on each vertex
        // would give 1, but a single vertex at value 1 also covers; optimum is 1).
        let h = occurrence_hypergraph(&figures::figure2());
        assert!((relaxed_mvc(&h) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_hypergraph_relaxation_is_zero() {
        let h = Hypergraph::new(0);
        assert_eq!(relaxed_mvc(&h), 0.0);
        assert_eq!(relaxed_mies(&h), 0.0);
    }

    #[test]
    fn fractional_strictly_below_integral_cover_exists() {
        // Odd cycle of pairwise overlaps: integral MVC = 2, fractional = 1.5.
        let mut h = Hypergraph::new(3);
        h.add_edge(vec![0, 1]).unwrap();
        h.add_edge(vec![1, 2]).unwrap();
        h.add_edge(vec![0, 2]).unwrap();
        let integral = mvc::mvc(&h, MvcAlgorithm::Exact, SearchBudget::default()).value as f64;
        let fractional = relaxed_mvc(&h);
        assert_eq!(integral, 2.0);
        assert!((fractional - 1.5).abs() < 1e-6);
    }
}
