//! Overlap notions between occurrences: simple, harmful and structural overlap
//! (Definitions 2.2.3, 4.5.1 and 4.5.2), and overlap-graph construction under each.
//!
//! The paper proposes *structural overlap* as a topology-aware alternative to the
//! harmful overlap of Fiedler & Borgelt: both imply simple (vertex) overlap, neither
//! implies the other, and using a weaker notion produces a sparser overlap graph —
//! hence larger (less conservative) MIS-style supports.  Experiment E8 quantifies
//! exactly that.

use crate::occurrences::OccurrenceSet;
use ffsm_graph::automorphism::transitive_pair_matrix;
use ffsm_graph::isomorphism::Embedding;
use ffsm_hypergraph::independent_set::{exact_max_independent_set, SimpleGraph};
use ffsm_hypergraph::SearchBudget;
use std::collections::BTreeSet;

/// The overlap notion used when two occurrences are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlapKind {
    /// Vertex overlap (Definition 2.2.3): the image vertex sets intersect.
    #[default]
    Simple,
    /// Harmful overlap (Definition 4.5.1, Fiedler & Borgelt): some pattern node's two
    /// images both lie in the intersection of the image sets.
    Harmful,
    /// Structural overlap (Definition 4.5.2): some transitive node pair (v, w) has
    /// `f1(v) = f2(w)` inside the intersection.
    Structural,
    /// Edge overlap (Definition 2.2.4): the image *edge* sets intersect.  Stricter
    /// than vertex overlap (edge overlap ⇒ simple overlap), so its overlap graph is
    /// sparser and the resulting MIS-style support larger.
    Edge,
}

/// Pairwise overlap analysis for a set of occurrences of one pattern.
#[derive(Debug)]
pub struct OverlapAnalysis<'a> {
    occurrences: &'a OccurrenceSet,
    /// `transitive[u][v]` — u, v are a transitive pair in some subgraph of the pattern.
    transitive: Vec<Vec<bool>>,
}

impl<'a> OverlapAnalysis<'a> {
    /// Prepare the analysis (computes the pattern's transitive-pair relation once).
    pub fn new(occurrences: &'a OccurrenceSet) -> Self {
        let transitive = transitive_pair_matrix(occurrences.pattern());
        OverlapAnalysis { occurrences, transitive }
    }

    fn embedding(&self, i: usize) -> &Embedding {
        &self.occurrences.embeddings()[i]
    }

    /// Simple (vertex) overlap of occurrences `i` and `j`.
    pub fn simple_overlap(&self, i: usize, j: usize) -> bool {
        let a: BTreeSet<_> = self.embedding(i).iter().copied().collect();
        self.embedding(j).iter().any(|v| a.contains(v))
    }

    /// Harmful overlap (Definition 4.5.1): ∃ node v with f_i(v) and f_j(v) both in the
    /// intersection of the two image sets.
    pub fn harmful_overlap(&self, i: usize, j: usize) -> bool {
        let fi = self.embedding(i);
        let fj = self.embedding(j);
        let si: BTreeSet<_> = fi.iter().copied().collect();
        let sj: BTreeSet<_> = fj.iter().copied().collect();
        (0..fi.len()).any(|v| {
            let a = fi[v];
            let b = fj[v];
            si.contains(&a) && sj.contains(&a) && si.contains(&b) && sj.contains(&b)
        })
    }

    /// Structural overlap (Definition 4.5.2): ∃ transitive pair (v, w) with
    /// f_i(v) = f_j(w) in the intersection of the image sets.
    pub fn structural_overlap(&self, i: usize, j: usize) -> bool {
        let fi = self.embedding(i);
        let fj = self.embedding(j);
        let si: BTreeSet<_> = fi.iter().copied().collect();
        let sj: BTreeSet<_> = fj.iter().copied().collect();
        for (v, &shared) in fi.iter().enumerate() {
            for (w, &fjw) in fj.iter().enumerate() {
                if !self.transitive[v][w] {
                    continue;
                }
                if fjw == shared && si.contains(&shared) && sj.contains(&shared) {
                    return true;
                }
            }
        }
        false
    }

    /// Edge overlap (Definition 2.2.4): the two occurrences map some pattern edge onto
    /// the same data-graph edge.
    pub fn edge_overlap(&self, i: usize, j: usize) -> bool {
        let fi = self.embedding(i);
        let fj = self.embedding(j);
        let edges_of = |f: &Embedding| -> BTreeSet<(u32, u32)> {
            self.occurrences
                .pattern()
                .edges()
                .map(|(u, v)| {
                    let (a, b) = (f[u as usize], f[v as usize]);
                    (a.min(b), a.max(b))
                })
                .collect()
        };
        let ei = edges_of(fi);
        edges_of(fj).iter().any(|e| ei.contains(e))
    }

    /// Overlap of occurrences `i` and `j` under `kind`.
    pub fn overlaps(&self, i: usize, j: usize, kind: OverlapKind) -> bool {
        match kind {
            OverlapKind::Simple => self.simple_overlap(i, j),
            OverlapKind::Harmful => self.harmful_overlap(i, j),
            OverlapKind::Structural => self.structural_overlap(i, j),
            OverlapKind::Edge => self.edge_overlap(i, j),
        }
    }

    /// The occurrence overlap graph under `kind` (Definition 2.2.5 with the chosen
    /// overlap notion): one vertex per occurrence, an edge for every overlapping pair.
    pub fn overlap_graph(&self, kind: OverlapKind) -> SimpleGraph {
        let m = self.occurrences.num_occurrences();
        let mut g = SimpleGraph::new(m);
        for i in 0..m {
            for j in (i + 1)..m {
                if self.overlaps(i, j, kind) {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Number of overlapping pairs under `kind` (the overlap graph's edge count).
    pub fn overlap_edge_count(&self, kind: OverlapKind) -> usize {
        self.overlap_graph(kind).num_edges()
    }

    /// MIS-style support computed on the overlap graph built with `kind`; with
    /// `OverlapKind::Simple` this is exactly σMIS.
    pub fn mis_under(&self, kind: OverlapKind, budget: SearchBudget) -> usize {
        let g = self.overlap_graph(kind);
        exact_max_independent_set(&g, budget).value
    }

    /// MCP-style support (minimum clique partition, Calders et al.) on the overlap
    /// graph built with `kind`; with `OverlapKind::Simple` this is exactly σMCP.
    pub fn mcp_under(&self, kind: OverlapKind, budget: SearchBudget) -> usize {
        let g = self.overlap_graph(kind);
        ffsm_hypergraph::clique_cover::clique_cover_number(&g, budget).value
    }

    /// Summary of how many occurrence pairs overlap under each notion — the raw data
    /// behind Figures 9/10-style comparisons (experiment E8).
    pub fn overlap_census(&self) -> OverlapCensus {
        let m = self.occurrences.num_occurrences();
        let mut census = OverlapCensus { num_occurrences: m, ..OverlapCensus::default() };
        for i in 0..m {
            for j in (i + 1)..m {
                if self.simple_overlap(i, j) {
                    census.simple += 1;
                }
                if self.harmful_overlap(i, j) {
                    census.harmful += 1;
                }
                if self.structural_overlap(i, j) {
                    census.structural += 1;
                }
                if self.edge_overlap(i, j) {
                    census.edge += 1;
                }
            }
        }
        census
    }
}

/// Counts of overlapping occurrence pairs under every notion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverlapCensus {
    /// Number of occurrences compared.
    pub num_occurrences: usize,
    /// Pairs in simple (vertex) overlap.
    pub simple: usize,
    /// Pairs in harmful overlap.
    pub harmful: usize,
    /// Pairs in structural overlap.
    pub structural: usize,
    /// Pairs in edge overlap.
    pub edge: usize,
}

impl OverlapCensus {
    /// Total number of occurrence pairs.
    pub fn num_pairs(&self) -> usize {
        if self.num_occurrences < 2 {
            0
        } else {
            self.num_occurrences * (self.num_occurrences - 1) / 2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::figures;
    use ffsm_graph::isomorphism::IsoConfig;

    fn analysis_for(
        example: &ffsm_graph::figures::FigureExample,
    ) -> (OccurrenceSet, Vec<ffsm_graph::isomorphism::Embedding>) {
        let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
        let embeddings = occ.embeddings().to_vec();
        (occ, embeddings)
    }

    /// Index of the occurrence with the given image tuple.
    fn index_of(embeddings: &[ffsm_graph::isomorphism::Embedding], image: &[u32]) -> usize {
        embeddings.iter().position(|e| e.as_slice() == image).expect("occurrence present")
    }

    #[test]
    fn figure9_structural_without_harmful() {
        let example = figures::figure9();
        let (occ, embeddings) = analysis_for(&example);
        let analysis = OverlapAnalysis::new(&occ);
        // Paper numbering: g1 = (1,2,3), g2 = (5,3,4), g3 = (5,3,2); zero-based below.
        let g1 = index_of(&embeddings, &[0, 1, 2]);
        let g2 = index_of(&embeddings, &[4, 2, 3]);
        let g3 = index_of(&embeddings, &[4, 2, 1]);
        // (g1, g2): structural but not harmful.
        assert!(analysis.structural_overlap(g1, g2));
        assert!(!analysis.harmful_overlap(g1, g2));
        assert!(analysis.simple_overlap(g1, g2));
        // (g1, g3): both structural and harmful.
        assert!(analysis.structural_overlap(g1, g3));
        assert!(analysis.harmful_overlap(g1, g3));
    }

    #[test]
    fn figure10_harmful_without_structural_and_simple_only() {
        let example = figures::figure10();
        let (occ, embeddings) = analysis_for(&example);
        let analysis = OverlapAnalysis::new(&occ);
        let f1 = index_of(&embeddings, &[0, 1, 2, 3]);
        let f2 = index_of(&embeddings, &[3, 4, 5, 0]);
        let f3 = index_of(&embeddings, &[6, 7, 8, 3]);
        // (f1, f2): harmful but not structural.
        assert!(analysis.harmful_overlap(f1, f2));
        assert!(!analysis.structural_overlap(f1, f2));
        // (f2, f3): simple overlap only.
        assert!(analysis.simple_overlap(f2, f3));
        assert!(!analysis.harmful_overlap(f2, f3));
        assert!(!analysis.structural_overlap(f2, f3));
    }

    #[test]
    fn harmful_and_structural_imply_simple() {
        for example in ffsm_graph::figures::all_figures() {
            let (occ, _) = analysis_for(&example);
            let analysis = OverlapAnalysis::new(&occ);
            let m = occ.num_occurrences();
            for i in 0..m {
                for j in (i + 1)..m {
                    if analysis.harmful_overlap(i, j) || analysis.structural_overlap(i, j) {
                        assert!(
                            analysis.simple_overlap(i, j),
                            "weaker overlap without simple overlap on {}",
                            example.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn weaker_overlap_graphs_are_sparser_and_mis_larger() {
        for example in ffsm_graph::figures::all_figures() {
            let (occ, _) = analysis_for(&example);
            let analysis = OverlapAnalysis::new(&occ);
            let simple_edges = analysis.overlap_edge_count(OverlapKind::Simple);
            let harmful_edges = analysis.overlap_edge_count(OverlapKind::Harmful);
            let structural_edges = analysis.overlap_edge_count(OverlapKind::Structural);
            assert!(harmful_edges <= simple_edges);
            assert!(structural_edges <= simple_edges);
            let budget = SearchBudget::default();
            let mis_simple = analysis.mis_under(OverlapKind::Simple, budget);
            let mis_harmful = analysis.mis_under(OverlapKind::Harmful, budget);
            let mis_structural = analysis.mis_under(OverlapKind::Structural, budget);
            assert!(mis_harmful >= mis_simple);
            assert!(mis_structural >= mis_simple);
        }
    }

    #[test]
    fn edge_overlap_implies_simple_and_is_rarer() {
        for example in ffsm_graph::figures::all_figures() {
            let (occ, _) = analysis_for(&example);
            let analysis = OverlapAnalysis::new(&occ);
            let m = occ.num_occurrences();
            for i in 0..m {
                for j in (i + 1)..m {
                    if analysis.edge_overlap(i, j) {
                        assert!(
                            analysis.simple_overlap(i, j),
                            "edge overlap without vertex overlap"
                        );
                    }
                }
            }
            assert!(
                analysis.overlap_edge_count(OverlapKind::Edge)
                    <= analysis.overlap_edge_count(OverlapKind::Simple)
            );
            assert!(
                analysis.mis_under(OverlapKind::Edge, SearchBudget::default())
                    >= analysis.mis_under(OverlapKind::Simple, SearchBudget::default())
            );
        }
    }

    #[test]
    fn census_counts_are_consistent() {
        let example = figures::figure6();
        let (occ, _) = analysis_for(&example);
        let analysis = OverlapAnalysis::new(&occ);
        let census = analysis.overlap_census();
        assert_eq!(census.num_occurrences, 7);
        assert_eq!(census.num_pairs(), 21);
        assert_eq!(census.simple, analysis.overlap_edge_count(OverlapKind::Simple));
        assert_eq!(census.harmful, analysis.overlap_edge_count(OverlapKind::Harmful));
        assert_eq!(census.structural, analysis.overlap_edge_count(OverlapKind::Structural));
        assert_eq!(census.edge, analysis.overlap_edge_count(OverlapKind::Edge));
        assert!(census.harmful <= census.simple);
        assert!(census.edge <= census.simple);
        // The single-edge pattern has no pattern edge shared between distinct data
        // edges, so edge overlap never fires here.
        assert_eq!(census.edge, 0);
        assert_eq!(OverlapCensus::default().num_pairs(), 0);
    }

    #[test]
    fn mcp_under_simple_bounds_mis_under_simple() {
        for example in ffsm_graph::figures::all_figures() {
            let (occ, _) = analysis_for(&example);
            let analysis = OverlapAnalysis::new(&occ);
            let budget = SearchBudget::default();
            assert!(
                analysis.mis_under(OverlapKind::Simple, budget)
                    <= analysis.mcp_under(OverlapKind::Simple, budget),
                "MIS > MCP on {}",
                example.name
            );
        }
    }

    #[test]
    fn overlap_with_self_is_total() {
        let example = figures::figure2();
        let (occ, _) = analysis_for(&example);
        let analysis = OverlapAnalysis::new(&occ);
        // Occurrences of the triangle all share the vertex set {1,2,3}: every pair
        // overlaps under every notion (the triangle is fully transitive).
        let m = occ.num_occurrences();
        for i in 0..m {
            for j in 0..m {
                if i == j {
                    continue;
                }
                assert!(analysis.simple_overlap(i, j));
                assert!(analysis.harmful_overlap(i, j));
                assert!(analysis.structural_overlap(i, j));
            }
        }
        assert_eq!(analysis.mis_under(OverlapKind::Simple, SearchBudget::default()), 1);
    }
}
