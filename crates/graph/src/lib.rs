//! # ffsm-graph — labeled-graph substrate
//!
//! Everything the support-measure framework needs from graphs, implemented from
//! scratch:
//!
//! * [`LabeledGraph`] — an undirected vertex-labeled graph with sorted adjacency lists
//!   (data graphs and patterns share this representation; [`Pattern`] is an alias).
//! * [`isomorphism`] — VF2-style enumeration of all *occurrences* (subgraph
//!   isomorphisms, Definition 2.1.8 of the paper) of a pattern in a data graph.
//! * [`automorphism`] — automorphism groups, vertex orbits and transitive pairs
//!   (Definition 3.2.2), used by the MI measure and by *structural overlap*.
//! * [`canonical`] — canonical codes for small patterns, used by the miner to
//!   de-duplicate candidates.
//! * [`patterns`] — constructors for the common query shapes (edge, path, star,
//!   triangle, clique, cycle).
//! * [`generators`] / [`datasets`] — synthetic data-graph generators standing in for
//!   the paper's real datasets (see DESIGN.md §5).
//! * [`figures`] — the exact example graphs of the paper's Figures 1–10.
//! * [`io`] — plain-text readers/writers for `.lg` graphs and `.gu` update batches.
//! * [`update`] — typed [`GraphUpdate`]s, batch application and the [`GraphDelta`]
//!   dirty-region bookkeeping behind the dynamic-graph subsystem.
//!
//! ```
//! use ffsm_graph::{patterns, Label, LabeledGraph};
//! use ffsm_graph::isomorphism::{enumerate_embeddings, IsoConfig};
//!
//! // A labelled triangle with a pendant vertex, queried with a two-vertex pattern.
//! let graph = LabeledGraph::from_edges(&[0, 0, 1, 1], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
//! let pattern = patterns::single_edge(Label(0), Label(1));
//! let result = enumerate_embeddings(&pattern, &graph, IsoConfig::default());
//! assert_eq!(result.len(), 2); // (0,2) and (1,2)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod automorphism;
pub mod cancel;
pub mod canonical;
pub mod datasets;
pub mod figures;
pub mod generators;
mod graph;
pub mod io;
pub mod isomorphism;
pub mod patterns;
pub mod refinement;
pub mod statistics;
pub mod transform;
pub mod update;

pub use cancel::CancelToken;
pub use graph::{GraphError, LabeledGraph, VertexRemoval};
pub use statistics::{DegreeSummary, GraphStatistics};
pub use update::{apply_batch, GraphDelta, GraphUpdate, UpdateError};

/// Identifier of a vertex inside a [`LabeledGraph`] (dense, `0..num_vertices`).
pub type VertexId = u32;

/// A vertex label.
///
/// Labels are opaque small integers; generators and loaders map domain alphabets
/// (atom types, entity classes, …) onto them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Label(pub u32);

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl From<u32> for Label {
    fn from(v: u32) -> Self {
        Label(v)
    }
}

/// A query pattern (Definition 2.1.3).  Patterns are just small labeled graphs; the
/// alias documents intent at API boundaries.
pub type Pattern = LabeledGraph;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_display_and_from() {
        let l: Label = 7u32.into();
        assert_eq!(l, Label(7));
        assert_eq!(format!("{l}"), "L7");
    }
}
