//! Result types shared by every mining mode.

use ffsm_approx::{Certificate, SupportInterval};
use ffsm_graph::Pattern;
use ffsm_obs::{PhaseTimes, SearchCounters};
use std::time::Duration;

/// A frequent pattern found by the miner.
#[derive(Debug, Clone)]
pub struct FrequentPattern {
    /// The pattern graph.
    pub pattern: Pattern,
    /// Its support under the session's measure.  In a bounds-first session a
    /// bound-decided pattern reports the certified *lower* bound (the exact
    /// value was never computed); `support_interval` carries the full interval.
    pub support: f64,
    /// Number of occurrences enumerated while computing the support (0 when a
    /// pre-enumeration bound decided the pattern).
    pub num_occurrences: usize,
    /// The certified support interval, in bounds-first sessions
    /// ([`crate::MiningSession::bounds_first`]); `None` otherwise.  Always
    /// contains the exact support; a point interval means the support was
    /// computed exactly.
    pub support_interval: Option<SupportInterval>,
    /// The argument that certified `support_interval`; `None` outside
    /// bounds-first sessions.
    pub certificate: Option<Certificate>,
}

/// A candidate pattern a bounds-first session could not decide before it was
/// interrupted (deadline or cancellation): the honest anytime answer is the
/// certified interval its support is known to lie in, rather than silence.
#[derive(Debug, Clone)]
pub struct UndecidedPattern {
    /// The candidate pattern.
    pub pattern: Pattern,
    /// A certified interval containing the pattern's exact support, derived
    /// from pre-enumeration arguments only (parent support, index cardinality)
    /// — never from a truncated enumeration.
    pub interval: SupportInterval,
    /// The argument behind the interval's binding upper bound.
    pub certificate: Certificate,
}

/// Which safety cap stopped a run early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The cap on support evaluations ([`crate::MiningBudget::max_evaluations`]).
    Evaluations,
    /// The cap on reported patterns ([`crate::MiningBudget::max_patterns`]).
    Patterns,
}

/// Why a mining run stopped.
///
/// Before this type existed a capped run was indistinguishable from a complete
/// one (a single `truncated` bool, silently defaulting to "looks complete" in
/// every report).  Every run now carries its typed completion status: in
/// [`MiningStats::completion`], in the final
/// [`MiningEvent::Finished`](crate::MiningEvent::Finished) of a stream, and via
/// [`MiningResult::completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Completion {
    /// The search space was exhausted: every pattern above the threshold (or the
    /// full top-k) was found.
    #[default]
    Complete,
    /// A [`crate::MiningBudget`] cap stopped the search; the payload names which.
    /// The reported patterns are exactly the prefix found before the cap.
    BudgetExhausted(BudgetKind),
    /// The session's wall-clock deadline passed.  The reported patterns are a
    /// deterministic prefix of the full run (whole levels only).
    DeadlineExceeded,
    /// The session's [`CancelToken`](ffsm_core::CancelToken) fired.  The reported
    /// patterns are a deterministic prefix of the full run (whole levels only).
    Cancelled,
}

impl Completion {
    /// `true` only for [`Completion::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }

    /// Stable lower-case machine name (used by the CLI's NDJSON stream).
    pub fn name(&self) -> &'static str {
        match self {
            Completion::Complete => "complete",
            Completion::BudgetExhausted(BudgetKind::Evaluations) => "evaluation-budget",
            Completion::BudgetExhausted(BudgetKind::Patterns) => "pattern-budget",
            Completion::DeadlineExceeded => "deadline-exceeded",
            Completion::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Completion::Complete => write!(f, "complete"),
            Completion::BudgetExhausted(BudgetKind::Evaluations) => {
                write!(f, "stopped early: evaluation budget exhausted")
            }
            Completion::BudgetExhausted(BudgetKind::Patterns) => {
                write!(f, "stopped early: pattern budget exhausted")
            }
            Completion::DeadlineExceeded => write!(f, "stopped early: deadline exceeded"),
            Completion::Cancelled => write!(f, "stopped early: cancelled"),
        }
    }
}

/// The observability counter block of a mining run: the matcher's search
/// counters (summed across the per-worker arenas — totals are invariant under
/// the thread partition), the overlap builders' probe count, and the session's
/// own emission counter.  Always collected; every increment is a plain `u64`
/// add on thread-owned memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// The matcher's per-arena counters, summed across workers: search steps,
    /// backjumps taken, pools filled, hub fast-path (fully edge-verified)
    /// pools, arena reuses (`searches`), cancellation polls and
    /// candidate-space refinement sweeps.
    pub search: SearchCounters,
    /// Candidate-pair probes made by the overlap builders inside support
    /// evaluation (MI/MVC/MIS-family measures; 0 under MNI).
    pub overlap_probes: u64,
    /// Patterns emitted by the run so far — equals the number of
    /// [`MiningEvent::Pattern`](crate::MiningEvent::Pattern) events a streaming
    /// consumer sees (top-k runs count emissions, including patterns later
    /// evicted from the final k).
    pub patterns_emitted: u64,
    /// High-water heap footprint of the largest search arena, in bytes
    /// (arena capacities never shrink, so the current footprint is the peak).
    /// A **gauge** — the per-worker *maximum*, never a sum across workers: a
    /// parallel run reports the biggest single arena, so the value answers
    /// "how much memory does one worker's search state need" regardless of
    /// thread count.  The one field that legitimately varies with the thread
    /// count — a single arena serving every candidate grows larger than each
    /// of several, so the parallel max is bounded above by the sequential one.
    pub arena_peak_bytes: u64,
    /// Candidates routed through the bounds evaluator of a bounds-first session
    /// (always 0 otherwise).
    pub evaluations_bounded: u64,
    /// Of the bounded candidates, how many a certified interval decided without
    /// an exact support computation — pre-enumeration skips and
    /// containment-chain / greedy / LP short-circuits alike.
    pub bound_decided: u64,
}

impl SessionCounters {
    /// Field-wise `self − earlier` (per-level deltas from the cumulative
    /// snapshots in [`LevelSummary`](crate::LevelSummary)).  `arena_peak_bytes`
    /// is carried over, not subtracted — it is a high-water mark.
    pub fn saturating_sub(&self, earlier: &SessionCounters) -> SessionCounters {
        SessionCounters {
            search: self.search.saturating_sub(&earlier.search),
            overlap_probes: self.overlap_probes.saturating_sub(earlier.overlap_probes),
            patterns_emitted: self.patterns_emitted.saturating_sub(earlier.patterns_emitted),
            arena_peak_bytes: self.arena_peak_bytes,
            evaluations_bounded: self
                .evaluations_bounded
                .saturating_sub(earlier.evaluations_bounded),
            bound_decided: self.bound_decided.saturating_sub(earlier.bound_decided),
        }
    }
}

/// Counters describing a mining run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MiningStats {
    /// Candidates generated by extension (before deduplication).
    pub candidates_generated: usize,
    /// Candidates whose support was evaluated (after deduplication).  In a delta
    /// re-mine this counts cache-served candidates too, so budget cut-offs land
    /// on exactly the same candidate as in the equivalent cold run.
    pub candidates_evaluated: usize,
    /// Of the evaluated candidates, how many were answered from the prior
    /// epoch's [`EvalCache`](crate::EvalCache) without enumerating occurrences
    /// (always 0 outside `run_delta`).
    pub evaluations_reused: usize,
    /// Candidates pruned because their support fell below the threshold.
    pub candidates_pruned: usize,
    /// Pattern-growth levels fully processed.
    pub levels_completed: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// The observability counter block (always collected — see
    /// [`SessionCounters`]).
    pub counters: SessionCounters,
    /// Per-phase wall-time accounting.  The coarse phases (index build,
    /// support evaluation, extension) are always timed — one clock pair per
    /// level; the fine-grained nested spans (candidate-space build, search)
    /// advance only when the session enabled
    /// [`MiningSession::metrics`](crate::MiningSession::metrics).  The
    /// exclusive phases sum to the run's wall time (see
    /// [`PhaseTimes::exclusive_total`]).
    pub phase_timings: PhaseTimes,
    /// Why the run stopped.  Mid-run snapshots (e.g. in a
    /// [`crate::MiningEvent::LevelCompleted`] event) report
    /// [`Completion::Complete`] until the run actually stops.
    pub completion: Completion,
}

impl MiningStats {
    /// `true` when the run stopped before exhausting the search space, for any
    /// reason (budget, deadline or cancellation).
    pub fn truncated(&self) -> bool {
        !self.completion.is_complete()
    }

    /// Candidates routed through the bounds evaluator (bounds-first sessions
    /// only; see [`SessionCounters::evaluations_bounded`]).
    pub fn evaluations_bounded(&self) -> u64 {
        self.counters.evaluations_bounded
    }

    /// Of those, how many a certified interval decided without an exact
    /// support computation (see [`SessionCounters::bound_decided`]).
    pub fn bound_decided(&self) -> u64 {
        self.counters.bound_decided
    }
}

/// Result of a mining run: the frequent patterns plus statistics.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// The frequent patterns found.  Threshold runs list them in breadth-first
    /// (smallest first) order; top-k runs list them by descending support.
    pub patterns: Vec<FrequentPattern>,
    /// The support threshold in force when the run finished: the configured τ for
    /// threshold runs, or the risen k-th-best support for top-k runs.
    pub final_threshold: f64,
    /// Candidates a bounds-first session could not decide before an
    /// interruption, each with its certified interval (empty for complete runs
    /// and outside bounds-first mode) — the anytime contract's honest remainder.
    pub undecided: Vec<UndecidedPattern>,
    /// Run statistics.
    pub stats: MiningStats,
}

impl MiningResult {
    /// Why the run stopped (typed; never silently truncated).
    pub fn completion(&self) -> Completion {
        self.stats.completion
    }

    /// Number of frequent patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// `true` when nothing was frequent.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The frequent patterns with exactly `edges` edges.
    pub fn with_edge_count(&self, edges: usize) -> Vec<&FrequentPattern> {
        self.patterns.iter().filter(|p| p.pattern.num_edges() == edges).collect()
    }

    /// Largest frequent pattern size (in edges), 0 if none.
    pub fn max_edges(&self) -> usize {
        self.patterns.iter().map(|p| p.pattern.num_edges()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_names_and_display_are_distinct() {
        let all = [
            Completion::Complete,
            Completion::BudgetExhausted(BudgetKind::Evaluations),
            Completion::BudgetExhausted(BudgetKind::Patterns),
            Completion::DeadlineExceeded,
            Completion::Cancelled,
        ];
        let names: std::collections::BTreeSet<&str> = all.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), all.len());
        assert!(Completion::Complete.is_complete());
        assert!(!Completion::Cancelled.is_complete());
        assert_eq!(Completion::default(), Completion::Complete);
    }

    #[test]
    fn stats_truncated_derives_from_completion() {
        let mut stats = MiningStats::default();
        assert!(!stats.truncated());
        stats.completion = Completion::BudgetExhausted(BudgetKind::Patterns);
        assert!(stats.truncated());
    }
}
