//! # ffsm-lp — a small dense linear-programming solver
//!
//! This crate provides a self-contained, dependency-free implementation of the
//! two-phase primal simplex method over a dense tableau.  It exists to support the
//! *polynomial-time relaxations* of the MVC and MIES support measures defined in
//! Section 4.3 of the paper (νMVC, Eq. 4.3 and νMIES, Eq. 4.4): both are small
//! covering / packing linear programs whose rows are pattern occurrences and whose
//! columns are pattern-node images, so a dense exact solver is entirely adequate.
//!
//! The public surface is intentionally small:
//!
//! * [`Problem`] — build a linear program (minimise or maximise, `≤` / `≥` / `=`
//!   constraints, non-negative variables with optional upper bounds).
//! * [`Problem::solve`] — run two-phase simplex and obtain a [`Solution`].
//! * [`covering_lp`] / [`packing_lp`] — convenience constructors for the 0/1
//!   covering and packing LPs used by the support-measure relaxations.
//!
//! ```
//! use ffsm_lp::{Problem, Objective, ConstraintOp};
//!
//! // minimise x0 + x1  subject to  x0 + x1 >= 1, x0 >= 0.25
//! let mut p = Problem::new(Objective::Minimize, 2);
//! p.set_objective(0, 1.0);
//! p.set_objective(1, 1.0);
//! p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Ge, 1.0);
//! p.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 0.25);
//! let sol = p.solve().unwrap();
//! assert!((sol.objective - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod duality;
pub mod presolve;
mod problem;
mod simplex;
mod standard;

pub use duality::{dual_of, solve_with_dual, DualityError, DualityReport};
pub use presolve::{presolve_covering, solve_covering_presolved, PresolveStats, PresolvedCovering};
pub use problem::{Constraint, ConstraintOp, Objective, Problem};
pub use simplex::{SimplexOptions, SolveStatus};
pub use standard::StandardForm;

/// Numerical tolerance used throughout the solver.
pub const EPS: f64 = 1e-9;

/// Errors produced by the LP solver.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The solver exceeded its iteration budget (should not happen with Bland's rule
    /// unless the budget is configured too small).
    IterationLimit,
    /// A constraint referenced a variable index outside the problem.
    InvalidVariable {
        /// The offending variable index.
        var: usize,
        /// Number of variables in the problem.
        num_vars: usize,
    },
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::InvalidVariable { var, num_vars } => {
                write!(f, "variable index {var} out of range (problem has {num_vars} variables)")
            }
        }
    }
}

impl std::error::Error for LpError {}

/// Result of a successful LP solve.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Optimal objective value (in the *original* orientation of the problem).
    pub objective: f64,
    /// Optimal value of each structural variable.
    pub values: Vec<f64>,
    /// Number of simplex pivots performed (both phases).
    pub pivots: usize,
}

impl Solution {
    /// Value of variable `i`.
    pub fn value(&self, i: usize) -> f64 {
        self.values[i]
    }
}

/// Build the fractional *covering* LP
/// `min Σ x_v  s.t.  Σ_{v ∈ e} x_v ≥ 1 for every set e,  x ≥ 0`.
///
/// `num_elements` is the size of the ground set; `sets` lists, for every covering
/// constraint, the element indices it contains.  This is exactly the νMVC relaxation
/// (Definition 4.3.1) when the ground set is the hypergraph vertex set and each set is
/// a hyperedge.  (The `x ≤ 1` bounds of the paper are redundant for covering LPs with
/// unit costs and are omitted.)
pub fn covering_lp(num_elements: usize, sets: &[Vec<usize>]) -> Problem {
    let mut p = Problem::new(Objective::Minimize, num_elements);
    for v in 0..num_elements {
        p.set_objective(v, 1.0);
    }
    for set in sets {
        let coeffs: Vec<(usize, f64)> = set.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(coeffs, ConstraintOp::Ge, 1.0);
    }
    p
}

/// Build the fractional *packing* LP
/// `max Σ y_e  s.t.  Σ_{e ∋ v} y_e ≤ 1 for every element v,  y ≥ 0`.
///
/// This is the νMIES relaxation (Definition 4.3.2): variables are hyperedges
/// (occurrences), constraints are hypergraph vertices (images).  By LP duality its
/// optimum equals the covering optimum, which the paper exploits in Theorem 4.6.
pub fn packing_lp(num_sets: usize, sets: &[Vec<usize>], num_elements: usize) -> Problem {
    let mut p = Problem::new(Objective::Maximize, num_sets);
    for e in 0..num_sets {
        p.set_objective(e, 1.0);
    }
    // Build element -> sets incidence.
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); num_elements];
    for (e, set) in sets.iter().enumerate() {
        for &v in set {
            incident[v].push(e);
        }
    }
    for edges in incident.iter() {
        if edges.is_empty() {
            continue;
        }
        let coeffs: Vec<(usize, f64)> = edges.iter().map(|&e| (e, 1.0)).collect();
        p.add_constraint(coeffs, ConstraintOp::Le, 1.0);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_and_packing_are_dual() {
        // Three sets over four elements.
        let sets = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let cover = covering_lp(4, &sets).solve().unwrap();
        let pack = packing_lp(3, &sets, 4).solve().unwrap();
        assert!((cover.objective - pack.objective).abs() < 1e-7);
        // Optimal value is 2 (e.g. pick elements 1 and 2; or sets 0 and 2).
        assert!((cover.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn fractional_cover_beats_integral() {
        // Triangle hypergraph: each pair is a set; fractional optimum is 1.5.
        let sets = vec![vec![0, 1], vec![1, 2], vec![0, 2]];
        let cover = covering_lp(3, &sets).solve().unwrap();
        assert!((cover.objective - 1.5).abs() < 1e-7);
    }

    #[test]
    fn display_errors() {
        let e = LpError::Infeasible;
        assert!(format!("{e}").contains("infeasible"));
        let e = LpError::InvalidVariable { var: 5, num_vars: 2 };
        assert!(format!("{e}").contains('5'));
    }
}
