//! [`GraphIndex`] — the reusable per-data-graph matching index.
//!
//! Built **once per data graph** and shared across every pattern matched against it
//! (the mining session builds it at `run()` time, not per candidate pattern).  Three
//! structures per graph:
//!
//! * a **label inverted index**: label → vertices carrying it, ascending by id;
//! * **degree buckets**: the same vertices sorted by `(degree, id)`, so the
//!   candidates with degree ≥ d are one `partition_point` away;
//! * **neighbour-label fingerprints**: a 64-bit bitset per vertex with one (hashed)
//!   bit per distinct neighbour label.  A pattern vertex can only map onto a data
//!   vertex whose fingerprint is a superset of the pattern vertex's — hash
//!   collisions only ever make the filter *more* permissive, never unsound;
//! * **hub adjacency bitsets**: for dense graphs (≤ [`HUB_MAX_VERTICES`] vertices),
//!   every vertex of degree ≥ [`HUB_MIN_DEGREE`] additionally stores its adjacency
//!   as a `V`-bit bitset, so the search loop can intersect a pivot's neighbourhood
//!   with a candidate bitset 64 vertices at a time instead of walking the adjacency
//!   list one vertex at a time.  The bitsets are redundant with the graph's sorted
//!   adjacency lists (a pure accelerator), and the size gates bound their memory to
//!   `O(hubs · V/64)` words.
//!
//! The index also exposes the summary statistics ([`GraphIndex::label_entropy`],
//! label/degree bucket sizes) that the adaptive `EnumeratorBackend::Auto` heuristic
//! consumes.
//!
//! ## Incremental maintenance
//!
//! Under the dynamic-graph subsystem the data graph evolves in epochs;
//! [`GraphIndex::apply_delta`] repairs an index in place from the
//! [`GraphDelta`](ffsm_graph::GraphDelta) of one applied update batch instead of
//! rebuilding it: only the per-vertex slots in `dirty_new` are recomputed and only
//! the label buckets in `affected_labels` are rebuilt and re-sorted.  The full
//! [`GraphIndex::build`] stays the **differential oracle** — a patched index must
//! equal the from-scratch rebuild exactly (`PartialEq`), and the
//! `dynamic_differential` proptest harness asserts it on random update batches.

use ffsm_graph::{GraphDelta, Label, LabeledGraph, VertexId};
use std::collections::HashMap;

/// Hub adjacency bitsets are only built for graphs with at most this many
/// vertices, bounding each bitset to `HUB_MAX_VERTICES / 64` words.
pub const HUB_MAX_VERTICES: usize = 8192;

/// Minimum degree for a vertex to get a hub adjacency bitset.  Below this, a
/// plain scan of the sorted adjacency list beats the word-parallel intersection.
pub const HUB_MIN_DEGREE: usize = 32;

/// Per-data-graph index consulted by the candidate-space builder.
///
/// The index holds no reference to the graph it was built from; callers pair them
/// (the two are only meaningful together, and keeping the index free of lifetimes
/// lets a mining session share one `Arc<GraphIndex>` across worker threads).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphIndex {
    /// label → vertices with that label, ascending by vertex id.
    label_index: HashMap<Label, Vec<VertexId>>,
    /// label → the same vertices sorted by `(degree, id)` — the degree buckets.
    degree_buckets: HashMap<Label, Vec<VertexId>>,
    /// Neighbour-label fingerprint of every vertex.
    fingerprints: Vec<u64>,
    /// Degree of every vertex (copied out of the graph so bucket lookups need no
    /// graph reference).
    degrees: Vec<u32>,
    /// Hub adjacency bitsets: `Some` iff the graph is small enough
    /// (≤ [`HUB_MAX_VERTICES`]) and the vertex is dense enough
    /// (degree ≥ [`HUB_MIN_DEGREE`]).  `adj_bits[v]` has `⌈V/64⌉` words with bit
    /// `w` set iff `(v, w)` is an edge.
    adj_bits: Vec<Option<Box<[u64]>>>,
}

impl GraphIndex {
    /// Build the index for `graph`.  One `O(V + E)` pass (plus the per-label sorts).
    pub fn build(graph: &LabeledGraph) -> Self {
        let n = graph.num_vertices();
        let mut label_index: HashMap<Label, Vec<VertexId>> = HashMap::new();
        let mut fingerprints = vec![0u64; n];
        let mut degrees = vec![0u32; n];
        for v in graph.vertices() {
            label_index.entry(graph.label(v)).or_default().push(v);
            fingerprints[v as usize] = Self::neighbor_fingerprint(graph, v);
            degrees[v as usize] = graph.degree(v) as u32;
        }
        let degree_buckets = label_index
            .iter()
            .map(|(&label, vertices)| {
                let mut bucket = vertices.clone();
                bucket.sort_by_key(|&v| (degrees[v as usize], v));
                (label, bucket)
            })
            .collect();
        let adj_bits = Self::build_adj_bits(graph);
        GraphIndex { label_index, degree_buckets, fingerprints, degrees, adj_bits }
    }

    /// The adjacency bitset of one vertex under the hub policy.
    fn adjacency_bitset(graph: &LabeledGraph, v: VertexId, words: usize) -> Option<Box<[u64]>> {
        if graph.num_vertices() > HUB_MAX_VERTICES || graph.degree(v) < HUB_MIN_DEGREE {
            return None;
        }
        let mut bits = vec![0u64; words].into_boxed_slice();
        for &w in graph.neighbors(v) {
            bits[w as usize / 64] |= 1u64 << (w % 64);
        }
        Some(bits)
    }

    /// All hub adjacency bitsets, from scratch.
    fn build_adj_bits(graph: &LabeledGraph) -> Vec<Option<Box<[u64]>>> {
        let n = graph.num_vertices();
        let words = n.div_ceil(64);
        (0..n).map(|v| Self::adjacency_bitset(graph, v as VertexId, words)).collect()
    }

    /// Number of vertices of the indexed graph.
    pub fn num_vertices(&self) -> usize {
        self.fingerprints.len()
    }

    /// The fingerprint bit of one label.
    pub fn label_bit(label: Label) -> u64 {
        1u64 << (label.0 % 64)
    }

    /// The neighbour-label fingerprint of `v` in `graph`: the OR of the label bits
    /// of its neighbours.  Used for data vertices at build time and for pattern
    /// vertices at candidate-filter time, so the two sides hash identically.
    pub fn neighbor_fingerprint(graph: &LabeledGraph, v: VertexId) -> u64 {
        graph.neighbors(v).iter().fold(0u64, |fp, &w| fp | Self::label_bit(graph.label(w)))
    }

    /// The stored fingerprint of data vertex `v`.
    pub fn fingerprint(&self, v: VertexId) -> u64 {
        self.fingerprints[v as usize]
    }

    /// All vertices carrying `label`, ascending by id (empty if the label does not
    /// occur).
    pub fn vertices_with_label(&self, label: Label) -> &[VertexId] {
        self.label_index.get(&label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// How many vertices carry `label`.
    pub fn label_frequency(&self, label: Label) -> usize {
        self.vertices_with_label(label).len()
    }

    /// The vertices with `label` and degree ≥ `min_degree`, sorted by
    /// `(degree, id)` — one binary search into the label's degree bucket.
    pub fn vertices_with_min_degree(&self, label: Label, min_degree: usize) -> &[VertexId] {
        let Some(bucket) = self.degree_buckets.get(&label) else {
            return &[];
        };
        let cut = bucket.partition_point(|&v| (self.degrees[v as usize] as usize) < min_degree);
        &bucket[cut..]
    }

    /// Degree of data vertex `v` (as recorded at build time).
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v as usize] as usize
    }

    /// The hub adjacency bitset of `v` (`⌈V/64⌉` words, bit `w` set iff `(v, w)`
    /// is an edge), or `None` when `v` is not a hub under the size gates.
    pub fn adjacency_words(&self, v: VertexId) -> Option<&[u64]> {
        self.adj_bits[v as usize].as_deref()
    }

    /// Shannon entropy (in bits) of the label distribution of the indexed graph.
    ///
    /// `0.0` for a single-label (or empty) graph, `log2(k)` for `k` equally
    /// frequent labels.  Computed on demand in ascending label order so the value
    /// is deterministic; one of the inputs to the `EnumeratorBackend::Auto`
    /// heuristic.
    pub fn label_entropy(&self) -> f64 {
        let total = self.fingerprints.len();
        if total == 0 {
            return 0.0;
        }
        let mut counts: Vec<(Label, usize)> =
            self.label_index.iter().map(|(&l, vs)| (l, vs.len())).collect();
        counts.sort_by_key(|&(l, _)| l);
        let total = total as f64;
        -counts
            .iter()
            .filter(|&&(_, c)| c > 0)
            .map(|&(_, c)| {
                let p = c as f64 / total;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// Repair this index in place after `graph` absorbed the update batch that
    /// produced `delta` (see the [module docs](self)).  `graph` must be the
    /// **post-batch** graph the index was tracking; the patched index equals
    /// `GraphIndex::build(graph)` exactly.
    ///
    /// Cost: `O(|dirty| · deg)` per-vertex repairs plus one `O(V)` label scan and
    /// bucket re-sort per affected label — independent of the total edge count,
    /// which is what a cold rebuild pays.
    pub fn apply_delta(&mut self, graph: &LabeledGraph, delta: &GraphDelta) {
        let n = graph.num_vertices();
        debug_assert_eq!(
            self.fingerprints.len(),
            delta.base_vertices,
            "apply_delta: index was not built from the delta's pre-batch graph"
        );
        debug_assert_eq!(
            n,
            delta.base_vertices + delta.vertices_added - delta.vertices_removed,
            "apply_delta: graph is not the delta's post-batch graph"
        );
        // Swap-removal means only dirty slots (and truncated tail slots) changed:
        // resize, then recompute exactly the dirty per-vertex entries.
        self.fingerprints.resize(n, 0);
        self.degrees.resize(n, 0);
        for &v in &delta.dirty_new {
            self.fingerprints[v as usize] = Self::neighbor_fingerprint(graph, v);
            self.degrees[v as usize] = graph.degree(v) as u32;
        }
        // Hub adjacency bitsets.  A swap-removal renames the moved vertex inside
        // its neighbours' adjacency sets *without* those neighbours being dirty
        // (their labels/degrees/fingerprints are unchanged), so any batch that
        // removed vertices recomputes the bitsets wholesale — still cheaper than a
        // cold rebuild, which also pays the label scans and bucket sorts.  Pure
        // add/relabel batches patch only the dirty slots.
        if delta.vertices_removed > 0 {
            self.adj_bits = Self::build_adj_bits(graph);
        } else if n > HUB_MAX_VERTICES {
            // Growth across the size gate disables every bitset, dirty or not.
            self.adj_bits.clear();
            self.adj_bits.resize(n, None);
        } else {
            let words = n.div_ceil(64);
            self.adj_bits.resize(n, None);
            for bits in self.adj_bits.iter_mut().flatten() {
                if bits.len() != words {
                    let mut grown = bits.to_vec();
                    grown.resize(words, 0);
                    *bits = grown.into_boxed_slice();
                }
            }
            for &v in &delta.dirty_new {
                self.adj_bits[v as usize] = Self::adjacency_bitset(graph, v, words);
            }
        }
        // A label's lists change only when a member's membership, id or degree
        // changed — all such vertices are dirty and their labels are in
        // `affected_labels`; untouched labels keep their vectors untouched.
        for &label in &delta.affected_labels {
            let vertices = graph.vertices_with_label(label);
            if vertices.is_empty() {
                self.label_index.remove(&label);
                self.degree_buckets.remove(&label);
                continue;
            }
            let mut bucket = vertices.clone();
            bucket.sort_by_key(|&v| (self.degrees[v as usize], v));
            self.label_index.insert(label, vertices);
            self.degree_buckets.insert(label, bucket);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabeledGraph {
        // Star: hub 0 (label 0) with leaves 1..4 (label 1) plus an isolated label-2
        // vertex and a label-1 vertex of degree 2.
        LabeledGraph::from_edges(&[0, 1, 1, 1, 1, 2, 1], &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 6)])
    }

    #[test]
    fn label_index_is_sorted_and_complete() {
        let g = sample();
        let ix = GraphIndex::build(&g);
        assert_eq!(ix.num_vertices(), 7);
        assert_eq!(ix.vertices_with_label(Label(0)), &[0]);
        assert_eq!(ix.vertices_with_label(Label(1)), &[1, 2, 3, 4, 6]);
        assert_eq!(ix.vertices_with_label(Label(2)), &[5]);
        assert_eq!(ix.vertices_with_label(Label(9)), &[] as &[VertexId]);
        assert_eq!(ix.label_frequency(Label(1)), 5);
    }

    #[test]
    fn degree_buckets_cut_at_min_degree() {
        let g = sample();
        let ix = GraphIndex::build(&g);
        // Label-1 degrees: v1 has 2, v2..v4 have 1, v6 has 1.
        assert_eq!(ix.vertices_with_min_degree(Label(1), 2), &[1]);
        let all = ix.vertices_with_min_degree(Label(1), 0);
        assert_eq!(all.len(), 5);
        // Bucket order is (degree, id): the three degree-1 leaves and v6 first.
        assert_eq!(&all[..4], &[2, 3, 4, 6]);
        assert!(ix.vertices_with_min_degree(Label(2), 1).is_empty());
        assert!(ix.vertices_with_min_degree(Label(7), 0).is_empty());
    }

    #[test]
    fn fingerprints_reflect_neighbor_labels() {
        let g = sample();
        let ix = GraphIndex::build(&g);
        // Hub 0 sees only label-1 neighbours.
        assert_eq!(ix.fingerprint(0), GraphIndex::label_bit(Label(1)));
        // Leaf 1 sees labels 0 and 1 (via vertex 6).
        assert_eq!(
            ix.fingerprint(1),
            GraphIndex::label_bit(Label(0)) | GraphIndex::label_bit(Label(1))
        );
        // The isolated vertex has the empty fingerprint.
        assert_eq!(ix.fingerprint(5), 0);
        // Subset test used by the candidate builder: hub's requirement ⊆ leaf's view.
        let need = GraphIndex::label_bit(Label(0));
        assert_eq!(need & !ix.fingerprint(1), 0);
        assert_ne!(need & !ix.fingerprint(0), 0);
    }

    #[test]
    fn apply_delta_matches_rebuild_on_each_update_kind() {
        use ffsm_graph::{apply_batch, GraphUpdate};
        let batches: Vec<Vec<GraphUpdate>> = vec![
            vec![GraphUpdate::AddEdge(2, 3)],
            vec![GraphUpdate::RemoveEdge(0, 1)],
            vec![GraphUpdate::AddVertex(Label(3)), GraphUpdate::AddEdge(7, 0)],
            vec![GraphUpdate::Relabel(6, Label(2))],
            vec![GraphUpdate::RemoveVertex(0)], // removes the hub, moves the last vertex
            vec![GraphUpdate::RemoveVertex(2), GraphUpdate::AddEdge(0, 1)],
        ];
        let mut graph = sample();
        let mut index = GraphIndex::build(&graph);
        for batch in batches {
            let delta = apply_batch(&mut graph, &batch).expect("valid batch");
            index.apply_delta(&graph, &delta);
            assert_eq!(index, GraphIndex::build(&graph), "after {batch:?}");
        }
    }

    #[test]
    fn apply_delta_drops_emptied_labels() {
        use ffsm_graph::{apply_batch, GraphUpdate};
        let mut graph = sample();
        let mut index = GraphIndex::build(&graph);
        // Vertex 5 is the only label-2 vertex; relabelling it empties the bucket.
        let delta = apply_batch(&mut graph, &[GraphUpdate::Relabel(5, Label(1))]).unwrap();
        index.apply_delta(&graph, &delta);
        assert!(index.vertices_with_label(Label(2)).is_empty());
        assert!(index.vertices_with_min_degree(Label(2), 0).is_empty());
        assert_eq!(index, GraphIndex::build(&graph));
    }

    #[test]
    fn label_entropy_reflects_the_distribution() {
        // Single label → 0 bits; two equal labels → 1 bit.
        let one = LabeledGraph::from_edges(&[0, 0, 0, 0], &[(0, 1)]);
        assert_eq!(GraphIndex::build(&one).label_entropy(), 0.0);
        let two = LabeledGraph::from_edges(&[0, 0, 1, 1], &[(0, 2)]);
        assert!((GraphIndex::build(&two).label_entropy() - 1.0).abs() < 1e-12);
        // The sample graph (labels 1:5, 0:1, 2:1 over 7 vertices) sits in between.
        let h = GraphIndex::build(&sample()).label_entropy();
        assert!(h > 1.0 && h < std::f64::consts::LOG2_E * 2.0, "h = {h}");
    }

    #[test]
    fn hub_bitsets_follow_the_degree_and_size_gates() {
        // A star whose hub exceeds HUB_MIN_DEGREE gets a bitset; leaves do not.
        let leaves = HUB_MIN_DEGREE + 3;
        let labels = vec![0u32; leaves + 1];
        let edges: Vec<(VertexId, VertexId)> = (1..=leaves).map(|l| (0, l as VertexId)).collect();
        let g = LabeledGraph::from_edges(&labels, &edges);
        let ix = GraphIndex::build(&g);
        let bits = ix.adjacency_words(0).expect("hub gets a bitset");
        assert_eq!(bits.len(), (leaves + 1).div_ceil(64));
        for l in 1..=leaves {
            assert_ne!(bits[l / 64] & (1u64 << (l % 64)), 0, "leaf {l} bit");
            assert!(ix.adjacency_words(l as VertexId).is_none(), "leaves are not hubs");
        }
        assert_eq!(bits[0] & 1, 0, "no self-loop bit");
    }

    #[test]
    fn apply_delta_repairs_hub_bitsets() {
        use ffsm_graph::{apply_batch, GraphUpdate};
        // Build a hub, then push it across the degree gate in both directions and
        // through a swap-removal; the patched index must equal a rebuild each time.
        let leaves = HUB_MIN_DEGREE;
        let labels = vec![0u32; leaves + 2];
        let edges: Vec<(VertexId, VertexId)> = (1..=leaves).map(|l| (0, l as VertexId)).collect();
        let mut graph = LabeledGraph::from_edges(&labels, &edges);
        let mut index = GraphIndex::build(&graph);
        assert!(index.adjacency_words(0).is_some());
        let batches: Vec<Vec<GraphUpdate>> = vec![
            vec![GraphUpdate::RemoveEdge(0, 1)], // hub drops below the gate
            vec![GraphUpdate::AddEdge(0, 1), GraphUpdate::AddEdge(0, leaves as VertexId + 1)],
            vec![GraphUpdate::RemoveVertex(3)], // swap-removal renames a leaf
        ];
        for batch in batches {
            let delta = apply_batch(&mut graph, &batch).expect("valid batch");
            index.apply_delta(&graph, &delta);
            assert_eq!(index, GraphIndex::build(&graph), "after {batch:?}");
        }
    }

    #[test]
    fn degrees_are_recorded() {
        let g = sample();
        let ix = GraphIndex::build(&g);
        assert_eq!(ix.degree(0), 4);
        assert_eq!(ix.degree(5), 0);
        assert_eq!(ix.degree(1), 2);
    }
}
