//! Plain-text table rendering for the experiment harness.
//!
//! Tables are printed in GitHub-flavoured Markdown so the harness output can be
//! pasted directly into `EXPERIMENTS.md`.

/// A simple Markdown table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as there are headers).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as Markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n### {}\n\n", self.title));
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |", dashes.join(" | ")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Escape a string for inclusion in a JSON document (the offline build has no
/// `serde_json`; the perf reports hand-assemble their JSON through this).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a JSON string literal (escaped and quoted).
pub fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// Format a float with three decimals, trimming ".000" for integral values.
pub fn fmt_value(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("demo", &["a", "longer"]);
        t.add_row(vec!["1".into(), "2".into()]);
        t.add_row(vec!["100".into(), "x".into()]);
        let r = t.render();
        assert!(r.contains("### demo"));
        assert!(r.contains("| a   | longer |"));
        assert!(r.contains("| 100 | x      |"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_string("x\t"), "\"x\\t\"");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(3.0), "3");
        assert_eq!(fmt_value(2.5), "2.500");
        assert_eq!(fmt_value(1.9999999999), "2");
    }
}
