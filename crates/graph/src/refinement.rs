//! Weisfeiler–Leman (colour-refinement) machinery.
//!
//! 1-dimensional WL refinement iteratively partitions vertices by `(own colour,
//! multiset of neighbour colours)` until the partition stabilises.  The project uses
//! it in three ways:
//!
//! * as a cheap *necessary* condition for isomorphism — two graphs with different
//!   stable colour histograms cannot be isomorphic, which lets
//!   [`crate::isomorphism::are_isomorphic`]-style checks and the miner's
//!   de-duplication skip the expensive backtracking search on obvious mismatches;
//! * as a seed partition for automorphism-orbit computation — vertices in different
//!   stable colour classes can never be in the same orbit, so the orbit search only
//!   has to distinguish vertices *within* classes;
//! * as an additional pruning signal in subgraph-isomorphism candidate filtering
//!   (pattern vertices can only map to data vertices whose iterated colour "contains"
//!   theirs — we only use the coarser degree/label filter in the enumerator, but the
//!   partition is exposed here for experiments on pruning strength).

use crate::{LabeledGraph, VertexId};
use std::collections::HashMap;

/// The stable colouring produced by [`refine`]: one colour id per vertex plus the
/// number of refinement rounds that were needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refinement {
    /// Colour class of every vertex (dense ids `0..num_classes`).
    pub colors: Vec<usize>,
    /// Number of distinct colour classes.
    pub num_classes: usize,
    /// Refinement rounds until the partition stabilised.
    pub rounds: usize,
}

impl Refinement {
    /// The colour classes as sorted vertex lists, ordered by colour id.
    pub fn classes(&self) -> Vec<Vec<VertexId>> {
        let mut classes = vec![Vec::new(); self.num_classes];
        for (v, &c) in self.colors.iter().enumerate() {
            classes[c].push(v as VertexId);
        }
        classes
    }

    /// Histogram of class sizes (sorted ascending) — the canonical-ish summary used
    /// to compare two graphs' refinements.
    pub fn class_size_histogram(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_classes];
        for &c in &self.colors {
            sizes[c] += 1;
        }
        sizes.sort_unstable();
        sizes
    }

    /// `true` if every vertex sits in its own class (the partition is discrete); in
    /// that case the graph has no non-trivial automorphism.
    pub fn is_discrete(&self) -> bool {
        self.num_classes == self.colors.len()
    }
}

/// Run 1-WL colour refinement to a stable partition.  Initial colours are the vertex
/// labels; each round replaces a vertex's colour by a hash of `(colour, sorted
/// neighbour colours)` until the number of classes stops growing.
pub fn refine(graph: &LabeledGraph) -> Refinement {
    let n = graph.num_vertices();
    if n == 0 {
        return Refinement { colors: Vec::new(), num_classes: 0, rounds: 0 };
    }
    // Initial colouring by label, densified.
    let mut palette: HashMap<u32, usize> = HashMap::new();
    let mut colors: Vec<usize> = (0..n)
        .map(|v| {
            let next = palette.len();
            *palette.entry(graph.label(v as VertexId).0).or_insert(next)
        })
        .collect();
    let mut num_classes = palette.len();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        // Signature of a vertex = (own colour, sorted multiset of neighbour colours).
        let mut signatures: Vec<(usize, Vec<usize>)> = Vec::with_capacity(n);
        for v in 0..n {
            let mut neigh: Vec<usize> =
                graph.neighbors(v as VertexId).iter().map(|&w| colors[w as usize]).collect();
            neigh.sort_unstable();
            signatures.push((colors[v], neigh));
        }
        let mut sig_palette: HashMap<&(usize, Vec<usize>), usize> = HashMap::new();
        let mut new_colors = vec![0usize; n];
        for (v, sig) in signatures.iter().enumerate() {
            let next = sig_palette.len();
            new_colors[v] = *sig_palette.entry(sig).or_insert(next);
        }
        let new_num = sig_palette.len();
        if new_num == num_classes {
            // Stable: keep the previous colours (same partition, stable ids).
            break;
        }
        colors = new_colors;
        num_classes = new_num;
        if num_classes == n {
            break;
        }
    }
    Refinement { colors, num_classes, rounds }
}

/// A WL-based *necessary* condition for two graphs being isomorphic: equal vertex and
/// edge counts, equal label histograms, and equal stable class-size histograms
/// per-round signature.  Returns `false` only when the graphs are certainly
/// non-isomorphic; `true` means "possibly isomorphic".
pub fn wl_possibly_isomorphic(a: &LabeledGraph, b: &LabeledGraph) -> bool {
    if a.num_vertices() != b.num_vertices()
        || a.num_edges() != b.num_edges()
        || a.label_histogram() != b.label_histogram()
    {
        return false;
    }
    let ra = refine(a);
    let rb = refine(b);
    ra.num_classes == rb.num_classes && ra.class_size_histogram() == rb.class_size_histogram()
}

/// A compact, WL-derived fingerprint of a graph.  Isomorphic graphs always receive
/// equal fingerprints; unequal fingerprints certify non-isomorphism.  (Equal
/// fingerprints do *not* certify isomorphism — use
/// [`crate::isomorphism::are_isomorphic`] for that.)
pub fn wl_fingerprint(graph: &LabeledGraph) -> Vec<u64> {
    let r = refine(graph);
    // For each class: (size, representative label, sum of neighbour class sizes) —
    // all invariant under isomorphism.
    let classes = r.classes();
    let mut entries: Vec<u64> = Vec::with_capacity(classes.len() + 2);
    entries.push(graph.num_vertices() as u64);
    entries.push(graph.num_edges() as u64);
    let mut per_class: Vec<(u64, u64, u64)> = classes
        .iter()
        .map(|class| {
            let size = class.len() as u64;
            let label = class.first().map(|&v| graph.label(v).0 as u64).unwrap_or(0);
            let degree_sum: u64 = class.iter().map(|&v| graph.degree(v) as u64).sum();
            (size, label, degree_sum)
        })
        .collect();
    per_class.sort_unstable();
    for (size, label, degree_sum) in per_class {
        entries.push(size);
        entries.push(label);
        entries.push(degree_sum);
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::shuffle_vertices;
    use crate::{generators, patterns, Label};

    #[test]
    fn refinement_of_empty_and_single() {
        let r = refine(&LabeledGraph::new());
        assert_eq!(r.num_classes, 0);
        let single = patterns::single_vertex(Label(3));
        let r = refine(&single);
        assert_eq!(r.num_classes, 1);
        assert!(r.is_discrete());
    }

    #[test]
    fn uniform_clique_stays_one_class() {
        let k4 = patterns::uniform_clique(4, Label(0));
        let r = refine(&k4);
        assert_eq!(r.num_classes, 1);
        assert_eq!(r.class_size_histogram(), vec![4]);
        assert!(!r.is_discrete());
    }

    #[test]
    fn path_endpoints_vs_midpoints() {
        // Uniform path of 4: endpoints form one class, midpoints another.
        let p = patterns::uniform_path(4, Label(0));
        let r = refine(&p);
        assert_eq!(r.num_classes, 2);
        let classes = r.classes();
        let sizes: Vec<usize> = classes.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2));
        // Uniform path of 5 distinguishes centre from the others: 3 classes.
        let p5 = patterns::uniform_path(5, Label(0));
        assert_eq!(refine(&p5).num_classes, 3);
    }

    #[test]
    fn labels_seed_the_partition() {
        let mixed = LabeledGraph::from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let r = refine(&mixed);
        // Ends share a class (same label, same neighbourhood), middle is alone.
        assert_eq!(r.num_classes, 2);
        let all_same = crate::transform::forget_labels(&mixed);
        assert_eq!(refine(&all_same).num_classes, 2);
    }

    #[test]
    fn fingerprint_is_isomorphism_invariant() {
        let g = generators::gnm_random(30, 70, 3, 21);
        let shuffled = shuffle_vertices(&g, 5);
        assert_eq!(wl_fingerprint(&g), wl_fingerprint(&shuffled));
        assert!(wl_possibly_isomorphic(&g, &shuffled));
    }

    #[test]
    fn fingerprint_distinguishes_different_graphs() {
        let path = patterns::uniform_path(4, Label(0));
        let star = patterns::uniform_star(3, Label(0), Label(0));
        // Same vertex and edge counts, same labels, but different degree structure.
        assert_ne!(wl_fingerprint(&path), wl_fingerprint(&star));
        assert!(!wl_possibly_isomorphic(&path, &star));
        // Different sizes short-circuit.
        assert!(!wl_possibly_isomorphic(&path, &patterns::uniform_path(5, Label(0))));
    }

    #[test]
    fn wl_consistent_with_exact_isomorphism_on_random_graphs() {
        for seed in 0..10u64 {
            let a = generators::gnm_random(12, 20, 2, seed);
            let b = shuffle_vertices(&a, seed + 100);
            assert!(wl_possibly_isomorphic(&a, &b));
            assert!(crate::isomorphism::are_isomorphic(&a, &b));
        }
    }

    #[test]
    fn discrete_partition_implies_trivial_automorphisms() {
        // A path with all-distinct labels: WL separates every vertex.
        let p = patterns::path(&[Label(0), Label(1), Label(2), Label(3)]);
        let r = refine(&p);
        assert!(r.is_discrete());
        assert_eq!(crate::automorphism::automorphism_count(&p), 1);
    }
}
