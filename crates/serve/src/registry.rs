//! [`GraphRegistry`] — named graphs with an epoch-aware prepared cache.
//!
//! The registry is the server's multi-tenant state: a map from names to
//! versioned [`DynamicGraph`] stores.  Each store's retained [`EpochSnapshot`]s
//! *are* the prepared cache, keyed by `(graph, epoch)`:
//!
//! * **populated lazily** — a snapshot's [`PreparedGraph`] builds its matching
//!   index on the first mine over that epoch (or inherits it pre-patched from
//!   the parent epoch), and every later session over the same epoch shares it;
//! * **invalidated by updates** — [`GraphRegistry::apply`] commits a new epoch
//!   and prunes the oldest retained snapshots, but never disturbs handles
//!   already checked out: an in-flight session keeps mining the epoch it was
//!   admitted on while new requests see the new epoch immediately (the
//!   serving-side analogue of answering queries under updates);
//! * **observable** — per-graph counters report mines, committed updates, and
//!   how often a checkout found the epoch's index already built (warm) versus
//!   not (cold), so the cache's effectiveness shows up in `stat` frames instead
//!   of staying folklore.
//!
//! All methods take `&self`: lookups share a read lock, and each graph has its
//! own store mutex, so traffic on different graphs never contends.

use ffsm_core::FfsmError;
use ffsm_dynamic::{DynamicGraph, EpochSnapshot};
use ffsm_graph::{GraphDelta, GraphUpdate, LabeledGraph};
use ffsm_shard::{PartitionSpec, PartitionedGraph};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One registered graph: its versioned store plus serving counters.
#[derive(Debug)]
struct GraphEntry {
    store: Mutex<DynamicGraph>,
    /// The epoch-stamped shard partition, if one has been built.  Invalidated
    /// (dropped) by every committed update batch: a partition describes exactly
    /// one epoch's topology, and serving a stale one would break the halo
    /// invariant silently.
    partition: Mutex<Option<PartitionHandle>>,
    mines: AtomicU64,
    updates: AtomicU64,
    partitions: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// A built partition pinned to the epoch it was computed over.
#[derive(Debug, Clone)]
pub struct PartitionHandle {
    /// Epoch of the graph the partition was built over.
    pub epoch: usize,
    /// The shared partitioned graph (cheap to clone).
    pub partitioned: Arc<PartitionedGraph>,
}

/// A point-in-time description of one registered graph (the `list` frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSummary {
    /// Registered name.
    pub name: String,
    /// Current epoch number.
    pub epoch: usize,
    /// Vertices in the current epoch.
    pub vertices: usize,
    /// Edges in the current epoch.
    pub edges: usize,
    /// Distinct labels in the current epoch.
    pub labels: usize,
    /// Shard count of the current epoch's partition, `None` when the graph is
    /// unpartitioned (or the partition was invalidated by an update).
    pub shards: Option<usize>,
}

/// Serving statistics for one registered graph (the per-graph `stat` frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// The structural summary.
    pub summary: GraphSummary,
    /// `(oldest, newest)` retained epochs — the prepared cache's span.
    pub retained: (usize, usize),
    /// Mine checkouts served.
    pub mines: u64,
    /// Update batches committed (== epochs created).
    pub updates: u64,
    /// Checkouts that found the epoch's matching index already built.
    pub cache_hits: u64,
    /// Checkouts that found it not yet built (the session builds it lazily).
    pub cache_misses: u64,
    /// Whether the *current* epoch's index is built right now.
    pub index_built: bool,
    /// Partitions built over this graph (each `partition` request counts one,
    /// whether it replaced an existing partition or not).
    pub partitions: u64,
    /// The current partition's `(shards, halo_depth)`, if one is live.
    pub partition_geometry: Option<(usize, usize)>,
}

/// The server's named-graph store.  See the [module docs](self).
#[derive(Debug)]
pub struct GraphRegistry {
    graphs: RwLock<BTreeMap<String, Arc<GraphEntry>>>,
    /// Epoch snapshots each store keeps alive (the current epoch always
    /// survives; checked-out handles of pruned epochs stay valid).
    retain_epochs: usize,
}

impl GraphRegistry {
    /// An empty registry retaining `retain_epochs` snapshots per graph
    /// (clamped to at least 1 — the current epoch is always kept).
    pub fn new(retain_epochs: usize) -> Self {
        GraphRegistry { graphs: RwLock::new(BTreeMap::new()), retain_epochs: retain_epochs.max(1) }
    }

    /// Register `graph` under `name` (epoch 0).
    ///
    /// # Errors
    ///
    /// [`FfsmError::InvalidConfig`] for an empty / non-printable name or a name
    /// already taken — registration is explicit, never an upsert.
    pub fn register(&self, name: &str, graph: LabeledGraph) -> Result<(), FfsmError> {
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_graphic()) {
            return Err(FfsmError::InvalidConfig(format!(
                "graph name {name:?} must be non-empty printable ASCII without spaces"
            )));
        }
        let mut graphs = self.graphs.write().expect("registry lock poisoned");
        if graphs.contains_key(name) {
            return Err(FfsmError::InvalidConfig(format!("graph {name:?} is already registered")));
        }
        graphs.insert(
            name.to_string(),
            Arc::new(GraphEntry {
                store: Mutex::new(DynamicGraph::new(graph)),
                partition: Mutex::new(None),
                mines: AtomicU64::new(0),
                updates: AtomicU64::new(0),
                partitions: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
            }),
        );
        Ok(())
    }

    fn entry(&self, name: &str) -> Result<Arc<GraphEntry>, FfsmError> {
        self.graphs
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| FfsmError::UnknownGraph(name.to_string()))
    }

    /// Check out the current epoch of `name` for mining: a cheap clone of the
    /// immutable snapshot.  The handle stays valid forever — updates committed
    /// after checkout create *new* epochs and never touch it.
    ///
    /// # Errors
    ///
    /// [`FfsmError::UnknownGraph`].
    pub fn checkout(&self, name: &str) -> Result<EpochSnapshot, FfsmError> {
        let entry = self.entry(name)?;
        let snapshot = entry.store.lock().expect("store lock poisoned").current().clone();
        entry.mines.fetch_add(1, Ordering::Relaxed);
        if snapshot.prepared().index_is_built() {
            entry.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            entry.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        Ok(snapshot)
    }

    /// Validate and commit one update batch to `name`, creating the next epoch
    /// and pruning history beyond the retention limit.  Returns the new epoch
    /// number and the batch's delta.  Atomic: a failed batch changes nothing.
    ///
    /// # Errors
    ///
    /// [`FfsmError::UnknownGraph`]; [`FfsmError::Update`] naming the offending
    /// update.
    pub fn apply(
        &self,
        name: &str,
        batch: &[GraphUpdate],
    ) -> Result<(usize, GraphDelta, GraphSummary), FfsmError> {
        let entry = self.entry(name)?;
        let mut store = entry.store.lock().expect("store lock poisoned");
        let snapshot = store.apply(batch)?;
        let epoch = snapshot.epoch();
        let delta = snapshot.delta().expect("non-initial epoch carries a delta").clone();
        let summary = summarize(name, snapshot, None);
        store.retain_recent(self.retain_epochs);
        entry.updates.fetch_add(1, Ordering::Relaxed);
        drop(store);
        // The committed epoch has new topology: any partition is now stale.
        *entry.partition.lock().expect("partition lock poisoned") = None;
        Ok((epoch, delta, summary))
    }

    /// Build (or rebuild) a shard partition over `name`'s current epoch and
    /// retain it for `list`/`stat` introspection and partitioned checkouts.
    /// Returns the handle, so callers can report shard geometry immediately.
    ///
    /// # Errors
    ///
    /// [`FfsmError::UnknownGraph`]; [`FfsmError::Partition`] for an invalid
    /// spec (zero shards, halo swallowing the graph).
    pub fn partition(&self, name: &str, spec: PartitionSpec) -> Result<PartitionHandle, FfsmError> {
        let entry = self.entry(name)?;
        let snapshot = entry.store.lock().expect("store lock poisoned").current().clone();
        let partitioned = Arc::new(PartitionedGraph::build(snapshot.prepared().graph(), spec)?);
        let handle = PartitionHandle { epoch: snapshot.epoch(), partitioned };
        *entry.partition.lock().expect("partition lock poisoned") = Some(handle.clone());
        entry.partitions.fetch_add(1, Ordering::Relaxed);
        Ok(handle)
    }

    /// The current partition of `name`, if one is live (built and not
    /// invalidated by a later update).
    ///
    /// # Errors
    ///
    /// [`FfsmError::UnknownGraph`].
    pub fn partition_handle(&self, name: &str) -> Result<Option<PartitionHandle>, FfsmError> {
        let entry = self.entry(name)?;
        let handle = entry.partition.lock().expect("partition lock poisoned").clone();
        Ok(handle)
    }

    /// Summaries of every registered graph, by name.
    pub fn list(&self) -> Vec<GraphSummary> {
        let graphs = self.graphs.read().expect("registry lock poisoned");
        graphs
            .iter()
            .map(|(name, entry)| {
                let shards = entry
                    .partition
                    .lock()
                    .expect("partition lock poisoned")
                    .as_ref()
                    .map(|p| p.partitioned.num_shards());
                let store = entry.store.lock().expect("store lock poisoned");
                summarize(name, store.current(), shards)
            })
            .collect()
    }

    /// Serving statistics for one graph.
    ///
    /// # Errors
    ///
    /// [`FfsmError::UnknownGraph`].
    pub fn stats(&self, name: &str) -> Result<GraphStats, FfsmError> {
        let entry = self.entry(name)?;
        let geometry = entry.partition.lock().expect("partition lock poisoned").as_ref().map(|p| {
            let spec = p.partitioned.spec();
            (spec.num_shards, spec.halo_depth)
        });
        let store = entry.store.lock().expect("store lock poisoned");
        Ok(GraphStats {
            summary: summarize(name, store.current(), geometry.map(|(shards, _)| shards)),
            retained: store.retained_range(),
            mines: entry.mines.load(Ordering::Relaxed),
            updates: entry.updates.load(Ordering::Relaxed),
            cache_hits: entry.cache_hits.load(Ordering::Relaxed),
            cache_misses: entry.cache_misses.load(Ordering::Relaxed),
            index_built: store.current().prepared().index_is_built(),
            partitions: entry.partitions.load(Ordering::Relaxed),
            partition_geometry: geometry,
        })
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.graphs.read().expect("registry lock poisoned").len()
    }

    /// `true` when no graph is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn summarize(name: &str, snapshot: &EpochSnapshot, shards: Option<usize>) -> GraphSummary {
    let graph = snapshot.prepared().graph();
    GraphSummary {
        name: name.to_string(),
        epoch: snapshot.epoch(),
        vertices: graph.num_vertices(),
        edges: graph.num_edges(),
        labels: snapshot.prepared().alphabet().len(),
        shards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::generators;

    fn registry_with(name: &str) -> GraphRegistry {
        let registry = GraphRegistry::new(2);
        registry.register(name, generators::gnm_random(30, 50, 3, 7)).unwrap();
        registry
    }

    #[test]
    fn register_validates_names_and_rejects_duplicates() {
        let registry = registry_with("g");
        for bad in ["", "has space", "ctl\u{7}"] {
            assert!(matches!(
                registry.register(bad, LabeledGraph::new()),
                Err(FfsmError::InvalidConfig(_))
            ));
        }
        assert!(matches!(
            registry.register("g", LabeledGraph::new()),
            Err(FfsmError::InvalidConfig(_))
        ));
        assert_eq!(registry.len(), 1);
        assert!(!registry.is_empty());
    }

    #[test]
    fn unknown_graphs_are_typed() {
        let registry = registry_with("g");
        assert!(matches!(registry.checkout("nope"), Err(FfsmError::UnknownGraph(_))));
        assert!(matches!(registry.stats("nope"), Err(FfsmError::UnknownGraph(_))));
        assert!(matches!(registry.apply("nope", &[]), Err(FfsmError::UnknownGraph(_))));
    }

    #[test]
    fn checkout_counts_cache_warmth() {
        let registry = registry_with("g");
        let cold = registry.checkout("g").unwrap();
        assert_eq!(registry.stats("g").unwrap().cache_misses, 1, "index not built yet");
        let _ = cold.prepared().index(); // a session builds it lazily
        let warm = registry.checkout("g").unwrap();
        assert!(warm.prepared().index_is_built());
        let stats = registry.stats("g").unwrap();
        assert_eq!((stats.cache_hits, stats.cache_misses, stats.mines), (1, 1, 2));
        assert!(stats.index_built);
    }

    #[test]
    fn apply_creates_epochs_and_preserves_checked_out_handles() {
        let registry = registry_with("g");
        let before = registry.checkout("g").unwrap();
        let edges_before = before.prepared().graph().num_edges();
        let (u, v) = before.prepared().graph().edges().next().unwrap();
        let (epoch, delta, summary) =
            registry.apply("g", &[GraphUpdate::RemoveEdge(u, v)]).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(delta.edges_removed, 1);
        assert_eq!(summary.edges, edges_before - 1);
        // The old handle is undisturbed; new checkouts see the new epoch.
        assert_eq!(before.prepared().graph().num_edges(), edges_before);
        assert_eq!(registry.checkout("g").unwrap().epoch(), 1);
        // Retention prunes history but stat still reports the span.
        for _ in 0..3 {
            registry.apply("g", &[GraphUpdate::AddVertex(ffsm_graph::Label(1))]).unwrap();
        }
        let stats = registry.stats("g").unwrap();
        assert_eq!(stats.summary.epoch, 4);
        assert_eq!(stats.retained, (3, 4));
        assert_eq!(stats.updates, 4);
    }

    #[test]
    fn failed_batches_are_atomic_and_uncounted() {
        let registry = registry_with("g");
        let err = registry.apply("g", &[GraphUpdate::RemoveVertex(999)]).unwrap_err();
        assert!(matches!(err, FfsmError::Update(_)));
        let stats = registry.stats("g").unwrap();
        assert_eq!(stats.updates, 0);
        assert_eq!(stats.summary.epoch, 0);
    }

    #[test]
    fn partition_is_epoch_stamped_and_invalidated_by_updates() {
        let registry = registry_with("g");
        assert!(registry.partition_handle("g").unwrap().is_none());
        assert!(registry.list()[0].shards.is_none());

        let handle = registry.partition("g", PartitionSpec::vertex_range(3, 2)).unwrap();
        assert_eq!(handle.epoch, 0);
        assert_eq!(handle.partitioned.num_shards(), 3);
        let stats = registry.stats("g").unwrap();
        assert_eq!(stats.summary.shards, Some(3));
        assert_eq!(stats.partitions, 1);
        assert_eq!(stats.partition_geometry, Some((3, 2)));
        assert_eq!(registry.list()[0].shards, Some(3));

        // Invalid specs are typed and leave the live partition untouched.
        let err = registry.partition("g", PartitionSpec::vertex_range(0, 2)).unwrap_err();
        assert!(matches!(err, FfsmError::Partition(_)));
        assert!(registry.partition_handle("g").unwrap().is_some());

        // A committed update invalidates the partition but keeps its count.
        registry.apply("g", &[GraphUpdate::AddVertex(ffsm_graph::Label(0))]).unwrap();
        assert!(registry.partition_handle("g").unwrap().is_none());
        let stats = registry.stats("g").unwrap();
        assert_eq!(stats.summary.shards, None);
        assert_eq!(stats.partitions, 1);
        assert_eq!(stats.partition_geometry, None);

        // Rebuilding stamps the new epoch.
        let handle = registry.partition("g", PartitionSpec::label_aware(2, 2)).unwrap();
        assert_eq!(handle.epoch, 1);
        assert_eq!(registry.stats("g").unwrap().partitions, 2);
        assert!(matches!(
            registry.partition("nope", PartitionSpec::vertex_range(2, 2)),
            Err(FfsmError::UnknownGraph(_))
        ));
    }

    #[test]
    fn list_is_sorted_by_name() {
        let registry = GraphRegistry::new(1);
        registry.register("zeta", generators::gnm_random(5, 4, 2, 1)).unwrap();
        registry.register("alpha", generators::gnm_random(8, 6, 2, 2)).unwrap();
        let names: Vec<_> = registry.list().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
