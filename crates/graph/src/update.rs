//! Typed graph updates and the delta they induce.
//!
//! The dynamic-graph subsystem (`ffsm-dynamic`) evolves a data graph through
//! batches of [`GraphUpdate`]s.  [`apply_batch`] validates and applies one batch
//! to a [`LabeledGraph`] and returns a [`GraphDelta`] describing the **dirty
//! region** — exactly the bookkeeping the incremental layers need:
//!
//! * `ffsm-match`'s `GraphIndex::apply_delta` repairs the per-vertex index slots
//!   in [`GraphDelta::dirty_new`] and rebuilds only the label buckets in
//!   [`GraphDelta::affected_labels`];
//! * the delta-aware miner re-evaluates only patterns whose occurrences touch
//!   [`GraphDelta::dirty_old`] (cached results, pre-batch id space) or
//!   [`GraphDelta::dirty_new`] (the new graph, post-batch id space).
//!
//! ## Two id spaces
//!
//! [`LabeledGraph::remove_vertex`] keeps identifiers dense by swap-removal, so a
//! batch containing removals *renames* the moved vertices.  The delta therefore
//! tracks dirtiness in both spaces: `dirty_old` holds pre-batch ids (for
//! interpreting state cached before the batch), `dirty_new` holds post-batch ids
//! (for querying the updated graph).  A moved vertex is dirty in both — anything
//! cached under its old name must be re-derived.
//!
//! ## Dirtiness invariants
//!
//! After `apply_batch`, the following hold (the foundation of every incremental
//! correctness argument downstream):
//!
//! * every occurrence (subgraph isomorphism image) present in the old graph but
//!   not the new one touches a vertex in `dirty_old`;
//! * every occurrence present in the new graph but not the old one touches a
//!   vertex in `dirty_new`;
//! * every vertex whose degree, label or neighbour-label set changed — and every
//!   vertex whose id changed — is in `dirty_new`, and its label (old and new) is
//!   in `affected_labels`.
//!
//! Updates are validated strictly against vertex ranges (and self loops);
//! *redundant* edge updates (adding an existing edge, removing a missing one) and
//! identity relabels are accepted as no-ops and do not dirty anything, which is
//! what replayable update streams want.  A failed update aborts the batch with a
//! typed [`UpdateError`] naming the offending index; callers that need atomicity
//! apply the batch to a scratch clone (as `ffsm-miner`'s
//! `PreparedGraph::apply_updates` does).

use crate::graph::GraphError;
use crate::{Label, LabeledGraph, VertexId};
use std::collections::BTreeSet;

/// One typed update to a [`LabeledGraph`].
///
/// The text form (one update per line, parsed by [`FromStr`](std::str::FromStr)
/// and emitted by [`Display`](std::fmt::Display)) mirrors the `.lg` record style:
///
/// ```text
/// av <label>        # add a vertex (ids are assigned densely)
/// rv <vertex>       # remove a vertex (swap-removal renames the last vertex)
/// ae <u> <v>        # add the undirected edge {u, v}
/// re <u> <v>        # remove the undirected edge {u, v}
/// rl <vertex> <label>   # relabel a vertex
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphUpdate {
    /// Append a vertex with the given label (its id is the current vertex count).
    AddVertex(Label),
    /// Remove a vertex and its incident edges (swap-removal keeps ids dense).
    RemoveVertex(VertexId),
    /// Insert the undirected edge `{u, v}`.
    AddEdge(VertexId, VertexId),
    /// Delete the undirected edge `{u, v}`.
    RemoveEdge(VertexId, VertexId),
    /// Change the label of a vertex.
    Relabel(VertexId, Label),
}

impl std::fmt::Display for GraphUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GraphUpdate::AddVertex(label) => write!(f, "av {}", label.0),
            GraphUpdate::RemoveVertex(v) => write!(f, "rv {v}"),
            GraphUpdate::AddEdge(u, v) => write!(f, "ae {u} {v}"),
            GraphUpdate::RemoveEdge(u, v) => write!(f, "re {u} {v}"),
            GraphUpdate::Relabel(v, label) => write!(f, "rl {v} {}", label.0),
        }
    }
}

impl std::str::FromStr for GraphUpdate {
    type Err = GraphError;

    /// Parse one update line.  Errors are [`GraphError::Parse`] with `line == 0`;
    /// file readers (`io::read_updates`) rewrite the real line number.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parse_err = |message: String| GraphError::Parse { line: 0, message };
        let mut parts = s.split_whitespace();
        let kind = parts.next().ok_or_else(|| parse_err("empty update".into()))?;
        let mut field = |what: &str| -> Result<u32, GraphError> {
            let raw = parts
                .next()
                .ok_or_else(|| parse_err(format!("update {kind:?} is missing its {what}")))?;
            raw.parse().map_err(|_| parse_err(format!("cannot parse {what} from {raw:?}")))
        };
        let update = match kind {
            "av" => GraphUpdate::AddVertex(Label(field("label")?)),
            "rv" => GraphUpdate::RemoveVertex(field("vertex id")?),
            "ae" => GraphUpdate::AddEdge(field("edge source")?, field("edge target")?),
            "re" => GraphUpdate::RemoveEdge(field("edge source")?, field("edge target")?),
            "rl" => GraphUpdate::Relabel(field("vertex id")?, Label(field("label")?)),
            other => {
                return Err(parse_err(format!(
                    "unknown update type {other:?} (expected av, rv, ae, re or rl)"
                )))
            }
        };
        if let Some(extra) = parts.next() {
            return Err(parse_err(format!("trailing field {extra:?} after {update}")));
        }
        Ok(update)
    }
}

/// A batch update that could not be applied: which update failed, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateError {
    /// 0-based index of the offending update within its batch.
    pub index: usize,
    /// The update itself.
    pub update: GraphUpdate,
    /// The underlying graph error (unknown vertex, self loop, …).
    pub source: GraphError,
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "update {} ({}): {}", self.index, self.update, self.source)
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The dirty region induced by one applied update batch.  See the
/// [module docs](self) for the id-space convention and the invariants.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Vertex count before the batch (the size of the old id space).
    pub base_vertices: usize,
    /// Edge count before the batch.  Together with `base_vertices` and the
    /// added/removed counts this lets consumers cheaply validate that a delta
    /// is paired with the graph epoch it actually describes.
    pub base_edges: usize,
    /// Dirty vertices in **pre-batch** ids, sorted ascending: vertices whose
    /// incident structure, label or id changed, plus removed vertices.
    pub dirty_old: Vec<VertexId>,
    /// Dirty vertices in **post-batch** ids, sorted ascending: the same set
    /// restricted to surviving vertices, plus added and moved ones.
    pub dirty_new: Vec<VertexId>,
    /// Labels whose vertex membership, bucket order or id content may have
    /// changed, sorted ascending.  Empty for a pure no-op batch.  Note this is
    /// about per-label *index structures*: a plain edge update lands its
    /// endpoints' labels here (their degree-bucket order changes) without
    /// changing any label statistic — see [`GraphDelta::labels_changed`].
    pub affected_labels: Vec<Label>,
    /// `true` when the graph's **labelling** changed — a vertex was added,
    /// removed or relabelled — i.e. when label histograms / alphabets computed
    /// from the old graph are stale.  Pure edge batches leave this `false`, so
    /// label statistics can be carried over wholesale.
    pub labels_changed: bool,
    /// Vertices appended by the batch.
    pub vertices_added: usize,
    /// Vertices removed by the batch.
    pub vertices_removed: usize,
    /// Edges inserted (no-op duplicates excluded).
    pub edges_added: usize,
    /// Edges deleted, including those removed implicitly by vertex removal.
    pub edges_removed: usize,
    /// Vertices whose label actually changed.
    pub relabelled: usize,
}

impl GraphDelta {
    /// `true` when the batch changed nothing (every update was a no-op).
    pub fn is_empty(&self) -> bool {
        self.dirty_old.is_empty() && self.dirty_new.is_empty()
    }

    /// Compact human-readable summary, e.g. `+2e -1e +1v -0v ~1l`.
    pub fn summary(&self) -> String {
        format!(
            "+{}e -{}e +{}v -{}v ~{}l ({} dirty)",
            self.edges_added,
            self.edges_removed,
            self.vertices_added,
            self.vertices_removed,
            self.relabelled,
            self.dirty_new.len()
        )
    }
}

/// Tracks dirtiness across the two id spaces while a batch is applied.
struct DeltaBuilder {
    /// For each *current* id, the pre-batch id (`None` for vertices added by the
    /// batch).  Swap-removals re-key this alongside the graph.
    orig: Vec<Option<VertexId>>,
    dirty_old: BTreeSet<VertexId>,
    dirty_new: BTreeSet<VertexId>,
    affected_labels: BTreeSet<Label>,
    delta: GraphDelta,
}

impl DeltaBuilder {
    fn new(graph: &LabeledGraph) -> Self {
        DeltaBuilder {
            orig: (0..graph.num_vertices() as VertexId).map(Some).collect(),
            dirty_old: BTreeSet::new(),
            dirty_new: BTreeSet::new(),
            affected_labels: BTreeSet::new(),
            delta: GraphDelta {
                base_vertices: graph.num_vertices(),
                base_edges: graph.num_edges(),
                ..GraphDelta::default()
            },
        }
    }

    /// Mark a currently-present vertex dirty: in both id spaces, with its current
    /// label's bucket flagged for rebuild.
    fn mark(&mut self, graph: &LabeledGraph, v: VertexId) {
        self.dirty_new.insert(v);
        if let Some(o) = self.orig[v as usize] {
            self.dirty_old.insert(o);
        }
        self.affected_labels.insert(graph.label(v));
    }

    fn finish(mut self) -> GraphDelta {
        self.delta.dirty_old = self.dirty_old.into_iter().collect();
        self.delta.dirty_new = self.dirty_new.into_iter().collect();
        self.delta.affected_labels = self.affected_labels.into_iter().collect();
        self.delta
    }
}

/// Validate and apply one update batch to `graph`, returning the induced
/// [`GraphDelta`].  On error the graph is left in the partially-updated state of
/// the failing index — apply to a scratch clone for atomic semantics.
pub fn apply_batch(
    graph: &mut LabeledGraph,
    updates: &[GraphUpdate],
) -> Result<GraphDelta, UpdateError> {
    let mut b = DeltaBuilder::new(graph);
    for (index, update) in updates.iter().enumerate() {
        let fail = |source: GraphError| UpdateError { index, update: *update, source };
        match *update {
            GraphUpdate::AddVertex(label) => {
                let id = graph.add_vertex(label);
                b.orig.push(None);
                b.mark(graph, id);
                b.delta.vertices_added += 1;
                b.delta.labels_changed = true;
            }
            GraphUpdate::AddEdge(u, v) => {
                if graph.add_edge(u, v).map_err(fail)? {
                    b.mark(graph, u);
                    b.mark(graph, v);
                    b.delta.edges_added += 1;
                }
            }
            GraphUpdate::RemoveEdge(u, v) => {
                if graph.remove_edge(u, v).map_err(fail)? {
                    b.mark(graph, u);
                    b.mark(graph, v);
                    b.delta.edges_removed += 1;
                }
            }
            GraphUpdate::Relabel(v, label) => {
                let old = graph.relabel(v, label).map_err(fail)?;
                if old != label {
                    // The vertex moves between label buckets, and every
                    // neighbour's neighbour-label view changes.
                    b.mark(graph, v);
                    b.affected_labels.insert(old);
                    for &w in graph.neighbors(v) {
                        b.mark(graph, w);
                    }
                    b.delta.relabelled += 1;
                    b.delta.labels_changed = true;
                }
            }
            GraphUpdate::RemoveVertex(v) => {
                if v as usize >= graph.num_vertices() {
                    return Err(fail(GraphError::UnknownVertex(v)));
                }
                // The vertex is dirty only in the old space (it has no new id);
                // its label bucket loses an entry either way.
                if let Some(o) = b.orig[v as usize] {
                    b.dirty_old.insert(o);
                }
                b.dirty_new.remove(&v);
                b.affected_labels.insert(graph.label(v));
                let removal = graph.remove_vertex(v).expect("bounds checked above");
                b.delta.vertices_removed += 1;
                b.delta.labels_changed = true;
                b.delta.edges_removed += removal.neighbors.len();
                if let Some(last) = removal.moved {
                    // Re-key: the vertex formerly at `last` now answers to `v`.
                    // Its id changed, so it is dirty in both spaces.
                    b.dirty_new.remove(&last);
                    b.orig[v as usize] = b.orig[last as usize];
                    b.orig.pop();
                    b.mark(graph, v);
                } else {
                    b.orig.pop();
                }
                // Former neighbours lost an edge (degree and fingerprint change);
                // translate the moved id if it was among them.
                for &w in &removal.neighbors {
                    let w_now = if removal.moved == Some(w) { v } else { w };
                    b.mark(graph, w_now);
                }
            }
        }
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> LabeledGraph {
        LabeledGraph::from_edges(&[5, 6, 7, 8], &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn display_from_str_round_trips() {
        let updates = [
            GraphUpdate::AddVertex(Label(9)),
            GraphUpdate::RemoveVertex(3),
            GraphUpdate::AddEdge(0, 2),
            GraphUpdate::RemoveEdge(1, 2),
            GraphUpdate::Relabel(2, Label(4)),
        ];
        for u in updates {
            let text = u.to_string();
            assert_eq!(text.parse::<GraphUpdate>().unwrap(), u, "round trip of {text:?}");
        }
    }

    #[test]
    fn malformed_updates_are_parse_errors() {
        for bad in ["", "xx 1", "av", "av x", "ae 1", "ae 1 2 3", "rl 1", "rv 1 2"] {
            assert!(
                matches!(bad.parse::<GraphUpdate>(), Err(GraphError::Parse { .. })),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn edge_updates_mark_endpoints_only() {
        let mut g = path4();
        let delta = apply_batch(&mut g, &[GraphUpdate::AddEdge(0, 3)]).unwrap();
        assert_eq!(delta.dirty_new, vec![0, 3]);
        assert_eq!(delta.dirty_old, vec![0, 3]);
        assert_eq!(delta.affected_labels, vec![Label(5), Label(8)]);
        assert_eq!((delta.edges_added, delta.edges_removed), (1, 0));
        assert!(!delta.labels_changed, "edge updates leave the labelling intact");
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn redundant_updates_are_clean_no_ops() {
        let mut g = path4();
        let before = g.clone();
        let delta = apply_batch(
            &mut g,
            &[
                GraphUpdate::AddEdge(0, 1),        // already present
                GraphUpdate::RemoveEdge(0, 3),     // not present
                GraphUpdate::Relabel(2, Label(7)), // identity
            ],
        )
        .unwrap();
        assert!(delta.is_empty(), "no-ops must not dirty anything: {delta:?}");
        assert_eq!(g, before);
    }

    #[test]
    fn relabel_marks_vertex_and_neighbors() {
        let mut g = path4();
        let delta = apply_batch(&mut g, &[GraphUpdate::Relabel(1, Label(9))]).unwrap();
        assert_eq!(delta.dirty_new, vec![0, 1, 2]);
        assert_eq!(delta.relabelled, 1);
        assert!(delta.labels_changed);
        // Old and new label buckets plus the neighbours' buckets.
        assert_eq!(delta.affected_labels, vec![Label(5), Label(6), Label(7), Label(9)]);
        assert_eq!(g.label(1), Label(9));
    }

    #[test]
    fn vertex_removal_tracks_both_id_spaces() {
        let mut g = path4();
        // Removing vertex 1 swaps vertex 3 into slot 1.
        let delta = apply_batch(&mut g, &[GraphUpdate::RemoveVertex(1)]).unwrap();
        // Old space: 1 (removed), 0 and 2 (lost an edge), 3 (renamed).
        assert_eq!(delta.dirty_old, vec![0, 1, 2, 3]);
        // New space: 0 and 2 (lost an edge), 1 (the moved vertex).
        assert_eq!(delta.dirty_new, vec![0, 1, 2]);
        assert_eq!(delta.vertices_removed, 1);
        assert_eq!(delta.edges_removed, 2);
        assert!(delta.affected_labels.contains(&Label(6)), "removed vertex's label");
        assert!(delta.affected_labels.contains(&Label(8)), "moved vertex's label");
    }

    #[test]
    fn add_then_remove_vertex_in_one_batch() {
        let mut g = path4();
        let delta = apply_batch(
            &mut g,
            &[
                GraphUpdate::AddVertex(Label(1)), // id 4
                GraphUpdate::AddEdge(4, 0),
                GraphUpdate::RemoveVertex(4), // removes the vertex it just added
            ],
        )
        .unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g, path4());
        // Vertex 0 gained and lost an edge; the scratch vertex never existed in
        // the old space.
        assert_eq!(delta.dirty_old, vec![0]);
        assert_eq!(delta.dirty_new, vec![0]);
        assert_eq!((delta.vertices_added, delta.vertices_removed), (1, 1));
        assert_eq!((delta.edges_added, delta.edges_removed), (1, 1));
    }

    #[test]
    fn failing_update_reports_its_index() {
        let mut g = path4();
        let err = apply_batch(&mut g, &[GraphUpdate::AddEdge(0, 2), GraphUpdate::RemoveVertex(9)])
            .unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.update, GraphUpdate::RemoveVertex(9));
        assert_eq!(err.source, GraphError::UnknownVertex(9));
        assert!(err.to_string().contains("update 1"));
    }

    #[test]
    fn self_loop_update_is_rejected() {
        let mut g = path4();
        let err = apply_batch(&mut g, &[GraphUpdate::AddEdge(2, 2)]).unwrap_err();
        assert_eq!(err.source, GraphError::SelfLoop(2));
    }

    #[test]
    fn delta_summary_mentions_counts() {
        let mut g = path4();
        let delta = apply_batch(&mut g, &[GraphUpdate::AddEdge(0, 2)]).unwrap();
        assert!(delta.summary().contains("+1e"));
    }
}
