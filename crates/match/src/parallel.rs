//! Deterministic parallel embedding enumeration.
//!
//! The root candidate pool (the candidate set of the first vertex in the matching
//! order) is split into `threads` contiguous chunks; each scoped worker runs the
//! sequential search restricted to its chunk and buffers its embeddings.  Because
//! the search below depth 0 never depends on which chunk the root came from,
//! concatenating the per-chunk buffers **in chunk order** reproduces the sequential
//! emission order exactly — the same ordering contract the mining engine and the
//! overlap builder rely on, so the thread count never changes any result.
//!
//! `max_embeddings` is applied after the merge: each worker collects at most the
//! full budget, and the concatenated list is truncated to it, which selects exactly
//! the prefix the sequential run would have produced.

use crate::candidates::CandidateSpace;
use crate::enumerate::{run_search, MatchingOrder, SearchArena};
use crate::index::GraphIndex;
use ffsm_graph::cancel::CancelToken;
use ffsm_graph::isomorphism::{CollectVisitor, Embedding};
use ffsm_graph::{LabeledGraph, VertexId};

/// Resolve the configured worker count (`0` = one per available core).
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Split `pool` into at most `chunks` contiguous, near-equal slices (no empties).
fn partition(pool: &[VertexId], chunks: usize) -> Vec<&[VertexId]> {
    let chunks = chunks.min(pool.len()).max(1);
    let base = pool.len() / chunks;
    let extra = pool.len() % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        out.push(&pool[start..start + len]);
        start += len;
    }
    out
}

/// Enumerate in parallel, merging per-chunk buffers in chunk order.  Returns the
/// embeddings (truncated to `max_embeddings`) and whether enumeration completed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn enumerate_parallel(
    graph: &LabeledGraph,
    index: &GraphIndex,
    space: &CandidateSpace,
    order: &MatchingOrder,
    induced: bool,
    max_embeddings: usize,
    threads: usize,
    cancel: &CancelToken,
) -> (Vec<Embedding>, bool) {
    let root = space.candidates(order.order[0]);
    let chunks = partition(root, threads);
    let mut results: Vec<(Vec<Embedding>, bool)> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|&chunk| {
                scope.spawn(move || {
                    let mut arena = SearchArena::new();
                    let mut collect = CollectVisitor::with_limit(max_embeddings);
                    let complete = run_search(
                        graph,
                        index,
                        space,
                        order,
                        induced,
                        Some(chunk),
                        cancel,
                        &mut arena,
                        &mut collect,
                    );
                    (collect.embeddings, complete)
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("matching worker panicked"));
        }
    });
    let mut complete = results.iter().all(|(_, c)| *c);
    let mut embeddings: Vec<Embedding> = Vec::new();
    for (chunk_embeddings, _) in results {
        embeddings.extend(chunk_embeddings);
    }
    if embeddings.len() > max_embeddings {
        // Mirror the sequential check-before-accept budget: exactly `max`
        // embeddings is a complete enumeration, one more is not.
        embeddings.truncate(max_embeddings);
        complete = false;
    }
    (embeddings, complete)
}

/// Count in parallel without materialising embeddings.  Returns the count (clamped
/// to `max_embeddings`) and whether enumeration completed.
///
/// Counts are order-independent, so unlike [`enumerate_parallel`] the budget is a
/// single shared atomic: every worker stops as soon as the *global* count reaches
/// it, instead of each worker exhausting its own full budget.  The check-then-add
/// race can overshoot only past the budget, where the count is clamped and the
/// enumeration is incomplete either way, so the returned pair stays deterministic.
#[allow(clippy::too_many_arguments)]
pub(crate) fn count_parallel(
    graph: &LabeledGraph,
    index: &GraphIndex,
    space: &CandidateSpace,
    order: &MatchingOrder,
    induced: bool,
    max_embeddings: usize,
    threads: usize,
    cancel: &CancelToken,
) -> (usize, bool) {
    use ffsm_graph::isomorphism::VisitFlow;
    use std::sync::atomic::{AtomicUsize, Ordering};
    let root = space.candidates(order.order[0]);
    let chunks = partition(root, threads);
    let global = AtomicUsize::new(0);
    let mut workers_complete = true;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|&chunk| {
                let global = &global;
                scope.spawn(move || {
                    let mut arena = SearchArena::new();
                    let mut visit = |_: &[VertexId]| {
                        if global.load(Ordering::Relaxed) >= max_embeddings {
                            return VisitFlow::Stop;
                        }
                        global.fetch_add(1, Ordering::Relaxed);
                        VisitFlow::Continue
                    };
                    run_search(
                        graph,
                        index,
                        space,
                        order,
                        induced,
                        Some(chunk),
                        cancel,
                        &mut arena,
                        &mut visit,
                    )
                })
            })
            .collect();
        for handle in handles {
            workers_complete &= handle.join().expect("matching worker panicked");
        }
    });
    let total = global.load(Ordering::Relaxed);
    (total.min(max_embeddings), workers_complete && total <= max_embeddings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_balanced() {
        let pool: Vec<VertexId> = (0..10).collect();
        let chunks = partition(&pool, 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], &[0, 1, 2, 3]);
        assert_eq!(chunks[1], &[4, 5, 6]);
        assert_eq!(chunks[2], &[7, 8, 9]);
        // More chunks than candidates: one chunk per candidate, none empty.
        let tiny = partition(&pool[..2], 8);
        assert_eq!(tiny.len(), 2);
        assert!(tiny.iter().all(|c| c.len() == 1));
        // Never zero chunks, even for an empty pool.
        assert_eq!(partition(&[], 4).len(), 1);
    }

    #[test]
    fn thread_resolution() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
