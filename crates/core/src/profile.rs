//! One-stop profiling of every support measure on a pattern/graph pair.
//!
//! [`MeasureProfile`] is what the experiment harness and the `measure_comparison`
//! example print: all measure values side by side, each with its wall-clock cost and
//! an optimality flag for the budgeted NP-hard searches.  The profile also re-checks
//! the paper's bounding chain (Section 4.4) so every experiment run certifies
//!
//! ```text
//! σMIS = σMIES ≤ νMIES = νMVC ≤ σMVC ≤ σMI ≤ σMNI
//! ```
//!
//! on its own data.

use crate::measures::{MeasureConfig, MeasureKind, SupportMeasures};
use crate::occurrences::OccurrenceSet;
use ffsm_graph::{LabeledGraph, Pattern};
use std::time::{Duration, Instant};

/// One measured entry of a profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Which measure.
    pub kind: MeasureKind,
    /// The value (integral measures reported as `f64`).
    pub value: f64,
    /// Wall-clock time spent computing it (excludes occurrence enumeration).
    pub elapsed: Duration,
    /// `false` when a budgeted exact search was truncated.
    pub optimal: bool,
}

/// The complete profile of one pattern / data graph pair.
#[derive(Debug, Clone)]
pub struct MeasureProfile {
    /// Human-readable label for the workload (set by the caller, may be empty).
    pub label: String,
    /// Number of occurrences enumerated.
    pub num_occurrences: usize,
    /// Number of distinct instances.
    pub num_instances: usize,
    /// Whether the occurrence enumeration was complete (not budget-truncated).
    pub enumeration_complete: bool,
    /// Time spent enumerating occurrences and building the occurrence set.
    pub enumeration_time: Duration,
    /// Per-measure entries, in bounding-chain order followed by the extras
    /// (MNI-k, MCP, occurrence/instance counts).
    pub entries: Vec<ProfileEntry>,
}

impl MeasureProfile {
    /// Profile every measure for `pattern` in `graph` under `config`.
    pub fn compute(pattern: &Pattern, graph: &LabeledGraph, config: &MeasureConfig) -> Self {
        Self::compute_labeled(String::new(), pattern, graph, config)
    }

    /// Like [`MeasureProfile::compute`] with a workload label for reports.
    pub fn compute_labeled(
        label: String,
        pattern: &Pattern,
        graph: &LabeledGraph,
        config: &MeasureConfig,
    ) -> Self {
        let start = Instant::now();
        let occurrences = OccurrenceSet::enumerate(pattern, graph, config.iso_config.clone());
        let enumeration_time = start.elapsed();
        Self::from_occurrences(label, occurrences, config, enumeration_time)
    }

    /// Profile from a pre-built occurrence set (`enumeration_time` may be zero when
    /// the caller did not measure it).
    pub fn from_occurrences(
        label: String,
        occurrences: OccurrenceSet,
        config: &MeasureConfig,
        enumeration_time: Duration,
    ) -> Self {
        let num_occurrences = occurrences.num_occurrences();
        let num_instances = occurrences.num_instances();
        let enumeration_complete = occurrences.is_complete();
        let measures = SupportMeasures::new(occurrences, config.clone());

        let mut entries = Vec::new();
        let mut push = |kind: MeasureKind, measures: &SupportMeasures| {
            let start = Instant::now();
            let value = measures.compute(kind);
            let elapsed = start.elapsed();
            let optimal = match kind {
                MeasureKind::Mvc => measures.mvc().optimal,
                MeasureKind::Mis => measures.mis().optimal,
                MeasureKind::Mies => measures.mies().optimal,
                MeasureKind::Mcp => measures.mcp().optimal,
                _ => true,
            };
            entries.push(ProfileEntry { kind, value, elapsed, optimal });
        };
        for kind in MeasureKind::bounding_chain() {
            push(kind, &measures);
        }
        push(MeasureKind::Mcp, &measures);
        push(MeasureKind::MniK(2), &measures);
        push(MeasureKind::OccurrenceCount, &measures);
        push(MeasureKind::InstanceCount, &measures);

        MeasureProfile {
            label,
            num_occurrences,
            num_instances,
            enumeration_complete,
            enumeration_time,
            entries,
        }
    }

    /// Value of `kind`, if it was profiled.
    pub fn value_of(&self, kind: MeasureKind) -> Option<f64> {
        self.entries.iter().find(|e| e.kind == kind).map(|e| e.value)
    }

    /// Check the bounding chain on the profiled values (with a small tolerance for
    /// the fractional LP entries).  Returns the list of violated links, empty when the
    /// chain holds.
    pub fn bounding_chain_violations(&self) -> Vec<String> {
        let chain = MeasureKind::bounding_chain();
        let mut violations = Vec::new();
        // MIS = MIES (Theorem 4.1), νMIES = νMVC (Theorem 4.6), the rest ≤.
        let value = |k: MeasureKind| self.value_of(k).unwrap_or(f64::NAN);
        let eq = |a: MeasureKind, b: MeasureKind, violations: &mut Vec<String>| {
            if (value(a) - value(b)).abs() > 1e-6 {
                violations.push(format!("{} != {}", a.name(), b.name()));
            }
        };
        eq(MeasureKind::Mis, MeasureKind::Mies, &mut violations);
        eq(MeasureKind::RelaxedMies, MeasureKind::RelaxedMvc, &mut violations);
        for pair in chain.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if value(a) > value(b) + 1e-6 {
                violations.push(format!("{} > {}", a.name(), b.name()));
            }
        }
        violations
    }

    /// `true` when the bounding chain holds on this profile.
    pub fn chain_holds(&self) -> bool {
        self.bounding_chain_violations().is_empty()
    }

    /// Fixed-width table, one row per measure — the format used in EXPERIMENTS.md.
    pub fn table(&self) -> String {
        let mut out = String::new();
        if !self.label.is_empty() {
            out.push_str(&format!("workload: {}\n", self.label));
        }
        out.push_str(&format!(
            "occurrences: {} (complete: {}), instances: {}, enumeration: {:?}\n",
            self.num_occurrences,
            self.enumeration_complete,
            self.num_instances,
            self.enumeration_time
        ));
        out.push_str(&format!(
            "{:<14} {:>12} {:>12} {:>9}\n",
            "measure", "value", "time", "optimal"
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "{:<14} {:>12.3} {:>12.2?} {:>9}\n",
                e.kind.name(),
                e.value,
                e.elapsed,
                if e.optimal { "yes" } else { "budget" }
            ));
        }
        out
    }
}

impl std::fmt::Display for MeasureProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::figures;

    #[test]
    fn profile_of_figure6_has_expected_values() {
        let fig = figures::figure6();
        let profile = MeasureProfile::compute(&fig.pattern, &fig.graph, &MeasureConfig::default());
        assert_eq!(profile.num_occurrences, 7);
        assert!(profile.enumeration_complete);
        assert_eq!(profile.value_of(MeasureKind::Mni), Some(4.0));
        assert_eq!(profile.value_of(MeasureKind::Mi), Some(4.0));
        assert_eq!(profile.value_of(MeasureKind::Mvc), Some(2.0));
        assert_eq!(profile.value_of(MeasureKind::Mis), Some(2.0));
        assert!(profile.chain_holds(), "{:?}", profile.bounding_chain_violations());
    }

    #[test]
    fn profile_table_lists_every_measure() {
        let fig = figures::figure2();
        let profile = MeasureProfile::compute_labeled(
            "figure 2".to_string(),
            &fig.pattern,
            &fig.graph,
            &MeasureConfig::default(),
        );
        let table = profile.table();
        for name in ["MNI", "MI", "MVC", "MIS", "MIES", "nuMVC", "nuMIES", "MCP", "occurrences"] {
            assert!(table.contains(name), "missing {name} in\n{table}");
        }
        assert!(table.contains("figure 2"));
        assert!(format!("{profile}").contains("MNI"));
    }

    #[test]
    fn chain_holds_on_every_figure() {
        for fig in figures::all_figures() {
            let profile =
                MeasureProfile::compute(&fig.pattern, &fig.graph, &MeasureConfig::default());
            assert!(
                profile.chain_holds(),
                "chain violated on {}: {:?}",
                fig.name,
                profile.bounding_chain_violations()
            );
        }
    }

    #[test]
    fn empty_occurrence_profile() {
        let pattern = ffsm_graph::patterns::single_edge(ffsm_graph::Label(5), ffsm_graph::Label(6));
        let graph = ffsm_graph::LabeledGraph::from_edges(&[0, 0], &[(0, 1)]);
        let profile = MeasureProfile::compute(&pattern, &graph, &MeasureConfig::default());
        assert_eq!(profile.num_occurrences, 0);
        assert_eq!(profile.value_of(MeasureKind::Mni), Some(0.0));
        assert!(profile.chain_holds());
    }

    #[test]
    fn value_of_unprofiled_kind_is_none() {
        let fig = figures::figure4();
        let profile = MeasureProfile::compute(&fig.pattern, &fig.graph, &MeasureConfig::default());
        assert!(profile.value_of(MeasureKind::MniK(7)).is_none());
        assert!(profile.value_of(MeasureKind::MniK(2)).is_some());
    }
}
