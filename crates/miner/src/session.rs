//! [`MiningSession`] — the single entry point for frequent-subgraph mining.
//!
//! A session is a builder over one data graph: pick a measure (built-in
//! [`MeasureKind`] or any user [`SupportMeasure`] impl), set the threshold and
//! limits, then [`MiningSession::run`].  Sequential, level-parallel and top-k mining
//! are modes of one engine, not separate APIs:
//!
//! ```
//! use ffsm_graph::{generators, LabeledGraph};
//! use ffsm_core::MeasureKind;
//! use ffsm_miner::MiningSession;
//!
//! let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
//! let graph = generators::replicated(&triangle, 5, false);
//! let result = MiningSession::on(&graph)
//!     .measure(MeasureKind::Mni)
//!     .min_support(5.0)
//!     .max_edges(3)
//!     .run()
//!     .expect("valid session");
//! assert!(result.patterns.iter().any(|p| p.pattern.num_edges() == 3));
//! ```

use crate::engine::{run_engine, EngineConfig, PatternCallback};
use crate::types::{FrequentPattern, MiningResult};
use ffsm_core::{EnumeratorBackend, FfsmError, MeasureConfig, MeasureKind, SupportMeasure};
use ffsm_graph::LabeledGraph;
use std::sync::Arc;

/// Safety caps bounding the cost of one mining run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiningBudget {
    /// Cap on the number of support evaluations (candidate patterns).
    pub max_evaluations: usize,
    /// Cap on the number of frequent patterns reported (threshold mode).
    pub max_patterns: usize,
}

impl Default for MiningBudget {
    fn default() -> Self {
        MiningBudget { max_evaluations: 100_000, max_patterns: 10_000 }
    }
}

/// The measure a session mines with: a built-in kind or a user-supplied impl.
#[derive(Clone)]
pub enum MeasureSelection {
    /// A built-in measure, instantiated with the session's [`MeasureConfig`] at
    /// [`MiningSession::run`] time.
    Kind(MeasureKind),
    /// A user-defined pluggable measure.
    Custom(Arc<dyn SupportMeasure>),
}

impl std::fmt::Debug for MeasureSelection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureSelection::Kind(kind) => write!(f, "Kind({kind})"),
            MeasureSelection::Custom(m) => write!(f, "Custom({})", m.name()),
        }
    }
}

impl From<MeasureKind> for MeasureSelection {
    fn from(kind: MeasureKind) -> Self {
        MeasureSelection::Kind(kind)
    }
}

impl From<Arc<dyn SupportMeasure>> for MeasureSelection {
    fn from(measure: Arc<dyn SupportMeasure>) -> Self {
        MeasureSelection::Custom(measure)
    }
}

/// The canonical mining configuration a [`MiningSession`] builds up.
///
/// This one struct replaces the old `MinerConfig` / `ParallelMinerConfig` /
/// `TopKConfig` triple (which had already drifted apart field-by-field).
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Support threshold τ: a pattern is frequent when `support ≥ min_support`.
    /// In top-k mode this is the floor below which patterns are never reported.
    pub min_support: f64,
    /// Which measure to mine with.
    pub measure: MeasureSelection,
    /// Measure configuration: occurrence-enumeration budget, MI strategy, MVC
    /// algorithm, hypergraph basis, search budget.  Built-in measures are
    /// instantiated with it; custom measures only use its `iso_config` (the engine
    /// enumerates occurrences with it).
    pub measure_config: MeasureConfig,
    /// Stop growing patterns beyond this many edges.
    pub max_edges: usize,
    /// Safety caps.
    pub budget: MiningBudget,
    /// Worker threads for candidate evaluation; `1` = sequential (the default),
    /// `0` = one per available core.
    pub threads: usize,
    /// `Some(k)` switches to top-k mining with a rising threshold.
    pub top_k: Option<usize>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            min_support: 2.0,
            measure: MeasureSelection::Kind(MeasureKind::Mni),
            measure_config: MeasureConfig::default(),
            max_edges: 4,
            budget: MiningBudget::default(),
            threads: 1,
            top_k: None,
        }
    }
}

/// Builder-style mining session over one data graph.  See the module docs for an
/// example; construct with [`MiningSession::on`].
pub struct MiningSession<'g> {
    graph: &'g LabeledGraph,
    config: SessionConfig,
    on_pattern: Option<PatternCallback<'g>>,
}

impl<'g> MiningSession<'g> {
    /// Start a session over `graph` with default configuration (MNI, τ = 2,
    /// patterns up to 4 edges, sequential).
    pub fn on(graph: &'g LabeledGraph) -> Self {
        MiningSession { graph, config: SessionConfig::default(), on_pattern: None }
    }

    /// The canonical configuration built so far.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Select the measure: a built-in [`MeasureKind`] or an
    /// `Arc<dyn SupportMeasure>` of a user-defined measure.
    pub fn measure(mut self, measure: impl Into<MeasureSelection>) -> Self {
        self.config.measure = measure.into();
        self
    }

    /// Set the support threshold τ (the floor threshold in top-k mode).
    pub fn min_support(mut self, tau: f64) -> Self {
        self.config.min_support = tau;
        self
    }

    /// Stop growing patterns beyond `edges` edges.
    pub fn max_edges(mut self, edges: usize) -> Self {
        self.config.max_edges = edges;
        self
    }

    /// Use `count` worker threads for candidate evaluation (`1` = sequential,
    /// `0` = one per available core).  The thread count never changes the result.
    pub fn threads(mut self, count: usize) -> Self {
        self.config.threads = count;
        self
    }

    /// Select the occurrence-enumeration backend (shorthand for setting
    /// `measure_config.iso_config.backend`).
    ///
    /// Under the default [`EnumeratorBackend::CandidateSpace`] the engine builds
    /// one per-graph matching index ([`ffsm_core::GraphIndex`]) at [`MiningSession::run`]
    /// time and shares it across every candidate evaluation of the run — the index
    /// is never rebuilt per pattern.  [`EnumeratorBackend::Naive`] selects the
    /// recursive oracle (no index); results are identical, only slower.
    pub fn enumerator(mut self, backend: EnumeratorBackend) -> Self {
        self.config.measure_config.iso_config.backend = backend;
        self
    }

    /// Mine the `k` highest-support patterns instead of all patterns above τ.
    pub fn top_k(mut self, k: usize) -> Self {
        self.config.top_k = Some(k);
        self
    }

    /// Set the safety caps (evaluations, reported patterns).
    pub fn budget(mut self, budget: MiningBudget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Override the measure configuration (occurrence-enumeration budget, MI
    /// strategy, MVC algorithm, basis, search budget).
    pub fn measure_config(mut self, measure_config: MeasureConfig) -> Self {
        self.config.measure_config = measure_config;
        self
    }

    /// Stream every accepted pattern to `callback` as it is found (threshold mode:
    /// each emitted pattern; top-k mode: each pattern entering the running top-k,
    /// which a later, better pattern may still evict).
    pub fn on_pattern(mut self, callback: impl FnMut(&FrequentPattern) + 'g) -> Self {
        self.on_pattern = Some(Box::new(callback));
        self
    }

    /// Validate the configuration and run the miner.
    ///
    /// # Errors
    ///
    /// * [`FfsmError::InvalidConfig`] — non-finite or negative τ, `max_edges(0)`,
    ///   `top_k(0)`, or an `MNI-0` measure;
    /// * [`FfsmError::NotAntiMonotone`] — the selected measure refuses threshold
    ///   pruning (e.g. the raw occurrence count), which would make mining unsound.
    pub fn run(self) -> Result<MiningResult, FfsmError> {
        let MiningSession { graph, config, on_pattern } = self;
        if !config.min_support.is_finite() || config.min_support < 0.0 {
            return Err(FfsmError::InvalidConfig(format!(
                "min_support must be finite and non-negative, got {}",
                config.min_support
            )));
        }
        if config.max_edges == 0 {
            return Err(FfsmError::InvalidConfig("max_edges must be at least 1".into()));
        }
        if config.top_k == Some(0) {
            return Err(FfsmError::InvalidConfig("top_k must be at least 1".into()));
        }
        if let MeasureSelection::Kind(MeasureKind::MniK(0)) = config.measure {
            return Err(FfsmError::InvalidConfig("MNI-k needs k >= 1".into()));
        }
        let measure: Arc<dyn SupportMeasure> = match config.measure {
            MeasureSelection::Kind(kind) => kind.measure(config.measure_config.clone()),
            MeasureSelection::Custom(measure) => measure,
        };
        if !measure.is_anti_monotone() {
            return Err(FfsmError::NotAntiMonotone(measure.name().to_string()));
        }
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.threads
        };
        let engine_config = EngineConfig {
            min_support: config.min_support,
            iso_config: config.measure_config.iso_config,
            max_pattern_edges: config.max_edges,
            max_patterns: config.budget.max_patterns,
            max_evaluations: config.budget.max_evaluations,
            threads,
            top_k: config.top_k,
        };
        Ok(run_engine(graph, &measure, &engine_config, on_pattern))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_core::OccurrenceSet;
    use ffsm_graph::generators;

    fn triangle_forest(copies: usize) -> LabeledGraph {
        let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        generators::replicated(&triangle, copies, false)
    }

    #[test]
    fn builder_round_trips_every_setting() {
        let graph = LabeledGraph::new();
        let session = MiningSession::on(&graph)
            .measure(MeasureKind::Mis)
            .min_support(7.5)
            .max_edges(6)
            .threads(3)
            .top_k(9)
            .budget(MiningBudget { max_evaluations: 123, max_patterns: 45 });
        let config = session.config();
        assert!(matches!(config.measure, MeasureSelection::Kind(MeasureKind::Mis)));
        assert_eq!(config.min_support, 7.5);
        assert_eq!(config.max_edges, 6);
        assert_eq!(config.threads, 3);
        assert_eq!(config.top_k, Some(9));
        assert_eq!(config.budget, MiningBudget { max_evaluations: 123, max_patterns: 45 });
    }

    #[test]
    fn defaults_match_session_config_default() {
        let graph = LabeledGraph::new();
        let session = MiningSession::on(&graph);
        let d = SessionConfig::default();
        let config = session.config();
        assert_eq!(config.min_support, d.min_support);
        assert_eq!(config.max_edges, d.max_edges);
        assert_eq!(config.threads, d.threads);
        assert_eq!(config.top_k, d.top_k);
        assert_eq!(config.budget, d.budget);
        assert!(matches!(config.measure, MeasureSelection::Kind(MeasureKind::Mni)));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let graph = triangle_forest(2);
        let nan = MiningSession::on(&graph).min_support(f64::NAN).run();
        assert!(matches!(nan, Err(FfsmError::InvalidConfig(_))));
        let negative = MiningSession::on(&graph).min_support(-1.0).run();
        assert!(matches!(negative, Err(FfsmError::InvalidConfig(_))));
        let zero_edges = MiningSession::on(&graph).max_edges(0).run();
        assert!(matches!(zero_edges, Err(FfsmError::InvalidConfig(_))));
        let zero_k = MiningSession::on(&graph).top_k(0).run();
        assert!(matches!(zero_k, Err(FfsmError::InvalidConfig(_))));
        let mni0 = MiningSession::on(&graph).measure(MeasureKind::MniK(0)).run();
        assert!(matches!(mni0, Err(FfsmError::InvalidConfig(_))));
        let unsound = MiningSession::on(&graph).measure(MeasureKind::OccurrenceCount).run();
        assert!(matches!(unsound, Err(FfsmError::NotAntiMonotone(_))));
    }

    #[test]
    fn threshold_run_finds_triangles() {
        let graph = triangle_forest(5);
        let result = MiningSession::on(&graph)
            .measure(MeasureKind::Mni)
            .min_support(5.0)
            .max_edges(3)
            .run()
            .unwrap();
        assert!(result.patterns.iter().any(|p| p.pattern.num_edges() == 3));
        assert_eq!(result.final_threshold, 5.0);
        for p in &result.patterns {
            assert!(p.support >= 5.0);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let graph = generators::community_graph(2, 10, 0.4, 0.05, 3, 9);
        let collect = |threads: usize| {
            MiningSession::on(&graph)
                .min_support(3.0)
                .max_edges(2)
                .threads(threads)
                .run()
                .unwrap()
                .patterns
                .iter()
                .map(|p| ffsm_graph::canonical::canonical_code(&p.pattern))
                .collect::<std::collections::BTreeSet<_>>()
        };
        let base = collect(1);
        for threads in [2, 4, 0] {
            assert_eq!(base, collect(threads), "threads = {threads}");
        }
    }

    #[test]
    fn top_k_mode_returns_k_best_sorted() {
        let graph = triangle_forest(6);
        let result =
            MiningSession::on(&graph).min_support(1.0).max_edges(3).top_k(4).run().unwrap();
        assert!(result.patterns.len() <= 4);
        assert!(!result.patterns.is_empty());
        for w in result.patterns.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
        assert!(result.final_threshold >= 1.0);
    }

    #[test]
    fn enumerator_backend_does_not_change_results() {
        let graph = generators::community_graph(2, 10, 0.4, 0.05, 3, 11);
        let collect = |backend: EnumeratorBackend| {
            MiningSession::on(&graph)
                .min_support(3.0)
                .max_edges(2)
                .enumerator(backend)
                .run()
                .unwrap()
                .patterns
                .iter()
                .map(|p| {
                    (
                        format!("{:?}", ffsm_graph::canonical::canonical_code(&p.pattern)),
                        p.support.to_bits(),
                        p.num_occurrences,
                    )
                })
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(collect(EnumeratorBackend::CandidateSpace), collect(EnumeratorBackend::Naive));
    }

    #[test]
    fn on_pattern_streams_emitted_patterns() {
        let graph = triangle_forest(4);
        let mut streamed = Vec::new();
        let result = MiningSession::on(&graph)
            .min_support(4.0)
            .max_edges(3)
            .on_pattern(|p| streamed.push(p.pattern.num_edges()))
            .run()
            .unwrap();
        assert_eq!(streamed.len(), result.len());
    }

    #[test]
    fn custom_measure_plugs_in() {
        /// Half of MNI — still anti-monotone, so mining with it is sound.
        struct HalfMni;
        impl SupportMeasure for HalfMni {
            fn support(&self, occurrences: &OccurrenceSet) -> f64 {
                ffsm_core::measures::mni::mni(occurrences) as f64 / 2.0
            }
            fn is_anti_monotone(&self) -> bool {
                true
            }
            fn name(&self) -> &str {
                "MNI/2"
            }
        }
        let graph = triangle_forest(6);
        let custom: Arc<dyn SupportMeasure> = Arc::new(HalfMni);
        let halved =
            MiningSession::on(&graph).measure(custom).min_support(3.0).max_edges(3).run().unwrap();
        let full = MiningSession::on(&graph)
            .measure(MeasureKind::Mni)
            .min_support(6.0)
            .max_edges(3)
            .run()
            .unwrap();
        // τ = 3 under MNI/2 is exactly τ = 6 under MNI.
        assert_eq!(halved.len(), full.len());
        for (a, b) in halved.patterns.iter().zip(&full.patterns) {
            assert_eq!(a.support * 2.0, b.support);
        }
    }
}
