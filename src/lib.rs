//! # ffsm — Flexible and Feasible Support Measures for frequent pattern mining
//!
//! Umbrella crate re-exporting the whole workspace:
//!
//! * [`graph`] — labeled-graph substrate, subgraph isomorphism, generators.
//! * [`matching`] — the candidate-space subgraph-matching engine (per-graph index,
//!   pruned candidate sets, streaming and deterministic parallel enumeration).
//! * [`hypergraph`] — hypergraph substrate, vertex cover, independent edge sets.
//! * [`lp`] — linear-programming solver used by the relaxed measures.
//! * [`core`] — the paper's contribution: the occurrence/instance hypergraph framework
//!   and the MNI, MI, MVC, MIS/MIES and relaxed support measures.
//! * [`approx`] — certified support intervals for bounds-first anytime mining:
//!   containment-chain, index-cardinality and LP-relaxation bounds behind
//!   `MiningSession::bounds_first`.
//! * [`miner`] — a single-graph frequent-subgraph miner with pluggable measures.
//! * [`dynamic`] — the versioned dynamic-graph subsystem: typed update batches,
//!   epoch snapshots with incremental index maintenance, and delta re-mining.
//! * [`serve`] — the multi-tenant mining server: named-graph registry with an
//!   epoch-keyed prepared cache, bounded session scheduler, the shared NDJSON
//!   event serializer, and the NDJSON-over-TCP protocol behind `ffsm serve`.
//! * [`shard`] — partitioned out-of-core mining: interior + halo graph shards,
//!   an LRU spill store, and the exact cross-shard support merge behind
//!   `ffsm mine --shards`.
//!
//! See `README.md` for a quickstart, the CLI reference and the measure-selection
//! table.  [`miner::MiningSession`] is the single mining entry point; measures are
//! pluggable through the [`core::measures::SupportMeasure`] trait.

pub use ffsm_approx as approx;
pub use ffsm_core as core;
pub use ffsm_dynamic as dynamic;
pub use ffsm_graph as graph;
pub use ffsm_hypergraph as hypergraph;
pub use ffsm_lp as lp;
pub use ffsm_match as matching;
pub use ffsm_miner as miner;
pub use ffsm_serve as serve;
pub use ffsm_shard as shard;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use ffsm_core::{
        measures::{MeasureConfig, MeasureKind, SupportMeasure, SupportMeasures},
        occurrences::OccurrenceSet,
        FfsmError, MeasureProfile, OverlapAnalysis, OverlapBuild, OverlapCache, OverlapConfig,
        OverlapKind,
    };
    pub use ffsm_dynamic::{DynamicGraph, EpochSnapshot, IncrementalMiner};
    pub use ffsm_graph::isomorphism::{EmbeddingVisitor, EnumeratorBackend, IsoConfig, VisitFlow};
    pub use ffsm_graph::{
        CancelToken, GraphDelta, GraphStatistics, GraphUpdate, Label, LabeledGraph, Pattern,
        VertexId,
    };
    pub use ffsm_match::{auto_backend, CandidateSpace, GraphIndex, Matcher, SearchArena};
    pub use ffsm_miner::{
        Completion, EvalCache, FrequentPattern, MiningBudget, MiningEvent, MiningResult,
        MiningSession, MiningStats, PatternStream, PreparedGraph, SessionConfig, ShardedSession,
    };
    pub use ffsm_serve::{GraphRegistry, Server, ServerConfig, ServerHandle, SessionScheduler};
    pub use ffsm_shard::{PartitionSpec, PartitionStrategy, PartitionedGraph};
}
