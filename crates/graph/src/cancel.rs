//! [`CancelToken`] — cooperative cancellation and wall-clock deadlines for long
//! searches.
//!
//! Subgraph-isomorphism enumeration and the mining loop built on it can run for an
//! unbounded time on adversarial inputs.  A serving deployment needs two ways to
//! stop them besides the embedding budget:
//!
//! * **explicit cancellation** — a client disconnects, a request is superseded;
//! * **deadlines** — a request has a latency budget and a partial answer (or a typed
//!   "deadline exceeded" status) beats a late one.
//!
//! Both are carried by one token.  The token is *cooperative*: the enumerators poll
//! it at bounded intervals (once at search entry, then every [`CHECK_STRIDE`]
//! search steps), so cancellation latency is bounded by a few
//! thousand feasibility checks, not by the size of the search space.  A fired token
//! makes the enumeration return early with `complete == false`, exactly like an
//! exhausted embedding budget; the mining stream built on top translates the cause
//! into a typed `Completion` status.
//!
//! The default token (`CancelToken::default()`) is **inert**: it never fires and
//! costs nothing to poll (no allocation, no clock read).  Fireable tokens come from
//! [`CancelToken::new`]; deadlines are attached with [`CancelToken::with_deadline`]
//! or [`CancelToken::with_timeout`].  Clones share the underlying flag, so any clone
//! can cancel every holder.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many search steps an enumerator may take between two token polls.  Bounds
/// cancellation latency without putting a clock read on every feasibility check.
pub const CHECK_STRIDE: u32 = 1024;

/// A cloneable cancellation handle, optionally carrying a wall-clock deadline.
///
/// See the [module docs](self) for the contract.  All clones share one flag:
/// calling [`CancelToken::cancel`] on any of them fires all of them.  The deadline
/// is per-clone state ([`CancelToken::with_deadline`] returns a new token sharing
/// the flag), which lets one request-level token fan out to per-call tokens with
/// tighter deadlines.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    /// `None` for the inert default token — polling it is free.
    flag: Option<Arc<AtomicBool>>,
    /// Absolute wall-clock deadline, if any.
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fireable token (not yet fired, no deadline).
    pub fn new() -> Self {
        CancelToken { flag: Some(Arc::new(AtomicBool::new(false))), deadline: None }
    }

    /// This token with an absolute wall-clock deadline attached.  The returned
    /// token shares the cancellation flag with `self`.  Attaching never *loosens*
    /// an existing deadline: the result carries the earlier of the two, so a
    /// request-level token can fan out to per-call tokens with tighter bounds but
    /// a later bound cannot override an earlier one.
    pub fn with_deadline(&self, deadline: Instant) -> Self {
        let deadline = match self.deadline {
            Some(existing) => existing.min(deadline),
            None => deadline,
        };
        CancelToken { flag: self.flag.clone(), deadline: Some(deadline) }
    }

    /// This token with a deadline of `timeout` from now.
    pub fn with_timeout(&self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// The absolute deadline this token carries, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Fire the token: every clone sharing the flag reports cancelled from now on.
    /// A no-op on the inert default token (which has no flag to fire).
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.  Does not
    /// consult the deadline — use this to distinguish explicit cancellation from a
    /// deadline hit.
    pub fn cancel_requested(&self) -> bool {
        self.flag.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// `true` once the attached deadline (if any) has passed.  Reads the clock, so
    /// poll through [`CancelToken::is_cancelled`] at a bounded stride in hot loops.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// `true` if the token has fired for either reason (explicit cancel or
    /// deadline).  This is the single check the enumerators poll.
    pub fn is_cancelled(&self) -> bool {
        self.cancel_requested() || self.deadline_exceeded()
    }

    /// `true` for a token that can never fire (the default): enumerators may skip
    /// polling it entirely.
    pub fn is_inert(&self) -> bool {
        self.flag.is_none() && self.deadline.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_is_inert_and_never_fires() {
        let token = CancelToken::default();
        assert!(token.is_inert());
        assert!(!token.is_cancelled());
        token.cancel(); // no-op, must not panic
        assert!(!token.is_cancelled());
        assert!(!token.cancel_requested());
    }

    #[test]
    fn cancel_fires_every_clone() {
        let token = CancelToken::new();
        assert!(!token.is_inert());
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(clone.cancel_requested());
        assert!(!clone.deadline_exceeded());
    }

    #[test]
    fn deadline_fires_without_explicit_cancel() {
        let token = CancelToken::new().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.is_cancelled());
        assert!(token.deadline_exceeded());
        assert!(!token.cancel_requested());
        let future = CancelToken::new().with_timeout(Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }

    #[test]
    fn deadline_is_per_clone_but_flag_is_shared() {
        let parent = CancelToken::new();
        let child = parent.with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "parent has no deadline");
        child.cancel();
        assert!(parent.is_cancelled(), "flag is shared upward");
    }

    #[test]
    fn attaching_a_deadline_never_loosens_an_existing_one() {
        let tight = Instant::now() + Duration::from_millis(10);
        let loose = Instant::now() + Duration::from_secs(3600);
        let token = CancelToken::new().with_deadline(tight);
        assert_eq!(token.with_deadline(loose).deadline(), Some(tight), "later bound ignored");
        assert_eq!(
            CancelToken::new().with_deadline(loose).with_deadline(tight).deadline(),
            Some(tight),
            "earlier bound tightens"
        );
        assert_eq!(CancelToken::default().deadline(), None);
    }
}
