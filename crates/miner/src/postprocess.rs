//! Post-processing of mining results: maximal patterns, closed patterns and the
//! pattern lattice.
//!
//! Mining with an over-estimating measure (MNI) at a low threshold produces large,
//! highly redundant result sets.  The classic condensations are:
//!
//! * **maximal** frequent patterns — no frequent superpattern exists in the result;
//! * **closed** frequent patterns (CloseGraph, Yan & Han 2003) — no superpattern in
//!   the result has the *same* support;
//! * the **pattern lattice** — the subpattern/superpattern Hasse diagram over the
//!   result, which the experiments use to show how each support measure prunes
//!   different parts of the search space.
//!
//! Subpattern checks use subgraph isomorphism between patterns (`p ⊑ P` iff `p` has
//! an embedding in `P`), which is exact and cheap at the pattern sizes the miner
//! produces (≤ a handful of edges).

use crate::types::{FrequentPattern, MiningResult};
use ffsm_graph::isomorphism::has_embedding;

/// `true` if `small` is a subpattern of `big` (has a label-preserving embedding and
/// no more vertices/edges).
pub fn is_subpattern(small: &ffsm_graph::Pattern, big: &ffsm_graph::Pattern) -> bool {
    small.num_vertices() <= big.num_vertices()
        && small.num_edges() <= big.num_edges()
        && has_embedding(small, big)
}

/// Indices of the *maximal* patterns of `result`: patterns with no proper
/// superpattern in the result set.
pub fn maximal_pattern_indices(result: &MiningResult) -> Vec<usize> {
    let patterns = &result.patterns;
    (0..patterns.len())
        .filter(|&i| {
            !patterns.iter().enumerate().any(|(j, candidate)| {
                j != i
                    && candidate.pattern.num_edges() > patterns[i].pattern.num_edges()
                    && is_subpattern(&patterns[i].pattern, &candidate.pattern)
            })
        })
        .collect()
}

/// The maximal frequent patterns of `result` (cloned out of the result set).
pub fn maximal_patterns(result: &MiningResult) -> Vec<FrequentPattern> {
    maximal_pattern_indices(result).into_iter().map(|i| result.patterns[i].clone()).collect()
}

/// Indices of the *closed* patterns of `result`: patterns with no proper superpattern
/// of equal (or, for a non-monotone reported value, larger) support in the result set.
pub fn closed_pattern_indices(result: &MiningResult) -> Vec<usize> {
    let patterns = &result.patterns;
    (0..patterns.len())
        .filter(|&i| {
            !patterns.iter().enumerate().any(|(j, candidate)| {
                j != i
                    && candidate.pattern.num_edges() > patterns[i].pattern.num_edges()
                    && candidate.support >= patterns[i].support - 1e-9
                    && is_subpattern(&patterns[i].pattern, &candidate.pattern)
            })
        })
        .collect()
}

/// The closed frequent patterns of `result`.
pub fn closed_patterns(result: &MiningResult) -> Vec<FrequentPattern> {
    closed_pattern_indices(result).into_iter().map(|i| result.patterns[i].clone()).collect()
}

/// The subpattern/superpattern Hasse diagram of a mining result.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternLattice {
    /// `(parent, child)` pairs of indices into the originating result's `patterns`,
    /// where `child` extends `parent` by exactly one edge.
    pub edges: Vec<(usize, usize)>,
    /// Number of patterns (lattice nodes).
    pub num_nodes: usize,
}

impl PatternLattice {
    /// Build the lattice of `result`.
    pub fn build(result: &MiningResult) -> Self {
        let patterns = &result.patterns;
        let mut edges = Vec::new();
        for (i, parent) in patterns.iter().enumerate() {
            for (j, child) in patterns.iter().enumerate() {
                if i == j {
                    continue;
                }
                if child.pattern.num_edges() == parent.pattern.num_edges() + 1
                    && is_subpattern(&parent.pattern, &child.pattern)
                {
                    edges.push((i, j));
                }
            }
        }
        PatternLattice { edges, num_nodes: patterns.len() }
    }

    /// Children (one-edge extensions) of pattern `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        self.edges.iter().filter(|&&(p, _)| p == i).map(|&(_, c)| c).collect()
    }

    /// Parents (one-edge reductions) of pattern `i`.
    pub fn parents(&self, i: usize) -> Vec<usize> {
        self.edges.iter().filter(|&&(_, c)| c == i).map(|&(p, _)| p).collect()
    }

    /// Indices with no children — by construction these are exactly the patterns with
    /// no one-edge-larger superpattern in the result.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.num_nodes).filter(|&i| self.children(i).is_empty()).collect()
    }

    /// `true` when every lattice edge is support-non-increasing (the anti-monotonicity
    /// check the experiments run on real mining output).
    pub fn is_anti_monotone(&self, result: &MiningResult) -> bool {
        self.edges
            .iter()
            .all(|&(p, c)| result.patterns[p].support >= result.patterns[c].support - 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::MiningSession;
    use ffsm_core::MeasureKind;
    use ffsm_graph::{generators, patterns, Label, LabeledGraph};

    fn mined_triangles() -> MiningResult {
        let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        let graph = generators::replicated(&triangle, 5, false);
        MiningSession::on(&graph)
            .measure(MeasureKind::Mni)
            .min_support(5.0)
            .max_edges(3)
            .run()
            .expect("valid session")
    }

    #[test]
    fn subpattern_checks() {
        let edge = patterns::single_edge(Label(0), Label(1));
        let tri = patterns::triangle(Label(0), Label(1), Label(2));
        assert!(is_subpattern(&edge, &tri));
        assert!(!is_subpattern(&tri, &edge));
        assert!(is_subpattern(&tri, &tri));
        let other = patterns::single_edge(Label(3), Label(4));
        assert!(!is_subpattern(&other, &tri));
    }

    #[test]
    fn maximal_patterns_of_triangle_forest() {
        let result = mined_triangles();
        let maximal = maximal_patterns(&result);
        assert!(!maximal.is_empty());
        // The full labelled triangle is the unique maximal pattern.
        assert!(maximal.iter().all(|p| p.pattern.num_edges() == 3));
        assert!(maximal.len() < result.len());
    }

    #[test]
    fn closed_patterns_drop_equal_support_subpatterns() {
        let result = mined_triangles();
        let closed = closed_patterns(&result);
        // Every subpattern of the triangle has the same support (5), so only the
        // triangle itself is closed.
        assert!(closed.iter().all(|p| p.pattern.num_edges() == 3));
        assert!(closed.len() <= maximal_patterns(&result).len() + 1);
        // Maximal ⊆ closed always holds.
        let closed_idx = closed_pattern_indices(&result);
        for i in maximal_pattern_indices(&result) {
            assert!(closed_idx.contains(&i));
        }
    }

    #[test]
    fn lattice_structure_of_triangle_results() {
        let result = mined_triangles();
        let lattice = PatternLattice::build(&result);
        assert_eq!(lattice.num_nodes, result.len());
        assert!(!lattice.edges.is_empty());
        assert!(lattice.is_anti_monotone(&result));
        // Single-edge patterns have no parents among the results.
        for (i, p) in result.patterns.iter().enumerate() {
            if p.pattern.num_edges() == 1 {
                assert!(lattice.parents(i).is_empty());
            }
        }
        // Leaves of the lattice are exactly the maximal patterns here (every maximal
        // pattern has no superpattern at all in the result).
        let leaves = lattice.leaves();
        let maximal = maximal_pattern_indices(&result);
        for i in &maximal {
            assert!(leaves.contains(i));
        }
    }

    #[test]
    fn empty_result_post_processing() {
        let graph = LabeledGraph::new();
        let result = MiningSession::on(&graph).run().expect("valid session");
        assert!(maximal_patterns(&result).is_empty());
        assert!(closed_patterns(&result).is_empty());
        let lattice = PatternLattice::build(&result);
        assert_eq!(lattice.num_nodes, 0);
        assert!(lattice.edges.is_empty());
        assert!(lattice.leaves().is_empty());
        assert!(lattice.is_anti_monotone(&result));
    }
}
