//! End-to-end comparison of the mining search schemes (sequential, level-parallel,
//! top-k) and the result condensations (maximal / closed / lattice) on realistic
//! synthetic datasets, exercised purely through the public `ffsm` facade — all
//! modes through the one [`MiningSession`] API, sharing a [`PreparedGraph`] per
//! dataset like a serving deployment would.

use ffsm::core::MeasureKind;
use ffsm::graph::canonical::canonical_code;
use ffsm::graph::{datasets, generators};
use ffsm::miner::postprocess::{
    closed_pattern_indices, closed_patterns, maximal_pattern_indices, maximal_patterns,
    PatternLattice,
};
use ffsm::miner::{MiningResult, MiningSession, PreparedGraph};
use std::collections::BTreeSet;

fn pattern_codes(patterns: &[ffsm::miner::FrequentPattern]) -> BTreeSet<Vec<u64>> {
    patterns.iter().map(|p| canonical_code(&p.pattern).as_slice().to_vec()).collect()
}

#[test]
fn sequential_and_parallel_sessions_agree_on_chemical_dataset() {
    let dataset = datasets::chemical_like(25, 3);
    let prepared = PreparedGraph::new(dataset.graph);
    let tau = 6.0;
    let sequential = MiningSession::over(&prepared).min_support(tau).max_edges(3).run().unwrap();
    let parallel =
        MiningSession::over(&prepared).min_support(tau).max_edges(3).threads(4).run().unwrap();
    assert_eq!(pattern_codes(&sequential.patterns), pattern_codes(&parallel.patterns));
    assert_eq!(sequential.len(), parallel.len());
    // Supports agree pattern by pattern (same engine, same order).
    for (s, p) in sequential.patterns.iter().zip(&parallel.patterns) {
        assert_eq!(s.support.to_bits(), p.support.to_bits());
    }
    // Both sessions shared one prepared graph: the index was built exactly once.
    assert_eq!(prepared.index_build_count(), 1);
}

#[test]
fn conservative_measures_admit_fewer_patterns_everywhere() {
    // σMIS <= σMVC <= σMI <= σMNI, so at a fixed threshold the frequent-pattern sets
    // are nested in the same direction (by count).
    let dataset = datasets::protein_like(6, 6, 13);
    let prepared = PreparedGraph::new(dataset.graph);
    let tau = 4.0;
    let mut counts = Vec::new();
    for measure in [MeasureKind::Mis, MeasureKind::Mvc, MeasureKind::Mi, MeasureKind::Mni] {
        let result = MiningSession::over(&prepared)
            .measure(measure)
            .min_support(tau)
            .max_edges(2)
            .run()
            .unwrap();
        counts.push(result.len());
    }
    for w in counts.windows(2) {
        assert!(w[0] <= w[1], "counts not monotone along the bounding chain: {counts:?}");
    }
    assert_eq!(prepared.index_build_count(), 1, "four measure runs, one index build");
}

#[test]
fn topk_results_are_consistent_with_exhaustive_mining() {
    let dataset = datasets::chemical_like(20, 17);
    let prepared = PreparedGraph::new(dataset.graph);
    let k = 6;
    let topk = MiningSession::over(&prepared).min_support(1.0).max_edges(2).top_k(k).run().unwrap();
    let full = MiningSession::over(&prepared).min_support(1.0).max_edges(2).run().unwrap();
    let mut full_supports: Vec<f64> = full.patterns.iter().map(|p| p.support).collect();
    full_supports.sort_by(|a, b| b.partial_cmp(a).unwrap());
    full_supports.truncate(k);
    let topk_supports: Vec<f64> = topk.patterns.iter().map(|p| p.support).collect();
    assert_eq!(topk_supports, full_supports);
    assert!(topk.stats.candidates_evaluated <= full.stats.candidates_evaluated);
}

#[test]
fn condensations_and_lattice_are_consistent() {
    let graph = generators::community_graph(3, 12, 0.35, 0.02, 4, 21);
    let result: MiningResult =
        MiningSession::on(&graph).min_support(3.0).max_edges(3).run().unwrap();
    if result.is_empty() {
        return; // nothing frequent at this threshold; other seeds cover the content
    }
    let maximal = maximal_pattern_indices(&result);
    let closed = closed_pattern_indices(&result);
    // Maximal ⊆ closed, and both are non-empty whenever the result is.
    for i in &maximal {
        assert!(closed.contains(i));
    }
    assert!(!maximal.is_empty());
    assert!(maximal_patterns(&result).len() == maximal.len());
    assert!(closed_patterns(&result).len() == closed.len());

    let lattice = PatternLattice::build(&result);
    assert_eq!(lattice.num_nodes, result.len());
    assert!(lattice.is_anti_monotone(&result), "reported supports must be anti-monotone");
    // Every non-seed pattern in the result has some parent in the lattice unless its
    // one-edge subpatterns fell below the threshold; at minimum the lattice relations
    // must be acyclic by edge count, which `is_anti_monotone` plus the construction
    // (child has exactly one more edge) already guarantees.
    for &(p, c) in &lattice.edges {
        assert_eq!(
            result.patterns[c].pattern.num_edges(),
            result.patterns[p].pattern.num_edges() + 1
        );
    }
}

#[test]
fn parallel_session_with_mvc_measure_matches_sequential() {
    // The scheme comparison must hold for NP-hard measures too, not just MNI.
    let triangle = ffsm::graph::LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
    let prepared = PreparedGraph::new(generators::replicated(&triangle, 4, false));
    let sequential = MiningSession::over(&prepared)
        .measure(MeasureKind::Mvc)
        .min_support(4.0)
        .max_edges(3)
        .run()
        .unwrap();
    let parallel = MiningSession::over(&prepared)
        .measure(MeasureKind::Mvc)
        .min_support(4.0)
        .max_edges(3)
        .threads(0)
        .run()
        .unwrap();
    assert_eq!(pattern_codes(&sequential.patterns), pattern_codes(&parallel.patterns));
    assert!(sequential.patterns.iter().any(|p| p.pattern.num_edges() == 3));
}
