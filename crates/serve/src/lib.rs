//! # ffsm-serve — the multi-tenant mining server
//!
//! Everything below this crate treats mining as a library call: one process,
//! one graph, one caller.  This crate turns it into a *service* — many named
//! graphs, many concurrent clients, updates arriving while mines are running —
//! without changing a single mining result:
//!
//! * [`GraphRegistry`] — named [`DynamicGraph`](ffsm_dynamic::DynamicGraph)
//!   stores whose retained epoch snapshots act as an epoch-keyed
//!   `PreparedGraph` cache: built lazily on first mine, shared by every later
//!   session over the same epoch, invalidated by updates without disturbing
//!   in-flight readers of older epochs;
//! * [`SessionScheduler`] — a fixed mining pool with *bounded* admission
//!   (overflow is a typed [`Overloaded`](ffsm_core::FfsmError::Overloaded)
//!   rejection, not an unbounded queue), per-session
//!   [`CancelToken`](ffsm_graph::CancelToken) registration, and graceful
//!   drain;
//! * [`Server`] — the NDJSON-over-TCP front end (`std::net`, zero new
//!   dependencies): one flat JSON request per line in, a stream of event
//!   frames out, terminated by exactly one `done` frame per request;
//! * [`events`] — the shared NDJSON serializer: the same frame composers back
//!   `ffsm mine --stream` / `ffsm update --stream` on stdout and every server
//!   socket, so the two surfaces cannot drift apart.
//!
//! Streaming is pull-based end to end: a server session writes one frame per
//! [`PatternStream`](ffsm_miner::PatternStream) event, so a slow client slows
//! the miner (real backpressure) and a vanished client cancels it.
//!
//! ```no_run
//! use ffsm_serve::{Server, ServerConfig};
//! use ffsm_graph::generators;
//!
//! let server = Server::bind("127.0.0.1:7878", ServerConfig::default())?;
//! server.registry().register("demo", generators::gnm_random(100, 300, 4, 7))?;
//! let handle = server.handle(); // signal shutdown from elsewhere
//! server.run()?; // blocks until a graceful drain completes
//! # drop(handle);
//! # Ok::<(), ffsm_core::FfsmError>(())
//! ```
//!
//! The wire protocol is specified in `PROTOCOL.md` at the repository root; the
//! `ffsm serve` CLI subcommand is a thin wrapper over [`Server`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod protocol;
mod registry;
mod scheduler;
mod server;

pub use registry::{GraphRegistry, GraphStats, GraphSummary, PartitionHandle};
pub use scheduler::{SchedulerStats, SessionScheduler};
pub use server::{Server, ServerConfig, ServerHandle};
