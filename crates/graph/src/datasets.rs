//! Domain-flavoured synthetic datasets.
//!
//! The SIGMOD'17 evaluation of this paper runs on large real graphs (biological,
//! citation and social networks).  Those datasets are not redistributable here, so we
//! provide generators that mimic their *relevant* characteristics — label-alphabet
//! size, degree distribution and the amount of occurrence overlap — which are the
//! properties the support measures are sensitive to.  See DESIGN.md §5 for the
//! substitution rationale.
//!
//! Every dataset is deterministic in its seed.

use crate::generators;
use crate::{Label, LabeledGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named dataset: the graph plus a human-readable description used by the
/// experiment harness when printing tables.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short identifier (e.g. `"chemical"`).
    pub name: String,
    /// The data graph.
    pub graph: LabeledGraph,
    /// One-line description (size, flavour).
    pub description: String,
}

impl Dataset {
    fn new(name: &str, graph: LabeledGraph, description: String) -> Self {
        Dataset { name: name.to_string(), graph, description }
    }
}

/// Chemical-compound-like graph: a "molecule soup" of many small ring-and-chain
/// fragments over a small atom alphabet (C, N, O, S, …).  Low degrees, few labels,
/// many repeated substructures — the regime where instance counts are meaningful and
/// automorphism-induced overlap (Figure 2) is common.
pub fn chemical_like(num_molecules: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    // Atom alphabet: 0 = C (frequent), 1 = N, 2 = O, 3 = S (rare).
    let mut g = LabeledGraph::with_capacity(num_molecules * 8);
    for _ in 0..num_molecules {
        let ring_size = rng.gen_range(3..=6);
        let ring_start = g.num_vertices() as VertexId;
        for _ in 0..ring_size {
            let l = match rng.gen_range(0..10) {
                0..=5 => 0, // carbon-like
                6..=7 => 1,
                8 => 2,
                _ => 3,
            };
            g.add_vertex(Label(l));
        }
        for i in 0..ring_size {
            let u = ring_start + i as VertexId;
            let v = ring_start + ((i + 1) % ring_size) as VertexId;
            g.add_edge(u, v).expect("ring edge");
        }
        // Attach a short side chain.
        let chain_len = rng.gen_range(0..=3);
        let mut attach = ring_start + rng.gen_range(0..ring_size) as VertexId;
        for _ in 0..chain_len {
            let l = if rng.gen_bool(0.7) { 0 } else { rng.gen_range(1..4) };
            let nv = g.add_vertex(Label(l));
            g.add_edge(attach, nv).expect("chain edge");
            attach = nv;
        }
    }
    let desc = format!(
        "chemical-like molecule soup: {} vertices, {} edges, {} labels",
        g.num_vertices(),
        g.num_edges(),
        g.distinct_labels().len()
    );
    Dataset::new("chemical", g, desc)
}

/// Social-network-like graph: Barabási–Albert preferential attachment with labels
/// assigned by degree bucket (hubs get rare labels), mirroring how node roles
/// correlate with connectivity in social graphs.  High-degree hubs create exactly the
/// partial-overlap situation of Figure 6 where MNI and MI over-estimate.
pub fn social_like(num_vertices: usize, seed: u64) -> Dataset {
    let base = generators::barabasi_albert(num_vertices, 3, 1, seed);
    // Relabel by degree bucket.
    let mut g = LabeledGraph::with_capacity(num_vertices);
    for v in base.vertices() {
        let d = base.degree(v);
        let label = match d {
            0..=3 => 0,
            4..=8 => 1,
            9..=20 => 2,
            _ => 3,
        };
        g.add_vertex(Label(label));
    }
    for (u, v) in base.edges() {
        g.add_edge(u, v).expect("edge");
    }
    let desc = format!(
        "social-like BA graph: {} vertices, {} edges, labels by degree bucket",
        g.num_vertices(),
        g.num_edges()
    );
    Dataset::new("social", g, desc)
}

/// Citation-like graph: layered structure (papers by "year"), edges predominantly go
/// to earlier layers, labels encode venue-like classes.
pub fn citation_like(num_vertices: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let layers = 10usize;
    let per_layer = (num_vertices / layers).max(1);
    let mut g = LabeledGraph::with_capacity(num_vertices);
    for i in 0..num_vertices {
        let venue = (i % 5) as u32;
        let _ = i / per_layer; // layer index, implicit in the id ordering
        g.add_vertex(Label(venue));
    }
    for v in 0..num_vertices {
        let layer = v / per_layer;
        if layer == 0 {
            continue;
        }
        let refs = rng.gen_range(1..=4);
        for _ in 0..refs {
            let target_layer = rng.gen_range(0..layer);
            let t = target_layer * per_layer + rng.gen_range(0..per_layer);
            if t < num_vertices && t != v {
                let _ = g.add_edge(v as VertexId, t as VertexId);
            }
        }
    }
    let desc = format!(
        "citation-like layered graph: {} vertices, {} edges, 5 venue labels",
        g.num_vertices(),
        g.num_edges()
    );
    Dataset::new("citation", g, desc)
}

/// Protein-interaction-like graph: dense communities (complexes) with sparse
/// inter-community links; labels encode protein families.
pub fn protein_like(num_complexes: usize, complex_size: usize, seed: u64) -> Dataset {
    let g = generators::community_graph(num_complexes, complex_size, 0.35, 0.01, 6, seed);
    let desc = format!(
        "protein-like community graph: {} complexes of {} proteins, {} edges",
        num_complexes,
        complex_size,
        g.num_edges()
    );
    Dataset::new("protein", g, desc)
}

/// The standard benchmark suite used by the experiment harness: one dataset per
/// domain flavour at roughly comparable sizes.
pub fn standard_suite(seed: u64) -> Vec<Dataset> {
    vec![
        chemical_like(150, seed),
        social_like(800, seed.wrapping_add(1)),
        citation_like(600, seed.wrapping_add(2)),
        protein_like(12, 25, seed.wrapping_add(3)),
    ]
}

/// A small suite (used by unit tests and quick example runs).
pub fn small_suite(seed: u64) -> Vec<Dataset> {
    vec![
        chemical_like(25, seed),
        social_like(150, seed.wrapping_add(1)),
        citation_like(120, seed.wrapping_add(2)),
        protein_like(5, 12, seed.wrapping_add(3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chemical_has_small_alphabet_and_low_degree() {
        let d = chemical_like(50, 7);
        assert!(d.graph.distinct_labels().len() <= 4);
        assert!(d.graph.max_degree() <= 8);
        assert!(d.graph.num_vertices() >= 150);
        assert_eq!(d.name, "chemical");
    }

    #[test]
    fn social_has_hubs() {
        let d = social_like(400, 3);
        assert!(d.graph.max_degree() > 15);
        assert!(d.graph.is_connected());
    }

    #[test]
    fn citation_is_layered_and_sparse() {
        let d = citation_like(300, 5);
        assert_eq!(d.graph.num_vertices(), 300);
        assert!(d.graph.average_degree() < 10.0);
    }

    #[test]
    fn protein_is_community_structured() {
        let d = protein_like(6, 15, 1);
        assert_eq!(d.graph.num_vertices(), 90);
        assert!(d.graph.num_edges() > 100);
    }

    #[test]
    fn suites_are_deterministic() {
        let a = standard_suite(99);
        let b = standard_suite(99);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.graph, y.graph);
        }
        let s = small_suite(99);
        assert_eq!(s.len(), 4);
        assert!(s[1].graph.num_vertices() < a[1].graph.num_vertices());
    }
}
