//! The minimum vertex cover (MVC) support measure.
//!
//! σMVC(P, G) is the size of a minimum vertex cover of the occurrence (or instance)
//! hypergraph (Definition 3.3.2): the smallest set of pattern-node images that touches
//! every occurrence.  It is anti-monotonic (Theorem 3.5), bounded by MI from above
//! (Theorem 3.6) and by MIES/MIS from below (Theorem 4.5), and NP-hard — hence the
//! greedy k-approximation alternatives (the paper cites the k − o(1) approximation of
//! Halperin for k-uniform hypergraphs).
//!
//! MVC is solved directly on the occurrence/instance hypergraph, which
//! `SupportMeasures` builds once and shares with MIES and the LP relaxations; the
//! overlap-graph measures (MIS, MCP) additionally share one cached overlap graph of
//! that hypergraph, so profiling every measure on one pattern performs each
//! construction exactly once.

use super::{MeasureOutcome, MvcAlgorithm};
use ffsm_hypergraph::vertex_cover::{
    exact_vertex_cover, greedy_degree_cover, greedy_matching_cover,
};
use ffsm_hypergraph::{Hypergraph, SearchBudget};

/// Minimum vertex cover support of `hypergraph` under `algorithm`.
///
/// For the greedy algorithms `optimal` is always `false` (the value is an upper bound
/// on σMVC); for the exact algorithm it reports whether the branch-and-bound search
/// finished within its budget.
pub fn mvc(
    hypergraph: &Hypergraph,
    algorithm: MvcAlgorithm,
    budget: SearchBudget,
) -> MeasureOutcome {
    if hypergraph.is_empty() {
        return MeasureOutcome { value: 0, optimal: true };
    }
    match algorithm {
        MvcAlgorithm::Exact => {
            let res = exact_vertex_cover(hypergraph, budget);
            MeasureOutcome { value: res.value, optimal: res.optimal }
        }
        MvcAlgorithm::GreedyMatching => {
            MeasureOutcome { value: greedy_matching_cover(hypergraph).len(), optimal: false }
        }
        MvcAlgorithm::GreedyDegree => {
            MeasureOutcome { value: greedy_degree_cover(hypergraph).len(), optimal: false }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occurrences::OccurrenceSet;
    use ffsm_graph::figures;
    use ffsm_graph::isomorphism::IsoConfig;

    fn occurrence_hypergraph(example: &ffsm_graph::figures::FigureExample) -> Hypergraph {
        OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default())
            .occurrence_hypergraph()
    }

    #[test]
    fn figure6_exact_is_two() {
        let h = occurrence_hypergraph(&figures::figure6());
        let out = mvc(&h, MvcAlgorithm::Exact, SearchBudget::default());
        assert_eq!(out.value, 2);
        assert!(out.optimal);
    }

    #[test]
    fn figure5_extension_keeps_cover_at_one() {
        let h2 = occurrence_hypergraph(&figures::figure2());
        let h5 = occurrence_hypergraph(&figures::figure5());
        assert_eq!(mvc(&h2, MvcAlgorithm::Exact, SearchBudget::default()).value, 1);
        assert_eq!(mvc(&h5, MvcAlgorithm::Exact, SearchBudget::default()).value, 1);
    }

    #[test]
    fn greedy_upper_bounds_exact() {
        for example in ffsm_graph::figures::all_figures() {
            let h = occurrence_hypergraph(&example);
            let exact = mvc(&h, MvcAlgorithm::Exact, SearchBudget::default());
            let matching = mvc(&h, MvcAlgorithm::GreedyMatching, SearchBudget::default());
            let degree = mvc(&h, MvcAlgorithm::GreedyDegree, SearchBudget::default());
            assert!(exact.value <= matching.value, "matching below exact on {}", example.name);
            assert!(exact.value <= degree.value, "degree below exact on {}", example.name);
            // k-approximation guarantee for the matching cover (k = pattern size).
            let k = example.pattern.num_vertices();
            assert!(
                matching.value <= k * exact.value.max(1),
                "matching cover not within factor k on {}",
                example.name
            );
        }
    }

    #[test]
    fn empty_hypergraph_is_zero() {
        let h = Hypergraph::new(0);
        for algo in [MvcAlgorithm::Exact, MvcAlgorithm::GreedyMatching, MvcAlgorithm::GreedyDegree]
        {
            assert_eq!(mvc(&h, algo, SearchBudget::default()).value, 0);
        }
    }
}
