//! Reproduce the worked examples of the paper's figures (Figures 1–10) and print the
//! value of every support measure next to what the paper states.
//!
//! Run with: `cargo run --example paper_figures`

use ffsm::core::measures::{MeasureConfig, SupportMeasures};
use ffsm::core::occurrences::OccurrenceSet;
use ffsm::core::overlap::{OverlapAnalysis, OverlapKind};
use ffsm::graph::figures;
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::hypergraph::SearchBudget;

fn main() {
    println!(
        "{:<10} {:>4} {:>5} {:>4} {:>5} {:>6} {:>4} {:>4} {:>4}   paper statement",
        "figure", "occ", "inst", "MIS", "MIES", "nuMVC", "MVC", "MI", "MNI"
    );
    println!("{}", "-".repeat(120));
    for example in figures::all_figures() {
        let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
        let m = SupportMeasures::new(occ, MeasureConfig::default());
        println!(
            "{:<10} {:>4} {:>5} {:>4} {:>5} {:>6.2} {:>4} {:>4} {:>4}   {}",
            example.name,
            m.occurrence_count(),
            m.instance_count(),
            m.mis().value,
            m.mies().value,
            m.relaxed_mvc(),
            m.mvc().value,
            m.mi(),
            m.mni(),
            example.notes
        );
    }

    // Section 4.5's overlap-notion examples (Figures 9 and 10) in detail.
    println!("\nOverlap notions (Section 4.5)");
    for example in [figures::figure9(), figures::figure10()] {
        let occ = OccurrenceSet::enumerate(&example.pattern, &example.graph, IsoConfig::default());
        let analysis = OverlapAnalysis::new(&occ);
        let budget = SearchBudget::default();
        println!(
            "{}: {} occurrences | overlap-graph edges: simple={} harmful={} structural={} | \
             MIS: simple={} harmful={} structural={}",
            example.name,
            occ.num_occurrences(),
            analysis.overlap_edge_count(OverlapKind::Simple),
            analysis.overlap_edge_count(OverlapKind::Harmful),
            analysis.overlap_edge_count(OverlapKind::Structural),
            analysis.mis_under(OverlapKind::Simple, budget),
            analysis.mis_under(OverlapKind::Harmful, budget),
            analysis.mis_under(OverlapKind::Structural, budget),
        );
    }
}
