//! [`PreparedGraph`] — the prepare-once / serve-many handle over a data graph.
//!
//! Serving workloads run *many* sessions against *one* graph: different measures,
//! thresholds, deadlines and clients, often concurrently.  Before this type, every
//! `run()` silently rebuilt the per-graph artifacts — most expensively the
//! `ffsm-match` [`GraphIndex`] — from scratch.  `PreparedGraph` splits that cost
//! out (the preprocessing/query split of dynamic-query systems à la Berkholz et
//! al.): build the handle once, then open any number of sessions over it from any
//! number of threads.
//!
//! ## What is cached
//!
//! * the [`LabeledGraph`] itself (owned);
//! * the **label statistics**: the distinct-label alphabet the candidate generator
//!   extends over, and the per-label vertex counts;
//! * the **matching index** ([`GraphIndex`]), built lazily on first use and then
//!   shared — [`PreparedGraph::index`] returns the same `Arc` forever after, and
//!   concurrent first callers race into exactly one build (the losers block on the
//!   winner, they never duplicate the work).  [`PreparedGraph::index_build_count`]
//!   exposes the build counter so tests can assert the exactly-once contract.
//!
//! ## Immutability and epochs
//!
//! The handle is immutable: nothing behind it ever changes after construction
//! (lazy initialisation is write-once), so clones — which share the underlying
//! storage, they are `Arc` handles — can be sent freely across threads and every
//! session sees the same graph and the same index.  There is deliberately no
//! mutable access; to mine a changed graph, derive a **new epoch handle** with
//! [`PreparedGraph::apply_updates`]: the batch is applied to a private copy of
//! the graph, the label statistics are `Arc`-shared with the parent when the
//! batch touched no labels (the common pure-edge-delta case) and recomputed
//! otherwise, and an already-built matching index is **patched incrementally**
//! (`GraphIndex::apply_delta` over the dirty region) instead of rebuilt — the
//! expensive from-scratch build is never repeated for a small delta.  The old
//! handle stays fully valid; in-flight sessions keep mining the old epoch.

use ffsm_core::{FfsmError, GraphIndex};
use ffsm_graph::{io, GraphDelta, GraphUpdate, Label, LabeledGraph};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

#[derive(Debug)]
struct PreparedInner {
    graph: LabeledGraph,
    /// Distinct labels, ascending — the extension alphabet.  `Arc`-shared with
    /// the parent epoch when an update batch left every label untouched.
    alphabet: Arc<Vec<Label>>,
    /// Per-label vertex counts, ascending by label (shared like `alphabet`).
    label_counts: Arc<Vec<(Label, usize)>>,
    /// The matching index, built at most once (see module docs).
    index: OnceLock<Arc<GraphIndex>>,
    /// How many times the index has been built — 0 or 1 for the handle's lifetime.
    index_builds: AtomicUsize,
}

/// An owned, `Arc`-shared, immutable handle bundling a data graph with its
/// once-built per-graph artifacts.  See the [module docs](self); cloning is cheap
/// and shares everything.
#[derive(Debug, Clone)]
pub struct PreparedGraph {
    inner: Arc<PreparedInner>,
}

impl PreparedGraph {
    /// Prepare `graph` for mining.  Label statistics are computed eagerly (one
    /// linear pass); the matching index is deferred to first use.
    pub fn new(graph: LabeledGraph) -> Self {
        let label_counts = graph.label_histogram();
        let alphabet = label_counts.iter().map(|&(l, _)| l).collect();
        PreparedGraph {
            inner: Arc::new(PreparedInner {
                graph,
                alphabet: Arc::new(alphabet),
                label_counts: Arc::new(label_counts),
                index: OnceLock::new(),
                index_builds: AtomicUsize::new(0),
            }),
        }
    }

    /// Derive the next epoch: validate and apply one [`GraphUpdate`] batch,
    /// returning the new immutable handle together with the [`GraphDelta`]
    /// describing the dirty region.  `self` is untouched (atomic: a failing
    /// update leaves no partial state behind).
    ///
    /// Untouched per-graph state is carried over instead of recomputed: label
    /// statistics are `Arc`-shared when the batch affected no labels, and a
    /// matching index this handle already built is patched incrementally over
    /// the dirty region (`GraphIndex::apply_delta`) — the new handle then serves
    /// [`PreparedGraph::index`] without ever running a from-scratch build
    /// (its [`PreparedGraph::index_build_count`] stays 0).
    pub fn apply_updates(
        &self,
        updates: &[GraphUpdate],
    ) -> Result<(PreparedGraph, GraphDelta), FfsmError> {
        let mut graph = self.inner.graph.clone();
        let delta = ffsm_graph::apply_batch(&mut graph, updates).map_err(FfsmError::Update)?;
        let (alphabet, label_counts) = if !delta.labels_changed {
            // Pure-edge delta: the label statistics cannot have changed — share
            // the parent epoch's allocations.  (`affected_labels` may still be
            // non-empty: edge endpoints land there for the index's degree
            // buckets, but that says nothing about the labelling itself.)
            (self.inner.alphabet.clone(), self.inner.label_counts.clone())
        } else {
            let label_counts = graph.label_histogram();
            let alphabet = label_counts.iter().map(|&(l, _)| l).collect();
            (Arc::new(alphabet), Arc::new(label_counts))
        };
        let index = OnceLock::new();
        if let Some(built) = self.inner.index.get() {
            let mut patched = (**built).clone();
            patched.apply_delta(&graph, &delta);
            index.set(Arc::new(patched)).expect("fresh OnceLock is empty");
        }
        let prepared = PreparedGraph {
            inner: Arc::new(PreparedInner {
                graph,
                alphabet,
                label_counts,
                index,
                index_builds: AtomicUsize::new(0),
            }),
        };
        Ok((prepared, delta))
    }

    /// Load a `.lg` graph file (the `ffsm_graph::io` format) and prepare it.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, FfsmError> {
        Ok(Self::new(io::load_lg(path.as_ref())?))
    }

    /// The underlying data graph.
    pub fn graph(&self) -> &LabeledGraph {
        &self.inner.graph
    }

    /// The distinct-label alphabet (ascending) the candidate generator uses.
    pub fn alphabet(&self) -> &[Label] {
        &self.inner.alphabet
    }

    /// Per-label vertex counts, ascending by label.
    pub fn label_counts(&self) -> &[(Label, usize)] {
        &self.inner.label_counts
    }

    /// The shared matching index, building it on first call.  Every call returns
    /// a clone of the same `Arc`; concurrent first calls perform exactly one build.
    pub fn index(&self) -> Arc<GraphIndex> {
        self.inner
            .index
            .get_or_init(|| {
                self.inner.index_builds.fetch_add(1, Ordering::Relaxed);
                Arc::new(GraphIndex::build(&self.inner.graph))
            })
            .clone()
    }

    /// How many times the matching index has been built for this handle: `0`
    /// before first use, `1` forever after — never more, no matter how many
    /// sessions or threads share the handle.
    pub fn index_build_count(&self) -> usize {
        self.inner.index_builds.load(Ordering::Relaxed)
    }

    /// `true` once the matching index is available without further work — built
    /// by a session over this handle, or inherited pre-patched from a parent
    /// epoch via [`PreparedGraph::apply_updates`].  Never triggers a build: this
    /// is the warm/cold peek the serving registry's epoch cache reports through
    /// its hit/miss statistics.
    pub fn index_is_built(&self) -> bool {
        self.inner.index.get().is_some()
    }

    /// `true` when both handles share the same underlying storage.
    pub fn same_graph(&self, other: &PreparedGraph) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::generators;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn prepared_graph_is_send_and_sync() {
        assert_send_sync::<PreparedGraph>();
    }

    #[test]
    fn label_statistics_match_the_graph() {
        let graph = LabeledGraph::from_edges(&[0, 1, 1, 2], &[(0, 1), (1, 2), (2, 3)]);
        let prepared = PreparedGraph::new(graph.clone());
        assert_eq!(prepared.alphabet(), &[Label(0), Label(1), Label(2)]);
        assert_eq!(prepared.label_counts(), graph.label_histogram().as_slice());
        assert_eq!(prepared.graph().num_edges(), 3);
    }

    #[test]
    fn index_is_lazy_and_built_once() {
        let prepared = PreparedGraph::new(generators::gnm_random(30, 60, 3, 5));
        assert_eq!(prepared.index_build_count(), 0, "index must be lazy");
        assert!(!prepared.index_is_built(), "peek must not trigger a build");
        assert_eq!(prepared.index_build_count(), 0, "peek is free");
        let a = prepared.index();
        let b = prepared.clone().index();
        assert!(Arc::ptr_eq(&a, &b), "all callers share one index");
        assert_eq!(prepared.index_build_count(), 1);
        assert!(prepared.index_is_built());
        // A child epoch inherits the patched index: warm from birth.
        let (next, _) =
            prepared.apply_updates(&[ffsm_graph::GraphUpdate::AddEdge(0, 1)]).unwrap_or_else(
                |_| prepared.apply_updates(&[ffsm_graph::GraphUpdate::RemoveEdge(0, 1)]).unwrap(),
            );
        assert!(next.index_is_built(), "patched index inherited");
        assert_eq!(next.index_build_count(), 0);
    }

    #[test]
    fn concurrent_first_use_builds_exactly_once() {
        let prepared = PreparedGraph::new(generators::gnm_random(60, 150, 4, 9));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let handle = prepared.clone();
                scope.spawn(move || {
                    let _ = handle.index();
                });
            }
        });
        assert_eq!(prepared.index_build_count(), 1);
    }

    #[test]
    fn apply_updates_shares_label_stats_for_pure_edge_deltas() {
        let graph = generators::gnm_random(30, 40, 3, 5);
        let (u, v) = graph.edges().next().expect("graph has edges");
        let prepared = PreparedGraph::new(graph);
        // An *effective* edge removal: the delta is non-empty, yet the labelling
        // is untouched, so the label statistics must be Arc-shared wholesale.
        let (next, delta) =
            prepared.apply_updates(&[ffsm_graph::GraphUpdate::RemoveEdge(u, v)]).unwrap();
        assert!(!delta.is_empty(), "removal of an existing edge dirties its endpoints");
        assert!(!delta.labels_changed);
        assert!(
            Arc::ptr_eq(&prepared.inner.alphabet, &next.inner.alphabet),
            "edge-only deltas must share the alphabet allocation"
        );
        assert!(Arc::ptr_eq(&prepared.inner.label_counts, &next.inner.label_counts));
        // Parent is untouched.
        assert_eq!(prepared.graph().num_edges(), 40);
        // A relabel, in contrast, recomputes the statistics.
        let (relabelled, delta) = next
            .apply_updates(&[ffsm_graph::GraphUpdate::Relabel(u, ffsm_graph::Label(9))])
            .unwrap();
        assert!(delta.labels_changed);
        assert!(!Arc::ptr_eq(&next.inner.alphabet, &relabelled.inner.alphabet));
        assert_eq!(relabelled.alphabet().last(), Some(&ffsm_graph::Label(9)));
    }

    #[test]
    fn apply_updates_patches_a_built_index_without_rebuilding() {
        let prepared = PreparedGraph::new(generators::gnm_random(40, 80, 4, 6));
        let _ = prepared.index();
        let updates = [
            ffsm_graph::GraphUpdate::AddVertex(ffsm_graph::Label(2)),
            ffsm_graph::GraphUpdate::AddEdge(40, 3),
            ffsm_graph::GraphUpdate::RemoveVertex(7),
        ];
        let (next, _delta) = prepared.apply_updates(&updates).unwrap();
        // The child handle carries the patched index: serving it is not a build.
        let patched = next.index();
        assert_eq!(next.index_build_count(), 0, "patched, never rebuilt");
        assert_eq!(*patched, GraphIndex::build(next.graph()), "patch == rebuild oracle");
        // An unbuilt parent hands the child nothing; the child builds lazily.
        let cold = PreparedGraph::new(prepared.graph().clone());
        let (cold_next, _) = cold.apply_updates(&updates).unwrap();
        assert_eq!(cold_next.index_build_count(), 0);
        let _ = cold_next.index();
        assert_eq!(cold_next.index_build_count(), 1);
    }

    #[test]
    fn apply_updates_rejects_invalid_batches_atomically() {
        let prepared = PreparedGraph::new(LabeledGraph::from_edges(&[0, 1], &[(0, 1)]));
        let err = prepared
            .apply_updates(&[
                ffsm_graph::GraphUpdate::AddEdge(0, 1),
                ffsm_graph::GraphUpdate::RemoveVertex(5),
            ])
            .unwrap_err();
        match err {
            FfsmError::Update(e) => assert_eq!(e.index, 1),
            other => panic!("expected Update error, got {other:?}"),
        }
        assert_eq!(prepared.graph().num_vertices(), 2, "parent untouched");
    }

    #[test]
    fn clones_share_storage() {
        let prepared = PreparedGraph::new(LabeledGraph::new());
        let clone = prepared.clone();
        assert!(prepared.same_graph(&clone));
        let other = PreparedGraph::new(LabeledGraph::new());
        assert!(!prepared.same_graph(&other));
    }
}
