//! Support measures on a social-network-like graph with hubs.
//!
//! High-degree hubs create the partial-overlap situation of the paper's Figure 6: a
//! star pattern centred on a hub has many occurrences that all share the hub vertex,
//! so MNI (and MI) report a large support while MIS/MVC report a small one.  This
//! example quantifies that gap on a Barabási–Albert graph.
//!
//! Run with: `cargo run --release --example social_network`

use ffsm::core::measures::{MeasureConfig, SupportMeasures};
use ffsm::core::occurrences::OccurrenceSet;
use ffsm::graph::datasets;
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::graph::{patterns, Label};

fn main() {
    let dataset = datasets::social_like(600, 99);
    println!("{}", dataset.description);
    println!(
        "max degree = {}, average degree = {:.2}\n",
        dataset.graph.max_degree(),
        dataset.graph.average_degree()
    );

    // Patterns of increasing "hubbiness": an edge, a 2-star, a 3-star centred on a
    // mid-degree vertex (label 1) with low-degree leaves (label 0).
    let queries = vec![
        ("edge hub-leaf", patterns::single_edge(Label(1), Label(0))),
        ("star-2 on hub", patterns::uniform_star(2, Label(1), Label(0))),
        ("star-3 on hub", patterns::uniform_star(3, Label(1), Label(0))),
        ("wedge leaf-hub-leaf", patterns::path(&[Label(0), Label(1), Label(0)])),
    ];

    println!(
        "{:<22} {:>9} {:>6} {:>6} {:>6} {:>6} {:>9}",
        "pattern", "occur.", "MIS", "MVC", "MI", "MNI", "MNI/MIS"
    );
    for (name, pattern) in queries {
        let occ =
            OccurrenceSet::enumerate(&pattern, &dataset.graph, IsoConfig::with_limit(500_000));
        if occ.num_occurrences() == 0 {
            println!("{name:<22} (no occurrences)");
            continue;
        }
        let m = SupportMeasures::new(occ, MeasureConfig::default());
        let mis = m.mis().value;
        let mni = m.mni();
        let ratio = if mis > 0 { mni as f64 / mis as f64 } else { f64::INFINITY };
        println!(
            "{:<22} {:>9} {:>6} {:>6} {:>6} {:>6} {:>8.1}x",
            name,
            m.occurrence_count(),
            mis,
            m.mvc().value,
            m.mi(),
            mni,
            ratio
        );
    }
    println!("\nThe MNI/MIS ratio grows with hub overlap — exactly the over-estimation the paper's MVC/MI measures are designed to curb.");
}
