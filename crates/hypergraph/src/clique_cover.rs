//! Clique partition (clique cover) of ordinary graphs.
//!
//! Calders, Ramon and Van Dyck (ICDM 2008) proposed the *minimum clique partition*
//! (MCP) of the overlap graph as an anti-monotonic support measure sitting above MIS:
//! every independent set picks at most one vertex per clique of a partition, so
//! `α(G) ≤ θ(G)` (independence number ≤ clique-cover number).  `ffsm-core` exposes
//! this as the MCP support measure; this module provides the underlying solvers on
//! [`SimpleGraph`]:
//!
//! * [`greedy_clique_partition`] — a deterministic greedy partition (each vertex joins
//!   the first compatible clique in degeneracy-ish order);
//! * [`exact_clique_partition`] — branch-and-bound over the complement colouring
//!   formulation (clique partition of `G` = proper colouring of the complement),
//!   budgeted like every other exact search in this crate.

use crate::independent_set::SimpleGraph;
use crate::{ExactResult, SearchBudget};

/// A partition of the vertex set into cliques, each clique a sorted vertex list.
pub type CliquePartition = Vec<Vec<usize>>;

/// `true` if `vertices` forms a clique in `g`.
pub fn is_clique(g: &SimpleGraph, vertices: &[usize]) -> bool {
    for (i, &u) in vertices.iter().enumerate() {
        for &v in &vertices[i + 1..] {
            if u == v || !g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// `true` if `partition` is a valid clique partition of all `g.num_vertices()`
/// vertices (every vertex in exactly one class, every class a clique).
pub fn is_clique_partition(g: &SimpleGraph, partition: &[Vec<usize>]) -> bool {
    let mut seen = vec![false; g.num_vertices()];
    for class in partition {
        if !is_clique(g, class) {
            return false;
        }
        for &v in class {
            if v >= g.num_vertices() || seen[v] {
                return false;
            }
            seen[v] = true;
        }
    }
    seen.into_iter().all(|s| s)
}

/// Greedy clique partition: visit vertices in descending degree order and place each
/// into the first existing clique it is fully adjacent to, or open a new clique.
/// Always valid; size is an upper bound on the clique-cover number.
pub fn greedy_clique_partition(g: &SimpleGraph) -> CliquePartition {
    let n = g.num_vertices();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (usize::MAX - g.degree(v), v));
    let mut partition: CliquePartition = Vec::new();
    for &v in &order {
        let mut placed = false;
        for class in partition.iter_mut() {
            if class.iter().all(|&u| g.has_edge(v, u)) {
                class.push(v);
                placed = true;
                break;
            }
        }
        if !placed {
            partition.push(vec![v]);
        }
    }
    for class in partition.iter_mut() {
        class.sort_unstable();
    }
    partition.sort();
    partition
}

/// Exact minimum clique partition by branch and bound: vertices are assigned to clique
/// classes one at a time (classes are interchangeable, so a new class is only opened
/// as "the next unused index"), pruning when the number of classes reaches the best
/// known solution.  The search explores at most `budget.0` nodes; if the budget runs
/// out the best partition found so far is returned with `optimal = false`.
pub fn exact_clique_partition(g: &SimpleGraph, budget: SearchBudget) -> (CliquePartition, bool) {
    let n = g.num_vertices();
    if n == 0 {
        return (Vec::new(), true);
    }
    // Start from the greedy solution as the incumbent upper bound.
    let greedy = greedy_clique_partition(g);
    let mut best = greedy.clone();
    let mut best_size = greedy.len();
    // Order vertices by descending degree: constrained vertices first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (usize::MAX - g.degree(v), v));

    struct Search<'a> {
        g: &'a SimpleGraph,
        order: Vec<usize>,
        budget: usize,
        explored: usize,
        best_size: usize,
        best: CliquePartition,
        exhausted: bool,
    }

    impl<'a> Search<'a> {
        fn run(&mut self, index: usize, classes: &mut Vec<Vec<usize>>) {
            if self.explored >= self.budget {
                self.exhausted = true;
                return;
            }
            self.explored += 1;
            if classes.len() >= self.best_size {
                return; // cannot improve
            }
            if index == self.order.len() {
                self.best_size = classes.len();
                self.best = classes.clone();
                return;
            }
            let v = self.order[index];
            // Try to add v to each existing class it is compatible with.
            for ci in 0..classes.len() {
                let compatible = classes[ci].iter().all(|&u| self.g.has_edge(v, u));
                if compatible {
                    classes[ci].push(v);
                    self.run(index + 1, classes);
                    classes[ci].pop();
                    if self.exhausted {
                        return;
                    }
                }
            }
            // Or open a new class (only if it can still beat the incumbent).
            if classes.len() + 1 < self.best_size {
                classes.push(vec![v]);
                self.run(index + 1, classes);
                classes.pop();
            }
        }
    }

    let mut search = Search {
        g,
        order,
        budget: budget.0,
        explored: 0,
        best_size,
        best: std::mem::take(&mut best),
        exhausted: false,
    };
    let mut classes: Vec<Vec<usize>> = Vec::new();
    search.run(0, &mut classes);
    best = search.best;
    best_size = search.best_size;
    let optimal = !search.exhausted;
    let mut partition = best;
    for class in partition.iter_mut() {
        class.sort_unstable();
    }
    partition.sort();
    debug_assert_eq!(partition.len(), best_size);
    (partition, optimal)
}

/// Clique-cover number as an [`ExactResult`] (value = number of cliques, witness =
/// the representative smallest vertex of every clique).
pub fn clique_cover_number(g: &SimpleGraph, budget: SearchBudget) -> ExactResult {
    let (partition, optimal) = exact_clique_partition(g, budget);
    ExactResult {
        value: partition.len(),
        witness: partition.iter().filter_map(|c| c.first().copied()).collect(),
        optimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independent_set::exact_max_independent_set;

    fn path(n: usize) -> SimpleGraph {
        let mut g = SimpleGraph::new(n);
        for v in 1..n {
            g.add_edge(v - 1, v);
        }
        g
    }

    fn complete(n: usize) -> SimpleGraph {
        let mut g = SimpleGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    #[test]
    fn clique_checks() {
        let g = complete(4);
        assert!(is_clique(&g, &[0, 1, 2, 3]));
        assert!(is_clique(&g, &[2]));
        assert!(is_clique(&g, &[]));
        let p = path(4);
        assert!(is_clique(&p, &[1, 2]));
        assert!(!is_clique(&p, &[0, 2]));
        assert!(!is_clique(&p, &[0, 0]));
    }

    #[test]
    fn partition_validation() {
        let p = path(4);
        assert!(is_clique_partition(&p, &[vec![0, 1], vec![2, 3]]));
        assert!(!is_clique_partition(&p, &[vec![0, 1], vec![2]])); // vertex 3 missing
        assert!(!is_clique_partition(&p, &[vec![0, 1], vec![1, 2], vec![3]])); // 1 twice
        assert!(!is_clique_partition(&p, &[vec![0, 2], vec![1, 3]])); // not cliques
    }

    #[test]
    fn greedy_on_complete_graph_uses_one_clique() {
        let g = complete(5);
        let part = greedy_clique_partition(&g);
        assert_eq!(part.len(), 1);
        assert!(is_clique_partition(&g, &part));
    }

    #[test]
    fn greedy_on_edgeless_graph_uses_singletons() {
        let g = SimpleGraph::new(4);
        let part = greedy_clique_partition(&g);
        assert_eq!(part.len(), 4);
        assert!(is_clique_partition(&g, &part));
    }

    #[test]
    fn exact_on_path_matches_ceiling_half() {
        // A path on n vertices has clique-cover number ceil(n/2) (edges are the only
        // non-trivial cliques).
        for n in 1..8 {
            let g = path(n);
            let (part, optimal) = exact_clique_partition(&g, SearchBudget::default());
            assert!(optimal);
            assert!(is_clique_partition(&g, &part));
            assert_eq!(part.len(), n.div_ceil(2), "path of {n}");
        }
    }

    #[test]
    fn exact_is_at_most_greedy_and_at_least_independence_number() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 10;
            let mut g = SimpleGraph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen_bool(0.35) {
                        g.add_edge(u, v);
                    }
                }
            }
            let greedy = greedy_clique_partition(&g);
            let (exact, optimal) = exact_clique_partition(&g, SearchBudget::default());
            assert!(optimal, "seed {seed}");
            assert!(is_clique_partition(&g, &exact), "seed {seed}");
            assert!(exact.len() <= greedy.len(), "seed {seed}");
            let alpha = exact_max_independent_set(&g, SearchBudget::default()).value;
            assert!(alpha <= exact.len(), "seed {seed}: α must not exceed θ");
        }
    }

    #[test]
    fn clique_cover_number_result_shape() {
        let g = path(5);
        let r = clique_cover_number(&g, SearchBudget::default());
        assert_eq!(r.value, 3);
        assert!(r.optimal);
        assert_eq!(r.witness.len(), 3);
        let empty = clique_cover_number(&SimpleGraph::new(0), SearchBudget::default());
        assert_eq!(empty.value, 0);
    }

    #[test]
    fn budget_exhaustion_still_returns_valid_partition() {
        let mut g = SimpleGraph::new(14);
        for u in 0..14 {
            for v in (u + 1)..14 {
                if (u + v) % 3 != 0 {
                    g.add_edge(u, v);
                }
            }
        }
        let (part, optimal) = exact_clique_partition(&g, SearchBudget(5));
        assert!(!optimal);
        assert!(is_clique_partition(&g, &part));
    }
}
