//! Additive (per-component) evaluation of the hypergraph-based measures.
//!
//! The paper's conclusions list *additiveness* — "the computing can be done in a
//! parallel manner" — as a desirable extension (Section 6, item 4).  The hypergraph
//! framework makes the applicable scope precise:
//!
//! * **additive**: MVC, MIS/MIES, the LP relaxations νMVC/νMIES and MCP.  All of them
//!   optimise over structures that never span two connected components of the
//!   occurrence (instance) hypergraph, so the optimum over `H` is the sum of optima
//!   over `H`'s components.
//! * **not additive**: MNI and MI.  They take a *minimum* (not a sum) of per-node
//!   image counts over the whole pattern, so splitting the hypergraph and summing
//!   would over-count — see `tests::mni_is_not_additive` for a concrete witness.
//!
//! Decomposition pays off twice: exact branch-and-bound solvers run on much smaller
//! instances (exponentially better worst case), and components can be solved on
//! separate threads ([`DecompositionConfig::parallel`]).  Experiment E10 measures
//! both effects.

use crate::measures::{mcp, mis, mvc, relaxed, MeasureOutcome, MvcAlgorithm};
use ffsm_hypergraph::connectivity::{connected_components, Component};
use ffsm_hypergraph::{Hypergraph, SearchBudget};

/// How the per-component sub-problems are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecompositionConfig {
    /// Solve components on `std::thread` workers (one per component, capped at the
    /// number of available CPUs).  With few or tiny components the sequential path is
    /// faster; the experiments use ~64 edges per component as the break-even rule of
    /// thumb.
    pub parallel: bool,
    /// Budget applied to *each* component's exact search.
    pub budget: SearchBudget,
}

/// Result of an additive evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct DecomposedOutcome {
    /// Sum of the per-component values.
    pub value: f64,
    /// `true` only if every component's search proved optimality.
    pub optimal: bool,
    /// Number of connected components solved.
    pub num_components: usize,
    /// The individual component values (ordered as the components are).
    pub component_values: Vec<f64>,
}

impl DecomposedOutcome {
    fn from_parts(parts: Vec<(f64, bool)>) -> Self {
        let value = parts.iter().map(|(v, _)| v).sum();
        let optimal = parts.iter().all(|&(_, o)| o);
        DecomposedOutcome {
            value,
            optimal,
            num_components: parts.len(),
            component_values: parts.into_iter().map(|(v, _)| v).collect(),
        }
    }
}

/// Evaluate `f` on every connected component of `h` and sum the results.
fn evaluate_components<F>(h: &Hypergraph, config: DecompositionConfig, f: F) -> DecomposedOutcome
where
    F: Fn(&Hypergraph) -> (f64, bool) + Sync,
{
    let components: Vec<Component> = connected_components(h);
    if components.is_empty() {
        return DecomposedOutcome {
            value: 0.0,
            optimal: true,
            num_components: 0,
            component_values: Vec::new(),
        };
    }
    if !config.parallel || components.len() == 1 {
        let parts = components.iter().map(|c| f(&c.hypergraph)).collect();
        return DecomposedOutcome::from_parts(parts);
    }
    // Parallel path: static round-robin assignment of components to worker threads.
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = workers.min(components.len()).max(1);
    let mut parts = vec![(0.0f64, true); components.len()];
    std::thread::scope(|scope| {
        let chunks: Vec<(usize, &Component)> = components.iter().enumerate().collect();
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let assigned: Vec<(usize, &Component)> =
                chunks.iter().copied().filter(|(i, _)| i % workers == w).collect();
            let f = &f;
            handles.push(scope.spawn(move || {
                assigned
                    .into_iter()
                    .map(|(i, c)| (i, f(&c.hypergraph)))
                    .collect::<Vec<(usize, (f64, bool))>>()
            }));
        }
        for handle in handles {
            for (i, part) in handle.join().expect("component worker panicked") {
                parts[i] = part;
            }
        }
    });
    DecomposedOutcome::from_parts(parts)
}

/// σMVC computed additively over components.
pub fn mvc_by_components(
    h: &Hypergraph,
    algorithm: MvcAlgorithm,
    config: DecompositionConfig,
) -> DecomposedOutcome {
    evaluate_components(h, config, |c| {
        let r = mvc::mvc(c, algorithm, config.budget);
        (r.value as f64, r.optimal)
    })
}

/// σMIES computed additively over components.
pub fn mies_by_components(h: &Hypergraph, config: DecompositionConfig) -> DecomposedOutcome {
    evaluate_components(h, config, |c| {
        let r = mis::mies(c, config.budget);
        (r.value as f64, r.optimal)
    })
}

/// σMIS computed additively over components.
pub fn mis_by_components(h: &Hypergraph, config: DecompositionConfig) -> DecomposedOutcome {
    evaluate_components(h, config, |c| {
        let r = mis::mis(c, config.budget);
        (r.value as f64, r.optimal)
    })
}

/// σMCP computed additively over components.
pub fn mcp_by_components(h: &Hypergraph, config: DecompositionConfig) -> DecomposedOutcome {
    evaluate_components(h, config, |c| {
        let r: MeasureOutcome = mcp::mcp(c, config.budget);
        (r.value as f64, r.optimal)
    })
}

/// νMVC (the LP relaxation) computed additively over components.
pub fn relaxed_mvc_by_components(h: &Hypergraph, config: DecompositionConfig) -> DecomposedOutcome {
    evaluate_components(h, config, |c| (relaxed::relaxed_mvc(c), true))
}

/// νMIES (the LP relaxation) computed additively over components.
pub fn relaxed_mies_by_components(
    h: &Hypergraph,
    config: DecompositionConfig,
) -> DecomposedOutcome {
    evaluate_components(h, config, |c| (relaxed::relaxed_mies(c), true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::{MeasureConfig, SupportMeasures};
    use crate::occurrences::{HypergraphBasis, OccurrenceSet};
    use ffsm_graph::isomorphism::IsoConfig;
    use ffsm_graph::{generators, patterns, Label};

    /// Data graph made of several star-overlap blocks: many components, each with
    /// internal overlap.
    fn blocks(copies: usize) -> (ffsm_graph::LabeledGraph, ffsm_graph::Pattern) {
        let block = generators::star_overlap(2, 3);
        let graph = generators::replicated(&block, copies, false);
        let pattern = patterns::single_edge(Label(0), Label(1));
        (graph, pattern)
    }

    fn occurrence_hypergraph(
        graph: &ffsm_graph::LabeledGraph,
        pattern: &ffsm_graph::Pattern,
    ) -> Hypergraph {
        OccurrenceSet::enumerate(pattern, graph, IsoConfig::default())
            .hypergraph(HypergraphBasis::Occurrence)
    }

    #[test]
    fn decomposition_matches_direct_solution() {
        let (graph, pattern) = blocks(6);
        let h = occurrence_hypergraph(&graph, &pattern);
        let occ = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
        let direct = SupportMeasures::new(occ, MeasureConfig::default());
        let config = DecompositionConfig::default();

        let mvc_d = mvc_by_components(&h, MvcAlgorithm::Exact, config);
        assert_eq!(mvc_d.num_components, 6);
        assert!(mvc_d.optimal);
        assert_eq!(mvc_d.value, direct.mvc().value as f64);

        let mies_d = mies_by_components(&h, config);
        assert_eq!(mies_d.value, direct.mies().value as f64);
        let mis_d = mis_by_components(&h, config);
        assert_eq!(mis_d.value, direct.mis().value as f64);

        let rel_mvc = relaxed_mvc_by_components(&h, config);
        assert!((rel_mvc.value - direct.relaxed_mvc()).abs() < 1e-6);
        let rel_mies = relaxed_mies_by_components(&h, config);
        assert!((rel_mies.value - direct.relaxed_mies()).abs() < 1e-6);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (graph, pattern) = blocks(8);
        let h = occurrence_hypergraph(&graph, &pattern);
        let seq = DecompositionConfig { parallel: false, ..Default::default() };
        let par = DecompositionConfig { parallel: true, ..Default::default() };
        assert_eq!(
            mvc_by_components(&h, MvcAlgorithm::Exact, seq),
            mvc_by_components(&h, MvcAlgorithm::Exact, par)
        );
        assert_eq!(mies_by_components(&h, seq), mies_by_components(&h, par));
        assert_eq!(mcp_by_components(&h, seq), mcp_by_components(&h, par));
    }

    #[test]
    fn empty_hypergraph_decomposes_to_zero() {
        let h = Hypergraph::new(4);
        let d = mvc_by_components(&h, MvcAlgorithm::Exact, DecompositionConfig::default());
        assert_eq!(d.value, 0.0);
        assert_eq!(d.num_components, 0);
        assert!(d.optimal);
    }

    #[test]
    fn component_values_sum_to_total() {
        let (graph, pattern) = blocks(5);
        let h = occurrence_hypergraph(&graph, &pattern);
        let d = mis_by_components(&h, DecompositionConfig::default());
        assert_eq!(d.component_values.len(), d.num_components);
        let sum: f64 = d.component_values.iter().sum();
        assert!((sum - d.value).abs() < 1e-12);
        // Every star-overlap block contributes MIS = 2 (two hubs... actually
        // min(hubs, leaves) = 2 independent edges).
        assert!(d.component_values.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn mni_is_not_additive() {
        // MNI takes a minimum over pattern nodes of *summed* per-component image
        // counts, so it can exceed the sum of per-component MNIs — summing component
        // results would therefore be wrong (here: 4 vs 1 + 1).
        let pattern = patterns::single_edge(Label(0), Label(1));
        let comp_a = generators::star_overlap(1, 3); // one L0 hub, three L1 leaves: MNI 1
        let comp_b = generators::star_overlap(3, 1); // three L0 hubs, one L1 leaf:  MNI 1
        let graph = ffsm_graph::transform::disjoint_union(&comp_a, &comp_b);
        let whole = SupportMeasures::new(
            OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default()),
            MeasureConfig::default(),
        );
        let mni_a = SupportMeasures::new(
            OccurrenceSet::enumerate(&pattern, &comp_a, IsoConfig::default()),
            MeasureConfig::default(),
        )
        .mni();
        let mni_b = SupportMeasures::new(
            OccurrenceSet::enumerate(&pattern, &comp_b, IsoConfig::default()),
            MeasureConfig::default(),
        )
        .mni();
        assert_eq!(mni_a, 1);
        assert_eq!(mni_b, 1);
        assert_eq!(whole.mni(), 4);
        assert!(whole.mni() > mni_a + mni_b);
    }
}
