//! Legacy sequential-miner API, kept as a thin shim over [`crate::MiningSession`].
//!
//! `Miner` / `MinerConfig` predate the session builder; new code should use
//! [`crate::MiningSession`] directly.  The shim delegates to the same engine, so
//! results are identical.

#![allow(deprecated)]

use crate::session::{MiningBudget, MiningSession};
use crate::types::MiningResult;
use ffsm_core::{MeasureConfig, MeasureKind, OccurrenceSet, SupportMeasure};
use ffsm_graph::canonical::{canonical_code, CanonicalCode};
use ffsm_graph::{LabeledGraph, Pattern};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Configuration for a legacy mining run.
#[deprecated(since = "0.2.0", note = "use `MiningSession::on(&graph)` instead")]
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Support threshold τ: a pattern is frequent when `support ≥ min_support`.
    pub min_support: f64,
    /// Which support measure to use for pruning and reporting.
    pub measure: MeasureKind,
    /// Measure configuration (occurrence-enumeration budget, MI strategy, …).
    pub measure_config: MeasureConfig,
    /// Stop growing patterns beyond this many edges.
    pub max_pattern_edges: usize,
    /// Safety cap on the number of frequent patterns reported.
    pub max_patterns: usize,
    /// Safety cap on the number of support evaluations (candidate patterns).
    pub max_evaluations: usize,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            min_support: 2.0,
            measure: MeasureKind::Mni,
            measure_config: MeasureConfig::default(),
            max_pattern_edges: 4,
            max_patterns: 10_000,
            max_evaluations: 100_000,
        }
    }
}

impl MinerConfig {
    /// Convenience constructor: threshold + measure, defaults elsewhere.
    pub fn with_measure(min_support: f64, measure: MeasureKind) -> Self {
        MinerConfig { min_support, measure, ..Default::default() }
    }
}

/// Legacy sequential miner.  Delegates to [`crate::MiningSession`].
#[deprecated(since = "0.2.0", note = "use `MiningSession::on(&graph)` instead")]
pub struct Miner<'a> {
    graph: &'a LabeledGraph,
    config: MinerConfig,
    measure: Arc<dyn SupportMeasure>,
    /// Memo of supports per canonical code, so repeated `support_of` queries are not
    /// re-evaluated.
    support_cache: Mutex<HashMap<CanonicalCode, (f64, usize)>>,
}

impl<'a> Miner<'a> {
    /// Create a miner over `graph`.
    pub fn new(graph: &'a LabeledGraph, config: MinerConfig) -> Self {
        let measure = config.measure.measure(config.measure_config.clone());
        Miner { graph, config, measure, support_cache: Mutex::new(HashMap::new()) }
    }

    /// The active configuration.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// Evaluate the support of one pattern under the configured measure.
    pub fn support_of(&self, pattern: &Pattern) -> (f64, usize) {
        let code = canonical_code(pattern);
        if let Some(&cached) = self.support_cache.lock().expect("support cache poisoned").get(&code)
        {
            return cached;
        }
        let occ =
            OccurrenceSet::enumerate(pattern, self.graph, self.config.measure_config.iso_config);
        let num_occurrences = occ.num_occurrences();
        let support = self.measure.support(&occ);
        self.support_cache
            .lock()
            .expect("support cache poisoned")
            .insert(code, (support, num_occurrences));
        (support, num_occurrences)
    }

    /// Run the mining loop.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is one the session API rejects (a non-finite
    /// threshold or a non-anti-monotone measure) — the legacy signature has no error
    /// channel.  [`MiningSession::run`] reports these as [`ffsm_core::FfsmError`].
    pub fn mine(&self) -> MiningResult {
        MiningSession::on(self.graph)
            .measure(self.config.measure)
            .measure_config(self.config.measure_config.clone())
            .min_support(self.config.min_support)
            .max_edges(self.config.max_pattern_edges)
            .budget(MiningBudget {
                max_evaluations: self.config.max_evaluations,
                max_patterns: self.config.max_patterns,
            })
            .run()
            .expect("legacy MinerConfig produced an invalid session")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::{generators, Label};
    use std::collections::HashSet;

    /// A graph with an obvious frequent structure: many disjoint triangles with the
    /// same labels plus a few noise edges.
    fn triangle_forest(copies: usize) -> LabeledGraph {
        let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        generators::replicated(&triangle, copies, false)
    }

    #[test]
    fn finds_triangles_in_triangle_forest() {
        let graph = triangle_forest(5);
        let config = MinerConfig {
            min_support: 5.0,
            measure: MeasureKind::Mni,
            max_pattern_edges: 3,
            ..Default::default()
        };
        let result = Miner::new(&graph, config).mine();
        assert!(!result.is_empty());
        // The full labelled triangle must be reported as frequent.
        assert!(
            result
                .patterns
                .iter()
                .any(|p| p.pattern.num_edges() == 3 && p.pattern.num_vertices() == 3),
            "triangle not found; found sizes: {:?}",
            result.patterns.iter().map(|p| p.pattern.num_edges()).collect::<Vec<_>>()
        );
        assert_eq!(result.max_edges(), 3);
        // Every reported support respects the threshold.
        for p in &result.patterns {
            assert!(p.support >= 5.0);
        }
    }

    #[test]
    fn higher_threshold_yields_fewer_patterns() {
        let graph = generators::community_graph(3, 12, 0.3, 0.02, 4, 7);
        let low = Miner::new(
            &graph,
            MinerConfig { min_support: 2.0, max_pattern_edges: 2, ..Default::default() },
        )
        .mine();
        let high = Miner::new(
            &graph,
            MinerConfig { min_support: 8.0, max_pattern_edges: 2, ..Default::default() },
        )
        .mine();
        assert!(high.len() <= low.len());
    }

    #[test]
    fn conservative_measures_yield_subset_of_mni_patterns() {
        // At the same threshold, MIS-frequent patterns are a subset of MNI-frequent
        // patterns because σMIS <= σMNI.
        let graph = triangle_forest(4);
        let tau = 4.0;
        let mni = Miner::new(&graph, MinerConfig::with_measure(tau, MeasureKind::Mni)).mine();
        let mis = Miner::new(&graph, MinerConfig::with_measure(tau, MeasureKind::Mis)).mine();
        assert!(mis.len() <= mni.len());
        // Each MIS-frequent pattern must also be MNI-frequent.
        let mni_codes: HashSet<CanonicalCode> =
            mni.patterns.iter().map(|p| canonical_code(&p.pattern)).collect();
        for p in &mis.patterns {
            assert!(mni_codes.contains(&canonical_code(&p.pattern)));
        }
    }

    #[test]
    fn reported_supports_are_anti_monotonic_along_results() {
        // Any frequent pattern's subpattern (with one edge less) that is also reported
        // must have at least the same support.
        let graph = triangle_forest(4);
        let result = Miner::new(
            &graph,
            MinerConfig { min_support: 3.0, measure: MeasureKind::Mni, ..Default::default() },
        )
        .mine();
        let best_by_edges: HashMap<usize, f64> =
            result.patterns.iter().fold(HashMap::new(), |mut m, p| {
                let e = m.entry(p.pattern.num_edges()).or_insert(0.0);
                *e = e.max(p.support);
                m
            });
        let mut sizes: Vec<usize> = best_by_edges.keys().copied().collect();
        sizes.sort_unstable();
        for w in sizes.windows(2) {
            assert!(best_by_edges[&w[0]] >= best_by_edges[&w[1]] - 1e-9);
        }
    }

    #[test]
    fn evaluation_cap_truncates() {
        let graph = generators::gnm_random(80, 250, 2, 3);
        let config = MinerConfig {
            min_support: 1.0,
            max_pattern_edges: 3,
            max_evaluations: 5,
            ..Default::default()
        };
        let result = Miner::new(&graph, config).mine();
        assert!(result.stats.truncated);
        assert!(result.stats.candidates_evaluated <= 5);
    }

    #[test]
    fn empty_graph_mines_nothing() {
        let graph = LabeledGraph::new();
        let result = Miner::new(&graph, MinerConfig::default()).mine();
        assert!(result.is_empty());
        assert_eq!(result.stats.candidates_evaluated, 0);
    }

    #[test]
    fn support_cache_reuses_evaluations() {
        let graph = triangle_forest(3);
        let miner = Miner::new(&graph, MinerConfig::default());
        let p = ffsm_graph::patterns::single_edge(Label(0), Label(1));
        let first = miner.support_of(&p);
        let second = miner.support_of(&p);
        assert_eq!(first, second);
    }

    #[test]
    fn with_edge_count_filter() {
        let graph = triangle_forest(4);
        let result = Miner::new(
            &graph,
            MinerConfig { min_support: 4.0, max_pattern_edges: 3, ..Default::default() },
        )
        .mine();
        let singles = result.with_edge_count(1);
        assert!(!singles.is_empty());
        for p in singles {
            assert_eq!(p.pattern.num_edges(), 1);
        }
    }
}
