//! Greedy set-cover machinery.
//!
//! Minimum vertex cover of a hypergraph *is* a set-cover problem: the universe is the
//! edge set and each vertex covers the edges containing it.  The classic greedy
//! algorithm ("repeatedly pick the vertex covering the most uncovered edges") gives a
//! `ln m + 1` approximation, which complements the `k`-approximation of
//! [`crate::vertex_cover::greedy_matching_cover`]: on occurrence hypergraphs with a
//! few high-degree hub images (the star-overlap workloads) greedy set cover is often
//! much closer to the optimum, while on uniform low-degree instances the matching
//! bound is better.  Experiment E7 compares the two empirically.

use crate::Hypergraph;

/// Solve the generic set-cover problem greedily.
///
/// `universe_size` elements `0..universe_size` must be covered; `sets[i]` lists the
/// elements covered by set `i`.  Returns the chosen set indices, or `None` if some
/// element is not covered by any set.
pub fn greedy_set_cover(universe_size: usize, sets: &[Vec<usize>]) -> Option<Vec<usize>> {
    let mut covered = vec![false; universe_size];
    let mut num_covered = 0usize;
    let mut chosen = Vec::new();
    // Precompute which sets touch each element so we can bail out early.
    let mut coverable = vec![false; universe_size];
    for set in sets {
        for &e in set {
            if e < universe_size {
                coverable[e] = true;
            }
        }
    }
    if coverable.iter().any(|&c| !c) {
        return None;
    }
    let mut used = vec![false; sets.len()];
    while num_covered < universe_size {
        // Pick the set covering the most uncovered elements; ties by smaller index
        // keep the result deterministic.
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for (i, set) in sets.iter().enumerate() {
            if used[i] {
                continue;
            }
            let gain = set.iter().filter(|&&e| e < universe_size && !covered[e]).count();
            if gain == 0 {
                continue;
            }
            if best.map(|(g, _)| gain > g).unwrap_or(true) {
                best = Some((gain, i));
            }
        }
        let (_, i) = best?;
        used[i] = true;
        chosen.push(i);
        for &e in &sets[i] {
            if e < universe_size && !covered[e] {
                covered[e] = true;
                num_covered += 1;
            }
        }
    }
    chosen.sort_unstable();
    Some(chosen)
}

/// Greedy set-cover approximation of the minimum vertex cover of a hypergraph:
/// elements are edges, sets are vertices.  Returns the chosen vertices (a valid
/// cover); empty for a hypergraph with no edges.
pub fn greedy_set_cover_vertex_cover(h: &Hypergraph) -> Vec<usize> {
    if h.num_edges() == 0 {
        return Vec::new();
    }
    let incidence = h.incidence();
    greedy_set_cover(h.num_edges(), &incidence)
        .expect("every hyperedge is non-empty, so it is coverable")
}

/// Number of distinct elements covered by the chosen sets (utility for tests and
/// experiment reporting).
pub fn coverage(universe_size: usize, sets: &[Vec<usize>], chosen: &[usize]) -> usize {
    let mut covered = vec![false; universe_size];
    for &i in chosen {
        if let Some(set) = sets.get(i) {
            for &e in set {
                if e < universe_size {
                    covered[e] = true;
                }
            }
        }
    }
    covered.into_iter().filter(|&c| c).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_cover::{exact_vertex_cover, is_vertex_cover};
    use crate::SearchBudget;

    #[test]
    fn covers_a_simple_universe() {
        let sets = vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![4]];
        let chosen = greedy_set_cover(5, &sets).unwrap();
        assert_eq!(coverage(5, &sets, &chosen), 5);
        // Greedy picks {0,1,2} first, then needs {2,3} or {3,4} and possibly {4}.
        assert!(chosen.contains(&0));
        assert!(chosen.len() <= 3);
    }

    #[test]
    fn uncoverable_universe_returns_none() {
        let sets = vec![vec![0, 1]];
        assert!(greedy_set_cover(3, &sets).is_none());
        assert!(greedy_set_cover(0, &sets).is_some()); // empty universe: nothing to do
        assert_eq!(greedy_set_cover(0, &sets).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn greedy_matches_optimum_on_star_overlap() {
        // Two hubs (0 and 9) covering four edges each: greedy set cover finds the
        // optimal size-2 cover, while the matching-based 2-approximation may use 4.
        let mut h = Hypergraph::new(10);
        for leaf in 1..5 {
            h.add_edge(vec![0, leaf]).unwrap();
        }
        for leaf in 5..9 {
            h.add_edge(vec![9, leaf]).unwrap();
        }
        let cover = greedy_set_cover_vertex_cover(&h);
        assert!(is_vertex_cover(&h, &cover));
        assert_eq!(cover.len(), 2);
        assert_eq!(exact_vertex_cover(&h, SearchBudget::default()).value, 2);
    }

    #[test]
    fn greedy_cover_is_always_valid_on_random_hypergraphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 15;
            let mut h = Hypergraph::new(n);
            for _ in 0..rng.gen_range(1..25) {
                let size = rng.gen_range(1..5);
                let edge: Vec<usize> = (0..size).map(|_| rng.gen_range(0..n)).collect();
                h.add_edge(edge).unwrap();
            }
            let cover = greedy_set_cover_vertex_cover(&h);
            assert!(is_vertex_cover(&h, &cover), "seed {seed}");
            let opt = exact_vertex_cover(&h, SearchBudget::default()).value;
            assert!(cover.len() >= opt, "seed {seed}");
            // ln(m)+1 bound (loose sanity check).
            let bound = (opt as f64) * ((h.num_edges() as f64).ln() + 1.0);
            assert!(cover.len() as f64 <= bound.max(opt as f64), "seed {seed}");
        }
    }

    #[test]
    fn empty_hypergraph_needs_no_cover() {
        let h = Hypergraph::new(4);
        assert!(greedy_set_cover_vertex_cover(&h).is_empty());
    }
}
