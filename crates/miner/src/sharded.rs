//! [`ShardedSession`] — partitioned out-of-core mining over a
//! [`PartitionedGraph`].
//!
//! The driver reproduces the unsharded engine's level loop *exactly* — same
//! seeds, same deduplication, same threshold/top-k application order, same
//! budget and interruption semantics — and replaces only the per-candidate
//! support evaluation: occurrences are enumerated **per shard** with the
//! whole-graph matcher machinery unchanged, remapped to global vertex ids,
//! deduplicated by the anchor-shard rule, merged into one global
//! [`OccurrenceSet`], and handed to the very same measure implementation.
//!
//! ## Why the merge is exact
//!
//! * **Coverage.** The halo invariant (see `ffsm-shard`) guarantees that every
//!   global embedding of a pattern with at most `halo_depth` edges appears in
//!   the shard owning its anchor (minimum global image vertex); the session
//!   therefore refuses to run when `max_edges > halo_depth`.
//! * **Uniqueness.** A kept embedding's anchor is interior to exactly one
//!   shard, so the anchor-shard filter keeps each global embedding exactly
//!   once; shards are *induced* subgraphs, so no spurious embedding can exist.
//! * **Measures.** The merged list is exactly the global occurrence list, so
//!   MNI's per-node image sets are the unions of the per-shard contributions,
//!   and MIS/MVC/MI see the same occurrence hypergraph the unsharded run
//!   builds — cut-straddling occurrences can only overlap in cut-boundary
//!   vertices (`PartitionedGraph::boundary`), and the overlap machinery probes
//!   exactly those shared vertices.  All four are integer-valued graph
//!   invariants of that hypergraph, so the values agree bit-for-bit — the
//!   contract `tests/shard_differential.rs` enforces at shard counts 1, 2, 3
//!   and 7.

use crate::extension::{dedupe_with_codes, extensions};
use crate::session::{MeasureSelection, MiningBudget, SessionConfig};
use crate::types::{BudgetKind, Completion, FrequentPattern, MiningResult, MiningStats};
use ffsm_core::{
    enumerate_with, CancelToken, EnumeratorBackend, FfsmError, MeasureConfig, MeasureKind,
    OccurrenceSet, SearchArena, SupportMeasure,
};
use ffsm_graph::canonical::CanonicalCode;
use ffsm_graph::isomorphism::IsoConfig;
use ffsm_graph::{patterns, Pattern, VertexId};
use ffsm_obs::{tls, Phase, PhaseTimes, SearchCounters};
use ffsm_shard::{PartitionedGraph, ShardStoreStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard-specific counters a [`ShardedSession::run_detailed`] reports next to
/// the ordinary [`MiningStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedRunStats {
    /// Kept occurrences whose image leaves the anchor's shard interior —
    /// the ones the halo exists for.
    pub cross_shard_occurrences: u64,
    /// Residency counters of the shard store at the end of the run.
    pub store: ShardStoreStats,
}

/// Builder-style mining session over a [`PartitionedGraph`] — the out-of-core
/// counterpart of [`MiningSession`](crate::MiningSession), sharing its
/// [`SessionConfig`] vocabulary and validation.
///
/// ```
/// use ffsm_graph::{generators, LabeledGraph};
/// use ffsm_shard::{PartitionSpec, PartitionedGraph};
/// use ffsm_miner::ShardedSession;
/// use std::sync::Arc;
///
/// let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
/// let graph = generators::replicated(&triangle, 5, false);
/// let parts = Arc::new(PartitionedGraph::build(&graph, PartitionSpec::vertex_range(3, 3)).unwrap());
/// let result = ShardedSession::over(&parts).min_support(5.0).max_edges(3).run().unwrap();
/// assert!(result.patterns.iter().any(|p| p.pattern.num_edges() == 3));
/// ```
pub struct ShardedSession {
    partitioned: Arc<PartitionedGraph>,
    config: SessionConfig,
}

impl ShardedSession {
    /// Start a session over a shared partition with default configuration
    /// (MNI, τ = 2, patterns up to 4 edges, sequential).
    pub fn over(partitioned: &Arc<PartitionedGraph>) -> Self {
        ShardedSession { partitioned: partitioned.clone(), config: SessionConfig::default() }
    }

    /// The partition this session mines.
    pub fn partitioned(&self) -> &Arc<PartitionedGraph> {
        &self.partitioned
    }

    /// The canonical configuration built so far.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Select the measure (see [`MiningSession::measure`](crate::MiningSession::measure)).
    pub fn measure(mut self, measure: impl Into<MeasureSelection>) -> Self {
        self.config.measure = measure.into();
        self
    }

    /// Set the support threshold τ (the floor threshold in top-k mode).
    pub fn min_support(mut self, tau: f64) -> Self {
        self.config.min_support = tau;
        self
    }

    /// Stop growing patterns beyond `edges` edges.  Must not exceed the
    /// partition's halo depth — checked at [`ShardedSession::run`] time.
    pub fn max_edges(mut self, edges: usize) -> Self {
        self.config.max_edges = edges;
        self
    }

    /// Use `count` worker threads for candidate evaluation (`1` = sequential,
    /// `0` = one per available core).  The thread count never changes the result.
    pub fn threads(mut self, count: usize) -> Self {
        self.config.threads = count;
        self
    }

    /// Select the occurrence-enumeration backend.  Per-shard indices are built
    /// lazily once per resident shard under `CandidateSpace` / `Auto`.
    pub fn enumerator(mut self, backend: EnumeratorBackend) -> Self {
        self.config.measure_config.iso_config.backend = backend;
        self
    }

    /// Mine the `k` highest-support patterns instead of all patterns above τ.
    pub fn top_k(mut self, k: usize) -> Self {
        self.config.top_k = Some(k);
        self
    }

    /// Set the safety caps (evaluations, reported patterns).
    pub fn budget(mut self, budget: MiningBudget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Override the measure configuration.
    pub fn measure_config(mut self, measure_config: MeasureConfig) -> Self {
        self.config.measure_config = measure_config;
        self
    }

    /// Attach a cancellation token (cooperative, polled inside enumeration).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.config.cancel = token;
        self
    }

    /// Bound the run's wall-clock time from the moment [`ShardedSession::run`]
    /// is called.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Enable fine-grained metrics sampling (never changes results).
    pub fn metrics(mut self, on: bool) -> Self {
        self.config.metrics = on;
        self
    }

    /// Validate the configuration and mine to completion.  Identical
    /// validation to [`MiningSession::run`](crate::MiningSession::run), plus:
    ///
    /// # Errors
    ///
    /// * [`FfsmError::Partition`] — `max_edges` exceeds the partition's halo
    ///   depth (with more than one shard), so per-shard enumeration could miss
    ///   embeddings that dangle past the halo.
    pub fn run(self) -> Result<MiningResult, FfsmError> {
        Ok(self.run_detailed()?.0)
    }

    /// [`ShardedSession::run`], also reporting the shard-specific counters.
    pub fn run_detailed(self) -> Result<(MiningResult, ShardedRunStats), FfsmError> {
        let ShardedSession { partitioned, config } = self;
        if !config.min_support.is_finite() || config.min_support < 0.0 {
            return Err(FfsmError::InvalidConfig(format!(
                "min_support must be finite and non-negative, got {}",
                config.min_support
            )));
        }
        if config.max_edges == 0 {
            return Err(FfsmError::InvalidConfig("max_edges must be at least 1".into()));
        }
        if config.top_k == Some(0) {
            return Err(FfsmError::InvalidConfig("top_k must be at least 1".into()));
        }
        if let MeasureSelection::Kind(MeasureKind::MniK(0)) = config.measure {
            return Err(FfsmError::InvalidConfig("MNI-k needs k >= 1".into()));
        }
        let spec = partitioned.spec();
        if spec.num_shards > 1 && config.max_edges > spec.halo_depth {
            return Err(FfsmError::Partition(format!(
                "patterns of up to {} edges need a halo of at least {} hops, but the \
                 partition was built with halo depth {} — rebuild it with a deeper halo",
                config.max_edges, config.max_edges, spec.halo_depth
            )));
        }
        let run_token = match config.deadline.map(|d| Instant::now() + d) {
            Some(at) => config.cancel.with_deadline(at),
            None => config.cancel.clone(),
        };
        let deadline_at = run_token.deadline();
        let mut measure_config = config.measure_config.clone();
        measure_config.iso_config.cancel = run_token;
        let measure: Arc<dyn SupportMeasure> = match config.measure {
            MeasureSelection::Kind(kind) => kind.measure(measure_config.clone()),
            MeasureSelection::Custom(measure) => measure,
        };
        if !measure.is_anti_monotone() {
            return Err(FfsmError::NotAntiMonotone(measure.name().to_string()));
        }
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.threads
        };
        let engine = ShardedEngine {
            partitioned,
            measure,
            min_support: config.min_support,
            iso_config: measure_config.iso_config,
            max_pattern_edges: config.max_edges,
            max_patterns: config.budget.max_patterns,
            max_evaluations: config.budget.max_evaluations,
            threads,
            top_k: config.top_k,
            cancel: config.cancel,
            deadline: deadline_at,
            metrics: config.metrics,
        };
        engine.run()
    }
}

/// One evaluated candidate: the merged global support plus shard bookkeeping.
#[derive(Debug, Clone, Default)]
struct ShardEval {
    support: f64,
    num_occurrences: usize,
    cross_shard: u64,
    error: Option<FfsmError>,
}

/// The validated sharded mining loop — a mirror of the unsharded
/// `EngineState::step` sequence with the per-candidate evaluation swapped out.
struct ShardedEngine {
    partitioned: Arc<PartitionedGraph>,
    measure: Arc<dyn SupportMeasure>,
    min_support: f64,
    iso_config: IsoConfig,
    max_pattern_edges: usize,
    max_patterns: usize,
    max_evaluations: usize,
    threads: usize,
    top_k: Option<usize>,
    cancel: CancelToken,
    deadline: Option<Instant>,
    metrics: bool,
}

impl ShardedEngine {
    fn interrupted(&self) -> Option<Completion> {
        if self.cancel.cancel_requested() {
            return Some(Completion::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(Completion::DeadlineExceeded);
        }
        None
    }

    /// Enumerate, remap, anchor-filter and merge one candidate across every
    /// shard, then measure the merged global occurrence set.
    fn evaluate_candidate(&self, pattern: &Pattern, arena: &mut SearchArena) -> ShardEval {
        let assignment: &[u32] = self.partitioned.assignment();
        let use_index = !matches!(self.iso_config.backend, EnumeratorBackend::Naive);
        let mut merged: Vec<Vec<VertexId>> = Vec::new();
        let mut complete = true;
        let mut cross_shard = 0u64;
        for s in 0..self.partitioned.num_shards() {
            let shard = match self.partitioned.shard(s) {
                Ok(shard) => shard,
                Err(e) => return ShardEval { error: Some(e), ..ShardEval::default() },
            };
            let graph = shard.graph();
            if graph.num_vertices() < pattern.num_vertices() {
                continue;
            }
            let result = if use_index {
                let index = shard.index();
                enumerate_with(pattern, graph, Some(&index), self.iso_config.clone(), arena)
            } else {
                enumerate_with(pattern, graph, None, self.iso_config.clone(), arena)
            };
            complete &= result.complete;
            let to_global = shard.to_global();
            let shard_id = s as u32;
            for local in result.embeddings {
                let global: Vec<VertexId> = local.iter().map(|&v| to_global[v as usize]).collect();
                let anchor = *global.iter().min().expect("patterns are non-empty");
                if assignment[anchor as usize] == shard_id {
                    if global.iter().any(|&v| assignment[v as usize] != shard_id) {
                        cross_shard += 1;
                    }
                    merged.push(global);
                }
            }
        }
        // Canonical global order: the measures are order-invariant (they are
        // graph invariants of the occurrence hypergraph), sorting just makes
        // the merged set independent of the shard iteration.
        merged.sort_unstable();
        let occ = OccurrenceSet::from_embeddings(pattern.clone(), merged, complete);
        ShardEval {
            support: self.measure.support(&occ),
            num_occurrences: occ.num_occurrences(),
            cross_shard,
            error: None,
        }
    }

    /// Evaluate every candidate in order on `threads` workers — the same
    /// round-robin partition / in-order merge as the unsharded engine, so the
    /// thread count never changes the result.
    fn evaluate_level(
        &self,
        candidates: &[(Pattern, CanonicalCode)],
        arenas: &mut [SearchArena],
    ) -> (Vec<ShardEval>, tls::ThreadTotals) {
        let workers = self.threads.min(candidates.len());
        if workers <= 1 {
            let (arena, _) = arenas.split_first_mut().expect("at least one arena");
            let before = tls::snapshot();
            let results =
                candidates.iter().map(|(p, _)| self.evaluate_candidate(p, arena)).collect();
            return (results, tls::snapshot().delta_since(&before));
        }
        let mut results = vec![ShardEval::default(); candidates.len()];
        let mut measure_totals = tls::ThreadTotals::default();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (w, arena) in arenas[..workers].iter_mut().enumerate() {
                handles.push(scope.spawn(move || {
                    let before = tls::snapshot();
                    let slice = candidates
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % workers == w)
                        .map(|(i, (p, _))| (i, self.evaluate_candidate(p, arena)))
                        .collect::<Vec<(usize, ShardEval)>>();
                    (slice, tls::snapshot().delta_since(&before))
                }));
            }
            for handle in handles {
                let (slice, delta) = handle.join().expect("sharded mining worker panicked");
                measure_totals.overlap_probes += delta.overlap_probes;
                measure_totals.overlap_build_nanos += delta.overlap_build_nanos;
                for (i, r) in slice {
                    results[i] = r;
                }
            }
        });
        (results, measure_totals)
    }

    fn run(self) -> Result<(MiningResult, ShardedRunStats), FfsmError> {
        let start = Instant::now();
        let mut engine_phase = PhaseTimes::new();
        let mut arenas: Vec<SearchArena> =
            (0..self.threads.max(1)).map(|_| SearchArena::new()).collect();
        if self.metrics {
            for arena in &mut arenas {
                arena.set_timing(true);
            }
        }
        let mut stats = MiningStats::default();
        let mut sharded = ShardedRunStats::default();
        let mut seen = std::collections::HashSet::new();
        let seeds: Vec<Pattern> = self
            .partitioned
            .seed_pairs()
            .iter()
            .map(|&(a, b)| patterns::single_edge(a, b))
            .collect();
        stats.candidates_generated += seeds.len();
        let mut level = dedupe_with_codes(seeds, &mut seen);
        let mut frequent: Vec<FrequentPattern> = Vec::new();
        let floor = self.min_support;
        let mut threshold = floor;
        let mut load_nanos_seen = self.partitioned.store_stats().load_nanos;

        let refresh = |stats: &mut MiningStats, arenas: &[SearchArena], phase: &PhaseTimes| {
            let mut search = SearchCounters::default();
            let mut timings = *phase;
            let mut peak = 0u64;
            for arena in arenas {
                search.merge(&arena.counters());
                timings.merge(&arena.phase_times());
                // Gauge semantics: the footprint of the *largest* worker arena,
                // never a sum — comparable across thread counts and between
                // sharded and unsharded runs.
                peak = peak.max(arena.footprint_bytes() as u64);
            }
            stats.counters.search = search;
            stats.counters.arena_peak_bytes = peak;
            stats.phase_timings = timings;
        };
        let finish = |mut stats: MiningStats,
                      arenas: &[SearchArena],
                      phase: &PhaseTimes,
                      completion: Completion,
                      frequent: Vec<FrequentPattern>,
                      threshold: f64,
                      mut sharded: ShardedRunStats,
                      partitioned: &PartitionedGraph|
         -> (MiningResult, ShardedRunStats) {
            refresh(&mut stats, arenas, phase);
            stats.elapsed = start.elapsed();
            stats.completion = completion;
            sharded.store = partitioned.store_stats();
            (
                MiningResult {
                    patterns: frequent,
                    final_threshold: threshold,
                    undecided: Vec::new(),
                    stats,
                },
                sharded,
            )
        };

        loop {
            if level.is_empty() {
                return Ok(finish(
                    stats,
                    &arenas,
                    &engine_phase,
                    Completion::Complete,
                    frequent,
                    threshold,
                    sharded,
                    &self.partitioned,
                ));
            }
            if let Some(interrupt) = self.interrupted() {
                return Ok(finish(
                    stats,
                    &arenas,
                    &engine_phase,
                    interrupt,
                    frequent,
                    threshold,
                    sharded,
                    &self.partitioned,
                ));
            }

            let mut budget_hit: Option<BudgetKind> = None;
            let remaining = self.max_evaluations.saturating_sub(stats.candidates_evaluated);
            if level.len() > remaining {
                level.truncate(remaining);
                budget_hit = Some(BudgetKind::Evaluations);
            }
            if level.is_empty() {
                return Ok(finish(
                    stats,
                    &arenas,
                    &engine_phase,
                    Completion::BudgetExhausted(BudgetKind::Evaluations),
                    frequent,
                    threshold,
                    sharded,
                    &self.partitioned,
                ));
            }

            let eval_start = Instant::now();
            let (outcomes, measure_totals) = self.evaluate_level(&level, &mut arenas);
            engine_phase.record(Phase::SupportEval, eval_start.elapsed());
            engine_phase.add_nanos(Phase::OverlapBuild, measure_totals.overlap_build_nanos);
            stats.counters.overlap_probes += measure_totals.overlap_probes;
            let load_nanos_now = self.partitioned.store_stats().load_nanos;
            engine_phase
                .add_nanos(Phase::ShardLoad, load_nanos_now.saturating_sub(load_nanos_seen));
            load_nanos_seen = load_nanos_now;
            // A shard-store failure is a hard error, not a truncation.
            if let Some(e) = outcomes.iter().find_map(|o| o.error.clone()) {
                return Err(e);
            }
            // An interruption during the evaluation may have truncated
            // enumerations arbitrarily; discard the whole level, exactly like
            // the unsharded engine.
            if let Some(interrupt) = self.interrupted() {
                return Ok(finish(
                    stats,
                    &arenas,
                    &engine_phase,
                    interrupt,
                    frequent,
                    threshold,
                    sharded,
                    &self.partitioned,
                ));
            }
            stats.candidates_evaluated += level.len();

            let mut survivors: Vec<Pattern> = Vec::new();
            for ((pattern, _code), outcome) in std::mem::take(&mut level).into_iter().zip(outcomes)
            {
                let ShardEval { support, num_occurrences, cross_shard, error: _ } = outcome;
                sharded.cross_shard_occurrences += cross_shard;
                match self.top_k {
                    None => {
                        if support >= threshold {
                            if frequent.len() >= self.max_patterns {
                                budget_hit.get_or_insert(BudgetKind::Patterns);
                                continue;
                            }
                            stats.counters.patterns_emitted += 1;
                            frequent.push(FrequentPattern {
                                pattern: pattern.clone(),
                                support,
                                num_occurrences,
                                support_interval: None,
                                certificate: None,
                            });
                            survivors.push(pattern);
                        } else {
                            stats.candidates_pruned += 1;
                        }
                    }
                    Some(k) => {
                        if support >= threshold {
                            stats.counters.patterns_emitted += 1;
                            threshold = crate::engine::insert_top_k(
                                &mut frequent,
                                FrequentPattern {
                                    pattern: pattern.clone(),
                                    support,
                                    num_occurrences,
                                    support_interval: None,
                                    certificate: None,
                                },
                                k,
                                floor,
                            );
                            survivors.push(pattern);
                        } else {
                            stats.candidates_pruned += 1;
                        }
                    }
                }
            }
            stats.levels_completed += 1;
            refresh(&mut stats, &arenas, &engine_phase);
            if let Some(kind) = budget_hit {
                return Ok(finish(
                    stats,
                    &arenas,
                    &engine_phase,
                    Completion::BudgetExhausted(kind),
                    frequent,
                    threshold,
                    sharded,
                    &self.partitioned,
                ));
            }

            let extension_start = Instant::now();
            let mut next: Vec<(Pattern, CanonicalCode)> = Vec::new();
            for pattern in &survivors {
                if pattern.num_edges() >= self.max_pattern_edges {
                    continue;
                }
                let candidates = extensions(pattern, self.partitioned.alphabet());
                stats.candidates_generated += candidates.len();
                next.extend(dedupe_with_codes(candidates, &mut seen));
            }
            engine_phase.record(Phase::Extension, extension_start.elapsed());
            level = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MiningSession, PreparedGraph};
    use ffsm_graph::generators;
    use ffsm_shard::PartitionSpec;

    fn fingerprints(result: &MiningResult) -> Vec<(String, u64, usize)> {
        let mut v: Vec<(String, u64, usize)> = result
            .patterns
            .iter()
            .map(|p| {
                (
                    format!("{:?}", ffsm_graph::canonical::canonical_code(&p.pattern)),
                    p.support.to_bits(),
                    p.num_occurrences,
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn sharded_matches_unsharded_on_a_community_graph() {
        let graph = generators::community_graph(3, 12, 0.35, 0.02, 4, 23);
        let unsharded = MiningSession::over(&PreparedGraph::new(graph.clone()))
            .min_support(3.0)
            .max_edges(2)
            .run()
            .unwrap();
        for k in [1usize, 2, 5] {
            let parts = Arc::new(
                PartitionedGraph::build(&graph, PartitionSpec::vertex_range(k, 2)).unwrap(),
            );
            let sharded = ShardedSession::over(&parts).min_support(3.0).max_edges(2).run().unwrap();
            assert_eq!(fingerprints(&sharded), fingerprints(&unsharded), "k = {k}");
            assert_eq!(sharded.final_threshold.to_bits(), unsharded.final_threshold.to_bits());
            assert_eq!(sharded.stats.candidates_evaluated, unsharded.stats.candidates_evaluated);
            assert_eq!(sharded.stats.completion, unsharded.stats.completion);
        }
    }

    #[test]
    fn thread_count_does_not_change_sharded_results() {
        let graph = generators::community_graph(2, 10, 0.4, 0.05, 3, 9);
        let parts =
            Arc::new(PartitionedGraph::build(&graph, PartitionSpec::vertex_range(3, 2)).unwrap());
        let run = |threads: usize| {
            ShardedSession::over(&parts)
                .min_support(3.0)
                .max_edges(2)
                .threads(threads)
                .run()
                .unwrap()
        };
        let base = run(1);
        for threads in [2, 4, 0] {
            assert_eq!(fingerprints(&run(threads)), fingerprints(&base), "threads = {threads}");
        }
    }

    #[test]
    fn halo_shallower_than_max_edges_is_a_typed_error() {
        let graph = generators::community_graph(2, 8, 0.4, 0.05, 3, 5);
        let parts =
            Arc::new(PartitionedGraph::build(&graph, PartitionSpec::vertex_range(2, 1)).unwrap());
        let err = ShardedSession::over(&parts).min_support(2.0).max_edges(3).run().unwrap_err();
        assert!(matches!(err, FfsmError::Partition(_)), "{err:?}");
        // A single-shard partition tolerates any max_edges.
        let one =
            Arc::new(PartitionedGraph::build(&graph, PartitionSpec::vertex_range(1, 0)).unwrap());
        assert!(ShardedSession::over(&one).min_support(2.0).max_edges(3).run().is_ok());
    }

    #[test]
    fn pre_cancelled_sharded_session_yields_empty_prefix() {
        let token = CancelToken::new();
        token.cancel();
        let graph = generators::community_graph(2, 8, 0.4, 0.05, 3, 7);
        let parts =
            Arc::new(PartitionedGraph::build(&graph, PartitionSpec::vertex_range(2, 2)).unwrap());
        let result = ShardedSession::over(&parts)
            .min_support(1.0)
            .max_edges(2)
            .cancel_token(token)
            .run()
            .unwrap();
        assert!(result.is_empty());
        assert_eq!(result.completion(), Completion::Cancelled);
    }

    #[test]
    fn spilled_partition_mines_identically_and_reports_loads() {
        let graph = generators::community_graph(3, 10, 0.35, 0.03, 3, 31);
        let resident =
            Arc::new(PartitionedGraph::build(&graph, PartitionSpec::vertex_range(4, 2)).unwrap());
        let warm = ShardedSession::over(&resident).min_support(3.0).max_edges(2).run().unwrap();

        let spilled =
            Arc::new(PartitionedGraph::build(&graph, PartitionSpec::vertex_range(4, 2)).unwrap());
        let dir = std::env::temp_dir().join(format!("ffsm-sharded-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        spilled.spill_to_disk(&dir, 1).unwrap();
        let (cold, details) =
            ShardedSession::over(&spilled).min_support(3.0).max_edges(2).run_detailed().unwrap();
        assert_eq!(fingerprints(&cold), fingerprints(&warm));
        assert!(details.store.loads > 0, "expected cold shard reloads");
        assert_eq!(details.store.resident_shards, 1);
        assert!(cold.stats.phase_timings.nanos(Phase::ShardLoad) > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
