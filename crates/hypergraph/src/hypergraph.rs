//! The [`Hypergraph`] data structure and its dual.

use serde::{Deserialize, Serialize};

/// Identifier of a hyperedge (dense, `0..num_edges`).
pub type EdgeId = usize;

/// Errors raised while building hypergraphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HypergraphError {
    /// An edge referenced a vertex outside `0..num_vertices`.
    UnknownVertex {
        /// The offending vertex.
        vertex: usize,
        /// Number of vertices in the hypergraph.
        num_vertices: usize,
    },
    /// Hyperedges must be non-empty (Definition 3.1.1).
    EmptyEdge,
}

impl std::fmt::Display for HypergraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HypergraphError::UnknownVertex { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range (hypergraph has {num_vertices} vertices)")
            }
            HypergraphError::EmptyEdge => write!(f, "hyperedges must be non-empty"),
        }
    }
}

impl std::error::Error for HypergraphError {}

/// A hypergraph `H = (V, E)` (Definition 3.1.1): vertices `0..num_vertices` and edges
/// that are non-empty vertex subsets.
///
/// Edges are stored sorted and de-duplicated but *repeated edges are allowed* —
/// occurrence hypergraphs genuinely contain multiple edges with the same vertex set
/// when the pattern has non-trivial automorphisms (Figure 2), distinguished by their
/// occurrence label.  The edge identifier plays the role of that label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypergraph {
    num_vertices: usize,
    edges: Vec<Vec<usize>>,
}

impl Hypergraph {
    /// Create a hypergraph with `num_vertices` isolated vertices and no edges.
    pub fn new(num_vertices: usize) -> Self {
        Hypergraph { num_vertices, edges: Vec::new() }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the hypergraph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Add an edge (a non-empty set of vertices); duplicates within the set are
    /// collapsed.  Returns the new edge's identifier.
    pub fn add_edge(&mut self, mut vertices: Vec<usize>) -> Result<EdgeId, HypergraphError> {
        if vertices.is_empty() {
            return Err(HypergraphError::EmptyEdge);
        }
        for &v in &vertices {
            if v >= self.num_vertices {
                return Err(HypergraphError::UnknownVertex {
                    vertex: v,
                    num_vertices: self.num_vertices,
                });
            }
        }
        vertices.sort_unstable();
        vertices.dedup();
        self.edges.push(vertices);
        Ok(self.edges.len() - 1)
    }

    /// The sorted vertex set of edge `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: EdgeId) -> &[usize] {
        &self.edges[e]
    }

    /// Iterator over `(edge id, vertex set)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &[usize])> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| (i, e.as_slice()))
    }

    /// Number of edges containing vertex `v`.
    pub fn vertex_degree(&self, v: usize) -> usize {
        self.edges.iter().filter(|e| e.binary_search(&v).is_ok()).count()
    }

    /// For every vertex, the list of edges containing it (the `X_j` sets of the dual,
    /// Definition 3.1.2).
    pub fn incidence(&self) -> Vec<Vec<EdgeId>> {
        let mut inc = vec![Vec::new(); self.num_vertices];
        for (i, e) in self.edges.iter().enumerate() {
            for &v in e {
                inc[v].push(i);
            }
        }
        inc
    }

    /// `Some(k)` if every edge has exactly `k` vertices (a *k-uniform* hypergraph);
    /// `None` for non-uniform or empty hypergraphs.  Occurrence/instance hypergraphs
    /// are always uniform because every edge is the image of the same pattern
    /// (Section 4.4).
    pub fn uniform_rank(&self) -> Option<usize> {
        let first = self.edges.first()?.len();
        self.edges.iter().all(|e| e.len() == first).then_some(first)
    }

    /// Size of the largest edge (0 when empty).
    pub fn max_edge_size(&self) -> usize {
        self.edges.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// `true` if no edge is a subset of another edge (a *simple* hypergraph,
    /// Definition 3.1.1).  Repeated identical edges count as subsets of each other.
    pub fn is_simple(&self) -> bool {
        for (i, a) in self.edges.iter().enumerate() {
            for (j, b) in self.edges.iter().enumerate() {
                if i != j && is_subset(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Indices of *minimal* edges: edges that do not strictly contain another edge,
    /// keeping only the first of any group of identical edges.  Vertex covers are
    /// unaffected by dropping the non-minimal edges, which is the standard reduction
    /// applied before solving MVC.
    pub fn minimal_edge_indices(&self) -> Vec<EdgeId> {
        let mut keep = Vec::new();
        'outer: for (i, a) in self.edges.iter().enumerate() {
            for (j, b) in self.edges.iter().enumerate() {
                if i == j {
                    continue;
                }
                let strict_subset = b.len() < a.len() && is_subset(b, a);
                let earlier_duplicate = j < i && b == a;
                if strict_subset || earlier_duplicate {
                    continue 'outer;
                }
            }
            keep.push(i);
        }
        keep
    }

    /// The sub-hypergraph containing only the given edges (vertex set unchanged).
    pub fn restrict_to_edges(&self, edges: &[EdgeId]) -> Hypergraph {
        Hypergraph {
            num_vertices: self.num_vertices,
            edges: edges.iter().map(|&e| self.edges[e].clone()).collect(),
        }
    }

    /// The dual hypergraph `H* = (E, X)` (Definition 3.1.2): its vertices are this
    /// hypergraph's edges and its edges are the sets `X_j = { e : v_j ∈ e }` for every
    /// vertex `v_j` that has at least one incident edge.
    pub fn dual(&self) -> Hypergraph {
        let mut dual = Hypergraph::new(self.num_edges());
        for x in self.incidence() {
            if !x.is_empty() {
                dual.add_edge(x).expect("dual edge is valid");
            }
        }
        dual
    }

    /// The *overlap graph* induced by this hypergraph when its edges are interpreted
    /// as occurrences/instances (Definition 2.2.5): one vertex per hyperedge, an edge
    /// whenever two hyperedges share a vertex.
    ///
    /// Built through the inverted incidence index: only hyperedge pairs that actually
    /// meet in some vertex's incidence list are emitted, so the cost is proportional
    /// to the candidate pairs instead of all `m²/2` pairs tested by the
    /// [`Hypergraph::overlap_adjacency`] oracle.  The two are proven equal by the
    /// tests here and by the `overlap_differential` property harness.
    pub fn overlap_graph(&self) -> crate::independent_set::SimpleGraph {
        self.overlap_graph_parallel(1)
    }

    /// [`Hypergraph::overlap_graph`] with the candidate rows partitioned over
    /// `threads` workers (`1` = sequential, `0` = one per available core).  The
    /// partition and merge order are fixed, so the result is identical to the
    /// sequential build.
    pub fn overlap_graph_parallel(&self, threads: usize) -> crate::independent_set::SimpleGraph {
        let m = self.num_edges();
        let incidence = self.incidence();
        let pairs = crate::parallel::emit_pairs_parallel(m, threads, |rows, out| {
            // stamp[j] == i marks hyperedge j as already paired with i this round.
            let mut stamp = vec![usize::MAX; m];
            for i in rows {
                for &v in &self.edges[i] {
                    for &j in &incidence[v] {
                        if j > i && stamp[j] != i {
                            stamp[j] = i;
                            out.push((i, j));
                        }
                    }
                }
            }
        });
        crate::independent_set::SimpleGraph::from_edge_list(m, &pairs)
    }

    /// All-pairs overlap adjacency (the naive oracle behind
    /// [`Hypergraph::overlap_graph`]): every hyperedge pair is tested for a shared
    /// vertex.  Quadratic in the number of hyperedges; kept as the reference
    /// implementation for the differential tests.
    pub fn overlap_adjacency(&self) -> Vec<Vec<usize>> {
        let m = self.num_edges();
        let mut adj = vec![Vec::new(); m];
        for i in 0..m {
            for j in (i + 1)..m {
                if !intersection_empty(&self.edges[i], &self.edges[j]) {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        adj
    }
}

/// `true` if sorted slice `a` is a subset of sorted slice `b`.
pub(crate) fn is_subset(a: &[usize], b: &[usize]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut bi = 0;
    for &x in a {
        while bi < b.len() && b[bi] < x {
            bi += 1;
        }
        if bi >= b.len() || b[bi] != x {
            return false;
        }
        bi += 1;
    }
    true
}

/// `true` if two sorted slices have an empty intersection.
pub(crate) fn intersection_empty(a: &[usize], b: &[usize]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        let mut h = Hypergraph::new(6);
        h.add_edge(vec![0, 1, 2]).unwrap();
        h.add_edge(vec![2, 3]).unwrap();
        h.add_edge(vec![3, 4, 5]).unwrap();
        h
    }

    #[test]
    fn build_and_query() {
        let h = sample();
        assert_eq!(h.num_vertices(), 6);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.edge(1), &[2, 3]);
        assert_eq!(h.vertex_degree(2), 2);
        assert_eq!(h.vertex_degree(5), 1);
        assert_eq!(h.max_edge_size(), 3);
        assert_eq!(h.uniform_rank(), None);
        assert!(!h.is_empty());
    }

    #[test]
    fn edge_validation() {
        let mut h = Hypergraph::new(3);
        assert_eq!(h.add_edge(vec![]), Err(HypergraphError::EmptyEdge));
        assert!(matches!(
            h.add_edge(vec![0, 7]),
            Err(HypergraphError::UnknownVertex { vertex: 7, .. })
        ));
        // duplicates inside an edge collapse
        let e = h.add_edge(vec![1, 1, 0]).unwrap();
        assert_eq!(h.edge(e), &[0, 1]);
    }

    #[test]
    fn uniformity() {
        let mut h = Hypergraph::new(5);
        h.add_edge(vec![0, 1]).unwrap();
        h.add_edge(vec![2, 3]).unwrap();
        assert_eq!(h.uniform_rank(), Some(2));
        h.add_edge(vec![0, 2, 4]).unwrap();
        assert_eq!(h.uniform_rank(), None);
        assert_eq!(Hypergraph::new(3).uniform_rank(), None);
    }

    #[test]
    fn simplicity_and_minimal_edges() {
        let mut h = Hypergraph::new(4);
        h.add_edge(vec![0, 1, 2]).unwrap();
        h.add_edge(vec![0, 1]).unwrap();
        h.add_edge(vec![2, 3]).unwrap();
        assert!(!h.is_simple());
        let minimal = h.minimal_edge_indices();
        assert_eq!(minimal, vec![1, 2]);
        let reduced = h.restrict_to_edges(&minimal);
        assert_eq!(reduced.num_edges(), 2);
        assert!(reduced.is_simple());
    }

    #[test]
    fn identical_edges_keep_one_minimal_representative() {
        let mut h = Hypergraph::new(3);
        h.add_edge(vec![0, 1]).unwrap();
        h.add_edge(vec![0, 1]).unwrap();
        h.add_edge(vec![1, 2]).unwrap();
        let minimal = h.minimal_edge_indices();
        assert_eq!(minimal, vec![0, 2]);
    }

    #[test]
    fn dual_construction() {
        // Figure 1-style: dual vertices are the edges; its edges are the X_j sets.
        let h = sample();
        let d = h.dual();
        assert_eq!(d.num_vertices(), 3);
        // X_2 = {e0, e1}, X_3 = {e1, e2}; singleton X sets for the other vertices.
        let mut edge_sets: Vec<Vec<usize>> = d.edges().map(|(_, e)| e.to_vec()).collect();
        edge_sets.sort();
        assert!(edge_sets.contains(&vec![0, 1]));
        assert!(edge_sets.contains(&vec![1, 2]));
        assert_eq!(d.num_edges(), 6);
    }

    #[test]
    fn dual_of_dual_relates_back() {
        let h = sample();
        let dd = h.dual().dual();
        // For hypergraphs without isolated vertices or repeated incidence structure,
        // the double dual has one vertex per original edge-slot and the same number of
        // edges as the original has (non-isolated) vertices... here we simply check
        // the counts are consistent.
        assert_eq!(dd.num_vertices(), h.dual().num_edges());
        assert_eq!(h.dual().num_vertices(), h.num_edges());
    }

    #[test]
    fn overlap_adjacency_matches_shared_vertices() {
        let h = sample();
        let adj = h.overlap_adjacency();
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);
    }

    #[test]
    fn indexed_overlap_graph_equals_all_pairs_oracle() {
        let mut rng = 0x5eedu64;
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        for trial in 0..12 {
            let n = 4 + trial;
            let mut h = Hypergraph::new(n);
            for _ in 0..(2 * n) {
                let len = 2 + next() % 3;
                let mut edge: Vec<usize> = (0..len).map(|_| next() % n).collect();
                edge.sort_unstable();
                edge.dedup();
                if edge.len() >= 2 {
                    h.add_edge(edge).unwrap();
                }
            }
            let oracle = crate::independent_set::SimpleGraph::from_adjacency(h.overlap_adjacency());
            for (label, built) in [
                ("indexed", h.overlap_graph()),
                ("parallel", h.overlap_graph_parallel(3)),
                ("all-cores", h.overlap_graph_parallel(0)),
            ] {
                assert_eq!(built.num_vertices(), oracle.num_vertices());
                assert_eq!(built.num_edges(), oracle.num_edges(), "{label}, trial {trial}");
                for v in 0..built.num_vertices() {
                    assert_eq!(
                        built.neighbors(v),
                        oracle.neighbors(v),
                        "{label}, trial {trial} row {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn subset_and_intersection_helpers() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(intersection_empty(&[0, 2], &[1, 3]));
        assert!(!intersection_empty(&[0, 2], &[2, 3]));
    }
}
