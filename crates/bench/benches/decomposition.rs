//! E10 — additive (per-component) evaluation of the NP-hard measures.
//!
//! Occurrence hypergraphs of patterns in large sparse graphs split into many
//! connected components.  These benches compare solving the whole hypergraph at once
//! against solving per component (sequentially and with threads), for exact MVC, MIES
//! and the νMVC LP relaxation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ffsm_bench::workloads;
use ffsm_core::decompose::{
    mies_by_components, mvc_by_components, relaxed_mvc_by_components, DecompositionConfig,
};
use ffsm_core::measures::{MeasureConfig, MvcAlgorithm, SupportMeasures};
use ffsm_core::HypergraphBasis;
use ffsm_graph::{generators, patterns, Label};
use ffsm_hypergraph::Hypergraph;
use std::hint::black_box;
use std::time::Duration;

fn component_workload(copies: usize) -> (Hypergraph, SupportMeasures) {
    let block = generators::star_overlap(3, 4);
    let graph = generators::replicated(&block, copies, false);
    let pattern = patterns::single_edge(Label(0), Label(1));
    let occ = workloads::enumerate(&pattern, &graph, 1_000_000);
    let hypergraph = occ.hypergraph(HypergraphBasis::Occurrence);
    let calc = SupportMeasures::new(occ, MeasureConfig::default());
    (hypergraph, calc)
}

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for &copies in &[8usize, 32, 96] {
        let (hypergraph, calc) = component_workload(copies);
        let sequential = DecompositionConfig { parallel: false, ..Default::default() };
        let parallel = DecompositionConfig { parallel: true, ..Default::default() };

        group.bench_with_input(BenchmarkId::new("mvc_direct", copies), &copies, |b, _| {
            b.iter(|| black_box(calc.mvc_with(MvcAlgorithm::Exact)))
        });
        group.bench_with_input(BenchmarkId::new("mvc_components_seq", copies), &copies, |b, _| {
            b.iter(|| black_box(mvc_by_components(&hypergraph, MvcAlgorithm::Exact, sequential)))
        });
        group.bench_with_input(BenchmarkId::new("mvc_components_par", copies), &copies, |b, _| {
            b.iter(|| black_box(mvc_by_components(&hypergraph, MvcAlgorithm::Exact, parallel)))
        });
        group.bench_with_input(BenchmarkId::new("mies_components_seq", copies), &copies, |b, _| {
            b.iter(|| black_box(mies_by_components(&hypergraph, sequential)))
        });
        group.bench_with_input(BenchmarkId::new("relaxed_mvc_direct", copies), &copies, |b, _| {
            b.iter(|| black_box(calc.relaxed_mvc()))
        });
        group.bench_with_input(
            BenchmarkId::new("relaxed_mvc_components_seq", copies),
            &copies,
            |b, _| b.iter(|| black_box(relaxed_mvc_by_components(&hypergraph, sequential))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decomposition);
criterion_main!(benches);
