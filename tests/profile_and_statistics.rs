//! Integration checks for the profiling / characterisation layer: measure profiles
//! must be invariant under vertex shuffling and label-preserving transforms, and the
//! graph / hypergraph statistics must describe the workloads consistently with what
//! the measures see.

use ffsm::core::measures::MeasureConfig;
use ffsm::core::{HypergraphBasis, MeasureKind, MeasureProfile, OccurrenceSet};
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::graph::statistics::DegreeSummary;
use ffsm::graph::{datasets, figures, generators, patterns, transform, GraphStatistics, Label};
use ffsm::hypergraph::HypergraphStatistics;
use proptest::prelude::*;

#[test]
fn profiles_are_invariant_under_vertex_shuffling() {
    let config = MeasureConfig::default();
    for fig in figures::all_figures() {
        let original = MeasureProfile::compute(&fig.pattern, &fig.graph, &config);
        let shuffled_graph = transform::shuffle_vertices(&fig.graph, 1234);
        let shuffled = MeasureProfile::compute(&fig.pattern, &shuffled_graph, &config);
        for entry in &original.entries {
            let other = shuffled.value_of(entry.kind).expect("same measures profiled");
            assert!(
                (entry.value - other).abs() < 1e-6,
                "{} changed under shuffling on {}: {} vs {}",
                entry.kind.name(),
                fig.name,
                entry.value,
                other
            );
        }
    }
}

#[test]
fn forgetting_labels_never_decreases_supports() {
    // Erasing labels can only create more occurrences, so every measure value is at
    // least its labelled counterpart.
    let graph = generators::community_graph(3, 10, 0.3, 0.03, 4, 8);
    let pattern = patterns::single_edge(Label(0), Label(1));
    let config = MeasureConfig::default();
    let labelled = MeasureProfile::compute(&pattern, &graph, &config);
    let unlabelled_graph = transform::forget_labels(&graph);
    let unlabelled_pattern = patterns::single_edge(Label(0), Label(0));
    let unlabelled = MeasureProfile::compute(&unlabelled_pattern, &unlabelled_graph, &config);
    // MI is excluded: erasing labels also enlarges the pattern's automorphism group,
    // which can add coarse-grained subsets and legitimately lower the minimum.
    for kind in [MeasureKind::Mni, MeasureKind::Mis, MeasureKind::Mvc] {
        let a = labelled.value_of(kind).unwrap();
        let b = unlabelled.value_of(kind).unwrap();
        assert!(b >= a - 1e-9, "{}: unlabelled {} < labelled {}", kind.name(), b, a);
    }
}

#[test]
fn graph_statistics_describe_the_dataset_suite() {
    for dataset in datasets::small_suite(3) {
        let stats = GraphStatistics::compute(&dataset.graph);
        assert_eq!(stats.num_vertices, dataset.graph.num_vertices());
        assert_eq!(stats.num_edges, dataset.graph.num_edges());
        assert!(stats.num_labels >= 1);
        assert!(stats.largest_component <= stats.num_vertices);
        assert!(stats.dominant_label_fraction > 0.0 && stats.dominant_label_fraction <= 1.0);
        let degrees = DegreeSummary::compute(&dataset.graph);
        assert_eq!(degrees.max, stats.max_degree);
        assert!(degrees.mean <= stats.max_degree as f64 + 1e-9);
        // The one-line summary mentions the vertex count.
        assert!(stats.one_line().contains(&format!("n={}", stats.num_vertices)));
    }
}

#[test]
fn hypergraph_statistics_match_measure_inputs() {
    let fig = figures::figure2();
    let occ = OccurrenceSet::enumerate(&fig.pattern, &fig.graph, IsoConfig::default());
    let oh = occ.hypergraph(HypergraphBasis::Occurrence);
    let ih = occ.hypergraph(HypergraphBasis::Instance);
    let os = HypergraphStatistics::compute(&oh);
    let is = HypergraphStatistics::compute(&ih);
    // Figure 2: six automorphic occurrences of one triangle instance.
    assert_eq!(os.num_edges, 6);
    assert_eq!(os.num_distinct_edges, 1);
    assert!((os.edge_multiplicity() - 6.0).abs() < 1e-9);
    assert_eq!(is.num_edges, 1);
    assert_eq!(os.uniform_rank, Some(3));
    assert_eq!(os.num_components, 1);
    assert!(os.overlap_density() > 0.99);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// WL fingerprints and measure profiles agree on isomorphism invariance: a
    /// shuffled copy has the same fingerprint and the same MNI/MI values.
    #[test]
    fn shuffle_invariance_on_random_graphs(n in 6usize..20, m in 5usize..30, seed in 0u64..300) {
        let graph = generators::gnm_random(n, m, 2, seed);
        let shuffled = transform::shuffle_vertices(&graph, seed + 7);
        prop_assert_eq!(
            ffsm::graph::refinement::wl_fingerprint(&graph),
            ffsm::graph::refinement::wl_fingerprint(&shuffled)
        );
        let pattern = patterns::single_edge(Label(0), Label(1));
        let config = MeasureConfig::default();
        let a = MeasureProfile::compute(&pattern, &graph, &config);
        let b = MeasureProfile::compute(&pattern, &shuffled, &config);
        prop_assert_eq!(a.value_of(MeasureKind::Mni), b.value_of(MeasureKind::Mni));
        prop_assert_eq!(a.value_of(MeasureKind::Mi), b.value_of(MeasureKind::Mi));
        prop_assert_eq!(a.value_of(MeasureKind::Mvc), b.value_of(MeasureKind::Mvc));
    }
}
