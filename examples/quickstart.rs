//! Quickstart: build a small labeled graph, query a pattern, and compute every
//! support measure of the paper.
//!
//! Run with: `cargo run --example quickstart`

use ffsm::core::measures::{MeasureConfig, SupportMeasures};
use ffsm::core::occurrences::OccurrenceSet;
use ffsm::core::verify_bounding_chain;
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::graph::{patterns, Label, LabeledGraph};

fn main() {
    // A small "collaboration" graph: label 0 = person, label 1 = project.
    // People 0-3, projects 4-6; edges mean "works on".
    let graph = LabeledGraph::from_edges(
        &[0, 0, 0, 0, 1, 1, 1],
        &[(0, 4), (1, 4), (2, 4), (1, 5), (2, 5), (3, 5), (2, 6), (3, 6)],
    );
    println!(
        "data graph: {} vertices, {} edges, labels {:?}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.distinct_labels()
    );

    // Query pattern: two people sharing a project (a "wedge" person-project-person).
    let pattern = patterns::path(&[Label(0), Label(1), Label(0)]);
    println!("pattern: person - project - person ({} nodes)", pattern.num_vertices());

    // Enumerate occurrences and build the measure calculator.
    let occurrences = OccurrenceSet::enumerate(&pattern, &graph, IsoConfig::default());
    println!(
        "occurrences: {}, distinct instances: {}",
        occurrences.num_occurrences(),
        occurrences.num_instances()
    );

    let measures = SupportMeasures::new(occurrences, MeasureConfig::default());
    println!("MNI  (minimum image)        = {}", measures.mni());
    println!("MI   (minimum instance)     = {}", measures.mi());
    println!("MVC  (minimum vertex cover) = {}", measures.mvc().value);
    println!("MIS  (overlap-graph MIS)    = {}", measures.mis().value);
    println!("MIES (independent edges)    = {}", measures.mies().value);
    println!("nuMVC (LP relaxation)       = {:.3}", measures.relaxed_mvc());

    // The whole bounding chain, checked in one call.
    let report = verify_bounding_chain(&pattern, &graph, &MeasureConfig::default());
    println!("\nbounding chain: {}", report.summary());
    assert!(report.holds(), "the bounding chain must hold: {:?}", report.violations());
    println!("bounding chain holds: {}", report.holds());
}
