//! `ffsm` — command-line front end for the support-measure framework.
//!
//! Subcommands:
//!
//! * `stats <graph.lg>` — structural statistics of a labeled graph file;
//! * `measure <graph.lg> --pattern <pattern.lg> [--measure NAME]` — compute one or all
//!   support measures of a pattern in a data graph;
//! * `mine <graph.lg> --tau <t> [--measure NAME] [--max-edges N] [--parallel]` — run
//!   the frequent-subgraph miner and print the frequent patterns;
//! * `topk <graph.lg> --k <K> [--measure NAME] [--max-edges N]` — top-k mining;
//! * `generate <kind> <out.lg> [--seed S]` — write one of the synthetic datasets to a
//!   `.lg` file (kinds: chemical, social, citation, protein, grid, star-overlap).
//!
//! Graphs use the plain-text `.lg` format of `ffsm_graph::io` (`v <id> <label>` /
//! `e <u> <v>` lines).  Exit code 0 on success, 1 on a usage error, 2 on an I/O or
//! parse error.

use ffsm::core::measures::{MeasureConfig, MeasureKind};
use ffsm::core::MeasureProfile;
use ffsm::graph::{datasets, generators, io, GraphStatistics, LabeledGraph, Pattern};
use ffsm::miner::postprocess::maximal_patterns;
use ffsm::miner::{mine_parallel, mine_top_k, Miner, MinerConfig, ParallelMinerConfig, TopKConfig};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(1);
    };
    let result = match command.as_str() {
        "stats" => cmd_stats(&args[1..]),
        "measure" => cmd_measure(&args[1..]),
        "mine" => cmd_mine(&args[1..]),
        "topk" => cmd_topk(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(if message.contains("usage") { 1 } else { 2 })
        }
    }
}

const USAGE: &str = "usage: ffsm <command> [options]

commands:
  stats    <graph.lg>                              structural statistics of a graph
  measure  <graph.lg> --pattern <p.lg> [--measure NAME]
                                                   support measures of a pattern
  mine     <graph.lg> --tau <t> [--measure NAME] [--max-edges N] [--parallel]
                                                   frequent-subgraph mining
  topk     <graph.lg> --k <K> [--measure NAME] [--max-edges N]
                                                   top-k pattern mining
  generate <kind> <out.lg> [--seed S]              write a synthetic dataset
                                                   (chemical|social|citation|protein|grid|star-overlap)

measure names: MNI, MI, MVC, MIS, MIES, nuMVC, nuMIES, MCP (default: all)";

fn load_graph(path: &str) -> Result<LabeledGraph, String> {
    io::load_lg(Path::new(path)).map_err(|e| format!("cannot load {path}: {e}"))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn parse_measure(name: &str) -> Result<MeasureKind, String> {
    match name.to_ascii_uppercase().as_str() {
        "MNI" => Ok(MeasureKind::Mni),
        "MI" => Ok(MeasureKind::Mi),
        "MVC" => Ok(MeasureKind::Mvc),
        "MIS" => Ok(MeasureKind::Mis),
        "MIES" => Ok(MeasureKind::Mies),
        "NUMVC" => Ok(MeasureKind::RelaxedMvc),
        "NUMIES" => Ok(MeasureKind::RelaxedMies),
        "MCP" => Ok(MeasureKind::Mcp),
        other => Err(format!("unknown measure {other:?} (expected MNI, MI, MVC, MIS, MIES, nuMVC, nuMIES or MCP)")),
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let Some(path) = args.first() else {
        return Err("usage: ffsm stats <graph.lg>".into());
    };
    let graph = load_graph(path)?;
    println!("graph: {path}");
    println!("{}", GraphStatistics::compute(&graph));
    Ok(())
}

fn cmd_measure(args: &[String]) -> Result<(), String> {
    let Some(graph_path) = args.first() else {
        return Err("usage: ffsm measure <graph.lg> --pattern <pattern.lg> [--measure NAME]".into());
    };
    let pattern_path = flag_value(args, "--pattern")
        .ok_or_else(|| "usage: --pattern <pattern.lg> is required".to_string())?;
    let graph = load_graph(graph_path)?;
    let pattern: Pattern = load_graph(pattern_path)?;
    let config = MeasureConfig::default();
    let profile = MeasureProfile::compute_labeled(
        format!("{pattern_path} in {graph_path}"),
        &pattern,
        &graph,
        &config,
    );
    match flag_value(args, "--measure") {
        Some(name) => {
            let kind = parse_measure(name)?;
            let value = profile
                .value_of(kind)
                .ok_or_else(|| format!("measure {name} was not profiled"))?;
            println!("{} = {}", kind.name(), value);
        }
        None => {
            print!("{profile}");
            println!(
                "bounding chain holds: {}",
                if profile.chain_holds() { "yes" } else { "NO" }
            );
        }
    }
    Ok(())
}

fn mining_params(args: &[String]) -> Result<(MeasureKind, usize), String> {
    let measure = match flag_value(args, "--measure") {
        Some(name) => parse_measure(name)?,
        None => MeasureKind::Mni,
    };
    let max_edges = match flag_value(args, "--max-edges") {
        Some(v) => v.parse::<usize>().map_err(|_| format!("invalid --max-edges {v:?}"))?,
        None => 3,
    };
    Ok((measure, max_edges))
}

fn print_frequent(patterns: &[ffsm::miner::FrequentPattern]) {
    println!("{:<6} {:>8} {:>6} {:>6} {:>12}", "rank", "support", "nodes", "edges", "occurrences");
    for (rank, p) in patterns.iter().enumerate() {
        println!(
            "{:<6} {:>8.1} {:>6} {:>6} {:>12}",
            rank + 1,
            p.support,
            p.pattern.num_vertices(),
            p.pattern.num_edges(),
            p.num_occurrences
        );
    }
}

fn cmd_mine(args: &[String]) -> Result<(), String> {
    let Some(graph_path) = args.first() else {
        return Err("usage: ffsm mine <graph.lg> --tau <t> [--measure NAME] [--max-edges N] [--parallel]".into());
    };
    let tau: f64 = flag_value(args, "--tau")
        .ok_or_else(|| "usage: --tau <threshold> is required".to_string())?
        .parse()
        .map_err(|_| "invalid --tau value".to_string())?;
    let (measure, max_edges) = mining_params(args)?;
    let graph = load_graph(graph_path)?;
    let result = if args.iter().any(|a| a == "--parallel") {
        mine_parallel(
            &graph,
            &ParallelMinerConfig {
                min_support: tau,
                measure,
                max_pattern_edges: max_edges,
                ..Default::default()
            },
        )
    } else {
        Miner::new(
            &graph,
            MinerConfig { min_support: tau, measure, max_pattern_edges: max_edges, ..Default::default() },
        )
        .mine()
    };
    println!(
        "{} frequent patterns under {} at tau = {tau} ({} maximal), {} candidates evaluated in {:?}",
        result.len(),
        measure.name(),
        maximal_patterns(&result).len(),
        result.stats.candidates_evaluated,
        result.stats.elapsed
    );
    print_frequent(&result.patterns);
    Ok(())
}

fn cmd_topk(args: &[String]) -> Result<(), String> {
    let Some(graph_path) = args.first() else {
        return Err("usage: ffsm topk <graph.lg> --k <K> [--measure NAME] [--max-edges N]".into());
    };
    let k: usize = flag_value(args, "--k")
        .ok_or_else(|| "usage: --k <count> is required".to_string())?
        .parse()
        .map_err(|_| "invalid --k value".to_string())?;
    let (measure, max_edges) = mining_params(args)?;
    let graph = load_graph(graph_path)?;
    let result = mine_top_k(
        &graph,
        &TopKConfig { k, measure, max_pattern_edges: max_edges, ..Default::default() },
    );
    println!(
        "top-{k} patterns under {} (final threshold {:.1}, {} candidates evaluated)",
        measure.name(),
        result.final_threshold,
        result.stats.candidates_evaluated
    );
    print_frequent(&result.patterns);
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (Some(kind), Some(out)) = (args.first(), args.get(1)) else {
        return Err("usage: ffsm generate <kind> <out.lg> [--seed S]".into());
    };
    let seed: u64 = match flag_value(args, "--seed") {
        Some(v) => v.parse().map_err(|_| "invalid --seed value".to_string())?,
        None => 42,
    };
    let graph = match kind.as_str() {
        "chemical" => datasets::chemical_like(80, seed).graph,
        "social" => datasets::social_like(400, seed).graph,
        "citation" => datasets::citation_like(400, seed).graph,
        "protein" => datasets::protein_like(10, 8, seed).graph,
        "grid" => generators::grid(20, 20, 4),
        "star-overlap" => generators::star_overlap(8, 32),
        other => {
            return Err(format!(
                "unknown dataset kind {other:?} (expected chemical, social, citation, protein, grid or star-overlap)"
            ))
        }
    };
    io::save_lg(&graph, Path::new(out)).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} ({} vertices, {} edges, {} labels)",
        out,
        graph.num_vertices(),
        graph.num_edges(),
        graph.distinct_labels().len()
    );
    Ok(())
}
