//! Minimum vertex covers of hypergraphs.
//!
//! The MVC support measure (Definition 3.3.2) is the size of a minimum vertex cover
//! of the occurrence/instance hypergraph.  Computing it is NP-hard (it contains the
//! graph vertex-cover problem), so three algorithms are provided:
//!
//! * [`exact_vertex_cover`] — branch-and-bound, exact for the moderate instance sizes
//!   produced by the experiments; reports whether optimality was proven.
//! * [`greedy_matching_cover`] — the classic *k*-approximation for *k*-uniform
//!   hypergraphs (take all vertices of a maximal set of pairwise-disjoint edges),
//!   mirroring the k-competitive algorithm the paper cites (Halperin [7]).
//! * [`greedy_degree_cover`] — pick the highest-degree vertex repeatedly
//!   (H_d-approximation); often much tighter in practice.

use crate::hypergraph::intersection_empty;
use crate::{ExactResult, Hypergraph, SearchBudget};

/// A lower bound on the cover size: the size of a greedily built set of pairwise
/// disjoint edges (any cover needs one distinct vertex per disjoint edge).
fn disjoint_edge_lower_bound(h: &Hypergraph, covered: &[bool]) -> usize {
    let mut chosen: Vec<&[usize]> = Vec::new();
    for (e, verts) in h.edges() {
        if covered[e] {
            continue;
        }
        if chosen.iter().all(|c| intersection_empty(c, verts)) {
            chosen.push(verts);
        }
    }
    chosen.len()
}

struct CoverSearch<'a> {
    h: &'a Hypergraph,
    incidence: Vec<Vec<usize>>,
    best: Vec<usize>,
    best_size: usize,
    nodes: usize,
    budget: usize,
    optimal: bool,
}

impl<'a> CoverSearch<'a> {
    fn search(&mut self, chosen: &mut Vec<usize>, covered: &mut Vec<bool>, num_covered: usize) {
        self.nodes += 1;
        if self.nodes > self.budget {
            self.optimal = false;
            return;
        }
        if chosen.len() >= self.best_size {
            return;
        }
        if num_covered == self.h.num_edges() {
            self.best_size = chosen.len();
            self.best = chosen.clone();
            return;
        }
        // Lower bound pruning.
        let lb = disjoint_edge_lower_bound(self.h, covered);
        if chosen.len() + lb >= self.best_size {
            return;
        }
        // Pick the uncovered edge with the fewest vertices (strongest branching).
        let (branch_edge, _) = self
            .h
            .edges()
            .filter(|(e, _)| !covered[*e])
            .min_by_key(|(_, verts)| verts.len())
            .expect("some edge uncovered");
        let branch_vertices: Vec<usize> = self.h.edge(branch_edge).to_vec();
        for v in branch_vertices {
            // Choose v: cover all its incident edges.
            let newly: Vec<usize> =
                self.incidence[v].iter().copied().filter(|&e| !covered[e]).collect();
            for &e in &newly {
                covered[e] = true;
            }
            chosen.push(v);
            self.search(chosen, covered, num_covered + newly.len());
            chosen.pop();
            for &e in &newly {
                covered[e] = false;
            }
            if !self.optimal && self.nodes > self.budget {
                return;
            }
        }
    }
}

/// Exact minimum vertex cover via branch and bound.
///
/// The search first drops non-minimal edges (covering a subset covers every superset)
/// and seeds the incumbent with the greedy degree cover, so the bound is tight from
/// the start.  If the node `budget` is exhausted the best cover found so far is
/// returned with `optimal = false`.
pub fn exact_vertex_cover(h: &Hypergraph, budget: SearchBudget) -> ExactResult {
    if h.is_empty() {
        return ExactResult { value: 0, witness: Vec::new(), optimal: true };
    }
    let reduced = h.restrict_to_edges(&h.minimal_edge_indices());
    let seed = greedy_degree_cover(&reduced);
    let mut search = CoverSearch {
        h: &reduced,
        incidence: reduced.incidence(),
        best_size: seed.len(),
        best: seed,
        nodes: 0,
        budget: budget.0,
        optimal: true,
    };
    let mut covered = vec![false; reduced.num_edges()];
    search.search(&mut Vec::new(), &mut covered, 0);
    ExactResult { value: search.best_size, witness: search.best, optimal: search.optimal }
}

/// Greedy maximal-matching cover: repeatedly take an uncovered edge and add *all* its
/// vertices.  For a k-uniform hypergraph this is a k-approximation of the minimum
/// vertex cover (and the produced set of edges is a maximal matching, giving a lower
/// bound as well).  Returns the cover.
pub fn greedy_matching_cover(h: &Hypergraph) -> Vec<usize> {
    let mut cover: Vec<usize> = Vec::new();
    let mut in_cover = vec![false; h.num_vertices()];
    for (_, verts) in h.edges() {
        if verts.iter().any(|&v| in_cover[v]) {
            continue;
        }
        for &v in verts {
            if !in_cover[v] {
                in_cover[v] = true;
                cover.push(v);
            }
        }
    }
    cover.sort_unstable();
    cover
}

/// Greedy highest-degree cover: repeatedly add the vertex contained in the most
/// still-uncovered edges.
pub fn greedy_degree_cover(h: &Hypergraph) -> Vec<usize> {
    let incidence = h.incidence();
    let mut covered = vec![false; h.num_edges()];
    let mut remaining = h.num_edges();
    let mut cover = Vec::new();
    while remaining > 0 {
        let (best_v, _) = incidence
            .iter()
            .enumerate()
            .map(|(v, inc)| (v, inc.iter().filter(|&&e| !covered[e]).count()))
            .max_by_key(|&(_, cnt)| cnt)
            .expect("non-empty hypergraph");
        let newly: Vec<usize> =
            incidence[best_v].iter().copied().filter(|&e| !covered[e]).collect();
        debug_assert!(!newly.is_empty());
        for e in newly {
            covered[e] = true;
            remaining -= 1;
        }
        cover.push(best_v);
    }
    cover.sort_unstable();
    cover
}

/// `true` if `cover` intersects every edge of `h`.
pub fn is_vertex_cover(h: &Hypergraph, cover: &[usize]) -> bool {
    let in_cover: std::collections::HashSet<usize> = cover.iter().copied().collect();
    h.edges().all(|(_, verts)| verts.iter().any(|v| in_cover.contains(v)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure6_hypergraph() -> Hypergraph {
        // Occurrence hypergraph of Figure 6: edges {1,5},{1,6},{1,7},{1,8},{2,8},{3,8},{4,8}
        // (paper numbering); vertices 0..8 here with vertex 0 unused.
        let mut h = Hypergraph::new(9);
        for e in [[1, 5], [1, 6], [1, 7], [1, 8], [2, 8], [3, 8], [4, 8]] {
            h.add_edge(e.to_vec()).unwrap();
        }
        h
    }

    #[test]
    fn figure6_cover_is_two() {
        let h = figure6_hypergraph();
        let res = exact_vertex_cover(&h, SearchBudget::default());
        assert!(res.optimal);
        assert_eq!(res.value, 2);
        assert!(is_vertex_cover(&h, &res.witness));
        assert_eq!(res.witness, vec![1, 8]);
    }

    #[test]
    fn greedy_covers_are_valid_and_bounded() {
        let h = figure6_hypergraph();
        let matching = greedy_matching_cover(&h);
        assert!(is_vertex_cover(&h, &matching));
        assert!(matching.len() <= 2 * 2); // k-approximation, k = 2
        let degree = greedy_degree_cover(&h);
        assert!(is_vertex_cover(&h, &degree));
        assert_eq!(degree.len(), 2);
    }

    #[test]
    fn empty_hypergraph_has_empty_cover() {
        let h = Hypergraph::new(5);
        let res = exact_vertex_cover(&h, SearchBudget::default());
        assert_eq!(res.value, 0);
        assert!(res.optimal);
        assert!(greedy_matching_cover(&h).is_empty());
        assert!(is_vertex_cover(&h, &[]));
    }

    #[test]
    fn single_edge_needs_one_vertex() {
        let mut h = Hypergraph::new(4);
        h.add_edge(vec![1, 2, 3]).unwrap();
        let res = exact_vertex_cover(&h, SearchBudget::default());
        assert_eq!(res.value, 1);
    }

    #[test]
    fn disjoint_edges_need_one_each() {
        let mut h = Hypergraph::new(9);
        h.add_edge(vec![0, 1, 2]).unwrap();
        h.add_edge(vec![3, 4, 5]).unwrap();
        h.add_edge(vec![6, 7, 8]).unwrap();
        let res = exact_vertex_cover(&h, SearchBudget::default());
        assert_eq!(res.value, 3);
        assert!(res.optimal);
    }

    #[test]
    fn triangle_of_pairs_needs_two() {
        // Edges {0,1},{1,2},{0,2}: minimum cover has 2 vertices.
        let mut h = Hypergraph::new(3);
        h.add_edge(vec![0, 1]).unwrap();
        h.add_edge(vec![1, 2]).unwrap();
        h.add_edge(vec![0, 2]).unwrap();
        let res = exact_vertex_cover(&h, SearchBudget::default());
        assert_eq!(res.value, 2);
    }

    #[test]
    fn duplicated_edges_do_not_inflate_cover() {
        let mut h = Hypergraph::new(3);
        for _ in 0..6 {
            h.add_edge(vec![0, 1, 2]).unwrap();
        }
        let res = exact_vertex_cover(&h, SearchBudget::default());
        assert_eq!(res.value, 1);
    }

    #[test]
    fn tiny_budget_still_returns_valid_cover() {
        let h = figure6_hypergraph();
        let res = exact_vertex_cover(&h, SearchBudget(1));
        assert!(is_vertex_cover(&h, &res.witness));
        assert!(res.value >= 2);
    }

    #[test]
    fn random_instances_exact_leq_greedy() {
        // Pseudo-random 3-uniform hypergraphs: exact <= both greedy covers, and the
        // matching lower bound <= exact.
        let mut seed = 7u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as usize
        };
        for trial in 0..10 {
            let n = 12 + trial;
            let mut h = Hypergraph::new(n);
            for _ in 0..(2 * n) {
                let a = next() % n;
                let b = next() % n;
                let c = next() % n;
                let mut e = vec![a, b, c];
                e.sort_unstable();
                e.dedup();
                h.add_edge(e).unwrap();
            }
            let exact = exact_vertex_cover(&h, SearchBudget::default());
            assert!(exact.optimal);
            assert!(is_vertex_cover(&h, &exact.witness));
            let gm = greedy_matching_cover(&h);
            let gd = greedy_degree_cover(&h);
            assert!(is_vertex_cover(&h, &gm));
            assert!(is_vertex_cover(&h, &gd));
            assert!(exact.value <= gm.len());
            assert!(exact.value <= gd.len());
        }
    }
}
