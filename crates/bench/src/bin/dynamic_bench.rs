//! `dynamic_bench` — the `dynamic_updates` workload behind `BENCH_dynamic.json`.
//!
//! Measures the dynamic-graph subsystem's reason to exist: after a small update
//! batch, **incremental** apply + re-mine (`PreparedGraph::apply_updates`
//! patching the matching index over the dirty region, then
//! `MiningSession::run_delta` reusing the prior epoch's evaluation cache)
//! versus the **cold** path every pre-dynamic caller paid (rebuild the
//! `PreparedGraph` — label stats + full `GraphIndex` — and run a full mine from
//! scratch).  Both paths answer the identical query and the incremental result
//! is cross-checked against the cold one pattern-for-pattern, so the bench
//! doubles as an integration test.
//!
//! Deltas of 1, 8 and 64 edge updates are benched; the acceptance gate asserts
//! a ≥ 5x speedup on the small-delta (≤ 8 edges) workloads, which is where
//! incremental maintenance must win decisively.
//!
//! Usage: `dynamic_bench [--vertices N] [--edges M] [--labels L] [--out PATH]`
//! (defaults: 30000 vertices, 45000 edges, 24 labels, `BENCH_dynamic.json`).

use ffsm_bench::report::{json_string, Table};
use ffsm_bench::{flag_value, format_duration, timed};
use ffsm_core::{GraphUpdate, MeasureKind};
use ffsm_graph::{generators, LabeledGraph};
use ffsm_miner::{MiningResult, MiningSession, PreparedGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

struct Entry {
    workload: &'static str,
    delta_edges: usize,
    patterns: usize,
    evaluated: usize,
    reused: usize,
    cold: Duration,
    incremental: Duration,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.incremental.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"workload\": {}, \"delta_edges\": {}, \"patterns\": {}, \"evaluated\": {}, \
             \"reused\": {}, \"cold_us\": {}, \"incremental_us\": {}, \"speedup\": {:.2}}}",
            json_string(self.workload),
            self.delta_edges,
            self.patterns,
            self.evaluated,
            self.reused,
            self.cold.as_micros(),
            self.incremental.as_micros(),
            self.speedup()
        )
    }
}

/// The per-epoch query: a level-2 threshold mine — enumeration-heavy enough
/// that per-epoch setup and re-evaluation both matter.
fn query(session: MiningSession) -> MiningSession {
    session.measure(MeasureKind::Mni).min_support(20.0).max_edges(2)
}

/// A batch of `k` edge updates, half removals of existing edges and half fresh
/// insertions, all valid against `graph`.
fn edge_delta(graph: &LabeledGraph, k: usize, rng: &mut StdRng) -> Vec<GraphUpdate> {
    let n = graph.num_vertices() as u32;
    let edges: Vec<_> = graph.edges().collect();
    let mut batch = Vec::with_capacity(k);
    for i in 0..k {
        if i % 2 == 0 && !edges.is_empty() {
            let (u, v) = edges[rng.gen_range(0..edges.len())];
            // Duplicate removals are no-ops; acceptable noise at delta size 64.
            batch.push(GraphUpdate::RemoveEdge(u, v));
        } else {
            loop {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v && !graph.has_edge(u, v) {
                    batch.push(GraphUpdate::AddEdge(u, v));
                    break;
                }
            }
        }
    }
    batch
}

fn fingerprints(result: &MiningResult) -> Vec<(u64, usize)> {
    result.patterns.iter().map(|p| (p.support.to_bits(), p.num_occurrences)).collect()
}

fn measure(
    workload: &'static str,
    prepared: &PreparedGraph,
    delta_edges: usize,
    rng: &mut StdRng,
) -> Entry {
    // Prior epoch: recorded base mine (amortised across every later epoch, so
    // untimed — the serving loop pays it once).
    let (_, cache) = query(MiningSession::over(prepared)).run_recorded().expect("base mine");
    let batch = edge_delta(prepared.graph(), delta_edges, rng);

    // Incremental path: patch the prepared artifacts, delta re-mine.
    let (outcome, incremental_time) = timed(|| {
        let (next, delta) = prepared.apply_updates(&batch).expect("valid batch");
        let (result, _next_cache) =
            query(MiningSession::over(&next)).run_delta(cache, &delta).expect("delta mine");
        (next, result)
    });
    let (next, incremental_result) = outcome;

    // Cold path: what every epoch cost before the subsystem existed — rebuild
    // the per-graph artifacts and mine from scratch over the same new graph.
    let new_graph = next.graph().clone();
    let (cold_result, cold_time) = timed(|| {
        let cold = PreparedGraph::new(new_graph.clone());
        query(MiningSession::over(&cold)).run().expect("cold mine")
    });

    assert_eq!(
        fingerprints(&incremental_result),
        fingerprints(&cold_result),
        "incremental re-mine diverged from the cold oracle ({workload}, {delta_edges} edges)"
    );
    Entry {
        workload,
        delta_edges,
        patterns: incremental_result.len(),
        evaluated: incremental_result.stats.candidates_evaluated,
        reused: incremental_result.stats.evaluations_reused,
        cold: cold_time,
        incremental: incremental_time,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let vertices: usize = flag_value(&args, "--vertices")
        .map(|v| v.parse().expect("--vertices expects a number"))
        .unwrap_or(30_000);
    let edges: usize = flag_value(&args, "--edges")
        .map(|v| v.parse().expect("--edges expects a number"))
        .unwrap_or(45_000);
    let labels: u32 = flag_value(&args, "--labels")
        .map(|v| v.parse().expect("--labels expects a number"))
        .unwrap_or(24);
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_dynamic.json").to_string();

    let prepared = PreparedGraph::new(generators::gnm_random(vertices, edges, labels, 7));
    let mut rng = StdRng::seed_from_u64(42);
    let mut entries: Vec<Entry> = Vec::new();
    let mut table = Table::new(
        "dynamic_updates: incremental apply + delta re-mine vs cold rebuild + full mine",
        &[
            "workload",
            "Δ edges",
            "patterns",
            "evaluated",
            "reused",
            "cold",
            "incremental",
            "speedup",
        ],
    );
    for delta_edges in [1usize, 8, 64] {
        entries.push(measure("sparse_random", &prepared, delta_edges, &mut rng));
    }
    for e in &entries {
        table.add_row(vec![
            e.workload.to_string(),
            e.delta_edges.to_string(),
            e.patterns.to_string(),
            e.evaluated.to_string(),
            e.reused.to_string(),
            format_duration(e.cold),
            format_duration(e.incremental),
            format!("{:.2}x", e.speedup()),
        ]);
    }
    table.print();

    let body: Vec<String> = entries.iter().map(|e| format!("    {}", e.to_json())).collect();
    let json = format!(
        "{{\n  \"bench\": \"dynamic_updates\",\n  \"workloads\": [\"sparse_random\"],\n  \
         \"entries\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write perf report");
    println!("wrote {out_path} ({} entries)", entries.len());

    // Acceptance gate: small deltas must beat the cold path decisively — this
    // is the subsystem's entire reason to exist.
    for e in entries.iter().filter(|e| e.delta_edges <= 8) {
        assert!(
            e.speedup() >= 5.0,
            "incremental apply+re-mine only {:.2}x over cold rebuild+mine at {} delta edges \
             ({:?} vs {:?}) — incremental maintenance regressed",
            e.speedup(),
            e.delta_edges,
            e.incremental,
            e.cold
        );
    }
}
