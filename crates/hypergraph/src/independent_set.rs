//! Maximum independent sets in ordinary graphs.
//!
//! The overlap-graph-based MIS support measure of Vanetik et al. (Definition 2.2.7)
//! needs a maximum independent vertex set of the *overlap graph* — a plain graph
//! whose vertices are occurrences/instances.  This module provides a small adjacency
//! structure for such graphs plus exact and greedy solvers, so the paper's baseline
//! measure can be computed and compared against the hypergraph-native MIES.

use crate::{ExactResult, SearchBudget};

/// Below this vertex count a [`SimpleGraph`] also keeps dense bitset adjacency rows
/// (`n²/64` words) so `has_edge` is a single word probe; above it, membership falls
/// back to binary search in the sorted CSR rows.  2048 vertices cost at most 512 KiB
/// of bitset — negligible next to the CSR arrays themselves.
const BITSET_MAX_VERTICES: usize = 2048;

/// A minimal undirected graph over vertices `0..n` in CSR (compressed sparse row)
/// form: one flat `neighbors` array, sliced per vertex by `offsets`, each row sorted.
/// Small graphs additionally carry bitset adjacency rows for O(1) membership tests.
///
/// Used for overlap graphs (whose vertices are hyperedges of an occurrence
/// hypergraph), not for labeled data graphs.  Bulk construction goes through
/// [`SimpleGraph::from_edge_list`] (the indexed overlap builders' path);
/// [`SimpleGraph::add_edge`] performs an O(|E|) sorted insertion and is intended for
/// small, incrementally-built graphs (tests, oracles).
#[derive(Debug, Clone)]
pub struct SimpleGraph {
    /// `offsets[v]..offsets[v + 1]` slices `neighbors` into the sorted row of `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbour rows.
    neighbors: Vec<usize>,
    /// Dense adjacency rows (`n` rows of `ceil(n / 64)` words), only for small `n`.
    bits: Option<Vec<u64>>,
}

impl SimpleGraph {
    /// Create a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        SimpleGraph { offsets: vec![0; n + 1], neighbors: Vec::new(), bits: Self::empty_bits(n) }
    }

    fn empty_bits(n: usize) -> Option<Vec<u64>> {
        (n <= BITSET_MAX_VERTICES).then(|| vec![0u64; n * n.div_ceil(64)])
    }

    fn words_per_row(&self) -> usize {
        self.num_vertices().div_ceil(64)
    }

    fn set_bit(bits: &mut [u64], words: usize, u: usize, v: usize) {
        bits[u * words + v / 64] |= 1u64 << (v % 64);
    }

    /// Build from an unsorted edge list; duplicate and self-loop entries are ignored.
    /// This is the CSR bulk constructor the indexed overlap builders use: two counting
    /// passes, no per-vertex allocation.
    pub fn from_edge_list(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut sorted: Vec<(usize, usize)> =
            edges.iter().filter(|&&(u, v)| u != v).map(|&(u, v)| (u.min(v), u.max(v))).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut degree = vec![0usize; n];
        for &(u, v) in &sorted {
            assert!(u < n && v < n, "invalid edge {u}-{v}");
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0usize; sorted.len() * 2];
        let mut bits = Self::empty_bits(n);
        let words = n.div_ceil(64);
        for &(u, v) in &sorted {
            neighbors[cursor[u]] = v;
            cursor[u] += 1;
            neighbors[cursor[v]] = u;
            cursor[v] += 1;
            if let Some(b) = bits.as_mut() {
                Self::set_bit(b, words, u, v);
                Self::set_bit(b, words, v, u);
            }
        }
        // Rows come out sorted because the deduped edge list is sorted by (min, max)
        // and each row receives its smaller-endpoint entries in order; the larger
        // endpoint's entries arrive sorted by the first component too.  The second
        // component order within one `u` is ascending, so every row is sorted.
        SimpleGraph { offsets, neighbors, bits }
    }

    /// Build from adjacency lists (as produced by
    /// [`Hypergraph::overlap_adjacency`](crate::Hypergraph::overlap_adjacency)).
    pub fn from_adjacency(adj: Vec<Vec<usize>>) -> Self {
        let n = adj.len();
        let edges: Vec<(usize, usize)> = adj
            .iter()
            .enumerate()
            .flat_map(|(u, row)| row.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
            .collect();
        Self::from_edge_list(n, &edges)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Insert the undirected edge `{u, v}` (no-op if it exists).  Sorted insertion
    /// into the flat CSR arrays: O(|E|) per call, fine for the small incrementally
    /// built graphs of tests and oracles; bulk paths use
    /// [`SimpleGraph::from_edge_list`].
    pub fn add_edge(&mut self, u: usize, v: usize) {
        let n = self.num_vertices();
        assert!(u < n && v < n && u != v, "invalid edge {u}-{v}");
        if self.has_edge(u, v) {
            return;
        }
        self.insert_neighbor(u, v);
        self.insert_neighbor(v, u);
        if let Some(bits) = self.bits.as_mut() {
            let words = n.div_ceil(64);
            Self::set_bit(bits, words, u, v);
            Self::set_bit(bits, words, v, u);
        }
    }

    fn insert_neighbor(&mut self, u: usize, v: usize) {
        let row = &self.neighbors[self.offsets[u]..self.offsets[u + 1]];
        let pos = self.offsets[u] + row.partition_point(|&w| w < v);
        self.neighbors.insert(pos, v);
        for offset in &mut self.offsets[u + 1..] {
            *offset += 1;
        }
    }

    /// `true` if the undirected edge `{u, v}` is present: a single word probe on
    /// small graphs, binary search in the sorted CSR row otherwise.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u == v {
            return false;
        }
        if let Some(bits) = self.bits.as_ref() {
            return bits[u * self.words_per_row() + v / 64] & (1u64 << (v % 64)) != 0;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Neighbours of `v`, sorted ascending.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }
}

struct MisSearch<'a> {
    g: &'a SimpleGraph,
    best: Vec<usize>,
    best_size: usize,
    nodes: usize,
    budget: usize,
    optimal: bool,
}

impl<'a> MisSearch<'a> {
    /// Branch on the highest-degree remaining vertex: either exclude it, or include it
    /// and exclude its neighbourhood.
    fn search(&mut self, chosen: &mut Vec<usize>, alive: &mut Vec<bool>, alive_count: usize) {
        self.nodes += 1;
        if self.nodes > self.budget {
            self.optimal = false;
            return;
        }
        if chosen.len() + alive_count <= self.best_size {
            return;
        }
        // Find the highest-degree alive vertex (degree counted among alive vertices).
        let mut pick = None;
        let mut pick_degree = 0usize;
        for v in 0..self.g.num_vertices() {
            if !alive[v] {
                continue;
            }
            let d = self.g.neighbors(v).iter().filter(|&&w| alive[w]).count();
            if pick.is_none() || d > pick_degree {
                pick = Some(v);
                pick_degree = d;
            }
        }
        let Some(v) = pick else {
            // No vertices left: record the solution.
            if chosen.len() > self.best_size {
                self.best_size = chosen.len();
                self.best = chosen.clone();
            }
            return;
        };
        if pick_degree == 0 {
            // All remaining vertices are isolated: take them all.
            let isolated: Vec<usize> = (0..self.g.num_vertices()).filter(|&w| alive[w]).collect();
            if chosen.len() + isolated.len() > self.best_size {
                self.best_size = chosen.len() + isolated.len();
                self.best = chosen.iter().copied().chain(isolated).collect();
            }
            return;
        }
        // Branch 1: include v.
        let removed: Vec<usize> = std::iter::once(v)
            .chain(self.g.neighbors(v).iter().copied())
            .filter(|&w| alive[w])
            .collect();
        for &w in &removed {
            alive[w] = false;
        }
        chosen.push(v);
        self.search(chosen, alive, alive_count - removed.len());
        chosen.pop();
        for &w in &removed {
            alive[w] = true;
        }
        // Branch 2: exclude v.
        alive[v] = false;
        self.search(chosen, alive, alive_count - 1);
        alive[v] = true;
    }
}

/// Exact maximum independent set of `g` via branch and bound.
pub fn exact_max_independent_set(g: &SimpleGraph, budget: SearchBudget) -> ExactResult {
    let n = g.num_vertices();
    if n == 0 {
        return ExactResult { value: 0, witness: Vec::new(), optimal: true };
    }
    let seed = greedy_independent_set(g);
    let mut search = MisSearch {
        g,
        best_size: seed.len(),
        best: seed,
        nodes: 0,
        budget: budget.0,
        optimal: true,
    };
    let mut alive = vec![true; n];
    search.search(&mut Vec::new(), &mut alive, n);
    let mut witness = search.best;
    witness.sort_unstable();
    ExactResult { value: search.best_size, witness, optimal: search.optimal }
}

/// Greedy independent set: repeatedly take the minimum-degree remaining vertex and
/// discard its neighbours.
pub fn greedy_independent_set(g: &SimpleGraph) -> Vec<usize> {
    let n = g.num_vertices();
    let mut alive = vec![true; n];
    let mut chosen = Vec::new();
    loop {
        let mut pick = None;
        let mut pick_degree = usize::MAX;
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            let d = g.neighbors(v).iter().filter(|&&w| alive[w]).count();
            if d < pick_degree {
                pick = Some(v);
                pick_degree = d;
            }
        }
        let Some(v) = pick else { break };
        chosen.push(v);
        alive[v] = false;
        for &w in g.neighbors(v) {
            alive[w] = false;
        }
    }
    chosen.sort_unstable();
    chosen
}

/// `true` if `set` is an independent set of `g`.
pub fn is_independent_set(g: &SimpleGraph, set: &[usize]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in &set[i + 1..] {
            if g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> SimpleGraph {
        let mut g = SimpleGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn four_cycle_mis_is_two() {
        let g = cycle(4);
        let res = exact_max_independent_set(&g, SearchBudget::default());
        assert!(res.optimal);
        assert_eq!(res.value, 2);
        assert!(is_independent_set(&g, &res.witness));
    }

    #[test]
    fn five_cycle_mis_is_two() {
        let g = cycle(5);
        assert_eq!(exact_max_independent_set(&g, SearchBudget::default()).value, 2);
    }

    #[test]
    fn complete_graph_mis_is_one() {
        let mut g = SimpleGraph::new(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(i, j);
            }
        }
        assert_eq!(g.num_edges(), 10);
        assert_eq!(exact_max_independent_set(&g, SearchBudget::default()).value, 1);
    }

    #[test]
    fn empty_graph_takes_everything() {
        let g = SimpleGraph::new(6);
        let res = exact_max_independent_set(&g, SearchBudget::default());
        assert_eq!(res.value, 6);
        assert_eq!(res.witness, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(greedy_independent_set(&g).len(), 6);
    }

    #[test]
    fn zero_vertices() {
        let g = SimpleGraph::new(0);
        assert_eq!(exact_max_independent_set(&g, SearchBudget::default()).value, 0);
    }

    #[test]
    fn greedy_is_valid_and_never_better_than_exact() {
        let g = cycle(9);
        let greedy = greedy_independent_set(&g);
        assert!(is_independent_set(&g, &greedy));
        let exact = exact_max_independent_set(&g, SearchBudget::default());
        assert_eq!(exact.value, 4);
        assert!(greedy.len() <= exact.value);
    }

    #[test]
    fn duplicate_add_edge_is_idempotent() {
        let mut g = SimpleGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn from_edge_list_matches_incremental_build() {
        // Unsorted input with duplicates, reversed pairs and a self loop.
        let edges = [(3usize, 1usize), (0, 2), (2, 0), (1, 3), (4, 0), (2, 2), (1, 0)];
        let bulk = SimpleGraph::from_edge_list(5, &edges);
        let mut incremental = SimpleGraph::new(5);
        for &(u, v) in &edges {
            if u != v {
                incremental.add_edge(u, v);
            }
        }
        assert_eq!(bulk.num_edges(), 4);
        for v in 0..5 {
            assert_eq!(bulk.neighbors(v), incremental.neighbors(v), "row {v}");
            let sorted = bulk.neighbors(v);
            assert!(sorted.windows(2).all(|w| w[0] < w[1]), "row {v} not sorted");
        }
        assert!(bulk.has_edge(1, 3) && bulk.has_edge(3, 1));
        assert!(!bulk.has_edge(2, 2) && !bulk.has_edge(3, 4));
    }

    #[test]
    fn has_edge_agrees_with_neighbor_rows_beyond_bitset_limit() {
        // 3000 vertices exceeds the bitset threshold: membership must fall back to
        // binary search and still agree with the rows.
        let n = 3000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|v| (v, v + 1)).collect();
        let g = SimpleGraph::from_edge_list(n, &edges);
        assert_eq!(g.num_edges(), n - 1);
        assert!(g.has_edge(0, 1) && g.has_edge(n - 2, n - 1));
        assert!(!g.has_edge(0, 2) && !g.has_edge(5, 5));
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn random_graphs_greedy_leq_exact() {
        let mut seed = 5u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as usize
        };
        for trial in 0..8 {
            let n = 12 + trial;
            let mut g = SimpleGraph::new(n);
            for _ in 0..(2 * n) {
                let u = next() % n;
                let v = next() % n;
                if u != v {
                    g.add_edge(u, v);
                }
            }
            let exact = exact_max_independent_set(&g, SearchBudget::default());
            assert!(exact.optimal);
            assert!(is_independent_set(&g, &exact.witness));
            let greedy = greedy_independent_set(&g);
            assert!(is_independent_set(&g, &greedy));
            assert!(greedy.len() <= exact.value);
        }
    }
}
