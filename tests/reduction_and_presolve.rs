//! End-to-end checks that the vertex-cover kernelization (ffsm-hypergraph) and the
//! covering-LP presolve (ffsm-lp) never change the MVC / νMVC values of real
//! occurrence hypergraphs built through the public API.

use ffsm::core::{HypergraphBasis, OccurrenceSet};
use ffsm::graph::isomorphism::IsoConfig;
use ffsm::graph::{datasets, figures, generators, patterns, Label};
use ffsm::hypergraph::reduction::{reduce_for_vertex_cover, reduced_exact_vertex_cover};
use ffsm::hypergraph::set_cover::greedy_set_cover_vertex_cover;
use ffsm::hypergraph::vertex_cover::{exact_vertex_cover, is_vertex_cover};
use ffsm::hypergraph::{Hypergraph, SearchBudget};
use ffsm::lp::{covering_lp, presolve_covering};
use proptest::prelude::*;

fn occurrence_hypergraph(
    pattern: &ffsm::graph::Pattern,
    graph: &ffsm::graph::LabeledGraph,
) -> Hypergraph {
    OccurrenceSet::enumerate(pattern, graph, IsoConfig::with_limit(1_500))
        .hypergraph(HypergraphBasis::Occurrence)
}

#[test]
fn reduction_preserves_mvc_on_paper_figures() {
    for example in figures::all_figures() {
        let h = occurrence_hypergraph(&example.pattern, &example.graph);
        if h.is_empty() {
            continue;
        }
        let direct = exact_vertex_cover(&h, SearchBudget::default());
        let reduced = reduced_exact_vertex_cover(&h, SearchBudget::default());
        assert_eq!(direct.value, reduced.value, "figure {}", example.name);
        assert!(is_vertex_cover(&h, &reduced.witness), "figure {}", example.name);
    }
}

#[test]
fn reduction_shrinks_overlap_heavy_instances() {
    // star_overlap(4, 6) queried with the leaf-hub-leaf wedge: every occurrence image
    // {hub, leaf, leaf} is hit by two embeddings (the wedge's automorphism swaps the
    // leaves), so half the hyperedges are duplicates and the duplicate-edge rule
    // halves the instance.
    let graph = generators::star_overlap(4, 6);
    let pattern = patterns::path(&[Label(1), Label(0), Label(1)]);
    let h = occurrence_hypergraph(&pattern, &graph);
    assert_eq!(h.num_edges(), 4 * 6 * 5); // ordered leaf pairs per hub
    let reduced = reduce_for_vertex_cover(&h);
    assert!(reduced.hypergraph.num_edges() < h.num_edges());
    assert_eq!(reduced.hypergraph.num_edges(), 4 * 6 * 5 / 2);
    let direct = exact_vertex_cover(&h, SearchBudget::default());
    assert_eq!(reduced_exact_vertex_cover(&h, SearchBudget::default()).value, direct.value);
    assert_eq!(direct.value, 4); // the four hubs form a minimum cover
}

#[test]
fn greedy_set_cover_is_valid_and_bounded_on_datasets() {
    for dataset in datasets::small_suite(5) {
        let pattern = patterns::single_edge(Label(0), Label(1));
        let h = occurrence_hypergraph(&pattern, &dataset.graph);
        if h.is_empty() || h.num_edges() > 600 {
            // Keep the exact branch-and-bound reference at integration-test scale.
            continue;
        }
        let cover = greedy_set_cover_vertex_cover(&h);
        assert!(is_vertex_cover(&h, &cover), "dataset {}", dataset.name);
        let exact = exact_vertex_cover(&h, SearchBudget::default());
        // The approximation guarantees only make sense against a proven optimum; on
        // very large instances the budgeted search may return an upper bound instead.
        if exact.optimal {
            assert!(cover.len() >= exact.value, "dataset {}", dataset.name);
            let bound =
                (exact.value as f64 * ((h.num_edges() as f64).ln() + 1.0)).max(exact.value as f64);
            assert!(cover.len() as f64 <= bound + 1e-9, "dataset {}", dataset.name);
        }
    }
}

#[test]
fn lp_presolve_preserves_relaxed_mvc_on_figures() {
    for example in figures::all_figures() {
        let h = occurrence_hypergraph(&example.pattern, &example.graph);
        if h.is_empty() {
            continue;
        }
        let sets: Vec<Vec<usize>> = h.edges().map(|(_, e)| e.to_vec()).collect();
        let direct = covering_lp(h.num_vertices(), &sets).solve().unwrap().objective;
        let presolved =
            presolve_covering(h.num_vertices(), &sets).solve(h.num_vertices()).unwrap().objective;
        assert!(
            (direct - presolved).abs() < 1e-6,
            "figure {}: direct {direct} presolved {presolved}",
            example.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random occurrence hypergraphs from random graphs/patterns: reduction and
    /// presolve never change the exact or relaxed optimum.
    #[test]
    fn reduction_and_presolve_preserve_values_on_random_workloads(
        n in 10usize..40,
        m in 10usize..80,
        labels in 1u32..3,
        pattern_edges in 1usize..3,
        seed in 0u64..500,
    ) {
        let graph = generators::gnm_random(n, m, labels, seed);
        let Some((pattern, _)) = generators::sample_pattern(&graph, pattern_edges, seed + 1) else {
            return Ok(());
        };
        let h = occurrence_hypergraph(&pattern, &graph);
        if h.is_empty() {
            return Ok(());
        }
        let budget = SearchBudget::default();
        let direct = exact_vertex_cover(&h, budget);
        let reduced = reduced_exact_vertex_cover(&h, budget);
        if direct.optimal && reduced.optimal {
            prop_assert_eq!(direct.value, reduced.value);
        }
        prop_assert!(is_vertex_cover(&h, &reduced.witness));

        let sets: Vec<Vec<usize>> = h.edges().map(|(_, e)| e.to_vec()).collect();
        let direct_lp = covering_lp(h.num_vertices(), &sets).solve().unwrap().objective;
        let presolved_lp = presolve_covering(h.num_vertices(), &sets)
            .solve(h.num_vertices())
            .unwrap()
            .objective;
        prop_assert!((direct_lp - presolved_lp).abs() < 1e-6);
        // Sanity: the LP relaxation never exceeds the integral optimum.
        prop_assert!(direct_lp <= direct.value as f64 + 1e-6);
    }
}
