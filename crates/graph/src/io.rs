//! Plain-text graph serialisation in the `.lg` ("LineGraph") format used by
//! single-graph miners such as GraMi:
//!
//! ```text
//! # comment
//! t <graph-id>
//! v <vertex-id> <label>
//! e <source> <target> [edge-label]
//! ```
//!
//! Vertex identifiers must be dense and ascending starting from 0; the optional edge
//! label is accepted and ignored (this project models vertex-labeled graphs only,
//! exactly like the paper).

//! ## Update files (`.gu`)
//!
//! The dynamic-graph subsystem reads batches of [`GraphUpdate`]s from a sibling
//! plain-text format: one update per line (`av`/`rv`/`ae`/`re`/`rl` records, see
//! [`GraphUpdate`]), with `t <batch-id>` lines separating batches — each batch
//! becomes one epoch when applied.  Comments and blank lines are skipped exactly
//! like in `.lg` files.

use crate::update::GraphUpdate;
use crate::{GraphError, Label, LabeledGraph, VertexId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Serialise `graph` in `.lg` format.
pub fn write_lg<W: Write>(graph: &LabeledGraph, mut w: W) -> Result<(), GraphError> {
    let io_err = |e: std::io::Error| GraphError::Io(e.to_string());
    writeln!(w, "t 0").map_err(io_err)?;
    for v in graph.vertices() {
        writeln!(w, "v {} {}", v, graph.label(v).0).map_err(io_err)?;
    }
    for (u, v) in graph.edges() {
        writeln!(w, "e {} {}", u, v).map_err(io_err)?;
    }
    Ok(())
}

/// Serialise `graph` to an `.lg` string.
pub fn to_lg_string(graph: &LabeledGraph) -> String {
    let mut buf = Vec::new();
    write_lg(graph, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("lg output is ASCII")
}

/// Write `graph` to the file at `path` in `.lg` format.
pub fn save_lg(graph: &LabeledGraph, path: &Path) -> Result<(), GraphError> {
    let file = std::fs::File::create(path).map_err(|e| GraphError::Io(e.to_string()))?;
    write_lg(graph, std::io::BufWriter::new(file))
}

/// Parse a graph in `.lg` format from a reader.
pub fn read_lg<R: Read>(r: R) -> Result<LabeledGraph, GraphError> {
    let reader = BufReader::new(r);
    let mut graph = LabeledGraph::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| GraphError::Io(e.to_string()))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('t') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap_or("");
        match kind {
            "v" => {
                let id: usize = parse_field(parts.next(), line_no, "vertex id")?;
                let label: u32 = parse_field(parts.next(), line_no, "vertex label")?;
                if id != graph.num_vertices() {
                    return Err(GraphError::Parse {
                        line: line_no,
                        message: format!(
                            "vertex ids must be dense and ascending; expected {} got {}",
                            graph.num_vertices(),
                            id
                        ),
                    });
                }
                graph.add_vertex(Label(label));
            }
            "e" => {
                let u: VertexId = parse_field(parts.next(), line_no, "edge source")?;
                let v: VertexId = parse_field(parts.next(), line_no, "edge target")?;
                graph.add_edge(u, v).map_err(|e| GraphError::Parse {
                    line: line_no,
                    message: format!("invalid edge: {e}"),
                })?;
            }
            other => {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("unknown record type {other:?}"),
                });
            }
        }
    }
    Ok(graph)
}

/// Parse a graph in `.lg` format from a string.
pub fn from_lg_string(s: &str) -> Result<LabeledGraph, GraphError> {
    read_lg(s.as_bytes())
}

/// Load a graph from the `.lg` file at `path`.
pub fn load_lg(path: &Path) -> Result<LabeledGraph, GraphError> {
    let file = std::fs::File::open(path).map_err(|e| GraphError::Io(e.to_string()))?;
    read_lg(file)
}

/// Parse batches of graph updates from a reader (the `.gu` format, see the
/// [module docs](self)).  Lines before the first `t` separator form the first
/// batch; empty batches are dropped.
pub fn read_updates<R: Read>(r: R) -> Result<Vec<Vec<GraphUpdate>>, GraphError> {
    let reader = BufReader::new(r);
    let mut batches: Vec<Vec<GraphUpdate>> = Vec::new();
    let mut current: Vec<GraphUpdate> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| GraphError::Io(e.to_string()))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Only a bare `t` / `t <id>` record separates batches; anything else
        // starting with 't' must be a typo and falls through to the update
        // parser's error (unlike `.lg`, where stray `t…` headers are inert,
        // a swallowed separator here would silently re-shape the epochs).
        if line == "t" || line.starts_with("t ") {
            if !current.is_empty() {
                batches.push(std::mem::take(&mut current));
            }
            continue;
        }
        let update = line.parse::<GraphUpdate>().map_err(|e| match e {
            GraphError::Parse { message, .. } => GraphError::Parse { line: line_no, message },
            other => other,
        })?;
        current.push(update);
    }
    if !current.is_empty() {
        batches.push(current);
    }
    Ok(batches)
}

/// Parse update batches from a string.
pub fn updates_from_string(s: &str) -> Result<Vec<Vec<GraphUpdate>>, GraphError> {
    read_updates(s.as_bytes())
}

/// Load update batches from the `.gu` file at `path`.
pub fn load_updates(path: &Path) -> Result<Vec<Vec<GraphUpdate>>, GraphError> {
    let file = std::fs::File::open(path).map_err(|e| GraphError::Io(e.to_string()))?;
    read_updates(file)
}

/// Serialise update batches in the `.gu` format (one `t <k>` line per batch).
pub fn write_updates<W: Write>(batches: &[Vec<GraphUpdate>], mut w: W) -> Result<(), GraphError> {
    let io_err = |e: std::io::Error| GraphError::Io(e.to_string());
    for (k, batch) in batches.iter().enumerate() {
        writeln!(w, "t {k}").map_err(io_err)?;
        for update in batch {
            writeln!(w, "{update}").map_err(io_err)?;
        }
    }
    Ok(())
}

/// Serialise update batches to a `.gu` string.
pub fn updates_to_string(batches: &[Vec<GraphUpdate>]) -> String {
    let mut buf = Vec::new();
    write_updates(batches, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("gu output is ASCII")
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, GraphError> {
    let raw =
        field.ok_or_else(|| GraphError::Parse { line, message: format!("missing {what}") })?;
    raw.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("cannot parse {what} from {raw:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_small_graph() {
        let g = LabeledGraph::from_edges(&[3, 1, 4, 1], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let text = to_lg_string(&g);
        let back = from_lg_string(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_random_graph() {
        let g = generators::gnm_random(60, 150, 5, 4);
        let back = from_lg_string(&to_lg_string(&g)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# a comment\n\nt 0\nv 0 7\nv 1 8\n\ne 0 1\n";
        let g = from_lg_string(text).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.label(0), Label(7));
    }

    #[test]
    fn edge_labels_are_tolerated() {
        let text = "v 0 1\nv 1 1\ne 0 1 9\n";
        let g = from_lg_string(text).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn bad_input_is_reported_with_line_numbers() {
        let err = from_lg_string("v 0 1\nv 2 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        let err = from_lg_string("x 0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = from_lg_string("v 0 1\ne 0 5\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        let err = from_lg_string("v 0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = from_lg_string("v zero 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("ffsm_io_test_roundtrip.lg");
        let g = generators::grid(4, 4, 3);
        save_lg(&g, &path).unwrap();
        let back = load_lg(&path).unwrap();
        assert_eq!(g, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_lg(Path::new("/nonexistent/ffsm.lg")).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
        let err = load_updates(Path::new("/nonexistent/ffsm.gu")).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }

    #[test]
    fn update_batches_round_trip() {
        let batches = vec![
            vec![GraphUpdate::AddVertex(Label(3)), GraphUpdate::AddEdge(0, 4)],
            vec![GraphUpdate::RemoveEdge(1, 2), GraphUpdate::Relabel(0, Label(7))],
            vec![GraphUpdate::RemoveVertex(5)],
        ];
        let text = updates_to_string(&batches);
        assert_eq!(updates_from_string(&text).unwrap(), batches);
    }

    #[test]
    fn update_reader_skips_comments_and_drops_empty_batches() {
        let text = "# prologue\n\nt 0\nav 2\n\nt 1\nt 2\n# nothing here\nae 0 1\n";
        let batches = updates_from_string(text).unwrap();
        assert_eq!(
            batches,
            vec![vec![GraphUpdate::AddVertex(Label(2))], vec![GraphUpdate::AddEdge(0, 1)]]
        );
        // Updates before any `t` line form the first batch.
        let headless = updates_from_string("av 1\nt 1\nav 2\n").unwrap();
        assert_eq!(headless.len(), 2);
    }

    #[test]
    fn bad_update_lines_report_line_numbers() {
        let err = updates_from_string("av 1\nxx 2\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err:?}");
        let err = updates_from_string("ae 0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err:?}");
        // A typo that merely *starts* with 't' is an error, not a separator.
        let err = updates_from_string("av 1\ntl 3 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err:?}");
        // A bare `t` (no id) is still a valid separator.
        let batches = updates_from_string("av 1\nt\nav 2\n").unwrap();
        assert_eq!(batches.len(), 2);
    }
}
