//! Loopback-TCP integration tests for `ffsm serve` — the full stack from wire
//! bytes to mining results:
//!
//! * concurrent clients receive streams **bit-for-bit identical** to a direct
//!   library session over the same graph and parameters;
//! * `update` bumps the epoch: later mines see it, while a mine already
//!   in flight on the old epoch completes undisturbed over its snapshot;
//! * overflowing the bounded admission queue yields the typed `overloaded`
//!   rejection, and admitted sessions still finish;
//! * a `deadline_ms` expiring mid-stream yields a deterministic whole-level
//!   prefix of the full run plus a `deadline-exceeded` completion;
//! * a client vanishing mid-stream cancels the session's token (the worker is
//!   freed; the server keeps serving);
//! * graceful shutdown drains: in-flight sessions are cancelled but still
//!   flush their terminal frames.

use ffsm::graph::{generators, LabeledGraph};
use ffsm::miner::{MiningEvent, MiningSession, PreparedGraph};
use ffsm::serve::{events, Server, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A graph rich enough to produce several levels of frequent patterns.
fn rich_graph() -> LabeledGraph {
    generators::gnm_random(80, 200, 3, 17)
}

/// A graph heavy enough that a τ=2 mine runs long (for deadline / overflow /
/// disconnect tests), without being expensive to build.
fn heavy_graph() -> LabeledGraph {
    generators::gnm_random(150, 450, 2, 23)
}

fn start_server(
    config: ServerConfig,
    graphs: &[(&str, LabeledGraph)],
) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    for (name, graph) in graphs {
        server.registry().register(name, graph.clone()).expect("register");
    }
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, thread)
}

/// One full conversation: send `line`, half-close, collect every frame.
fn converse(addr: SocketAddr, line: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{line}").expect("send");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    BufReader::new(stream).lines().map(|l| l.expect("read frame")).collect()
}

/// Blank out the one nondeterministic field (`elapsed_ms`, wall-clock) so the
/// rest of the frame stays byte-comparable.
fn mask_elapsed(frame: &str) -> String {
    match frame.find("\"elapsed_ms\": ") {
        Some(at) => format!("{}\"elapsed_ms\": _}}", &frame[..at]),
        None => frame.to_string(),
    }
}

/// The frames a *direct library session* would stream for these parameters,
/// serialized through the same shared serializer the server uses.
fn direct_session_frames(graph: &LabeledGraph, tau: f64, max_edges: usize) -> Vec<String> {
    let prepared = PreparedGraph::new(graph.clone());
    let stream = MiningSession::over(&prepared)
        .measure(ffsm::core::measures::MeasureKind::Mni)
        .min_support(tau)
        .max_edges(max_edges)
        .stream()
        .expect("direct stream");
    stream
        .map(|event| match event.expect("direct event") {
            MiningEvent::Pattern(p) => events::pattern_frame(&p, None).finish(),
            MiningEvent::Undecided(u) => events::undecided_frame(&u).finish(),
            MiningEvent::LevelCompleted(level) => events::level_frame(&level).finish(),
            MiningEvent::Finished(summary) => events::finished_frame(&summary).finish(),
        })
        .collect()
}

#[test]
fn concurrent_clients_match_direct_library_sessions_bit_for_bit() {
    let graph = rich_graph();
    let (addr, handle, server) = start_server(ServerConfig::default(), &[("g", graph.clone())]);
    let expected = direct_session_frames(&graph, 3.0, 3);
    assert!(
        expected.iter().any(|f| f.starts_with("{\"event\": \"pattern\"")),
        "test graph must actually produce patterns"
    );

    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                converse(addr, "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 3}")
            })
        })
        .collect();
    let expected: Vec<String> = expected.iter().map(|f| mask_elapsed(f)).collect();
    for client in clients {
        let frames = client.join().expect("client thread");
        let (done, events) = frames.split_last().expect("at least the done frame");
        let events: Vec<String> = events.iter().map(|f| mask_elapsed(f)).collect();
        assert_eq!(events, expected, "server stream == direct library stream");
        assert_eq!(done, "{\"event\": \"done\", \"status\": \"complete\", \"epoch\": 0}");
    }
    handle.shutdown();
    server.join().expect("server joins");
}

#[test]
fn updates_bump_epochs_and_inflight_old_epoch_sessions_complete() {
    let graph = rich_graph();
    let (addr, handle, server) = start_server(ServerConfig::default(), &[("g", graph.clone())]);

    // Client A starts a mine and has demonstrably begun (first frame read)...
    let mut a = TcpStream::connect(addr).expect("connect A");
    writeln!(a, "{{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 3}}").expect("send A");
    let mut a_reader = BufReader::new(a.try_clone().expect("clone A"));
    let mut first = String::new();
    a_reader.read_line(&mut first).expect("A's first frame");
    assert!(first.starts_with("{\"event\": "), "{first}");

    // ...while client B commits two update batches (epochs 1 and 2).
    let b_frames = converse(
        addr,
        "{\"op\": \"update\", \"graph\": \"g\", \"updates\": \"av 1\\nt 1\\nav 2\", \"id\": 7}",
    );
    assert!(b_frames[0].starts_with("{\"event\": \"epoch\", \"epoch\": 1, "), "{:?}", b_frames[0]);
    assert!(b_frames[1].starts_with("{\"event\": \"epoch\", \"epoch\": 2, "), "{:?}", b_frames[1]);
    assert_eq!(
        b_frames[2],
        "{\"event\": \"done\", \"status\": \"complete\", \"epochs\": 2, \"id\": 7}"
    );

    // A new mine sees epoch 2; A's in-flight session still completes on epoch 0
    // with exactly the frames of a direct session over the original graph.
    let c_frames = converse(addr, "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 3}");
    assert_eq!(
        c_frames.last().expect("C done"),
        "{\"event\": \"done\", \"status\": \"complete\", \"epoch\": 2}"
    );

    let mut a_frames = vec![first.trim_end().to_string()];
    a.shutdown(std::net::Shutdown::Write).expect("half-close A");
    a_frames.extend(a_reader.lines().map(|l| l.expect("A frame")));
    let expected: Vec<String> =
        direct_session_frames(&graph, 3.0, 3).iter().map(|f| mask_elapsed(f)).collect();
    let (a_done, a_events) = a_frames.split_last().expect("A done");
    let a_events: Vec<String> = a_events.iter().map(|f| mask_elapsed(f)).collect();
    assert_eq!(a_events, expected, "old-epoch session undisturbed by updates");
    assert_eq!(a_done, "{\"event\": \"done\", \"status\": \"complete\", \"epoch\": 0}");

    handle.shutdown();
    server.join().expect("server joins");
}

#[test]
fn admission_overflow_is_a_typed_rejection_and_admitted_sessions_finish() {
    let config = ServerConfig { workers: 1, queue_capacity: 1, ..ServerConfig::default() };
    let (addr, handle, server) = start_server(config, &[("g", heavy_graph())]);

    // 8 simultaneous deadline-bounded mines against 1 worker + 1 queue slot:
    // some get admitted (and end with a deadline completion), the rest must be
    // refused with the typed overloaded rejection — never silence.
    let clients: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                converse(
                    addr,
                    &format!(
                        "{{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 2, \"max_edges\": 4, \
                         \"deadline_ms\": 800, \"id\": {i}}}"
                    ),
                )
            })
        })
        .collect();
    let mut rejected = 0;
    let mut admitted = 0;
    for client in clients {
        let frames = client.join().expect("client thread");
        let done = frames.last().expect("each conversation ends with done");
        assert!(done.starts_with("{\"event\": \"done\", "), "{done}");
        if done.contains("\"status\": \"error\"") {
            assert!(done.contains("\"code\": \"overloaded\""), "{done}");
            let error = &frames[frames.len() - 2];
            assert!(error.contains("\"event\": \"error\""), "{error}");
            assert!(error.contains("\"code\": \"overloaded\""), "{error}");
            assert!(error.contains("capacity 1"), "{error}");
            rejected += 1;
        } else {
            assert!(
                frames.iter().any(|f| f.starts_with("{\"event\": \"finished\"")),
                "admitted sessions stream to a terminal frame"
            );
            admitted += 1;
        }
    }
    assert!(rejected >= 1, "1 worker + 1 slot cannot admit 8 concurrent mines");
    // At least the first-queued session is admitted; how many more depends on
    // how fast the worker dequeues relative to the burst.
    assert!(admitted >= 1, "admission never shut out everyone");
    assert_eq!(admitted + rejected, 8);

    handle.shutdown();
    server.join().expect("server joins");
}

#[test]
fn deadline_mid_stream_yields_a_whole_level_prefix_and_typed_completion() {
    let graph = heavy_graph();
    let (addr, handle, server) = start_server(ServerConfig::default(), &[("g", graph.clone())]);

    let frames = converse(
        addr,
        "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 2, \"max_edges\": 4, \"deadline_ms\": 150}",
    );
    let done = frames.last().expect("done frame");
    let finished = &frames[frames.len() - 2];
    assert!(finished.starts_with("{\"event\": \"finished\""), "{finished}");
    // The deadline almost certainly fires mid-run on this graph; if the machine
    // is fast enough to finish, the prefix property below still holds trivially.
    if done.contains("\"status\": \"deadline-exceeded\"") {
        assert!(finished.contains("\"completion\": \"deadline-exceeded\""), "{finished}");
    }

    // Whole-level prefix: the streamed pattern/level frames are byte-for-byte a
    // prefix of the full (undeadlined) run's, cut exactly at a level boundary.
    let streamed: Vec<&String> = frames
        .iter()
        .filter(|f| {
            !f.starts_with("{\"event\": \"finished\"") && !f.starts_with("{\"event\": \"done\"")
        })
        .collect();
    let full = direct_session_frames(&graph, 2.0, 4);
    let full_body: Vec<&String> =
        full.iter().filter(|f| !f.starts_with("{\"event\": \"finished\"")).collect();
    assert!(streamed.len() <= full_body.len());
    assert_eq!(streamed, full_body[..streamed.len()].to_vec(), "deterministic prefix");
    match streamed.last() {
        None => {} // deadline before level 1 finished: empty prefix is a whole-level prefix
        Some(last) => assert!(
            last.starts_with("{\"event\": \"level\""),
            "prefix ends at a level boundary, got {last}"
        ),
    }

    handle.shutdown();
    server.join().expect("server joins");
}

/// Poll the server-level `stat` frame until `pred` holds (or time out).
fn wait_for_stat(addr: SocketAddr, pred: impl Fn(&str) -> bool, what: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let frames = converse(addr, "{\"op\": \"stat\"}");
        let stat = frames.first().expect("stat frame").clone();
        if pred(&stat) {
            return stat;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}; last stat: {stat}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn client_disconnect_mid_stream_cancels_the_session_and_frees_the_worker() {
    let config = ServerConfig { workers: 1, queue_capacity: 4, ..ServerConfig::default() };
    let (addr, handle, server) = start_server(config, &[("g", heavy_graph())]);

    {
        // Start a long mine on the single worker, read one frame to be sure the
        // session is live, then vanish without a goodbye.
        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 2, \"max_edges\": 4}}")
            .expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut first = String::new();
        reader.read_line(&mut first).expect("first frame");
        assert!(first.starts_with("{\"event\": "), "{first}");
        // Dropping both halves closes the socket abruptly.
    }

    // The disconnect must cancel the session's token: the single worker frees
    // up (inflight drains) instead of mining for a ghost.
    let stat = wait_for_stat(
        addr,
        |s| s.contains("\"inflight\": 0") && !s.contains("\"disconnects\": 0"),
        "the disconnected session to be reaped",
    );
    assert!(stat.contains("\"finished\": 1"), "{stat}");

    // And the worker is genuinely alive: a fresh bounded mine completes.
    let frames = converse(
        addr,
        "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 2, \"deadline_ms\": 200, \"id\": 2}",
    );
    assert!(frames.last().expect("done").starts_with("{\"event\": \"done\""), "{frames:?}");

    handle.shutdown();
    server.join().expect("server joins");
}

#[test]
fn graceful_shutdown_cancels_inflight_sessions_but_flushes_their_terminal_frames() {
    let (addr, handle, server) = start_server(ServerConfig::default(), &[("g", heavy_graph())]);

    // A long mine in flight...
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(
        stream,
        "{{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 2, \"max_edges\": 4, \"id\": 5}}"
    )
    .expect("send");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut first = String::new();
    reader.read_line(&mut first).expect("first frame");

    // ...when the drain starts.
    handle.shutdown();
    server.join().expect("drain completes with a session in flight");

    // The session was cancelled, not dropped: the client still received a
    // `finished` frame naming the cancellation and its `done` terminator.
    let mut frames = vec![first.trim_end().to_string()];
    frames.extend(reader.lines().map_while(Result::ok));
    let done = frames.last().expect("done frame");
    assert!(
        done.contains("\"status\": \"cancelled\"") || done.contains("\"status\": \"complete\""),
        "terminal frame flushed through the drain: {done}"
    );
    assert!(done.contains("\"id\": 5"), "{done}");
    let finished = &frames[frames.len() - 2];
    assert!(finished.starts_with("{\"event\": \"finished\""), "{finished}");

    // The drained server no longer accepts connections.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener closed after drain"
    );
}

/// Pull a numeric `"key": value` field out of a flat NDJSON frame.
fn frame_field(frame: &str, key: &str) -> Option<i64> {
    let tag = format!("\"{key}\": ");
    let at = frame.find(&tag)? + tag.len();
    let rest = &frame[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The `metric` frame of the given kind and name, if the scrape carried one.
fn metric_frame<'a>(frames: &'a [String], kind: &str, name: &str) -> Option<&'a String> {
    frames.iter().find(|f| {
        f.starts_with("{\"event\": \"metric\"")
            && f.contains(&format!("\"kind\": \"{kind}\""))
            && f.contains(&format!("\"name\": \"{name}\""))
    })
}

/// Sum of the exclusive-phase wall-time counters in a `metrics` scrape.  The
/// exclusive phases partition a session's wall time, so across scrapes their
/// delta accounts for the mining the server did in between.
fn exclusive_phase_total_ns(frames: &[String]) -> i64 {
    ["index_build", "support_eval", "extension", "delta_repair"]
        .iter()
        .map(|phase| {
            metric_frame(frames, "counter", &format!("phase_{phase}_ns"))
                .and_then(|f| frame_field(f, "value"))
                .unwrap_or(0)
        })
        .sum()
}

#[test]
fn metrics_scrape_phase_totals_account_for_observed_mine_wall_time() {
    let (addr, handle, server) = start_server(ServerConfig::default(), &[("g", heavy_graph())]);
    let scrape = |addr| converse(addr, "{\"op\": \"metrics\"}");

    // Warm-up mine: pays the one-time prepared-index build and the first-touch
    // allocation noise outside the timed window below.
    let warm =
        converse(addr, "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 2, \"deadline_ms\": 300}");
    assert!(warm.last().expect("warm done").starts_with("{\"event\": \"done\""), "{warm:?}");

    // One deadline-bounded mine over an already-accepted connection, timed
    // from request write to `done` receipt — a fresh connection would fold the
    // accept loop's poll interval into the wall and blur the accounting.
    let before = scrape(addr);
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    std::thread::sleep(Duration::from_millis(20)); // let the accept poll pick us up
    let start = Instant::now();
    writeln!(
        stream,
        "{{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 2, \"max_edges\": 4, \"deadline_ms\": 700}}"
    )
    .expect("send");
    let mut frames: Vec<String> = Vec::new();
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read frame") > 0, "server hung up");
        let done = line.starts_with("{\"event\": \"done\"");
        frames.push(line.trim_end().to_string());
        if done {
            break;
        }
    }
    let wall = start.elapsed();
    drop(stream);
    // The scheduler deregisters the session's inflight token just *after* the
    // done frame is flushed to the client, so an immediate scrape can catch
    // `queue_depth: 1` for a microsecond.  Poll until the token drains before
    // taking the authoritative scrape (the folded phase totals are written
    // before the done frame, so they are already stable here).
    let deadline = Instant::now() + Duration::from_secs(10);
    let after = loop {
        let frames = scrape(addr);
        let drained = metric_frame(&frames, "gauge", "queue_depth")
            .is_some_and(|q| frame_field(q, "value") == Some(0));
        if drained {
            break frames;
        }
        assert!(Instant::now() < deadline, "queue_depth never drained: {frames:?}");
        std::thread::sleep(Duration::from_millis(10));
    };

    // The per-phase totals folded from the session must account for the wall
    // time the client observed, within 5%: the observability layer claims to
    // explain where serving time goes, and an unexplained gap (work outside
    // every phase span) or an overshoot (double-counted spans) breaks that.
    let mined = (exclusive_phase_total_ns(&after) - exclusive_phase_total_ns(&before)) as f64;
    let wall = wall.as_nanos() as f64;
    assert!(
        mined >= wall * 0.95 && mined <= wall * 1.05,
        "exclusive phases explain {:.1}% of the observed {:.1}ms mine",
        100.0 * mined / wall,
        wall / 1e6
    );

    // The scrape also carries the serving-side instruments the dashboard needs:
    // an idle queue, no sessions in flight, both mines in the latency
    // histogram (with real buckets), and the folded mining counters.
    let queue = metric_frame(&after, "gauge", "queue_depth").expect("queue_depth gauge");
    assert_eq!(frame_field(queue, "value"), Some(0), "{queue}");
    let active = metric_frame(&after, "gauge", "active_sessions").expect("active_sessions gauge");
    assert_eq!(frame_field(active, "value"), Some(0), "{active}");
    let latency = metric_frame(&after, "histogram", "latency_mine_us").expect("mine histogram");
    assert_eq!(frame_field(latency, "count"), Some(2), "{latency}");
    assert!(frame_field(latency, "p99").expect("p99") > 0, "{latency}");
    assert!(!latency.contains("\"buckets\": \"\""), "bucket string is populated: {latency}");
    let mines = metric_frame(&after, "counter", "requests_mine").expect("requests_mine");
    assert_eq!(frame_field(mines, "value"), Some(2), "{mines}");
    let steps = metric_frame(&after, "counter", "mine_steps").expect("mine_steps");
    assert!(frame_field(steps, "value").expect("steps") > 0, "{steps}");
    let written = metric_frame(&after, "counter", "frames_written").expect("frames_written");
    assert!(frame_field(written, "value").expect("frames") > frames.len() as i64, "{written}");

    handle.shutdown();
    server.join().expect("server joins");
}

/// The `bounds` request flag end to end: a bounds-first session streams the
/// same frequent set as the exact session (pattern text and count), its
/// `pattern` frames carry the certified interval fields, and the incompatible
/// `bounds` + `top_k` combination is a typed `error` frame — never a silently
/// wrong stream.
#[test]
fn bounds_flag_streams_certified_intervals_and_rejects_top_k() {
    let (addr, handle, server) = start_server(ServerConfig::default(), &[("g", rich_graph())]);

    let exact =
        converse(addr, "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 4, \"max_edges\": 2}");
    let bounded = converse(
        addr,
        "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 4, \"max_edges\": 2, \"bounds\": true}",
    );

    let patterns = |frames: &[String]| -> Vec<String> {
        frames
            .iter()
            .filter(|f| f.starts_with("{\"event\": \"pattern\""))
            .map(|f| f[f.find("\"pattern\": ").expect("pattern text")..].to_string())
            .collect()
    };
    let exact_patterns = patterns(&exact);
    assert!(!exact_patterns.is_empty(), "workload must produce patterns");
    assert_eq!(patterns(&bounded), exact_patterns, "bounds changed the frequent set");
    assert!(
        bounded.last().expect("terminal frame").contains("\"status\": \"complete\""),
        "bounds session did not complete: {:?}",
        bounded.last()
    );
    // Every bounds-mode pattern frame carries the interval vocabulary; the
    // exact frames never do (byte-compatibility with pre-bounds transcripts).
    for frame in bounded.iter().filter(|f| f.starts_with("{\"event\": \"pattern\"")) {
        assert!(
            frame.contains("\"support_lo\": ") && frame.contains("\"support_hi\": "),
            "bounds pattern frame lacks its interval: {frame}"
        );
        assert!(frame.contains("\"certificate\": \""), "no certificate: {frame}");
    }
    assert!(
        exact.iter().all(|f| !f.contains("\"support_lo\"")),
        "plain session leaked interval fields"
    );

    // Incompatible combination: typed error frame, conversation still closes
    // in form (error, then done is skipped — error is terminal for the op).
    let rejected = converse(
        addr,
        "{\"op\": \"mine\", \"graph\": \"g\", \"tau\": 4, \"top_k\": 3, \"bounds\": true}",
    );
    assert!(
        rejected
            .iter()
            .any(|f| f.starts_with("{\"event\": \"error\"") && f.contains("invalid configuration")),
        "expected a typed error frame, got {rejected:?}"
    );
    assert!(
        !rejected.iter().any(|f| f.starts_with("{\"event\": \"pattern\"")),
        "rejected session must not stream patterns"
    );

    handle.shutdown();
    server.join().expect("server joins");
}
