//! Structural summary statistics of labeled graphs.
//!
//! The experiment harness prints a [`GraphStatistics`] block for every dataset it
//! uses, so EXPERIMENTS.md can characterise each workload (size, density, label
//! skew, clustering, core structure) the way the paper's evaluation tables
//! characterise their real datasets.

use crate::algorithms;
use crate::{Label, LabeledGraph};
use serde::{Deserialize, Serialize};

/// A structural summary of one labeled graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStatistics {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Number of connected components.
    pub num_components: usize,
    /// Size (in vertices) of the largest connected component.
    pub largest_component: usize,
    /// Number of distinct vertex labels.
    pub num_labels: usize,
    /// Average degree `2m / n` (0 for the empty graph).
    pub average_degree: f64,
    /// Maximum vertex degree.
    pub max_degree: usize,
    /// Edge density `2m / (n (n-1))` (0 when `n < 2`).
    pub density: f64,
    /// Number of triangles.
    pub triangles: usize,
    /// Average local clustering coefficient.
    pub average_clustering: f64,
    /// Global clustering coefficient (transitivity).
    pub global_clustering: f64,
    /// Graph degeneracy (maximum core number).
    pub degeneracy: usize,
    /// Double-sweep lower bound on the diameter of the largest component.
    pub diameter_estimate: usize,
    /// Shannon entropy of the label distribution, in bits.
    pub label_entropy: f64,
    /// Fraction of vertices carrying the most frequent label (label skew).
    pub dominant_label_fraction: f64,
}

impl GraphStatistics {
    /// Compute the full statistics block for `graph`.
    ///
    /// Cost is dominated by triangle counting (`O(m · degeneracy)`); for the graph
    /// sizes used in this project (up to a few thousand vertices) this is instant.
    pub fn compute(graph: &LabeledGraph) -> Self {
        let n = graph.num_vertices();
        let m = graph.num_edges();
        let components = algorithms::connected_components(graph);
        let largest = components.iter().map(Vec::len).max().unwrap_or(0);
        let histogram = graph.label_histogram();
        let label_entropy = entropy(&histogram, n);
        let dominant = histogram.iter().map(|&(_, c)| c).max().unwrap_or(0);
        let (lcc, _) = algorithms::largest_component(graph);
        GraphStatistics {
            num_vertices: n,
            num_edges: m,
            num_components: components.len(),
            largest_component: largest,
            num_labels: histogram.len(),
            average_degree: graph.average_degree(),
            max_degree: graph.max_degree(),
            density: if n < 2 { 0.0 } else { 2.0 * m as f64 / (n as f64 * (n as f64 - 1.0)) },
            triangles: algorithms::triangle_count(graph),
            average_clustering: algorithms::average_clustering(graph),
            global_clustering: algorithms::global_clustering(graph),
            degeneracy: algorithms::degeneracy(graph),
            diameter_estimate: algorithms::estimate_diameter(&lcc, 4),
            label_entropy,
            dominant_label_fraction: if n == 0 { 0.0 } else { dominant as f64 / n as f64 },
        }
    }

    /// A one-line summary used in experiment logs.
    pub fn one_line(&self) -> String {
        format!(
            "n={} m={} labels={} avg_deg={:.2} cc={:.3} degen={} diam≥{}",
            self.num_vertices,
            self.num_edges,
            self.num_labels,
            self.average_degree,
            self.average_clustering,
            self.degeneracy,
            self.diameter_estimate
        )
    }
}

impl std::fmt::Display for GraphStatistics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "vertices:            {}", self.num_vertices)?;
        writeln!(f, "edges:               {}", self.num_edges)?;
        writeln!(
            f,
            "components:          {} (largest {})",
            self.num_components, self.largest_component
        )?;
        writeln!(
            f,
            "labels:              {} (entropy {:.3} bits, dominant {:.1}%)",
            self.num_labels,
            self.label_entropy,
            100.0 * self.dominant_label_fraction
        )?;
        writeln!(f, "avg / max degree:    {:.2} / {}", self.average_degree, self.max_degree)?;
        writeln!(f, "density:             {:.5}", self.density)?;
        writeln!(f, "triangles:           {}", self.triangles)?;
        writeln!(
            f,
            "clustering avg/glob: {:.3} / {:.3}",
            self.average_clustering, self.global_clustering
        )?;
        writeln!(f, "degeneracy:          {}", self.degeneracy)?;
        write!(f, "diameter (≥):        {}", self.diameter_estimate)
    }
}

/// Shannon entropy (bits) of a label histogram over `n` vertices.
fn entropy(histogram: &[(Label, usize)], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    histogram
        .iter()
        .filter(|&&(_, c)| c > 0)
        .map(|&(_, c)| {
            let p = c as f64 / n as f64;
            -p * p.log2()
        })
        .sum()
}

/// Summary of a degree distribution: min / max / mean / median and the 90th
/// percentile, useful to distinguish power-law-ish (social) from near-regular
/// (chemical) datasets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeSummary {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// 90th-percentile degree.
    pub p90: usize,
}

impl DegreeSummary {
    /// Compute the summary (all zeros for an empty graph).
    pub fn compute(graph: &LabeledGraph) -> Self {
        let mut degrees: Vec<usize> = graph.vertices().map(|v| graph.degree(v)).collect();
        if degrees.is_empty() {
            return DegreeSummary { min: 0, max: 0, mean: 0.0, median: 0, p90: 0 };
        }
        degrees.sort_unstable();
        let n = degrees.len();
        DegreeSummary {
            min: degrees[0],
            max: degrees[n - 1],
            mean: degrees.iter().sum::<usize>() as f64 / n as f64,
            median: degrees[n / 2],
            p90: degrees[(n * 9 / 10).min(n - 1)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, patterns};

    #[test]
    fn statistics_of_empty_graph() {
        let s = GraphStatistics::compute(&LabeledGraph::new());
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.num_components, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.label_entropy, 0.0);
        assert_eq!(s.dominant_label_fraction, 0.0);
    }

    #[test]
    fn statistics_of_clique() {
        let k5 = patterns::uniform_clique(5, Label(0));
        let s = GraphStatistics::compute(&k5);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.num_components, 1);
        assert_eq!(s.num_labels, 1);
        assert!((s.density - 1.0).abs() < 1e-12);
        assert_eq!(s.triangles, 10);
        assert!((s.average_clustering - 1.0).abs() < 1e-12);
        assert_eq!(s.degeneracy, 4);
        assert_eq!(s.diameter_estimate, 1);
        assert_eq!(s.label_entropy, 0.0);
        assert!((s.dominant_label_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_entropy_of_balanced_labels() {
        // 4 vertices, 2 labels evenly split -> entropy = 1 bit.
        let g = LabeledGraph::from_edges(&[0, 0, 1, 1], &[(0, 1), (2, 3)]);
        let s = GraphStatistics::compute(&g);
        assert!((s.label_entropy - 1.0).abs() < 1e-12);
        assert!((s.dominant_label_fraction - 0.5).abs() < 1e-12);
        assert_eq!(s.num_components, 2);
        assert_eq!(s.largest_component, 2);
    }

    #[test]
    fn display_and_one_line_mention_key_fields() {
        let g = generators::grid(3, 3, 2);
        let s = GraphStatistics::compute(&g);
        let text = format!("{s}");
        assert!(text.contains("vertices:"));
        assert!(text.contains("degeneracy:"));
        assert!(s.one_line().contains("n=9"));
    }

    #[test]
    fn statistics_are_serializable() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<GraphStatistics>();
        assert_serde::<DegreeSummary>();
    }

    #[test]
    fn degree_summary_of_star() {
        let star = patterns::uniform_star(9, Label(0), Label(1));
        let d = DegreeSummary::compute(&star);
        assert_eq!(d.min, 1);
        assert_eq!(d.max, 9);
        assert_eq!(d.median, 1);
        assert!((d.mean - 1.8).abs() < 1e-12);
        assert!(d.p90 >= 1);
        let empty = DegreeSummary::compute(&LabeledGraph::new());
        assert_eq!(empty.max, 0);
    }

    #[test]
    fn social_graph_is_more_skewed_than_grid() {
        let social = generators::barabasi_albert(150, 2, 4, 3);
        let grid = generators::grid(12, 12, 4);
        let ds = DegreeSummary::compute(&social);
        let dg = DegreeSummary::compute(&grid);
        assert!(ds.max as f64 / ds.mean > dg.max as f64 / dg.mean);
    }
}
