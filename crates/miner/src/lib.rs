//! # ffsm-miner — single-graph frequent-subgraph mining
//!
//! A pattern-growth miner in the style of GraMi (Elseidy et al., VLDB 2014), the
//! setting that motivates the paper: find all patterns whose support in a *single*
//! large labeled graph reaches a threshold τ.  The miner is parameterised by any of
//! the anti-monotonic support measures of `ffsm-core` (MNI, MI, MVC, MIS/MIES or the
//! LP relaxations), which is exactly the comparison the paper's evaluation performs —
//! the same threshold admits more patterns under an over-estimating measure (MNI)
//! than under a conservative one (MIS/MVC).
//!
//! Algorithm outline:
//!
//! 1. seed with all frequent single-edge patterns (one per frequent label pair);
//! 2. grow patterns by adding either an edge between existing nodes or a new labelled
//!    node attached to an existing node ([`extension`]);
//! 3. de-duplicate candidates by canonical code, evaluate their support, and prune
//!    every candidate below τ — sound because all supported measures are
//!    anti-monotonic (Theorems 3.2, 3.5, 4.2, 4.3, 4.4 of the paper).
//!
//! ```
//! use ffsm_graph::{generators, LabeledGraph};
//! use ffsm_core::MeasureKind;
//! use ffsm_miner::{Miner, MinerConfig};
//!
//! // Five disjoint labelled triangles: the triangle is frequent at threshold 5.
//! let triangle = LabeledGraph::from_edges(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
//! let graph = generators::replicated(&triangle, 5, false);
//! let config = MinerConfig { min_support: 5.0, measure: MeasureKind::Mni,
//!                            max_pattern_edges: 3, ..Default::default() };
//! let result = Miner::new(&graph, config).mine();
//! assert!(result.patterns.iter().any(|p| p.pattern.num_edges() == 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extension;
mod miner;
pub mod parallel;
pub mod postprocess;
pub mod topk;

pub use miner::{FrequentPattern, Miner, MinerConfig, MiningResult, MiningStats};
pub use parallel::{mine_parallel, ParallelMinerConfig};
pub use postprocess::{closed_patterns, maximal_patterns, PatternLattice};
pub use topk::{mine_top_k, TopKConfig, TopKResult};
