//! `serve_bench` — the `serve_loopback` workload behind `BENCH_serve.json`.
//!
//! Drives an in-process `ffsm serve` instance over loopback TCP with a pool of
//! concurrent clients issuing a mixed mine/update workload (about 7:1, the
//! read-heavy ratio a serving deployment sees), measuring what a client
//! experiences: request latency from the moment the request line is written to
//! the moment its `done` frame arrives, across the full stack — wire parse,
//! registry checkout, scheduler admission, mining, frame streaming.
//!
//! Reported per run: sustained QPS, mine latency p50/p99, and the admission
//! rejection rate.  After the load phase the bench replays one server mine
//! against a direct library session over the registry's final snapshot and
//! asserts the frames are identical (masking only wall-clock `elapsed_ms`), so
//! the bench doubles as an integration test: throughput numbers are only
//! interesting if the server is still returning exactly the library's answers.
//!
//! The acceptance gate is deliberately conservative (CI machines vary): the
//! run must sustain ≥ 10 QPS, complete at least one request per client, and
//! not reject more than half of the offered load.
//!
//! Usage: `serve_bench [--clients N] [--seconds S] [--vertices N] [--edges M]
//! [--labels L] [--tau T] [--out PATH]` (defaults: 8 clients, 4 seconds,
//! 2000 vertices, 4500 edges, 6 labels, tau 20, `BENCH_serve.json`).

use ffsm_bench::flag_value;
use ffsm_bench::report::json_string;
use ffsm_core::MeasureKind;
use ffsm_graph::generators;
use ffsm_miner::{MiningEvent, MiningSession};
use ffsm_obs::Histogram;
use ffsm_serve::{events, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One client's tally of a load phase.
#[derive(Default)]
struct ClientTally {
    mine_latencies: Vec<Duration>,
    updates: usize,
    rejections: usize,
    errors: usize,
}

/// Run one client loop: serial requests on one connection until `until`.
fn client_loop(addr: SocketAddr, client: usize, tau: f64, until: Instant) -> ClientTally {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut tally = ClientTally::default();
    let mut line = String::new();
    let mut iteration = 0usize;
    while Instant::now() < until {
        iteration += 1;
        // Read-heavy mix: every 8th request commits an update (a fresh vertex —
        // always valid, bumps the epoch, invalidates the prepared cache).
        let is_update = iteration.is_multiple_of(8);
        let request = if is_update {
            format!(
                "{{\"op\": \"update\", \"graph\": \"bench\", \"updates\": \"av {}\", \"id\": {client}}}",
                iteration % 5
            )
        } else {
            format!(
                "{{\"op\": \"mine\", \"graph\": \"bench\", \"tau\": {tau}, \"max_edges\": 2, \
                 \"deadline_ms\": 2000, \"id\": {client}}}"
            )
        };
        let start = Instant::now();
        writeln!(writer, "{request}").expect("send request");
        let done = loop {
            line.clear();
            if reader.read_line(&mut line).expect("read frame") == 0 {
                panic!("server hung up mid-conversation");
            }
            if line.starts_with("{\"event\": \"done\"") {
                break line.trim_end().to_string();
            }
        };
        let latency = start.elapsed();
        if done.contains("\"status\": \"error\"") {
            if done.contains("\"code\": \"overloaded\"") {
                tally.rejections += 1;
            } else {
                tally.errors += 1;
            }
        } else if is_update {
            tally.updates += 1;
        } else {
            tally.mine_latencies.push(latency);
        }
    }
    tally
}

/// One server-side mine, frame for frame (without the `done` terminator).
fn server_mine_frames(addr: SocketAddr, tau: f64) -> (Vec<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(
        stream,
        "{{\"op\": \"mine\", \"graph\": \"bench\", \"tau\": {tau}, \"max_edges\": 2}}"
    )
    .expect("send");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut frames: Vec<String> =
        BufReader::new(stream).lines().map(|l| l.expect("frame")).collect();
    let done = frames.pop().expect("done frame");
    (frames, done)
}

/// Mask the wall-clock field so frames compare deterministically.
fn mask_elapsed(frame: &str) -> String {
    match frame.find("\"elapsed_ms\": ") {
        Some(at) => format!("{}\"elapsed_ms\": _}}", &frame[..at]),
        None => frame.to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clients: usize = flag_value(&args, "--clients")
        .map(|v| v.parse().expect("--clients expects a number"))
        .unwrap_or(8);
    let seconds: u64 = flag_value(&args, "--seconds")
        .map(|v| v.parse().expect("--seconds expects a number"))
        .unwrap_or(4);
    let vertices: usize = flag_value(&args, "--vertices")
        .map(|v| v.parse().expect("--vertices expects a number"))
        .unwrap_or(2_000);
    let edges: usize = flag_value(&args, "--edges")
        .map(|v| v.parse().expect("--edges expects a number"))
        .unwrap_or(4_500);
    let labels: u32 = flag_value(&args, "--labels")
        .map(|v| v.parse().expect("--labels expects a number"))
        .unwrap_or(6);
    let tau: f64 = flag_value(&args, "--tau")
        .map(|v| v.parse().expect("--tau expects a number"))
        .unwrap_or(20.0);
    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_serve.json").to_string();

    let config = ServerConfig { queue_capacity: clients.max(4), ..ServerConfig::default() };
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    server
        .registry()
        .register("bench", generators::gnm_random(vertices, edges, labels, 11))
        .expect("register bench graph");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    println!(
        "serve_loopback: {clients} clients x {seconds}s against {vertices}v/{edges}e/{labels}l \
         at tau {tau} on {addr}"
    );
    let started = Instant::now();
    let until = started + Duration::from_secs(seconds);
    let workers: Vec<_> = (0..clients)
        .map(|client| std::thread::spawn(move || client_loop(addr, client, tau, until)))
        .collect();
    let tallies: Vec<ClientTally> =
        workers.into_iter().map(|w| w.join().expect("client")).collect();
    let elapsed = started.elapsed();

    // Percentiles come from the shared observability histogram — the same
    // log2-bucketed estimator the server's `metrics` op reports, so the bench
    // numbers and a live scrape are directly comparable.
    let histogram = Histogram::default();
    for tally in &tallies {
        for latency in &tally.mine_latencies {
            histogram.record_duration_us(*latency);
        }
    }
    let latency = histogram.snapshot();
    let mines = latency.count as usize;
    let updates: usize = tallies.iter().map(|t| t.updates).sum();
    let rejections: usize = tallies.iter().map(|t| t.rejections).sum();
    let errors: usize = tallies.iter().map(|t| t.errors).sum();
    let offered = mines + updates + rejections + errors;
    let completed = mines + updates;
    let qps = completed as f64 / elapsed.as_secs_f64();
    let rejection_rate = rejections as f64 / (offered.max(1)) as f64;
    let p50 = Duration::from_micros(latency.quantile(0.50));
    let p99 = Duration::from_micros(latency.quantile(0.99));

    // Fidelity gate: the loaded server still answers exactly like the library.
    let (server_frames, done) = server_mine_frames(addr, tau);
    let epoch = handle.registry().stats("bench").expect("bench stats").summary.epoch;
    assert!(done.contains(&format!("\"epoch\": {epoch}")), "cross-check mined the final epoch");
    let snapshot = handle.registry().checkout("bench").expect("final snapshot");
    let direct: Vec<String> = MiningSession::over(snapshot.prepared())
        .measure(MeasureKind::Mni)
        .min_support(tau)
        .max_edges(2)
        .stream()
        .expect("direct stream")
        .map(|event| match event.expect("direct event") {
            MiningEvent::Pattern(p) => events::pattern_frame(&p, None).finish(),
            MiningEvent::Undecided(u) => events::undecided_frame(&u).finish(),
            MiningEvent::LevelCompleted(level) => events::level_frame(&level).finish(),
            MiningEvent::Finished(summary) => events::finished_frame(&summary).finish(),
        })
        .map(|f| mask_elapsed(&f))
        .collect();
    let masked: Vec<String> = server_frames.iter().map(|f| mask_elapsed(f)).collect();
    assert_eq!(masked, direct, "server mine diverged from the direct library session");

    handle.shutdown();
    server_thread.join().expect("server drains");

    println!(
        "completed {completed} requests ({mines} mines, {updates} updates) in {elapsed:?} — \
         {qps:.1} QPS, mine p50 {p50:?}, p99 {p99:?}, {rejections} rejected \
         ({:.1}% of offered), {errors} errors",
        rejection_rate * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"serve_loopback\",\n  \"workloads\": [{}],\n  \"entries\": [\n    \
         {{\"workload\": {}, \"clients\": {clients}, \"seconds\": {seconds}, \
         \"vertices\": {vertices}, \"edges\": {edges}, \"completed\": {completed}, \
         \"mines\": {mines}, \"updates\": {updates}, \"rejected\": {rejections}, \
         \"errors\": {errors}, \"qps\": {qps:.2}, \"p50_us\": {}, \"p99_us\": {}, \
         \"rejection_rate\": {rejection_rate:.4}}}\n  ]\n}}\n",
        json_string("mixed_mine_update"),
        json_string("mixed_mine_update"),
        p50.as_micros(),
        p99.as_micros(),
    );
    std::fs::write(&out_path, json).expect("write perf report");
    println!("wrote {out_path}");

    // Acceptance gate — conservative floors that hold on a loaded CI runner
    // but still catch a serving-path collapse.
    assert_eq!(errors, 0, "non-rejection errors under plain load");
    assert!(completed >= clients, "only {completed} requests completed across {clients} clients");
    assert!(qps >= 10.0, "sustained only {qps:.1} QPS — serving throughput collapsed");
    assert!(
        rejection_rate <= 0.5,
        "rejected {:.1}% of offered load with a queue sized to the client count",
        rejection_rate * 100.0
    );
}
