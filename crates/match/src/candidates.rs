//! [`CandidateSpace`] — per-pattern-vertex candidate sets, pruned before search.
//!
//! The builder runs two phases against a [`GraphIndex`]:
//!
//! 1. **Initial filtering**: the candidates of pattern vertex `u` are the data
//!    vertices with `u`'s label, degree ≥ `deg(u)` (via the index's degree buckets)
//!    and a neighbour-label fingerprint that covers `u`'s.
//! 2. **Neighbourhood-consistency refinement** (CFL-style, AC-3 flavoured): a
//!    candidate `v ∈ C(u)` survives only if, for *every* pattern neighbour `u'` of
//!    `u`, some data neighbour of `v` is in `C(u')`.  Deletions propagate until a
//!    fixpoint is reached.
//!
//! The refinement is executed **word-parallel**: for each pattern vertex `u'` the
//! builder materialises the neighbourhood bitset `N(C(u')) = ⋃_{w ∈ C(u')} adj(w)`
//! once (OR-ing hub adjacency bitsets from the [`GraphIndex`] 64 vertices at a
//! time where available) and then ANDs it word-wise into the member bitset of
//! every pattern neighbour of `u'` — the per-candidate "does `v` have a neighbour
//! in `C(u')`" scan of the naive formulation disappears, as do the one-bit-at-a-
//! time deletions.  A **dirty worklist** keeps later sweeps from rescanning the
//! whole pattern: only vertices whose candidate set shrank during the previous
//! sweep re-propagate their constraint.  The fixpoint is unique regardless of
//! sweep order, so the surviving sets are identical to the naive formulation's.
//!
//! Both phases only ever delete vertices that cannot participate in any embedding
//! (for the non-induced semantics; the induced semantics matches a subset of those
//! embeddings, so the space is sound for both).  The search then enumerates inside
//! this space instead of the whole graph.
//!
//! Candidate lists are kept **sorted ascending by vertex id** — the determinism
//! contract of the enumerator (and its parallel root partition) is anchored here.

use crate::index::GraphIndex;
use ffsm_graph::{LabeledGraph, Pattern, VertexId};

/// Dense bitset over data-graph vertices: O(1) membership for the search's
/// feasibility checks and word-parallel AND/OR for refinement and pool filtering.
#[derive(Debug, Clone)]
pub(crate) struct Bitset {
    words: Vec<u64>,
}

impl Bitset {
    pub(crate) fn with_len(n: usize) -> Self {
        Bitset { words: vec![0u64; n.div_ceil(64)] }
    }

    pub(crate) fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    #[cfg(test)]
    pub(crate) fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    pub(crate) fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// The backing words (bit `i` of the set is bit `i % 64` of word `i / 64`).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// `self &= other`, word-parallel.  Returns `true` if any bit was cleared.
    pub(crate) fn and_assign(&mut self, other: &[u64]) -> bool {
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(other) {
            let masked = *a & b;
            if masked != *a {
                *a = masked;
                changed = true;
            }
        }
        changed
    }

    /// Overwrite `out` with the set bits in ascending order.
    pub(crate) fn collect_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        for (wi, &word) in self.words.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                out.push((wi * 64 + bit) as VertexId);
                word &= word - 1;
            }
        }
    }
}

/// OR the adjacency of data vertex `w` into `scratch` — word-parallel via the
/// index's hub bitset when `w` has one, per-neighbour otherwise.
fn or_adjacency(scratch: &mut [u64], graph: &LabeledGraph, index: &GraphIndex, w: VertexId) {
    if let Some(bits) = index.adjacency_words(w) {
        for (s, &b) in scratch.iter_mut().zip(bits) {
            *s |= b;
        }
    } else {
        for &x in graph.neighbors(w) {
            scratch[x as usize / 64] |= 1u64 << (x % 64);
        }
    }
}

/// The pruned candidate sets of one pattern against one indexed data graph.
#[derive(Debug, Clone)]
pub struct CandidateSpace {
    /// Per pattern vertex: surviving candidates, ascending by data vertex id.
    candidates: Vec<Vec<VertexId>>,
    /// Per pattern vertex: membership bitset over data vertices (mirrors
    /// `candidates`).
    member: Vec<Bitset>,
    /// Per pattern vertex: candidate count after phase 1, before refinement.
    initial_sizes: Vec<usize>,
    /// Number of refinement sweeps until the fixpoint (≥ 1; the last sweep deletes
    /// nothing).
    refinement_rounds: usize,
}

impl CandidateSpace {
    /// Build and refine the candidate space of `pattern` in `graph` using `index`
    /// (which must have been built from the same `graph`).
    pub fn build(pattern: &Pattern, graph: &LabeledGraph, index: &GraphIndex) -> Self {
        let n = pattern.num_vertices();
        let mut candidates: Vec<Vec<VertexId>> = Vec::with_capacity(n);
        let mut member: Vec<Bitset> = Vec::with_capacity(n);
        let mut initial_sizes = Vec::with_capacity(n);
        for u in pattern.vertices() {
            let need = GraphIndex::neighbor_fingerprint(pattern, u);
            let mut set: Vec<VertexId> = index
                .vertices_with_min_degree(pattern.label(u), pattern.degree(u))
                .iter()
                .copied()
                .filter(|&v| need & !index.fingerprint(v) == 0)
                .collect();
            set.sort_unstable();
            let mut bits = Bitset::with_len(graph.num_vertices());
            for &v in &set {
                bits.set(v as usize);
            }
            initial_sizes.push(set.len());
            candidates.push(set);
            member.push(bits);
        }

        // Refinement to fixpoint, word-parallel.  For each (still-dirty) pattern
        // vertex u', materialise N(C(u')) = ⋃_{w ∈ C(u')} adj(w) in one scratch
        // bitset, then AND it into the member bitset of every pattern neighbour of
        // u' — a candidate v of a neighbour survives iff bit v is set, i.e. iff
        // some data neighbour of v lies in C(u').  Deletions take effect
        // immediately (the bitsets are updated in place), so later constraints in
        // the same sweep see them; the fixpoint is unique regardless of sweep
        // order.  The dirty worklist re-propagates only constraints whose source
        // set shrank in the previous sweep; the scratch buffer is hoisted out of
        // the loop and batch-cleared once per source vertex.
        let words = graph.num_vertices().div_ceil(64);
        let mut scratch = vec![0u64; words];
        let mut dirty = vec![true; n];
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let mut changed_any = false;
            let sweep: Vec<usize> = (0..n).filter(|&u| dirty[u]).collect();
            dirty.iter_mut().for_each(|d| *d = false);
            for &u_prime in &sweep {
                let pattern_neighbors = pattern.neighbors(u_prime as VertexId);
                if pattern_neighbors.is_empty() {
                    continue;
                }
                scratch.iter_mut().for_each(|w| *w = 0);
                for &w in &candidates[u_prime] {
                    or_adjacency(&mut scratch, graph, index, w);
                }
                for &u in pattern_neighbors {
                    let u = u as usize;
                    if member[u].and_assign(&scratch) {
                        member[u].collect_into(&mut candidates[u]);
                        dirty[u] = true;
                        changed_any = true;
                    }
                }
            }
            if !changed_any {
                break;
            }
        }
        CandidateSpace { candidates, member, initial_sizes, refinement_rounds: rounds }
    }

    /// The member bitset words of pattern vertex `u` (for word-parallel pool
    /// intersection in the search loop).
    pub(crate) fn member_words(&self, u: VertexId) -> &[u64] {
        self.member[u as usize].words()
    }

    /// Number of pattern vertices.
    pub fn num_pattern_vertices(&self) -> usize {
        self.candidates.len()
    }

    /// The surviving candidates of pattern vertex `u`, ascending by data vertex id.
    pub fn candidates(&self, u: VertexId) -> &[VertexId] {
        &self.candidates[u as usize]
    }

    /// `true` if data vertex `v` is a surviving candidate of pattern vertex `u`.
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.member[u as usize].get(v as usize)
    }

    /// Candidate count per pattern vertex after refinement.
    pub fn sizes(&self) -> Vec<usize> {
        self.candidates.iter().map(Vec::len).collect()
    }

    /// Candidate count per pattern vertex after the initial label / degree /
    /// fingerprint filter, before refinement.
    pub fn initial_sizes(&self) -> &[usize] {
        &self.initial_sizes
    }

    /// Total surviving candidates across all pattern vertices.
    pub fn total_size(&self) -> usize {
        self.candidates.iter().map(Vec::len).sum()
    }

    /// `true` if some pattern vertex has no candidate left — no embedding exists.
    pub fn has_empty_set(&self) -> bool {
        self.candidates.iter().any(Vec::is_empty)
    }

    /// Number of refinement sweeps run to reach the fixpoint.
    pub fn refinement_rounds(&self) -> usize {
        self.refinement_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffsm_graph::{patterns, Label};

    #[test]
    fn bitset_set_clear_get() {
        let mut b = Bitset::with_len(130);
        assert!(!b.get(0) && !b.get(129));
        b.set(0);
        b.set(129);
        b.set(64);
        assert!(b.get(0) && b.get(64) && b.get(129));
        b.clear(64);
        assert!(!b.get(64) && b.get(129));
    }

    #[test]
    fn bitset_word_ops_and_extraction() {
        let mut a = Bitset::with_len(130);
        for i in [0usize, 3, 64, 129] {
            a.set(i);
        }
        let mut mask = Bitset::with_len(130);
        for i in [3usize, 64, 100] {
            mask.set(i);
        }
        assert!(a.and_assign(mask.words()));
        assert!(!a.and_assign(mask.words()), "AND is idempotent at the fixpoint");
        let mut out = Vec::new();
        a.collect_into(&mut out);
        assert_eq!(out, vec![3, 64]);
    }

    #[test]
    fn initial_filter_uses_label_degree_and_fingerprint() {
        // Data: A-B edge, an isolated A, and an A whose only neighbour is another A.
        let g = LabeledGraph::from_edges(&[0, 1, 0, 0, 0], &[(0, 1), (3, 4)]);
        let p = patterns::single_edge(Label(0), Label(1));
        let ix = GraphIndex::build(&g);
        let cs = CandidateSpace::build(&p, &g, &ix);
        // Pattern vertex 0 (label A, needs a B neighbour): only data vertex 0.
        // Vertex 2 fails the degree filter, 3 and 4 fail the fingerprint.
        assert_eq!(cs.candidates(0), &[0]);
        assert_eq!(cs.candidates(1), &[1]);
        assert!(cs.contains(0, 0) && !cs.contains(0, 3));
    }

    #[test]
    fn refinement_peels_decoy_chains() {
        // Pattern: path A-B-C.  Data: a real A-B-C chain plus a decoy A-B pair whose
        // B has a *second* A neighbour instead of a C — the decoy B passes the
        // fingerprint filter only if labels collide, but its C-side support is
        // missing, so refinement must delete it and then the decoy A's.
        let g = LabeledGraph::from_edges(
            &[0, 1, 2, 0, 1, 0], // real: 0-1-2; decoy: 3-4, 5-4
            &[(0, 1), (1, 2), (3, 4), (5, 4)],
        );
        let p = patterns::path(&[Label(0), Label(1), Label(2)]);
        let ix = GraphIndex::build(&g);
        let cs = CandidateSpace::build(&p, &g, &ix);
        assert_eq!(cs.candidates(0), &[0]);
        assert_eq!(cs.candidates(1), &[1]);
        assert_eq!(cs.candidates(2), &[2]);
        // The decoy B was present before refinement (it has label B and degree 2 but
        // the wrong neighbour labels are only visible through the fingerprint, which
        // distinguishes A from C here — so it is already gone after phase 1).
        assert!(!cs.contains(1, 4));
        assert!(cs.refinement_rounds() >= 1);
    }

    #[test]
    fn refinement_reaches_fixpoint_on_longer_chains() {
        // Pattern: path A-B-A-B (4 vertices).  Data: an A-B-A-B path (real) plus an
        // A-B tail (decoy) — every decoy vertex passes label/degree/fingerprint
        // filters but the chain is too short, so refinement peels it end-first over
        // multiple sweeps.
        let g = LabeledGraph::from_edges(
            &[0, 1, 0, 1, 0, 1], // real path 0-1-2-3, decoy path 4-5
            &[(0, 1), (1, 2), (2, 3), (4, 5)],
        );
        let p = patterns::path(&[Label(0), Label(1), Label(0), Label(1)]);
        let ix = GraphIndex::build(&g);
        let cs = CandidateSpace::build(&p, &g, &ix);
        // The decoy tail cannot host the 4-path in either direction.
        assert!(!cs.candidates(0).contains(&4));
        assert!(!cs.candidates(3).contains(&5));
        assert!(!cs.has_empty_set());
        // The inner pattern vertices need degree ≥ 2, which only the real mid-path
        // vertices have.
        assert_eq!(cs.candidates(1), &[1]);
        assert_eq!(cs.candidates(2), &[2]);
    }

    #[test]
    fn empty_set_detected_when_label_missing() {
        let g = LabeledGraph::from_edges(&[0, 0], &[(0, 1)]);
        let p = patterns::single_edge(Label(0), Label(7));
        let ix = GraphIndex::build(&g);
        let cs = CandidateSpace::build(&p, &g, &ix);
        assert!(cs.has_empty_set());
        assert_eq!(cs.total_size(), 0, "refinement empties the supported side too");
    }

    #[test]
    fn sizes_report_both_phases() {
        let g = LabeledGraph::from_edges(&[0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]);
        let p = patterns::single_edge(Label(0), Label(1));
        let ix = GraphIndex::build(&g);
        let cs = CandidateSpace::build(&p, &g, &ix);
        assert_eq!(cs.initial_sizes(), &[1, 3]);
        assert_eq!(cs.sizes(), vec![1, 3]);
        assert_eq!(cs.total_size(), 4);
        assert_eq!(cs.num_pattern_vertices(), 2);
    }
}
