//! Kernelization / reduction rules for hypergraph vertex cover.
//!
//! Occurrence hypergraphs contain a lot of redundancy: repeated edges (when the
//! pattern has automorphisms), edges that are supersets of other edges (which any
//! cover of the smaller edge already hits), vertices contained in no remaining edge,
//! and unit edges that force their single vertex into every cover.  Applying these
//! rules before the exact branch-and-bound search often shrinks the instance by an
//! order of magnitude without changing the optimum — experiment E13 quantifies this.
//!
//! The rules implemented here are classical and *safe* (they preserve the minimum
//! vertex cover size exactly):
//!
//! 1. **duplicate edge** — keep one copy of identical edges;
//! 2. **superset edge** — drop an edge that is a superset of another edge
//!    (Definition 3.1.1's "simple hypergraph" reduction; any hitting set of the
//!    subset also hits the superset);
//! 3. **unit edge** — an edge `{v}` forces `v` into the cover; remove `v` and every
//!    edge containing it;
//! 4. **dominated vertex** — if every edge containing `u` also contains `v`, then `u`
//!    can be replaced by `v` in any cover, so `u` can be deleted from all edges
//!    (only applied while the edge stays non-empty).

use crate::{EdgeId, Hypergraph};
use std::collections::BTreeSet;

/// Result of reducing a vertex-cover instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReducedCoverInstance {
    /// The reduced hypergraph (vertices re-indexed densely).
    pub hypergraph: Hypergraph,
    /// Map from reduced vertex index to original vertex id.
    pub vertex_map: Vec<usize>,
    /// Original vertices forced into every minimum cover by unit-edge rules.
    pub forced: Vec<usize>,
    /// Original edge ids that survived the reduction (one per kept edge, in order).
    pub kept_edges: Vec<EdgeId>,
    /// Statistics about which rules fired.
    pub stats: ReductionStats,
}

/// Which reduction rules fired and how often.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReductionStats {
    /// Duplicate edges removed.
    pub duplicate_edges: usize,
    /// Superset edges removed.
    pub superset_edges: usize,
    /// Vertices forced into the cover by unit edges.
    pub forced_vertices: usize,
    /// Edges removed because a forced vertex covered them.
    pub covered_edges: usize,
    /// Vertices deleted by the dominated-vertex rule.
    pub dominated_vertices: usize,
}

impl ReducedCoverInstance {
    /// Minimum cover size of the *original* instance given the minimum cover size of
    /// the reduced instance.
    pub fn lift_value(&self, reduced_value: usize) -> usize {
        reduced_value + self.forced.len()
    }

    /// Lift a cover of the reduced hypergraph (reduced vertex indices) back to a
    /// cover of the original hypergraph (original vertex ids, including the forced
    /// vertices).
    pub fn lift_cover(&self, reduced_cover: &[usize]) -> Vec<usize> {
        let mut cover: Vec<usize> = reduced_cover.iter().map(|&v| self.vertex_map[v]).collect();
        cover.extend_from_slice(&self.forced);
        cover.sort_unstable();
        cover.dedup();
        cover
    }
}

/// Apply all reduction rules to a fixed point.
pub fn reduce_for_vertex_cover(h: &Hypergraph) -> ReducedCoverInstance {
    let mut stats = ReductionStats::default();
    // Working representation: list of (original edge id, vertex set).
    let mut edges: Vec<(EdgeId, Vec<usize>)> = h.edges().map(|(id, e)| (id, e.to_vec())).collect();
    let mut forced: BTreeSet<usize> = BTreeSet::new();

    loop {
        let mut changed = false;

        // Rule 3: unit edges force their vertex.
        let unit_vertices: BTreeSet<usize> =
            edges.iter().filter(|(_, e)| e.len() == 1).map(|(_, e)| e[0]).collect();
        if !unit_vertices.is_empty() {
            for &v in &unit_vertices {
                if forced.insert(v) {
                    stats.forced_vertices += 1;
                }
            }
            let before = edges.len();
            edges.retain(|(_, e)| !e.iter().any(|v| unit_vertices.contains(v)));
            stats.covered_edges += before - edges.len();
            changed = true;
        }

        // Rule 1 + 2: duplicate and superset edges.
        // Sort by size so that supersets are only compared against smaller edges.
        let mut order: Vec<usize> = (0..edges.len()).collect();
        order.sort_by_key(|&i| edges[i].1.len());
        let mut keep = vec![true; edges.len()];
        for (pos, &i) in order.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            for &j in &order[pos + 1..] {
                if !keep[j] {
                    continue;
                }
                let (small, big) = (&edges[i].1, &edges[j].1);
                if is_subset(small, big) {
                    keep[j] = false;
                    if small.len() == big.len() {
                        stats.duplicate_edges += 1;
                    } else {
                        stats.superset_edges += 1;
                    }
                    changed = true;
                }
            }
        }
        if keep.iter().any(|&k| !k) {
            let mut filtered = Vec::with_capacity(edges.len());
            for (i, e) in edges.into_iter().enumerate() {
                if keep[i] {
                    filtered.push(e);
                }
            }
            edges = filtered;
        }

        // Rule 4: dominated vertices (every edge containing u also contains v, u != v).
        // Only consider vertices that still occur.  BTreeMap keeps the rule (and thus
        // the chosen representatives) deterministic.
        let mut incidence: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (idx, (_, e)) in edges.iter().enumerate() {
            for &v in e {
                incidence.entry(v).or_default().push(idx);
            }
        }
        let mut dominated: Vec<usize> = Vec::new();
        let vertices: Vec<usize> = incidence.keys().copied().collect();
        for &u in &vertices {
            if dominated.contains(&u) {
                continue;
            }
            let u_edges = &incidence[&u];
            // Candidate dominators: vertices of the first edge containing u.
            let first_edge = &edges[u_edges[0]].1;
            'cand: for &v in first_edge {
                if v == u || dominated.contains(&v) {
                    continue;
                }
                for &ei in u_edges {
                    if edges[ei].1.binary_search(&v).is_err() {
                        continue 'cand;
                    }
                    // u must not be the only thing keeping the edge non-empty.
                    if edges[ei].1.len() <= 1 {
                        continue 'cand;
                    }
                }
                dominated.push(u);
                break;
            }
        }
        if !dominated.is_empty() {
            stats.dominated_vertices += dominated.len();
            let dominated_set: BTreeSet<usize> = dominated.into_iter().collect();
            for (_, e) in edges.iter_mut() {
                e.retain(|v| !dominated_set.contains(v));
            }
            // Removing vertices can create new unit / duplicate edges → iterate again.
            changed = true;
        }

        if !changed {
            break;
        }
    }

    // Re-index the surviving vertices densely.
    let mut vertex_map: Vec<usize> = Vec::new();
    let mut index_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for (_, e) in &edges {
        for &v in e {
            index_of.entry(v).or_insert_with(|| {
                vertex_map.push(v);
                vertex_map.len() - 1
            });
        }
    }
    let mut reduced = Hypergraph::new(vertex_map.len());
    let mut kept_edges = Vec::with_capacity(edges.len());
    for (id, e) in &edges {
        let local: Vec<usize> = e.iter().map(|v| index_of[v]).collect();
        reduced.add_edge(local).expect("reduced edge valid");
        kept_edges.push(*id);
    }
    ReducedCoverInstance {
        hypergraph: reduced,
        vertex_map,
        forced: forced.into_iter().collect(),
        kept_edges,
        stats,
    }
}

/// `true` if sorted slice `a` is a subset of sorted slice `b`.
fn is_subset(a: &[usize], b: &[usize]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut bi = 0usize;
    for &x in a {
        while bi < b.len() && b[bi] < x {
            bi += 1;
        }
        if bi >= b.len() || b[bi] != x {
            return false;
        }
        bi += 1;
    }
    true
}

/// Solve minimum vertex cover exactly via reduction + the exact branch-and-bound
/// solver; returns the cover size and whether it is proven optimal.
pub fn reduced_exact_vertex_cover(
    h: &Hypergraph,
    budget: crate::SearchBudget,
) -> crate::ExactResult {
    let reduced = reduce_for_vertex_cover(h);
    if reduced.hypergraph.is_empty() {
        return crate::ExactResult {
            value: reduced.forced.len(),
            witness: reduced.forced.clone(),
            optimal: true,
        };
    }
    let inner = crate::vertex_cover::exact_vertex_cover(&reduced.hypergraph, budget);
    crate::ExactResult {
        value: reduced.lift_value(inner.value),
        witness: reduced.lift_cover(&inner.witness),
        optimal: inner.optimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_cover::{exact_vertex_cover, is_vertex_cover};
    use crate::SearchBudget;

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[1, 2, 3], &[1, 2]));
        assert!(is_subset(&[2], &[2]));
    }

    #[test]
    fn duplicates_and_supersets_are_removed() {
        let mut h = Hypergraph::new(5);
        h.add_edge(vec![0, 1]).unwrap();
        h.add_edge(vec![0, 1]).unwrap(); // duplicate
        h.add_edge(vec![0, 1, 2]).unwrap(); // superset
        h.add_edge(vec![3, 4]).unwrap();
        let r = reduce_for_vertex_cover(&h);
        assert_eq!(r.stats.duplicate_edges, 1);
        assert_eq!(r.stats.superset_edges, 1);
        // The later rules fully solve the two surviving 2-edges; the optimum (2) is
        // preserved either way.
        let direct = exact_vertex_cover(&h, SearchBudget::default());
        let reduced = reduced_exact_vertex_cover(&h, SearchBudget::default());
        assert_eq!(direct.value, 2);
        assert_eq!(reduced.value, 2);
        assert!(is_vertex_cover(&h, &reduced.witness));
    }

    #[test]
    fn unit_edges_force_vertices() {
        let mut h = Hypergraph::new(4);
        h.add_edge(vec![2]).unwrap();
        h.add_edge(vec![2, 3]).unwrap();
        h.add_edge(vec![0, 1]).unwrap();
        let r = reduce_for_vertex_cover(&h);
        // Vertex 2 is forced by its unit edge; the remaining {0,1} edge is resolved by
        // the domination + unit rules, forcing one of its endpoints.
        assert!(r.forced.contains(&2));
        assert!(r.stats.forced_vertices >= 1);
        assert!(r.stats.covered_edges >= 2);
        let solved = reduced_exact_vertex_cover(&h, SearchBudget::default());
        assert_eq!(solved.value, exact_vertex_cover(&h, SearchBudget::default()).value);
        assert_eq!(solved.value, 2);
        assert!(is_vertex_cover(&h, &solved.witness));
    }

    #[test]
    fn reduction_preserves_cover_size_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..15u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 12;
            let mut h = Hypergraph::new(n);
            for _ in 0..rng.gen_range(3..18) {
                let size = rng.gen_range(1..4);
                let edge: Vec<usize> = (0..size).map(|_| rng.gen_range(0..n)).collect();
                h.add_edge(edge).unwrap();
            }
            let direct = exact_vertex_cover(&h, SearchBudget::default());
            let reduced = reduced_exact_vertex_cover(&h, SearchBudget::default());
            assert_eq!(direct.value, reduced.value, "seed {seed}");
            assert!(
                is_vertex_cover(&h, &reduced.witness),
                "seed {seed}: lifted witness must cover"
            );
        }
    }

    #[test]
    fn dominated_vertex_rule_fires() {
        // Vertex 0 appears only together with vertex 1 → 0 is dominated by 1.
        let mut h = Hypergraph::new(4);
        h.add_edge(vec![0, 1, 2]).unwrap();
        h.add_edge(vec![0, 1, 3]).unwrap();
        h.add_edge(vec![1, 2, 3]).unwrap();
        let r = reduce_for_vertex_cover(&h);
        assert!(r.stats.dominated_vertices >= 1);
        // Optimum is 1 ({1}) both before and after.
        let direct = exact_vertex_cover(&h, SearchBudget::default());
        assert_eq!(
            r.lift_value(exact_vertex_cover(&r.hypergraph, SearchBudget::default()).value),
            direct.value
        );
    }

    #[test]
    fn fully_reducible_instance() {
        // Only unit edges: everything is forced, nothing remains.
        let mut h = Hypergraph::new(3);
        h.add_edge(vec![0]).unwrap();
        h.add_edge(vec![1]).unwrap();
        h.add_edge(vec![0]).unwrap();
        let r = reduced_exact_vertex_cover(&h, SearchBudget::default());
        assert_eq!(r.value, 2);
        assert!(r.optimal);
        assert!(is_vertex_cover(&h, &r.witness));
    }

    #[test]
    fn empty_hypergraph_reduces_to_nothing() {
        let h = Hypergraph::new(7);
        let r = reduce_for_vertex_cover(&h);
        assert_eq!(r.hypergraph.num_edges(), 0);
        assert!(r.forced.is_empty());
        assert_eq!(reduced_exact_vertex_cover(&h, SearchBudget::default()).value, 0);
    }

    #[test]
    fn lifted_cover_maps_back_to_original_ids() {
        let mut h = Hypergraph::new(10);
        h.add_edge(vec![7, 8]).unwrap();
        h.add_edge(vec![8, 9]).unwrap();
        let r = reduce_for_vertex_cover(&h);
        let inner = exact_vertex_cover(&r.hypergraph, SearchBudget::default());
        let lifted = r.lift_cover(&inner.witness);
        assert!(is_vertex_cover(&h, &lifted));
        assert!(lifted.iter().all(|&v| (7..=9).contains(&v)));
    }
}
