//! The bounding chain of Section 4.4:
//!
//! ```text
//! σMIS = σMIES ≤ νMIES = νMVC ≤ σMVC ≤ σMI ≤ σMNI
//! ```
//!
//! [`verify_bounding_chain`] evaluates every measure on one pattern/data-graph pair
//! and checks every inequality (and both equalities) of the chain, returning a
//! [`BoundsReport`] that the experiment harness prints and the property tests assert
//! on random inputs.

use crate::measures::{MeasureConfig, SupportMeasures};
use crate::occurrences::OccurrenceSet;
use ffsm_graph::isomorphism::IsoConfig;
use ffsm_graph::{LabeledGraph, Pattern};

/// Numerical slack used when comparing the fractional LP values with integers.
const TOLERANCE: f64 = 1e-6;

/// Every value of the bounding chain for one pattern/data-graph pair.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsReport {
    /// Number of occurrences (context, not part of the chain).
    pub occurrences: usize,
    /// Number of instances (context, not part of the chain).
    pub instances: usize,
    /// σMIS — overlap-graph maximum independent set.
    pub mis: usize,
    /// σMIES — hypergraph maximum independent edge set.
    pub mies: usize,
    /// νMIES — LP-relaxed MIES.
    pub relaxed_mies: f64,
    /// νMVC — LP-relaxed MVC.
    pub relaxed_mvc: f64,
    /// σMVC — minimum vertex cover.
    pub mvc: usize,
    /// σMI — minimum instance support (configured strategy).
    pub mi: usize,
    /// σMNI — minimum image support.
    pub mni: usize,
    /// `true` if every exact search finished within budget (otherwise the chain is
    /// only checked where it remains sound).
    pub all_exact: bool,
}

impl BoundsReport {
    /// Violations of the chain, as human-readable strings; empty when everything is
    /// consistent.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.all_exact && self.mis != self.mies {
            out.push(format!("Theorem 4.1 violated: MIS {} != MIES {}", self.mis, self.mies));
        }
        if (self.relaxed_mies - self.relaxed_mvc).abs() > TOLERANCE {
            out.push(format!(
                "LP duality violated: nuMIES {} != nuMVC {}",
                self.relaxed_mies, self.relaxed_mvc
            ));
        }
        if self.all_exact && (self.mies as f64) > self.relaxed_mies + TOLERANCE {
            out.push(format!("MIES {} exceeds its relaxation {}", self.mies, self.relaxed_mies));
        }
        if self.all_exact && self.relaxed_mvc > self.mvc as f64 + TOLERANCE {
            out.push(format!("relaxed MVC {} exceeds MVC {}", self.relaxed_mvc, self.mvc));
        }
        if self.all_exact && self.mvc > self.mi {
            out.push(format!("MVC {} exceeds MI {}", self.mvc, self.mi));
        }
        if self.mi > self.mni {
            out.push(format!("MI {} exceeds MNI {}", self.mi, self.mni));
        }
        out
    }

    /// `true` if the whole chain holds.
    pub fn holds(&self) -> bool {
        self.violations().is_empty()
    }

    /// The chain as a one-line summary (used by the experiment harness).
    pub fn summary(&self) -> String {
        format!(
            "occ={} inst={} | MIS={} MIES={} nuMIES={:.3} nuMVC={:.3} MVC={} MI={} MNI={}",
            self.occurrences,
            self.instances,
            self.mis,
            self.mies,
            self.relaxed_mies,
            self.relaxed_mvc,
            self.mvc,
            self.mi,
            self.mni
        )
    }
}

/// Compute every measure of the chain for `pattern` in `graph` and report.
pub fn verify_bounding_chain(
    pattern: &Pattern,
    graph: &LabeledGraph,
    config: &MeasureConfig,
) -> BoundsReport {
    let occ = OccurrenceSet::enumerate(pattern, graph, config.iso_config.clone());
    bounding_chain_for(occ, config)
}

/// Compute the chain from an already-enumerated occurrence set.
pub fn bounding_chain_for(occurrences: OccurrenceSet, config: &MeasureConfig) -> BoundsReport {
    let measures = SupportMeasures::new(occurrences, config.clone());
    let mis = measures.mis();
    let mies = measures.mies();
    let mvc = measures.mvc_with(crate::measures::MvcAlgorithm::Exact);
    BoundsReport {
        occurrences: measures.occurrence_count(),
        instances: measures.instance_count(),
        mis: mis.value,
        mies: mies.value,
        relaxed_mies: measures.relaxed_mies(),
        relaxed_mvc: measures.relaxed_mvc(),
        mvc: mvc.value,
        mi: measures.mi(),
        mni: measures.mni(),
        all_exact: mis.optimal && mies.optimal && mvc.optimal,
    }
}

/// Convenience wrapper with the default configuration and a custom embedding budget.
pub fn verify_with_limit(
    pattern: &Pattern,
    graph: &LabeledGraph,
    max_embeddings: usize,
) -> BoundsReport {
    let config = MeasureConfig {
        iso_config: IsoConfig::with_limit(max_embeddings),
        ..MeasureConfig::default()
    };
    verify_bounding_chain(pattern, graph, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::MeasureConfig;
    use ffsm_graph::{figures, generators};

    #[test]
    fn chain_holds_on_all_figures() {
        let config = MeasureConfig::default();
        for example in figures::all_figures() {
            let report = verify_bounding_chain(&example.pattern, &example.graph, &config);
            assert!(
                report.holds(),
                "bounding chain violated on {}: {:?}\n{}",
                example.name,
                report.violations(),
                report.summary()
            );
            assert!(report.all_exact);
        }
    }

    #[test]
    fn figure6_report_values() {
        let example = figures::figure6();
        let report =
            verify_bounding_chain(&example.pattern, &example.graph, &MeasureConfig::default());
        assert_eq!(report.mis, 2);
        assert_eq!(report.mies, 2);
        assert_eq!(report.mvc, 2);
        assert_eq!(report.mi, 4);
        assert_eq!(report.mni, 4);
        assert_eq!(report.occurrences, 7);
        assert!(report.summary().contains("MNI=4"));
    }

    #[test]
    fn chain_holds_on_random_graphs_and_sampled_patterns() {
        let config = MeasureConfig::default();
        for seed in 0..6u64 {
            let graph = generators::gnm_random(60, 140, 3, seed);
            if let Some((pattern, _)) = generators::sample_pattern(&graph, 3, seed * 31 + 1) {
                let report = verify_bounding_chain(&pattern, &graph, &config);
                assert!(
                    report.holds(),
                    "chain violated for seed {seed}: {:?}\n{}",
                    report.violations(),
                    report.summary()
                );
            }
        }
    }

    #[test]
    fn chain_on_pattern_with_no_occurrences() {
        let graph = generators::grid(3, 3, 2);
        let pattern = ffsm_graph::patterns::single_edge(ffsm_graph::Label(7), ffsm_graph::Label(8));
        let report = verify_bounding_chain(&pattern, &graph, &MeasureConfig::default());
        assert!(report.holds());
        assert_eq!(report.mni, 0);
        assert_eq!(report.mis, 0);
        assert_eq!(report.occurrences, 0);
    }

    #[test]
    fn verify_with_limit_respects_budget() {
        let example = figures::figure2();
        let report = verify_with_limit(&example.pattern, &example.graph, 2);
        // Truncated enumeration still yields a consistent (if smaller) chain.
        assert!(report.occurrences <= 2);
        assert!(report.holds());
    }
}
